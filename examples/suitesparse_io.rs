//! End-to-end Matrix Market pipeline: write a pattern to `.mtx`, read it
//! back (the same path a real SuiteSparse download takes), color it, and
//! reduce the color count with the recoloring post-pass.
//!
//! ```text
//! cargo run --release --example suitesparse_io
//! ```

use bgpc_suite::bgpc::{self, Schedule};
use bgpc_suite::graph::{BipartiteGraph, Ordering};
use bgpc_suite::par::Pool;
use bgpc_suite::sparse::{mm, Dataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pretend this came from suitesparse.com: generate an analogue and
    // serialize it as a Matrix Market file.
    let inst = Dataset::Bone010.build(0.005, 1);
    let path = std::env::temp_dir().join("bone010_analogue.mtx");
    mm::write_pattern_file(&path, &inst.matrix)?;
    println!(
        "wrote {} ({} x {}, {} nnz)",
        path.display(),
        inst.matrix.nrows(),
        inst.matrix.ncols(),
        inst.matrix.nnz()
    );

    // Read it back exactly like a downloaded matrix.
    let matrix = mm::read_pattern_file(&path)?;
    assert_eq!(matrix, inst.matrix, "roundtrip must be lossless");

    // Color the columns.
    let g = BipartiteGraph::from_matrix(&matrix);
    let order = Ordering::SmallestLast.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    let result = bgpc::color_bgpc(&g, &order, &Schedule::v_n(2), &pool);
    bgpc::verify::verify_bgpc(&g, &result.colors)?;
    println!(
        "V-N2 + smallest-last: {} colors (lower bound {})",
        result.num_colors,
        g.max_net_size()
    );

    // One recoloring post-pass often shaves a few more colors.
    let mut colors = result.colors;
    let reduced = bgpc::recolor::reduce_colors_bgpc(&g, &mut colors, &pool);
    bgpc::verify::verify_bgpc(&g, &colors)?;
    println!("after recoloring post-pass: {reduced} colors");

    std::fs::remove_file(&path).ok();
    Ok(())
}
