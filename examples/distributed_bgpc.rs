//! Distributed-memory speculative coloring, simulated — the framework of
//! the paper's distributed predecessors (Bozdağ et al.), run as a BSP
//! simulation so rounds and message volume can be studied on one machine.
//!
//! ```text
//! cargo run --release --example distributed_bgpc
//! ```

use bgpc_suite::graph::BipartiteGraph;
use dist::{DistRunner, Partition};

fn main() {
    let inst = bgpc_suite::sparse::Dataset::Nlpkkt120.build(0.004, 5);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    println!(
        "instance: {} nets, {} vertices, {} pins",
        g.n_nets(),
        g.n_vertices(),
        g.n_pins()
    );

    let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    let (_, seq_colors) = bgpc_suite::bgpc::seq::color_bgpc_seq(&g, &order);
    println!("sequential baseline: {seq_colors} colors\n");

    println!(
        "{:>7}  {:>9}  {:>7}  {:>10}  {:>9}  {:>8}",
        "ranks", "partition", "rounds", "messages", "boundary", "#colors"
    );
    for ranks in [1usize, 2, 4, 8, 16] {
        for (name, partition) in [
            ("block", Partition::block(g.n_vertices(), ranks)),
            ("cyclic", Partition::cyclic(g.n_vertices(), ranks)),
        ] {
            let runner = DistRunner::new(&g, partition);
            let boundary = runner.boundary_fraction();
            let r = runner.run();
            bgpc_suite::bgpc::verify::verify_bgpc(&g, &r.colors).expect("valid");
            println!(
                "{ranks:>7}  {name:>9}  {:>7}  {:>10}  {boundary:>9.3}  {:>8}",
                r.rounds(),
                r.total_messages(),
                r.num_colors
            );
        }
    }
    println!("\nblock partitions of mesh matrices keep the boundary — and the");
    println!("conflict rounds — small; cyclic partitions show the worst case.");
}
