//! Multicolor Gauss–Seidel — the textbook PDE application of graph
//! coloring (paper §I: a valid coloring yields "lock-free processing of
//! the colored tasks … without expensive synchronization").
//!
//! Gauss–Seidel sweeps are inherently sequential (each update reads the
//! *latest* neighbor values), but a distance-1 coloring of the mesh makes
//! same-color unknowns mutually independent: the sweep becomes a short
//! sequence of barrier-separated, embarrassingly-parallel batches — one
//! per color — with identical numerics to *some* sequential ordering.
//!
//! This example solves a 2-D Poisson problem on a 5-point stencil with
//! (a) plain sequential Gauss–Seidel and (b) the coloring-scheduled
//! parallel version, and checks both converge to the same solution.
//!
//! ```text
//! cargo run --release --example multicolor_gauss_seidel
//! ```

use std::cell::UnsafeCell;

use bgpc_suite::bgpc;
use bgpc_suite::compress::ColorClasses;
use bgpc_suite::graph::Graph;
use bgpc_suite::par::Pool;

const NX: usize = 32;
const NY: usize = 32;
const MAX_SWEEPS: usize = 20_000;
const TOL: f64 = 1e-10;

/// Unknowns written without locks; the coloring certifies disjointness
/// within each batch.
struct Solution {
    x: Vec<UnsafeCell<f64>>,
}
// SAFETY: each color batch touches pairwise non-adjacent unknowns, and an
// update writes only its own unknown; batches are separated by pool
// barriers.
unsafe impl Sync for Solution {}

impl Solution {
    fn new(n: usize) -> Self {
        Self {
            x: (0..n).map(|_| UnsafeCell::new(0.0)).collect(),
        }
    }
    fn get(&self, i: usize) -> f64 {
        // SAFETY: reads of neighbors race only with writes of *other*
        // unknowns in the same batch (never the same index).
        unsafe { *self.x[i].get() }
    }
    /// # Safety
    /// Only one thread may write index `i` per batch — guaranteed by the
    /// coloring.
    unsafe fn set(&self, i: usize, v: f64) {
        *self.x[i].get() = v;
    }
    fn to_vec(&self) -> Vec<f64> {
        (0..self.x.len()).map(|i| self.get(i)).collect()
    }
}

fn main() {
    // 5-point Laplacian on an NX × NY grid: A = 4I - adjacency.
    let mesh = bgpc_suite::sparse::gen::grid3d_select(NX, NY, 1, 1, |dx, dy, _| {
        dx.abs() + dy.abs() == 1
    });
    let g = Graph::from_symmetric_matrix(&mesh);
    let n = g.n_vertices();
    let b: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) / 17.0).collect();
    println!("Poisson {NX}x{NY}: {n} unknowns, {} edges", g.n_edges());

    let gs_update = |x_of: &dyn Fn(usize) -> f64, i: usize| -> f64 {
        let sigma: f64 = g.nbor(i).iter().map(|&j| x_of(j as usize)).sum();
        (b[i] + sigma) / 4.0
    };

    let residual = |x: &dyn Fn(usize) -> f64| -> f64 {
        (0..n)
            .map(|i| {
                let sigma: f64 = g.nbor(i).iter().map(|&j| x(j as usize)).sum();
                (4.0 * x(i) - sigma - b[i]).abs()
            })
            .fold(0.0f64, f64::max)
    };

    // (a) sequential Gauss-Seidel, natural order, to residual TOL.
    let t0 = std::time::Instant::now();
    let mut x_seq = vec![0.0f64; n];
    let mut seq_sweeps = 0;
    for sweep in 1..=MAX_SWEEPS {
        for i in 0..n {
            let sigma: f64 = g.nbor(i).iter().map(|&j| x_seq[j as usize]).sum();
            x_seq[i] = (b[i] + sigma) / 4.0;
        }
        seq_sweeps = sweep;
        if sweep % 16 == 0 && residual(&|j| x_seq[j]) < TOL {
            break;
        }
    }
    let seq_ms = t0.elapsed().as_secs_f64() * 1e3;

    // (b) multicolor Gauss-Seidel: D1-color the mesh (2 colors for a
    // bipartite 5-point grid — the classic red-black ordering falls out
    // automatically), then sweep color by color.
    let order: Vec<u32> = (0..n as u32).collect();
    let pool = Pool::new(4);
    let (colors, k) =
        bgpc::d1gc::color_d1gc(&g, &order, &pool, 64, bgpc::Balance::Unbalanced);
    bgpc::d1gc::verify_d1gc(&g, &colors).expect("valid D1 coloring");
    println!("mesh colored with {k} colors (red-black = 2 expected)");

    let classes = ColorClasses::from_colors(&colors);
    let x_par = Solution::new(n);
    let t0 = std::time::Instant::now();
    let mut par_sweeps = 0;
    for sweep in 1..=MAX_SWEEPS {
        classes.for_each_parallel(&pool, 64, |i| {
            let i = i as usize;
            let v = gs_update(&|j| x_par.get(j), i);
            // SAFETY: same-color unknowns are non-adjacent.
            unsafe { x_par.set(i, v) };
        });
        par_sweeps = sweep;
        if sweep % 16 == 0 && residual(&|j| x_par.get(j)) < TOL {
            break;
        }
    }
    let par_ms = t0.elapsed().as_secs_f64() * 1e3;
    let x_par = x_par.to_vec();

    // Both iterations converge to the unique solution of A x = b, so the
    // solutions must agree to ~TOL even though the sweep orders differ.
    let diff = x_seq
        .iter()
        .zip(&x_par)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!(
        "sequential GS: {seq_sweeps} sweeps, {seq_ms:.1} ms; \
         multicolor GS ({k} barriers/sweep): {par_sweeps} sweeps, {par_ms:.1} ms"
    );
    println!("max |x_seq - x_multicolor| = {diff:.3e}");
    assert!(diff < 1e-6, "both schedules must reach the same solution");
    println!("solutions agree — coloring preserved Gauss-Seidel semantics");
}
