//! Distance-2 coloring of a 3-D mesh — the Hessian/stencil use case.
//!
//! On structurally symmetric matrices (meshes, KKT systems) the paper runs
//! D2GC instead of BGPC. This example colors a 3-D channel-flow mesh at
//! distance 2, checks the coloring against the `1 + Δ` lower bound, and
//! shows the per-iteration anatomy of the speculative loop.
//!
//! ```text
//! cargo run --release --example stencil_d2gc
//! ```

use bgpc_suite::bgpc::{self, Schedule};
use bgpc_suite::graph::{Graph, Ordering};
use bgpc_suite::par::Pool;

fn main() {
    // 40×20×20 channel mesh with the 18-point stencil.
    let mesh = bgpc_suite::sparse::gen::grid3d_18pt(40, 20, 20);
    let g = Graph::from_symmetric_matrix(&mesh);
    println!(
        "mesh: {} vertices, {} edges, max degree {} (D2 color lower bound {})",
        g.n_vertices(),
        g.n_edges(),
        g.max_degree(),
        g.max_degree() + 1
    );

    let order = Ordering::Natural.vertex_order_d2(&g);
    let pool = Pool::new(4);

    for schedule in Schedule::d2gc_set() {
        let result = bgpc::d2gc::color_d2gc(&g, &order, &schedule, &pool);
        bgpc::verify::verify_d2gc(&g, &result.colors).expect("valid D2 coloring");
        println!(
            "{:<8} {:>4} colors, {} rounds, {:.2} ms",
            schedule.name(),
            result.num_colors,
            result.rounds(),
            result.total_time.as_secs_f64() * 1e3
        );
    }

    // The sequential baseline for reference.
    let t = std::time::Instant::now();
    let (colors, k) = bgpc::seq::color_d2gc_seq(&g, &order);
    bgpc::verify::verify_d2gc(&g, &colors).expect("valid sequential D2 coloring");
    println!(
        "sequential: {:>4} colors, {:.2} ms",
        k,
        t.elapsed().as_secs_f64() * 1e3
    );
}
