//! Quickstart: color the columns of a sparse matrix in parallel.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use bgpc_suite::bgpc::{self, Schedule};
use bgpc_suite::graph::{BipartiteGraph, Ordering};
use bgpc_suite::par::Pool;

fn main() {
    // A random 2 000 × 3 000 sparse pattern with 40 000 nonzeros. Rows act
    // as nets; the 3 000 columns are the vertices we color.
    let matrix = bgpc_suite::sparse::gen::bipartite_uniform(2_000, 3_000, 40_000, 42);
    let g = BipartiteGraph::from_matrix(&matrix);
    println!(
        "instance: {} nets, {} vertices, {} pins, color lower bound {}",
        g.n_nets(),
        g.n_vertices(),
        g.n_pins(),
        g.max_net_size()
    );

    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);

    // N1-N2 is the paper's fastest schedule: net-based coloring for the
    // first iteration, net-based conflict removal for the first two.
    let result = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);

    bgpc::verify::verify_bgpc(&g, &result.colors).expect("coloring must be valid");
    println!(
        "N1-N2 on {} threads: {} colors, {} speculative rounds, {:.2} ms",
        pool.threads(),
        result.num_colors,
        result.rounds(),
        result.total_time.as_secs_f64() * 1e3
    );
    for m in &result.iterations {
        println!(
            "  round {}: |W|={:<6} color {:?}/{:.2} ms, conflict {:?}/{:.2} ms, left {}",
            m.iter + 1,
            m.queue_in,
            m.color_kind,
            m.color_time.as_secs_f64() * 1e3,
            m.conflict_kind,
            m.conflict_time.as_secs_f64() * 1e3,
            m.queue_out
        );
    }

    // Compare against the sequential first-fit baseline.
    let (_, seq_colors) = bgpc::seq::color_bgpc_seq(&g, &order);
    println!("sequential first-fit uses {seq_colors} colors");
}
