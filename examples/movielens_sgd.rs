//! Lock-free matrix-factorization updates scheduled by a coloring — the
//! application behind the paper's 20M_movielens instance ("matrix
//! decomposition … is the application that motivated us for this study").
//!
//! Users (columns) are colored so that two users who rated the same movie
//! never share a color. Processing one color class at a time lets every
//! user update its movies' latent factors with *no locks and no atomics*:
//! the coloring certifies that concurrent writers touch disjoint movies.
//! The B2 balancing heuristic keeps the classes wide enough to feed all
//! threads (paper §V).
//!
//! ```text
//! cargo run --release --example movielens_sgd
//! ```

use std::cell::UnsafeCell;

use bgpc_suite::bgpc::{self, Balance, Schedule};
use bgpc_suite::compress::ColorClasses;
use bgpc_suite::graph::{BipartiteGraph, Ordering};
use bgpc_suite::par::Pool;
use bgpc_suite::sparse::Dataset;

const RANK: usize = 8;

/// Movie latent factors written without synchronization. The coloring is
/// the safety argument: within one color class no two users share a movie,
/// so no two threads ever write the same row.
struct FactorTable {
    rows: Vec<UnsafeCell<[f64; RANK]>>,
}
// SAFETY: access pattern is disjoint-by-construction (valid BGPC coloring);
// class boundaries are pool barriers.
unsafe impl Sync for FactorTable {}

impl FactorTable {
    fn new(n: usize) -> Self {
        Self {
            rows: (0..n).map(|i| UnsafeCell::new([1.0 / (1.0 + i as f64); RANK])).collect(),
        }
    }
    /// # Safety
    /// Caller must guarantee no concurrent access to row `i` — here, by
    /// scheduling only one color class at a time.
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, i: usize) -> &mut [f64; RANK] {
        &mut *self.rows[i].get()
    }
}

fn main() {
    // A MovieLens-like instance: skewed bipartite, movies are nets.
    let inst = Dataset::Movielens20M.build(0.005, 99);
    let ratings = &inst.matrix; // movie -> users
    let g = BipartiteGraph::from_matrix(ratings);
    println!(
        "instance: {} movies, {} users, {} ratings",
        g.n_nets(),
        g.n_vertices(),
        g.n_pins()
    );

    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);

    for (label, balance) in [("unbalanced", Balance::Unbalanced), ("B2-balanced", Balance::B2)] {
        let schedule = Schedule::n1_n2().with_balance(balance);
        let result = bgpc::color_bgpc(&g, &order, &schedule, &pool);
        bgpc::verify::verify_bgpc(&g, &result.colors).expect("valid coloring");

        let classes = ColorClasses::from_colors(&result.colors);
        let stats = bgpc::verify::ColorClassStats::from_colors(&result.colors);
        println!(
            "{label}: {} classes, min {}, max {}, std dev {:.1}",
            classes.num_classes(),
            stats.min,
            stats.max,
            stats.std_dev
        );

        // One lock-free SGD epoch: users of one color run concurrently.
        let movies = FactorTable::new(g.n_nets());
        let user_nets = g.vtx_matrix(); // user -> movies
        let t0 = std::time::Instant::now();
        classes.for_each_parallel(&pool, 32, |user| {
            for &movie in user_nets.row(user as usize) {
                // SAFETY: same-color users share no movie (BGPC validity).
                let row = unsafe { movies.row_mut(movie as usize) };
                for f in row.iter_mut() {
                    // mock gradient step
                    *f += 0.001 * (1.0 - *f);
                }
            }
        });
        println!(
            "  lock-free epoch over {} ratings: {:.2} ms",
            g.n_pins(),
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
}
