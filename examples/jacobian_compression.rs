//! Sparse Jacobian compression — the numerical-optimization use case that
//! motivates BGPC (paper §I: "efficient computation of Hessians and
//! Jacobians").
//!
//! A valid partial coloring of the columns groups structurally orthogonal
//! columns together; one matrix–vector product per color recovers every
//! nonzero exactly. For a banded Jacobian with bandwidth b, ~2b+1 products
//! replace n of them.
//!
//! ```text
//! cargo run --release --example jacobian_compression
//! ```

use bgpc_suite::bgpc::{self, Schedule};
use bgpc_suite::compress::{SeedMatrix, SparseF64};
use bgpc_suite::graph::{BipartiteGraph, Ordering};
use bgpc_suite::par::Pool;

fn main() {
    // A banded "Jacobian" of a 1-D PDE discretization: 100 000 unknowns,
    // half-bandwidth 4.
    let n = 100_000;
    let pattern = bgpc_suite::sparse::gen::banded(n, 4, 1.0, 7);
    let jac = SparseF64::with_synthetic_values(pattern.clone());
    println!(
        "Jacobian: {}x{}, {} nonzeros",
        pattern.nrows(),
        pattern.ncols(),
        pattern.nnz()
    );

    // Color the columns (rows are the nets).
    let g = BipartiteGraph::from_matrix(&pattern);
    let order = Ordering::SmallestLast.vertex_order_bgpc(&g);
    let pool = Pool::new(4);
    let result = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
    bgpc::verify::verify_bgpc(&g, &result.colors).expect("valid coloring");
    println!(
        "colored {} columns with {} colors in {:.2} ms (lower bound {})",
        g.n_vertices(),
        result.num_colors,
        result.total_time.as_secs_f64() * 1e3,
        g.max_net_size()
    );

    // Compress: k products instead of n.
    let seed = SeedMatrix::from_coloring(&result.colors);
    let compressed = jac.compress(&seed);
    println!(
        "compressed to {} columns — {:.0}x fewer evaluations",
        compressed.num_colors(),
        compressed.ratio(n)
    );

    // Recover and check exactness.
    let recovered = SparseF64::recover(&pattern, &seed, &compressed);
    assert_eq!(recovered, jac, "direct recovery must be exact");
    println!("recovered all {} nonzeros exactly", pattern.nnz());
}
