//! Umbrella crate for the BGPC reproduction workspace.
//!
//! Re-exports the member crates so the integration tests and the runnable
//! examples under `examples/` have a single import surface.

pub use bgpc;
pub use compress;
pub use dist;
pub use graph;
pub use par;
pub use rng;
pub use sparse;
