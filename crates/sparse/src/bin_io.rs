//! Compact binary pattern serialization.
//!
//! Matrix Market is the interchange format; this is the *cache* format —
//! the harness regenerates synthetic instances on every run, and at larger
//! scales the generators (not the coloring) dominate wall time. The layout
//! is a fixed little-endian header plus the two CSR arrays, so reading is
//! one validation pass over `O(nnz)` bytes.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic   8 bytes  b"BGPCCSR1"
//! nrows   8 bytes  u64
//! ncols   8 bytes  u64
//! nnz     8 bytes  u64
//! row_ptr (nrows + 1) × 8 bytes (u64)
//! col_idx nnz × 4 bytes (u32)
//! ```

use std::io::{Read, Write};
use std::path::Path;

use crate::{Csr, CsrIndex};

const MAGIC: &[u8; 8] = b"BGPCCSR1";

/// Errors from the binary reader.
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed or corrupt file.
    Format(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        BinError::Io(e)
    }
}

/// Writes a pattern in the binary cache format. The on-disk row-pointer
/// width is always u64, independent of the in-memory [`CsrIndex`] width.
pub fn write_bin<W: Write, I: CsrIndex>(mut w: W, m: &Csr<I>) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(m.nrows() as u64).to_le_bytes())?;
    w.write_all(&(m.ncols() as u64).to_le_bytes())?;
    w.write_all(&(m.nnz() as u64).to_le_bytes())?;
    for &p in m.row_ptr() {
        w.write_all(&(p.to_usize() as u64).to_le_bytes())?;
    }
    for &j in m.col_idx() {
        w.write_all(&j.to_le_bytes())?;
    }
    Ok(())
}

/// Reads a pattern from the binary cache format, validating all CSR
/// invariants before returning.
pub fn read_bin<R: Read>(mut r: R) -> Result<Csr, BinError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinError::Format("bad magic".into()));
    }
    let mut u64buf = [0u8; 8];
    let mut read_u64 = |r: &mut R| -> Result<u64, BinError> {
        r.read_exact(&mut u64buf)?;
        Ok(u64::from_le_bytes(u64buf))
    };
    let nrows = read_u64(&mut r)? as usize;
    let ncols = read_u64(&mut r)? as usize;
    let nnz = read_u64(&mut r)? as usize;
    // sanity bounds before allocating
    if nrows > u32::MAX as usize || ncols > u32::MAX as usize {
        return Err(BinError::Format("dimensions exceed u32".into()));
    }
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    for _ in 0..=nrows {
        row_ptr.push(read_u64(&mut r)? as usize);
    }
    let mut col_bytes = vec![0u8; nnz * 4];
    r.read_exact(&mut col_bytes)?;
    let col_idx: Vec<u32> = col_bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Csr::try_from_parts(nrows, ncols, row_ptr, col_idx)
        .map_err(|e| BinError::Format(format!("CSR invariants violated: {e}")))
}

/// Writes to a file path.
pub fn write_bin_file<I: CsrIndex>(path: impl AsRef<Path>, m: &Csr<I>) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    write_bin(std::io::BufWriter::new(f), m)
}

/// Reads from a file path.
pub fn read_bin_file(path: impl AsRef<Path>) -> Result<Csr, BinError> {
    let f = std::fs::File::open(path)?;
    read_bin(std::io::BufReader::new(f))
}

/// Loads a dataset instance through a cache directory: on a cache hit the
/// pattern is read from disk, otherwise it is generated and cached.
pub fn load_cached(
    dataset: crate::Dataset,
    scale: f64,
    seed: u64,
    cache_dir: impl AsRef<Path>,
) -> Result<Csr, BinError> {
    let dir = cache_dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let key = format!("{}_{:e}_{}.bgpccsr", dataset.name().replace('/', "_"), scale, seed);
    let path = dir.join(key);
    if path.exists() {
        if let Ok(m) = read_bin_file(&path) {
            return Ok(m);
        }
        // fall through on a corrupt cache entry and regenerate
    }
    let m = dataset.build(scale, seed).matrix;
    write_bin_file(&path, &m)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = crate::gen::bipartite_uniform(30, 40, 300, 9);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        let back = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = Csr::empty(3, 7);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        assert_eq!(read_bin(buf.as_slice()).unwrap(), m);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_bin(&b"NOTMAGIC........"[..]).unwrap_err();
        assert!(matches!(err, BinError::Format(_)));
    }

    #[test]
    fn truncated_file_rejected() {
        let m = crate::gen::bipartite_uniform(10, 10, 40, 1);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_bin(buf.as_slice()).is_err());
    }

    #[test]
    fn corrupt_col_idx_rejected() {
        let m = Csr::from_rows(3, &[vec![0], vec![1]]);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        // clobber a column index with an out-of-range value
        let len = buf.len();
        buf[len - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_bin(buf.as_slice()).unwrap_err(),
            BinError::Format(_)
        ));
    }

    #[test]
    fn cache_hits_and_misses() {
        let dir = std::env::temp_dir().join(format!("bgpc-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = load_cached(crate::Dataset::AfShell10, 0.002, 1, &dir).unwrap();
        // second call must hit the cache and agree
        let b = load_cached(crate::Dataset::AfShell10, 0.002, 1, &dir).unwrap();
        assert_eq!(a, b);
        // one cache file created
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
