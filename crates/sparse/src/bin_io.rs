//! Compact binary pattern serialization.
//!
//! Matrix Market is the interchange format; this is the *cache* format —
//! the harness regenerates synthetic instances on every run, and at larger
//! scales the generators (not the coloring) dominate wall time. The layout
//! is a fixed little-endian header plus the two CSR arrays, so reading is
//! one validation pass over `O(nnz)` bytes.
//!
//! The format is hardened for use as a service-side cache substrate: a
//! version word after the magic, and an [FNV-1a] checksum trailer over
//! every preceding byte. A truncated file, a bit flip anywhere in the
//! header or payload, or a torn write (the serving layer's crash window)
//! is rejected with a structured [`BinError`] instead of propagating
//! garbage into the graph layer.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic    8 bytes  b"BGPCCSR2"
//! version  4 bytes  u32 (currently 2)
//! flags    4 bytes  u32 (reserved, must be 0)
//! nrows    8 bytes  u64
//! ncols    8 bytes  u64
//! nnz      8 bytes  u64
//! row_ptr  (nrows + 1) × 8 bytes (u64)
//! col_idx  nnz × 4 bytes (u32)
//! checksum 8 bytes  u64 — FNV-1a 64 over every byte above
//! ```
//!
//! [FNV-1a]: http://www.isthe.com/chongo/tech/comp/fnv/

use std::io::{Read, Write};
use std::path::Path;

use crate::{Csr, CsrIndex};

const MAGIC: &[u8; 8] = b"BGPCCSR2";
/// Current format version (the word after the magic).
pub const FORMAT_VERSION: u32 = 2;

/// Errors from the binary reader, structured so callers can distinguish
/// "not this format" from "this format, but damaged".
#[derive(Debug)]
pub enum BinError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the format magic (wrong format, or a
    /// pre-versioned `BGPCCSR1` file from before the checksum trailer).
    BadMagic,
    /// The magic matched but the version word is not one this reader
    /// understands.
    UnsupportedVersion(u32),
    /// The file ended before the declared header/payload/trailer did — a
    /// torn or truncated write.
    Truncated,
    /// The checksum trailer disagrees with the bytes read: corruption
    /// (bit flip, partial overwrite) somewhere in header or payload.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the bytes actually read.
        computed: u64,
    },
    /// Structurally malformed contents (CSR invariants violated, reserved
    /// flags set, implausible dimensions).
    Format(String),
}

impl std::fmt::Display for BinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BinError::Io(e) => write!(f, "I/O error: {e}"),
            BinError::BadMagic => write!(f, "bad magic: not a BGPCCSR2 file"),
            BinError::UnsupportedVersion(v) => {
                write!(f, "unsupported format version {v} (reader supports {FORMAT_VERSION})")
            }
            BinError::Truncated => write!(f, "truncated file: ended before declared contents"),
            BinError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: trailer {stored:#018x}, computed {computed:#018x} — \
                 file is corrupt"
            ),
            BinError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for BinError {}

impl From<std::io::Error> for BinError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            BinError::Truncated
        } else {
            BinError::Io(e)
        }
    }
}

/// Streaming FNV-1a 64 — the checksum behind the trailer. Public so the
/// serving layer's result cache can use the identical discipline for its
/// own entry format.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Writer adapter that folds everything written into an [`Fnv1a`].
struct HashingWriter<W> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        Self {
            inner,
            hash: Fnv1a::new(),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        self.inner.write_all(buf)?;
        self.hash.update(buf);
        Ok(())
    }
}

/// Reader adapter that folds everything read into an [`Fnv1a`].
struct HashingReader<R> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        Self {
            inner,
            hash: Fnv1a::new(),
        }
    }

    fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), BinError> {
        self.inner.read_exact(buf)?;
        self.hash.update(buf);
        Ok(())
    }

    fn read_u64(&mut self) -> Result<u64, BinError> {
        let mut b = [0u8; 8];
        self.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_u32(&mut self) -> Result<u32, BinError> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }
}

/// Writes a pattern in the binary cache format (version
/// [`FORMAT_VERSION`], checksum trailer included). The on-disk
/// row-pointer width is always u64, independent of the in-memory
/// [`CsrIndex`] width.
pub fn write_bin<W: Write, I: CsrIndex>(w: W, m: &Csr<I>) -> std::io::Result<()> {
    let mut w = HashingWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&FORMAT_VERSION.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?; // reserved flags
    w.write_all(&(m.nrows() as u64).to_le_bytes())?;
    w.write_all(&(m.ncols() as u64).to_le_bytes())?;
    w.write_all(&(m.nnz() as u64).to_le_bytes())?;
    for &p in m.row_ptr() {
        w.write_all(&(p.to_usize() as u64).to_le_bytes())?;
    }
    for &j in m.col_idx() {
        w.write_all(&j.to_le_bytes())?;
    }
    let checksum = w.hash.finish();
    w.inner.write_all(&checksum.to_le_bytes())
}

/// Reads a pattern from the binary cache format, verifying magic, version,
/// checksum trailer, and all CSR invariants before returning. Truncation
/// and corruption surface as the matching [`BinError`] variant — garbage
/// never reaches the graph layer.
pub fn read_bin<R: Read>(r: R) -> Result<Csr, BinError> {
    let mut r = HashingReader::new(r);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(BinError::BadMagic);
    }
    let version = r.read_u32()?;
    if version != FORMAT_VERSION {
        return Err(BinError::UnsupportedVersion(version));
    }
    let flags = r.read_u32()?;
    if flags != 0 {
        return Err(BinError::Format(format!("reserved flags set: {flags:#x}")));
    }
    let nrows = r.read_u64()? as usize;
    let ncols = r.read_u64()? as usize;
    let nnz = r.read_u64()? as usize;
    // Sanity bounds before allocating: a corrupt header must not drive a
    // giant allocation. Dimensions are capped by the u32 column index
    // space; the checksum would catch the flip anyway, but only after the
    // allocation it sized.
    if nrows > u32::MAX as usize || ncols > u32::MAX as usize {
        return Err(BinError::Format("dimensions exceed u32".into()));
    }
    // Cap the *pre-allocation*, not the size: push() grows geometrically,
    // and a lying nrows hits Truncated long before memory pressure.
    let mut row_ptr = Vec::with_capacity((nrows + 1).min(1 << 20));
    for _ in 0..=nrows {
        row_ptr.push(r.read_u64()? as usize);
    }
    if row_ptr[nrows] != nnz {
        return Err(BinError::Format(format!(
            "row pointer end {} disagrees with header nnz {}",
            row_ptr[nrows], nnz
        )));
    }
    let mut col_idx: Vec<u32> = Vec::with_capacity(nnz.min(1 << 22));
    let mut chunk = [0u8; 4096];
    let mut remaining = nnz * 4;
    while remaining > 0 {
        let take = remaining.min(chunk.len());
        r.read_exact(&mut chunk[..take])?;
        col_idx.extend(
            chunk[..take]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])),
        );
        remaining -= take;
    }
    let computed = r.hash.finish();
    let mut trailer = [0u8; 8];
    r.inner.read_exact(&mut trailer).map_err(BinError::from)?;
    let stored = u64::from_le_bytes(trailer);
    if stored != computed {
        return Err(BinError::ChecksumMismatch { stored, computed });
    }
    Csr::try_from_parts(nrows, ncols, row_ptr, col_idx)
        .map_err(|e| BinError::Format(format!("CSR invariants violated: {e}")))
}

/// Writes to a file path.
pub fn write_bin_file<I: CsrIndex>(path: impl AsRef<Path>, m: &Csr<I>) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(f);
    write_bin(&mut w, m)?;
    w.flush()
}

/// Reads from a file path.
pub fn read_bin_file(path: impl AsRef<Path>) -> Result<Csr, BinError> {
    let f = std::fs::File::open(path)?;
    read_bin(std::io::BufReader::new(f))
}

/// Loads a dataset instance through a cache directory: on a cache hit the
/// pattern is read from disk, otherwise it is generated and cached. A
/// corrupt or stale-format cache entry (failed magic/version/checksum) is
/// silently regenerated — the cache is an accelerator, never a source of
/// truth.
pub fn load_cached(
    dataset: crate::Dataset,
    scale: f64,
    seed: u64,
    cache_dir: impl AsRef<Path>,
) -> Result<Csr, BinError> {
    let dir = cache_dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let key = format!("{}_{:e}_{}.bgpccsr", dataset.name().replace('/', "_"), scale, seed);
    let path = dir.join(key);
    if path.exists() {
        if let Ok(m) = read_bin_file(&path) {
            return Ok(m);
        }
        // fall through on a corrupt cache entry and regenerate
    }
    let m = dataset.build(scale, seed).matrix;
    write_bin_file(&path, &m)?;
    Ok(m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let m = crate::gen::bipartite_uniform(30, 40, 300, 9);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        let back = read_bin(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let m = Csr::empty(3, 7);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        assert_eq!(read_bin(buf.as_slice()).unwrap(), m);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_bin(&b"NOTMAGIC........"[..]).unwrap_err();
        assert!(matches!(err, BinError::BadMagic));
    }

    #[test]
    fn v1_files_rejected_as_bad_magic() {
        // Pre-checksum files carry the old magic; they must be rejected
        // cleanly (load_cached regenerates them) rather than misparsed.
        let err = read_bin(&b"BGPCCSR1\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, BinError::BadMagic));
    }

    #[test]
    fn future_version_rejected() {
        let m = Csr::from_rows(2, &[vec![0], vec![1]]);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        buf[8] = 99; // version word follows the 8-byte magic
        let err = read_bin(buf.as_slice()).unwrap_err();
        assert!(matches!(err, BinError::UnsupportedVersion(99)));
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let m = crate::gen::bipartite_uniform(10, 10, 40, 1);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        // Chop at every prefix length: header, arrays, and trailer cuts
        // must all surface as Truncated (never a panic, never an Ok).
        for cut in 8..buf.len() {
            let err = read_bin(&buf[..cut]).unwrap_err();
            assert!(
                matches!(err, BinError::Truncated),
                "cut at {cut}: expected Truncated, got {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let m = crate::gen::bipartite_uniform(8, 9, 30, 2);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        // Flip one bit per byte position across the whole file (including
        // the trailer itself): the reader must reject every variant with a
        // structured error. This is the bit-rot detection guarantee the
        // serving layer's crash-safe cache builds on.
        for pos in 0..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 1 << (pos % 8);
            let r = read_bin(bad.as_slice());
            assert!(r.is_err(), "bit flip at byte {pos} went undetected");
        }
    }

    #[test]
    fn corrupt_col_idx_is_checksum_mismatch() {
        let m = Csr::from_rows(3, &[vec![0], vec![1]]);
        let mut buf = Vec::new();
        write_bin(&mut buf, &m).unwrap();
        // Clobber a column index (the 4 bytes before the 8-byte trailer).
        let len = buf.len();
        buf[len - 12..len - 8].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_bin(buf.as_slice()).unwrap_err(),
            BinError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn cache_hits_and_misses() {
        let dir = std::env::temp_dir().join(format!("bgpc-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = load_cached(crate::Dataset::AfShell10, 0.002, 1, &dir).unwrap();
        // second call must hit the cache and agree
        let b = load_cached(crate::Dataset::AfShell10, 0.002, 1, &dir).unwrap();
        assert_eq!(a, b);
        // one cache file created
        assert_eq!(std::fs::read_dir(&dir).unwrap().count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_entry_is_regenerated() {
        let dir = std::env::temp_dir().join(format!("bgpc-cache-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = load_cached(crate::Dataset::AfShell10, 0.002, 7, &dir).unwrap();
        // Tear the entry mid-file, as a crash mid-write would.
        let entry = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let bytes = std::fs::read(&entry).unwrap();
        std::fs::write(&entry, &bytes[..bytes.len() / 2]).unwrap();
        let b = load_cached(crate::Dataset::AfShell10, 0.002, 7, &dir).unwrap();
        assert_eq!(a, b, "regenerated pattern must match the original");
        // The regenerated entry reads back clean.
        assert!(read_bin_file(&entry).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnv_vector() {
        // Known FNV-1a 64 vectors.
        let mut h = Fnv1a::new();
        h.update(b"");
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        let mut h = Fnv1a::new();
        h.update(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
    }
}
