//! Uniform random pattern generators (tests and ablations).

use crate::{Coo, Csr};

/// Erdős–Rényi G(n, m): `nedges` distinct undirected edges, no self-loops,
/// stored symmetrically.
pub fn erdos_renyi(n: usize, nedges: usize, seed: u64) -> Csr {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        nedges <= max_edges,
        "requested {nedges} edges but only {max_edges} possible"
    );
    let mut rng = super::seeded_rng(seed);
    let mut coo = Coo::with_capacity(n, n, nedges * 2);
    let mut seen = std::collections::HashSet::with_capacity(nedges * 2);
    let mut added = 0usize;
    while added < nedges {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            coo.push_symmetric(key.0, key.1);
            added += 1;
        }
    }
    coo.into_csr()
}

/// Uniform random bipartite pattern with exactly `nnz` distinct entries.
pub fn bipartite_uniform(nrows: usize, ncols: usize, nnz: usize, seed: u64) -> Csr {
    let cells = nrows.saturating_mul(ncols);
    assert!(nnz <= cells, "requested {nnz} entries in {cells} cells");
    let mut rng = super::seeded_rng(seed);
    let mut coo = Coo::with_capacity(nrows, ncols, nnz);
    let mut seen = std::collections::HashSet::with_capacity(nnz * 2);
    let mut added = 0usize;
    while added < nnz {
        let i = rng.gen_range(0..nrows);
        let j = rng.gen_range(0..ncols);
        if seen.insert((i, j)) {
            coo.push(i, j);
            added += 1;
        }
    }
    coo.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_exact_edge_count_and_symmetry() {
        let m = erdos_renyi(100, 500, 1);
        assert_eq!(m.nnz(), 1000); // stored both ways
        assert!(m.is_structurally_symmetric());
        for i in 0..m.nrows() {
            assert!(!m.contains(i, i as u32));
        }
    }

    #[test]
    fn er_deterministic() {
        assert_eq!(erdos_renyi(50, 100, 9), erdos_renyi(50, 100, 9));
        assert_ne!(erdos_renyi(50, 100, 9), erdos_renyi(50, 100, 10));
    }

    #[test]
    fn er_complete_graph() {
        let m = erdos_renyi(5, 10, 3);
        assert_eq!(m.nnz(), 20);
    }

    #[test]
    #[should_panic(expected = "possible")]
    fn er_rejects_impossible_count() {
        erdos_renyi(3, 4, 0);
    }

    #[test]
    fn bipartite_exact_nnz() {
        let m = bipartite_uniform(20, 30, 100, 5);
        assert_eq!(m.nnz(), 100);
        assert_eq!(m.nrows(), 20);
        assert_eq!(m.ncols(), 30);
        m.validate().unwrap();
    }

    #[test]
    fn bipartite_full() {
        let m = bipartite_uniform(4, 3, 12, 0);
        assert_eq!(m.nnz(), 12);
    }
}
