//! Deterministic synthetic pattern generators.
//!
//! These stand in for the paper's UFL/SuiteSparse downloads (see DESIGN.md
//! §4). Every generator is seeded and uses the portable in-repo PCG32
//! stream (see the `rng` crate), so the same `(parameters, seed)` pair
//! yields the identical pattern on every platform and run — experiments
//! are reproducible byte-for-byte.
//!
//! The generators cover the structural families in the paper's test-bed:
//!
//! * [`grid`] — 2D/3D mesh stencils and banded systems (af_shell10,
//!   channel, bone010, nlpkkt120, HV15R analogues): quasi-uniform degrees.
//! * [`mod@rmat`] — recursive-matrix power-law graphs (uk-2002,
//!   coPapersDBLP analogues): heavy-tailed degrees.
//! * [`bipartite`] — rectangular patterns with skewed net-size
//!   distributions (20M_movielens analogue).
//! * [`random`] — Erdős–Rényi and uniform bipartite noise, used by tests
//!   and ablations.

pub mod bipartite;
pub mod grid;
pub mod random;
pub mod rmat;

pub use bipartite::bipartite_skewed;
pub use grid::{banded, grid2d, grid3d, grid3d_18pt, grid3d_jittered, grid3d_select, kron_block};
pub use random::{bipartite_uniform, erdos_renyi};
pub use rmat::{chung_lu, rmat, RmatProbs};

use rng::Pcg32;

/// Creates the workspace-standard seeded RNG.
pub(crate) fn seeded_rng(seed: u64) -> Pcg32 {
    Pcg32::seed_from_u64(seed)
}
