//! Recursive-matrix (R-MAT) power-law graph generator.
//!
//! R-MAT recursively subdivides the adjacency matrix into quadrants with
//! probabilities `(a, b, c, d)`; skewed probabilities produce the
//! heavy-tailed degree distributions of web and co-authorship graphs
//! (uk-2002, coPapersDBLP in the paper's test-bed).

use crate::{Coo, Csr};

/// Quadrant probabilities for the R-MAT recursion.
#[derive(Clone, Copy, Debug)]
pub struct RmatProbs {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatProbs {
    /// The Graph500-style default (a=0.57, b=0.19, c=0.19, d=0.05).
    pub const GRAPH500: RmatProbs = RmatProbs {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// A milder skew producing social-network-like tails.
    pub const SOCIAL: RmatProbs = RmatProbs {
        a: 0.45,
        b: 0.22,
        c: 0.22,
    };

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates an R-MAT pattern with `1 << scale` vertices and about
/// `nedges` distinct directed edges (self-loops removed, duplicates
/// collapsed). If `symmetrize` is set the result is `A ∪ Aᵀ`, matching the
/// undirected co-authorship instances.
pub fn rmat(scale: u32, nedges: usize, probs: RmatProbs, symmetrize: bool, seed: u64) -> Csr {
    assert!(scale < 31, "rmat scale too large for u32 indices");
    assert!(probs.d() >= -1e-9, "rmat probabilities exceed 1");
    let n = 1usize << scale;
    let mut rng = super::seeded_rng(seed);
    let mut coo = Coo::with_capacity(n, n, nedges);
    // Slight per-level perturbation avoids the artificial striping of pure
    // R-MAT (standard Graph500 "noise" trick).
    for _ in 0..nedges {
        let (mut lo_i, mut lo_j) = (0usize, 0usize);
        let mut half = n >> 1;
        while half > 0 {
            let noise = 1.0 + rng.gen_range(-0.05..0.05);
            let a = probs.a * noise;
            let b = probs.b * noise;
            let c = probs.c * noise;
            let r: f64 = rng.gen_range(0.0..(a + b + c + probs.d().max(0.0)));
            if r < a {
                // top-left: nothing
            } else if r < a + b {
                lo_j += half;
            } else if r < a + b + c {
                lo_i += half;
            } else {
                lo_i += half;
                lo_j += half;
            }
            half >>= 1;
        }
        if lo_i != lo_j {
            coo.push(lo_i, lo_j);
            if symmetrize {
                coo.push(lo_j, lo_i);
            }
        }
    }
    coo.into_csr()
}

/// Chung–Lu power-law generator with an arbitrary vertex count.
///
/// Vertex weights follow `rank^(−1/(exponent−1))` (the expected-degree
/// formulation of a power law with the given `exponent`), capped so no
/// expected degree exceeds `max_deg`. About `target_nnz` distinct entries
/// are produced; self-loops are rejected and duplicates collapsed. With
/// `symmetric` the pattern is mirrored (coPapersDBLP analogue); without, a
/// directed web-graph-like square pattern results (uk-2002 analogue).
pub fn chung_lu(
    n: usize,
    target_nnz: usize,
    exponent: f64,
    max_deg: usize,
    symmetric: bool,
    seed: u64,
) -> Csr {
    assert!(n > 1);
    assert!(exponent > 1.0, "power-law exponent must exceed 1");
    let mut rng = super::seeded_rng(seed);

    let beta = 1.0 / (exponent - 1.0);
    let raw: Vec<f64> = (1..=n).map(|r| (r as f64).powf(-beta)).collect();
    let edges = if symmetric {
        target_nnz / 2
    } else {
        target_nnz
    };
    // Target expected-degree sequence: d_i = min(c · raw_i, max_deg), with
    // c fixed-point-iterated so Σ d_i ≈ 2·edges. A uniform rescale alone
    // would leave the top-vertex *share* unchanged, so the cap must clamp
    // individual weights, not the total.
    let want_sum = 2.0 * edges as f64;
    let mut c = want_sum / raw.iter().sum::<f64>();
    for _ in 0..32 {
        let sum: f64 = raw.iter().map(|&w| (c * w).min(max_deg as f64)).sum();
        if (sum - want_sum).abs() / want_sum < 1e-6 {
            break;
        }
        c *= want_sum / sum;
    }
    let weights: Vec<f64> = raw
        .iter()
        .map(|&w| (c * w).min(max_deg as f64).max(1e-3))
        .collect();

    // Cumulative distribution for endpoint sampling.
    let mut cum = Vec::with_capacity(n);
    let mut acc = 0.0;
    for &w in &weights {
        acc += w;
        cum.push(acc);
    }
    let total = acc;

    // Shuffle vertex labels so that high-degree vertices are not all at
    // low ids (matters for chunked scheduling fairness).
    let mut label: Vec<u32> = (0..n as u32).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        label.swap(i, j);
    }

    let sample = |rng: &mut rng::Pcg32| -> usize {
        let x: f64 = rng.gen_range(0.0..total);
        match cum.binary_search_by(|probe| probe.partial_cmp(&x).unwrap()) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(n - 1)
    };

    let mut coo = Coo::with_capacity(n, n, target_nnz + target_nnz / 8);
    for _ in 0..edges {
        let u = sample(&mut rng);
        let v = sample(&mut rng);
        if u == v {
            continue;
        }
        let (lu, lv) = (label[u] as usize, label[v] as usize);
        coo.push(lu, lv);
        if symmetric {
            coo.push(lv, lu);
        }
    }
    coo.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DegreeStats;

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(10, 5000, RmatProbs::GRAPH500, false, 7);
        let b = rmat(10, 5000, RmatProbs::GRAPH500, false, 7);
        assert_eq!(a, b);
        assert_ne!(a, rmat(10, 5000, RmatProbs::GRAPH500, false, 8));
    }

    #[test]
    fn symmetrized_output_is_symmetric() {
        let m = rmat(9, 4000, RmatProbs::SOCIAL, true, 3);
        assert!(m.is_structurally_symmetric());
        m.validate().unwrap();
    }

    #[test]
    fn no_self_loops() {
        let m = rmat(8, 3000, RmatProbs::GRAPH500, false, 11);
        for i in 0..m.nrows() {
            assert!(!m.contains(i, i as u32));
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // Power-law graphs have max degree far above the mean.
        let m = rmat(12, 40_000, RmatProbs::GRAPH500, true, 5);
        let s = DegreeStats::rows(&m);
        assert!(
            s.max as f64 > 8.0 * s.mean,
            "expected heavy tail: max={} mean={}",
            s.max,
            s.mean
        );
    }

    #[test]
    fn edge_count_within_budget() {
        let m = rmat(10, 10_000, RmatProbs::GRAPH500, false, 2);
        assert!(m.nnz() <= 10_000);
        assert!(m.nnz() > 5_000, "too many duplicates: {}", m.nnz());
    }

    #[test]
    fn chung_lu_symmetric_and_deterministic() {
        let a = chung_lu(1000, 20_000, 2.2, 400, true, 6);
        let b = chung_lu(1000, 20_000, 2.2, 400, true, 6);
        assert_eq!(a, b);
        assert!(a.is_structurally_symmetric());
        a.validate().unwrap();
    }

    #[test]
    fn chung_lu_heavy_tail_with_cap() {
        let m = chung_lu(5000, 100_000, 2.0, 800, true, 12);
        let s = DegreeStats::rows(&m);
        assert!(s.max as f64 > 5.0 * s.mean, "max {} mean {}", s.max, s.mean);
        // Soft cap: sampled degree may exceed expected degree a bit.
        assert!(s.max <= 1000, "cap violated badly: {}", s.max);
    }

    #[test]
    fn chung_lu_directed_square() {
        let m = chung_lu(800, 10_000, 2.1, 300, false, 3);
        assert_eq!(m.nrows(), m.ncols());
        for i in 0..m.nrows() {
            assert!(!m.contains(i, i as u32));
        }
    }
}
