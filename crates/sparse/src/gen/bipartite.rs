//! Skewed bipartite (rating-matrix) generator.

use rng::Pcg32;

use crate::{Coo, Csr};

/// Generates a rectangular pattern whose *row* (net) sizes follow a
/// truncated Zipf-like distribution — the structural signature of rating
/// matrices such as MovieLens, where a few blockbuster movies are rated by
/// a large fraction of all users.
///
/// * `nrows` — number of nets (e.g. movies),
/// * `ncols` — number of vertices to be colored (e.g. users),
/// * `target_nnz` — approximate number of entries,
/// * `exponent` — Zipf exponent for the net-size distribution (≈1.0 for
///   rating data),
/// * `max_row` — cap on the largest net (Table II's "max column degree"),
///
/// Row sizes are drawn proportional to `rank^(−exponent)`, rescaled to hit
/// `target_nnz`, clamped to `[1, min(max_row, ncols)]`; members of each row
/// are sampled without replacement. Rows are randomly shuffled so the big
/// nets are not clustered at low ids (which would bias chunked scheduling).
pub fn bipartite_skewed(
    nrows: usize,
    ncols: usize,
    target_nnz: usize,
    exponent: f64,
    max_row: usize,
    seed: u64,
) -> Csr {
    assert!(nrows > 0 && ncols > 0);
    let mut rng = super::seeded_rng(seed);
    let max_row = max_row.min(ncols).max(1);

    // Zipf weights over ranks 1..=nrows.
    let weights: Vec<f64> = (1..=nrows).map(|r| (r as f64).powf(-exponent)).collect();
    let total_w: f64 = weights.iter().sum();
    let scale = target_nnz as f64 / total_w;

    // Assign ranks to row ids in shuffled order.
    let mut order: Vec<usize> = (0..nrows).collect();
    rng.shuffle(&mut order);

    let mut sizes = vec![0usize; nrows];
    for (rank, &row) in order.iter().enumerate() {
        let want = (weights[rank] * scale).round() as usize;
        sizes[row] = want.clamp(1, max_row);
    }

    let mut coo = Coo::with_capacity(nrows, ncols, sizes.iter().sum());
    let mut stamp = vec![u32::MAX; ncols];
    for (row, &size) in sizes.iter().enumerate() {
        // Sample `size` distinct columns. For rows that cover most of the
        // column range, sampling with a stamp array stays O(size) expected.
        let mut picked = 0usize;
        while picked < size {
            let j = rng.gen_range(0..ncols);
            if stamp[j] != row as u32 {
                stamp[j] = row as u32;
                coo.push(row, j);
                picked += 1;
            }
        }
    }
    coo.into_csr()
}

/// Samples an index from a discrete cumulative distribution (used by tests
/// and downstream crates that build custom skews).
pub struct Cdf {
    cum: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from non-negative weights.
    ///
    /// # Panics
    /// Panics if weights are empty or sum to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0);
            acc += w;
            cum.push(acc);
        }
        assert!(acc > 0.0, "weights sum to zero");
        Self { cum }
    }

    /// Draws one index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut Pcg32) -> usize {
        let total = *self.cum.last().unwrap();
        let x = rng.gen_range(0.0..total);
        match self
            .cum
            .binary_search_by(|probe| probe.partial_cmp(&x).unwrap())
        {
            Ok(i) => i + 1,
            Err(i) => i,
        }
        .min(self.cum.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DegreeStats;

    #[test]
    fn shape_and_determinism() {
        let a = bipartite_skewed(200, 1000, 5000, 1.0, 400, 9);
        let b = bipartite_skewed(200, 1000, 5000, 1.0, 400, 9);
        assert_eq!(a, b);
        assert_eq!(a.nrows(), 200);
        assert_eq!(a.ncols(), 1000);
        a.validate().unwrap();
    }

    #[test]
    fn nnz_near_target() {
        let m = bipartite_skewed(500, 2000, 20_000, 1.0, 1500, 4);
        let nnz = m.nnz() as f64;
        assert!(
            (nnz - 20_000.0).abs() / 20_000.0 < 0.25,
            "nnz {} too far from target",
            nnz
        );
    }

    #[test]
    fn row_sizes_are_heavy_tailed_and_capped() {
        let m = bipartite_skewed(300, 5000, 30_000, 1.1, 900, 17);
        let s = DegreeStats::rows(&m);
        assert!(s.max <= 900);
        assert!(s.min >= 1);
        assert!(s.max as f64 > 3.0 * s.mean, "max {} mean {}", s.max, s.mean);
    }

    #[test]
    fn rows_have_distinct_columns() {
        let m = bipartite_skewed(50, 60, 2000, 0.8, 60, 23);
        m.validate().unwrap(); // strict ordering implies distinct
    }

    #[test]
    fn cdf_sampling_is_in_range() {
        let cdf = Cdf::new(&[1.0, 0.0, 3.0]);
        let mut rng = crate::gen::seeded_rng(0);
        for _ in 0..100 {
            let i = cdf.sample(&mut rng);
            assert!(i < 3);
            assert_ne!(i, 1, "zero-weight bucket sampled");
        }
    }

    #[test]
    #[should_panic]
    fn cdf_rejects_zero_total() {
        Cdf::new(&[0.0, 0.0]);
    }
}
