//! Mesh/stencil and banded generators (quasi-uniform degree families).

use crate::{Coo, Csr};

/// 2D grid with a `(2r+1)²−1`-point neighborhood (Moore neighborhood of
/// radius `r`), excluding the diagonal. Structurally symmetric.
///
/// `radius = 1` gives the classic 8-point stencil; with the diagonal it
/// would be the 9-point stencil.
pub fn grid2d(nx: usize, ny: usize, radius: usize) -> Csr {
    let n = nx * ny;
    let r = radius as isize;
    let mut coo = Coo::with_capacity(n, n, n * (2 * radius + 1).pow(2));
    for x in 0..nx as isize {
        for y in 0..ny as isize {
            let u = (x * ny as isize + y) as usize;
            for dx in -r..=r {
                for dy in -r..=r {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let (vx, vy) = (x + dx, y + dy);
                    if vx < 0 || vy < 0 || vx >= nx as isize || vy >= ny as isize {
                        continue;
                    }
                    let v = (vx * ny as isize + vy) as usize;
                    coo.push(u, v);
                }
            }
        }
    }
    coo.into_csr()
}

/// 3D grid with a Moore neighborhood of radius `r`, excluding the diagonal.
/// Structurally symmetric. `radius = 1` ⇒ up to 26 neighbors.
pub fn grid3d(nx: usize, ny: usize, nz: usize, radius: usize) -> Csr {
    let n = nx * ny * nz;
    let r = radius as isize;
    let mut coo = Coo::with_capacity(n, n, n * 27);
    let idx = |x: isize, y: isize, z: isize| -> usize {
        ((x * ny as isize + y) * nz as isize + z) as usize
    };
    for x in 0..nx as isize {
        for y in 0..ny as isize {
            for z in 0..nz as isize {
                let u = idx(x, y, z);
                for dx in -r..=r {
                    for dy in -r..=r {
                        for dz in -r..=r {
                            if dx == 0 && dy == 0 && dz == 0 {
                                continue;
                            }
                            let (vx, vy, vz) = (x + dx, y + dy, z + dz);
                            if vx < 0
                                || vy < 0
                                || vz < 0
                                || vx >= nx as isize
                                || vy >= ny as isize
                                || vz >= nz as isize
                            {
                                continue;
                            }
                            coo.push(u, idx(vx, vy, vz));
                        }
                    }
                }
            }
        }
    }
    coo.into_csr()
}

/// Symmetric banded pattern: `(i, j)` present for `0 < |i−j| ≤ half_bw`
/// with probability `fill`, mirrored. `fill = 1.0` gives a dense band
/// (af_shell-like shell meshes have nearly full narrow bands).
pub fn banded(n: usize, half_bw: usize, fill: f64, seed: u64) -> Csr {
    let mut rng = super::seeded_rng(seed);
    let mut coo = Coo::with_capacity(n, n, n * half_bw);
    for i in 0..n {
        for j in (i + 1)..(i + half_bw + 1).min(n) {
            if fill >= 1.0 || rng.gen_bool(fill) {
                coo.push_symmetric(i, j);
            }
        }
    }
    coo.into_csr()
}

/// 3D grid with an arbitrary neighborhood predicate: `keep(dx, dy, dz)`
/// decides which offsets within `radius` are neighbors. The predicate must
/// be symmetric (`keep(d) == keep(-d)`) for the result to be structurally
/// symmetric; `(0,0,0)` is always excluded.
pub fn grid3d_select(
    nx: usize,
    ny: usize,
    nz: usize,
    radius: usize,
    keep: impl Fn(isize, isize, isize) -> bool,
) -> Csr {
    let n = nx * ny * nz;
    let r = radius as isize;
    let mut offsets = Vec::new();
    for dx in -r..=r {
        for dy in -r..=r {
            for dz in -r..=r {
                if (dx, dy, dz) != (0, 0, 0) && keep(dx, dy, dz) {
                    offsets.push((dx, dy, dz));
                }
            }
        }
    }
    let mut coo = Coo::with_capacity(n, n, n * offsets.len());
    let idx = |x: isize, y: isize, z: isize| -> usize {
        ((x * ny as isize + y) * nz as isize + z) as usize
    };
    for x in 0..nx as isize {
        for y in 0..ny as isize {
            for z in 0..nz as isize {
                let u = idx(x, y, z);
                for &(dx, dy, dz) in &offsets {
                    let (vx, vy, vz) = (x + dx, y + dy, z + dz);
                    if vx < 0
                        || vy < 0
                        || vz < 0
                        || vx >= nx as isize
                        || vy >= ny as isize
                        || vz >= nz as isize
                    {
                        continue;
                    }
                    coo.push(u, idx(vx, vy, vz));
                }
            }
        }
    }
    coo.into_csr()
}

/// The classic 18-point stencil (radius-1 Moore neighborhood minus the 8
/// cube corners) — the `channel` flow-mesh analogue.
pub fn grid3d_18pt(nx: usize, ny: usize, nz: usize) -> Csr {
    grid3d_select(nx, ny, nz, 1, |dx, dy, dz| {
        dx.abs() + dy.abs() + dz.abs() <= 2
    })
}

/// Radius-1 Moore mesh plus each radius-2 shell edge with probability `p`
/// (mirrored, so the result stays structurally symmetric).
///
/// Tuning `p` moves the mean degree between 26 and ~124 with a binomial
/// spread — how we approximate meshes whose degree distribution has a
/// nonzero standard deviation (bone010, HV15R analogues).
pub fn grid3d_jittered(nx: usize, ny: usize, nz: usize, p: f64, seed: u64) -> Csr {
    let mut rng = super::seeded_rng(seed);
    let n = nx * ny * nz;
    // Radius-2 shell offsets, upper half only (lexicographically positive)
    // so each unordered pair is decided by one coin flip.
    let mut shell = Vec::new();
    for dx in -2isize..=2 {
        for dy in -2isize..=2 {
            for dz in -2isize..=2 {
                let inf = dx.abs().max(dy.abs()).max(dz.abs());
                if inf == 2 && (dx, dy, dz) > (0, 0, 0) {
                    shell.push((dx, dy, dz));
                }
            }
        }
    }
    let idx = |x: isize, y: isize, z: isize| -> usize {
        ((x * ny as isize + y) * nz as isize + z) as usize
    };
    let mut coo = Coo::with_capacity(n, n, n * (26 + (shell.len() as f64 * 2.0 * p) as usize));
    for x in 0..nx as isize {
        for y in 0..ny as isize {
            for z in 0..nz as isize {
                let u = idx(x, y, z);
                // full radius-1 Moore
                for dx in -1isize..=1 {
                    for dy in -1isize..=1 {
                        for dz in -1isize..=1 {
                            if (dx, dy, dz) == (0, 0, 0) {
                                continue;
                            }
                            let (vx, vy, vz) = (x + dx, y + dy, z + dz);
                            if vx < 0
                                || vy < 0
                                || vz < 0
                                || vx >= nx as isize
                                || vy >= ny as isize
                                || vz >= nz as isize
                            {
                                continue;
                            }
                            coo.push(u, idx(vx, vy, vz));
                        }
                    }
                }
                // sampled radius-2 shell, mirrored
                for &(dx, dy, dz) in &shell {
                    let (vx, vy, vz) = (x + dx, y + dy, z + dz);
                    if vx < 0
                        || vy < 0
                        || vz < 0
                        || vx >= nx as isize
                        || vy >= ny as isize
                        || vz >= nz as isize
                    {
                        continue;
                    }
                    if rng.gen_bool(p) {
                        coo.push_symmetric(u, idx(vx, vy, vz));
                    }
                }
            }
        }
    }
    coo.into_csr()
}

/// Kronecker block expansion: each vertex of `base` becomes a group of
/// `block` vertices; two vertices are adjacent iff their groups are equal
/// or adjacent in `base` (minus self-loops).
///
/// This is how multi-degree-of-freedom finite-element matrices arise from
/// a node mesh: a 3-DOF elasticity problem on a mesh of degree `d` yields
/// degrees `(d + 1)·3 − 1` — the structure behind matrices like bone010.
pub fn kron_block(base: &Csr, block: usize) -> Csr {
    assert!(block >= 1);
    assert_eq!(base.nrows(), base.ncols(), "kron_block needs a square base");
    let n = base.nrows() * block;
    let mut coo = Coo::with_capacity(n, n, (base.nnz() + base.nrows()) * block * block);
    for g in 0..base.nrows() {
        // intra-group dense block (no self-loops)
        for a in 0..block {
            for b in 0..block {
                if a != b {
                    coo.push(g * block + a, g * block + b);
                }
            }
        }
        // inter-group blocks along base edges
        for &h in base.row(g) {
            let h = h as usize;
            for a in 0..block {
                for b in 0..block {
                    coo.push(g * block + a, h * block + b);
                }
            }
        }
    }
    coo.into_csr()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DegreeStats;

    #[test]
    fn grid2d_radius1_interior_degree_is_8() {
        let m = grid2d(5, 5, 1);
        assert!(m.is_structurally_symmetric());
        // interior vertex (2,2) = index 12
        assert_eq!(m.row_len(12), 8);
        // corner vertex (0,0)
        assert_eq!(m.row_len(0), 3);
        m.validate().unwrap();
    }

    #[test]
    fn grid2d_radius2_max_degree_24() {
        let m = grid2d(7, 7, 2);
        let s = DegreeStats::rows(&m);
        assert_eq!(s.max, 24);
    }

    #[test]
    fn grid3d_radius1_interior_degree_is_26() {
        let m = grid3d(4, 4, 4, 1);
        assert!(m.is_structurally_symmetric());
        let s = DegreeStats::rows(&m);
        assert_eq!(s.max, 26);
        assert_eq!(s.min, 7); // corner
        m.validate().unwrap();
    }

    #[test]
    fn banded_full_fill_degrees() {
        let m = banded(10, 3, 1.0, 1);
        assert!(m.is_structurally_symmetric());
        let s = DegreeStats::rows(&m);
        assert_eq!(s.max, 6); // interior: 3 on each side
        assert_eq!(s.min, 3); // end rows
    }

    #[test]
    fn banded_partial_fill_is_deterministic() {
        let a = banded(50, 5, 0.5, 42);
        let b = banded(50, 5, 0.5, 42);
        assert_eq!(a, b);
        let c = banded(50, 5, 0.5, 43);
        assert_ne!(a, c);
        assert!(a.is_structurally_symmetric());
    }

    #[test]
    fn grid3d_18pt_interior_degree() {
        let m = grid3d_18pt(5, 5, 5);
        assert!(m.is_structurally_symmetric());
        let s = DegreeStats::rows(&m);
        assert_eq!(s.max, 18);
    }

    #[test]
    fn grid3d_select_symmetric_predicate() {
        // von Neumann (6-point) stencil
        let m = grid3d_select(4, 4, 4, 1, |dx, dy, dz| dx.abs() + dy.abs() + dz.abs() == 1);
        assert!(m.is_structurally_symmetric());
        let s = DegreeStats::rows(&m);
        assert_eq!(s.max, 6);
        assert_eq!(s.min, 3);
    }

    #[test]
    fn grid3d_jittered_bounds_and_symmetry() {
        let m = grid3d_jittered(6, 6, 6, 0.3, 21);
        assert!(m.is_structurally_symmetric());
        let s = DegreeStats::rows(&m);
        assert!(s.max >= 26, "expected extras beyond Moore: {}", s.max);
        assert!(s.max <= 124);
        assert!(s.std_dev > 1.0, "jitter should add spread: {}", s.std_dev);
        assert_eq!(grid3d_jittered(6, 6, 6, 0.3, 21), m);
    }

    #[test]
    fn grid3d_jittered_zero_p_is_moore() {
        let a = grid3d_jittered(4, 4, 4, 0.0, 1);
        let b = grid3d(4, 4, 4, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn kron_block_degrees_follow_dof_formula() {
        // 2D Moore grid (interior degree 8) with 3 DOF per node:
        // expanded interior degree = (8 + 1) * 3 - 1 = 26.
        let base = grid2d(6, 6, 1);
        let m = kron_block(&base, 3);
        assert_eq!(m.nrows(), 36 * 3);
        assert!(m.is_structurally_symmetric());
        let s = DegreeStats::rows(&m);
        assert_eq!(s.max, (8 + 1) * 3 - 1);
        // corner node: degree 3 → (3 + 1) * 3 - 1 = 11
        assert_eq!(s.min, 11);
        m.validate().unwrap();
    }

    #[test]
    fn kron_block_of_one_is_base_plus_nothing() {
        let base = grid2d(4, 4, 1);
        assert_eq!(kron_block(&base, 1), base);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn kron_block_rejects_rectangular() {
        let rect = Csr::from_parts(1, 2, vec![0, 1], vec![1]);
        kron_block(&rect, 2);
    }

    #[test]
    fn degenerate_sizes() {
        let m = grid2d(1, 1, 1);
        assert_eq!(m.nnz(), 0);
        let m = grid3d(1, 1, 2, 1);
        assert_eq!(m.nnz(), 2);
        let m = banded(1, 4, 1.0, 0);
        assert_eq!(m.nnz(), 0);
    }
}
