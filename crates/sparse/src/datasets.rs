//! Registry of the paper's eight test instances.
//!
//! Table II of the paper characterizes each UFL matrix by shape, nonzero
//! count, maximum net size and net-size spread. We cannot ship the UFL
//! downloads, so each dataset maps to a seeded synthetic recipe from
//! [`crate::gen`] that reproduces the *structural family* (mesh vs band vs
//! power-law vs skewed bipartite) and the degree signature at a configurable
//! scale (see DESIGN.md §4 for the substitution argument).
//!
//! `scale = 1.0` targets the paper's full sizes (hundreds of millions of
//! nonzeros — only for big-memory machines); the harness defaults to a much
//! smaller scale and reports it alongside every measurement.

use crate::gen;
use crate::Csr;

/// The paper's Table II row for a dataset (verbatim paper numbers, used by
/// EXPERIMENTS.md to report paper-vs-measured).
#[derive(Clone, Copy, Debug)]
pub struct PaperSignature {
    /// Number of rows (nets for BGPC).
    pub rows: usize,
    /// Number of columns (vertices colored in BGPC).
    pub cols: usize,
    /// Stored nonzeros (as listed; symmetric instances list one triangle).
    pub nnz: usize,
    /// Maximum net cardinality — the trivial lower bound on colors.
    pub max_net: usize,
    /// Standard deviation of the net-size distribution.
    pub std_dev: f64,
    /// Sequential BGPC time (s), natural order.
    pub seq_time_natural: f64,
    /// Colors used by sequential BGPC, natural order.
    pub colors_natural: usize,
    /// Sequential BGPC time (s), smallest-last order.
    pub seq_time_sl: f64,
    /// Colors used by sequential BGPC, smallest-last order.
    pub colors_sl: usize,
}

/// One of the paper's eight test matrices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// MovieLens-20M rating matrix (movies × users) — skewed bipartite.
    Movielens20M,
    /// `af_shell10` — sheet-metal-forming shell mesh, narrow full band.
    AfShell10,
    /// `bone010` — trabecular-bone micro-FE 3D mesh.
    Bone010,
    /// `channel-500x100x100-b050` — channel-flow 3D mesh (18-pt stencil).
    Channel,
    /// `coPapersDBLP` — co-authorship graph, heavy-tailed, symmetric.
    CoPapersDblp,
    /// `HV15R` — CFD of a 3D engine fan; high, quasi-uniform degrees.
    Hv15r,
    /// `nlpkkt120` — nonlinear-programming KKT mesh.
    Nlpkkt120,
    /// `uk-2002` — web crawl of the .uk domain, heavy-tailed, directed.
    Uk2002,
}

impl Dataset {
    /// All eight datasets in the paper's Table II order.
    pub const ALL: [Dataset; 8] = [
        Dataset::Movielens20M,
        Dataset::AfShell10,
        Dataset::Bone010,
        Dataset::Channel,
        Dataset::CoPapersDblp,
        Dataset::Hv15r,
        Dataset::Nlpkkt120,
        Dataset::Uk2002,
    ];

    /// The five structurally symmetric datasets used for D2GC (Table II's
    /// last column).
    pub const D2GC: [Dataset; 5] = [
        Dataset::AfShell10,
        Dataset::Bone010,
        Dataset::Channel,
        Dataset::CoPapersDblp,
        Dataset::Nlpkkt120,
    ];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Movielens20M => "20M_movielens",
            Dataset::AfShell10 => "af_shell10",
            Dataset::Bone010 => "bone010",
            Dataset::Channel => "channel",
            Dataset::CoPapersDblp => "coPapersDBLP",
            Dataset::Hv15r => "HV15R",
            Dataset::Nlpkkt120 => "nlpkkt120",
            Dataset::Uk2002 => "uk-2002",
        }
    }

    /// Parses a paper-style name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Dataset> {
        let lower = name.to_ascii_lowercase();
        Dataset::ALL
            .into_iter()
            .find(|d| d.name().to_ascii_lowercase() == lower)
    }

    /// Whether the instance is structurally symmetric (usable for D2GC).
    pub fn symmetric(&self) -> bool {
        Dataset::D2GC.contains(self)
    }

    /// The paper's Table II numbers for this dataset.
    pub fn paper(&self) -> PaperSignature {
        match self {
            Dataset::Movielens20M => PaperSignature {
                rows: 26_744,
                cols: 138_493,
                nnz: 20_000_263,
                max_net: 67_310,
                std_dev: 3_085.81,
                seq_time_natural: 587.15,
                colors_natural: 70_815,
                seq_time_sl: 1_236.33,
                colors_sl: 68_077,
            },
            Dataset::AfShell10 => PaperSignature {
                rows: 1_508_065,
                cols: 1_508_065,
                nnz: 27_090_195,
                max_net: 35,
                std_dev: 1.00,
                seq_time_natural: 3.39,
                colors_natural: 50,
                seq_time_sl: 4.13,
                colors_sl: 45,
            },
            Dataset::Bone010 => PaperSignature {
                rows: 986_703,
                cols: 986_703,
                nnz: 36_326_514,
                max_net: 63,
                std_dev: 7.61,
                seq_time_natural: 4.28,
                colors_natural: 132,
                seq_time_sl: 6.86,
                colors_sl: 110,
            },
            Dataset::Channel => PaperSignature {
                rows: 4_802_000,
                cols: 4_802_000,
                nnz: 42_681_372,
                max_net: 18,
                std_dev: 1.00,
                seq_time_natural: 2.57,
                colors_natural: 39,
                seq_time_sl: 4.75,
                colors_sl: 36,
            },
            Dataset::CoPapersDblp => PaperSignature {
                rows: 540_486,
                cols: 540_486,
                nnz: 15_245_729,
                max_net: 3_299,
                std_dev: 66.23,
                seq_time_natural: 6.73,
                colors_natural: 3_321,
                seq_time_sl: 9.68,
                colors_sl: 3_300,
            },
            Dataset::Hv15r => PaperSignature {
                rows: 2_017_169,
                cols: 2_017_169,
                nnz: 283_073_458,
                max_net: 484,
                std_dev: 53.95,
                seq_time_natural: 66.94,
                colors_natural: 508,
                seq_time_sl: 87.01,
                colors_sl: 484,
            },
            Dataset::Nlpkkt120 => PaperSignature {
                rows: 3_542_400,
                cols: 3_542_400,
                nnz: 50_194_096,
                max_net: 28,
                std_dev: 3.00,
                seq_time_natural: 4.22,
                colors_natural: 59,
                seq_time_sl: 7.88,
                colors_sl: 49,
            },
            Dataset::Uk2002 => PaperSignature {
                rows: 18_520_486,
                cols: 18_520_486,
                nnz: 298_113_762,
                max_net: 2_450,
                std_dev: 27.51,
                seq_time_natural: 32.66,
                colors_natural: 2_450,
                seq_time_sl: 41.23,
                colors_sl: 2_450,
            },
        }
    }

    /// Builds the synthetic analogue at the given `scale` (fraction of the
    /// paper's vertex count, clamped to a small floor so tiny scales still
    /// produce meaningful instances).
    pub fn build(&self, scale: f64, seed: u64) -> Instance {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let sig = self.paper();
        let matrix = match self {
            Dataset::Movielens20M => {
                // Rating matrices scale like a *density* problem: halving
                // the entry count while keeping the mean ratings-per-movie
                // requires shrinking both dimensions by √scale, not scale —
                // otherwise small instances run out of distinct users for
                // the blockbuster rows and the skew collapses.
                let nrows = sqrt_scaled(sig.rows, scale, 64);
                let ncols = sqrt_scaled(sig.cols, scale, 256);
                let nnz = scaled(sig.nnz, scale, 4 * ncols).min(nrows * ncols / 3);
                // Paper max net ≈ 48.6% of the column count.
                let max_row = ((ncols as f64) * 0.486).ceil() as usize;
                gen::bipartite_skewed(nrows, ncols, nnz, 0.95, max_row, seed)
            }
            Dataset::AfShell10 => {
                let n = scaled(sig.rows, scale, 256);
                gen::banded(n, 17, 1.0, seed)
            }
            Dataset::Bone010 => {
                let side = cube_side(scaled(sig.rows, scale, 512));
                gen::grid3d_jittered(side, side, side, 0.12, seed)
            }
            Dataset::Channel => {
                let n = scaled(sig.rows, scale, 512);
                // The real mesh is an elongated channel (500×100×100).
                let base = cube_side(n / 5);
                gen::grid3d_18pt(5 * base, base.max(2), base.max(2))
            }
            Dataset::CoPapersDblp => {
                let n = scaled(sig.rows, scale, 512);
                let nnz = 2 * scaled(sig.nnz, scale, 8 * n);
                let cap = sqrt_scaled(sig.max_net, scale, 48);
                gen::chung_lu(n, nnz, 2.3, cap, true, seed)
            }
            Dataset::Hv15r => {
                let side = cube_side(scaled(sig.rows, scale, 512));
                gen::grid3d(side, side, side, 2)
            }
            Dataset::Nlpkkt120 => {
                let side = cube_side(scaled(sig.rows, scale, 512));
                gen::grid3d(side, side, side, 1)
            }
            Dataset::Uk2002 => {
                let n = scaled(sig.rows, scale, 512);
                let nnz = scaled(sig.nnz, scale, 8 * n);
                let cap = sqrt_scaled(sig.max_net, scale, 48);
                gen::chung_lu(n, nnz, 2.5, cap, false, seed)
            }
        };
        Instance {
            dataset: *self,
            scale,
            seed,
            matrix,
        }
    }
}

/// A generated instance together with its provenance.
#[derive(Clone, Debug)]
pub struct Instance {
    /// Which dataset this instance models.
    pub dataset: Dataset,
    /// Scale factor used to build it.
    pub scale: f64,
    /// RNG seed used to build it.
    pub seed: u64,
    /// The pattern: rows are nets, columns are the vertices BGPC colors.
    pub matrix: Csr,
}

fn scaled(full: usize, scale: f64, floor: usize) -> usize {
    ((full as f64 * scale) as usize).max(floor)
}

/// Power-law maximum degrees grow roughly like n^(1/(α−1)); scaling the cap
/// with √scale preserves the heavy tail at small scales instead of
/// flattening it.
fn sqrt_scaled(full: usize, scale: f64, floor: usize) -> usize {
    ((full as f64 * scale.sqrt()) as usize).max(floor)
}

fn cube_side(n: usize) -> usize {
    (n as f64).cbrt().round().max(2.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DegreeStats;

    const TEST_SCALE: f64 = 0.004;

    #[test]
    fn all_datasets_build_and_validate() {
        for d in Dataset::ALL {
            let inst = d.build(TEST_SCALE, 1);
            inst.matrix.validate().unwrap();
            assert!(inst.matrix.nnz() > 0, "{} is empty", d.name());
        }
    }

    #[test]
    fn d2gc_instances_are_symmetric() {
        for d in Dataset::D2GC {
            assert!(d.symmetric());
            let inst = d.build(TEST_SCALE, 1);
            assert!(
                inst.matrix.is_structurally_symmetric(),
                "{} analogue not symmetric",
                d.name()
            );
        }
    }

    #[test]
    fn non_d2gc_instances_flagged() {
        for d in [Dataset::Movielens20M, Dataset::Hv15r, Dataset::Uk2002] {
            assert!(!d.symmetric());
        }
    }

    #[test]
    fn names_roundtrip() {
        for d in Dataset::ALL {
            assert_eq!(Dataset::from_name(d.name()), Some(d));
            assert_eq!(Dataset::from_name(&d.name().to_uppercase()), Some(d));
        }
        assert_eq!(Dataset::from_name("nope"), None);
    }

    #[test]
    fn build_is_deterministic() {
        let a = Dataset::CoPapersDblp.build(TEST_SCALE, 7);
        let b = Dataset::CoPapersDblp.build(TEST_SCALE, 7);
        assert_eq!(a.matrix, b.matrix);
    }

    #[test]
    fn mesh_families_have_low_degree_spread() {
        for d in [Dataset::AfShell10, Dataset::Channel, Dataset::Nlpkkt120] {
            let inst = d.build(TEST_SCALE, 1);
            let s = DegreeStats::rows(&inst.matrix);
            assert!(
                s.std_dev < 0.35 * s.mean,
                "{}: std {} vs mean {}",
                d.name(),
                s.std_dev,
                s.mean
            );
        }
    }

    #[test]
    fn powerlaw_families_have_heavy_tails() {
        for d in [Dataset::CoPapersDblp, Dataset::Uk2002] {
            let inst = d.build(TEST_SCALE, 1);
            let s = DegreeStats::rows(&inst.matrix);
            assert!(
                s.max as f64 > 4.0 * s.mean,
                "{}: max {} vs mean {}",
                d.name(),
                s.max,
                s.mean
            );
        }
    }

    #[test]
    fn movielens_is_rectangular_and_skewed() {
        let inst = Dataset::Movielens20M.build(TEST_SCALE, 1);
        assert!(inst.matrix.ncols() > inst.matrix.nrows());
        let s = DegreeStats::rows(&inst.matrix);
        assert!(s.max as f64 > 10.0 * s.mean);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_rejected() {
        Dataset::Bone010.build(0.0, 1);
    }

    #[test]
    fn paper_signatures_match_table2_totals() {
        // Spot-check a few verbatim Table II numbers.
        assert_eq!(Dataset::Movielens20M.paper().max_net, 67_310);
        assert_eq!(Dataset::Uk2002.paper().colors_natural, 2_450);
        assert_eq!(Dataset::Channel.paper().rows, 4_802_000);
    }
}
