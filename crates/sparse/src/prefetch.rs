//! Software prefetch hints for the irregular CSR gathers.
//!
//! The coloring kernels walk adjacency rows whose addresses are
//! data-dependent (the next work item's row is unknown to the hardware
//! prefetcher), so the kernels issue explicit hints a few items ahead.
//! On x86-64 this lowers to `prefetcht0`; on other targets it compiles
//! to nothing — the hint is purely advisory and never changes semantics.

/// Hints that `slice[idx]` will be read soon. Out-of-range indices are
/// ignored (a hint for a live allocation's one-past-end would be harmless,
/// but bounding keeps the call trivially safe).
#[inline(always)]
pub fn prefetch_read<T>(slice: &[T], idx: usize) {
    #[cfg(target_arch = "x86_64")]
    {
        if idx < slice.len() {
            // SAFETY: idx is in bounds, so the pointer is within the
            // allocation; prefetch has no observable effect besides cache
            // state regardless.
            unsafe {
                core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                    slice.as_ptr().add(idx) as *const i8,
                );
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (slice, idx);
    }
}

/// Hints that the cache line behind `ptr` will be read soon.
///
/// The raw-pointer variant for callers that already hold an in-bounds
/// address (the vectorized gather kernels hint `colors[pin]` for the next
/// lane block). The pointer must lie within (or one past) a live
/// allocation — prefetching has no observable effect besides cache state,
/// but wild addresses are still UB to form. Compiles to `prefetcht0` on
/// x86-64 and to nothing elsewhere.
#[inline(always)]
pub fn prefetch_ptr<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: caller guarantees the pointer is derived from a live
        // allocation; the intrinsic itself never faults.
        unsafe {
            core::arch::x86_64::_mm_prefetch::<{ core::arch::x86_64::_MM_HINT_T0 }>(
                ptr as *const i8,
            );
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_never_faults() {
        let data = vec![1u32, 2, 3];
        for i in 0..8 {
            prefetch_read(&data, i);
        }
        prefetch_read::<u64>(&[], 0);
        prefetch_ptr(data.as_ptr());
    }
}
