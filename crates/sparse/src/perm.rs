//! Locality-aware relabelings for coloring instances.
//!
//! The BGPC kernels gather over CSR adjacency in whatever vertex order the
//! instance shipped with; on hub-heavy patterns (RMAT, rating matrices)
//! consecutive vertex ids share almost no cache lines. Relabeling the
//! columns — degree-sort or a BFS/Cuthill–McKee sweep — packs vertices
//! that co-occur in nets into nearby ids, so the gathers hit warmer lines.
//!
//! These are *relabelings*, not processing orders: the matrix itself is
//! permuted (`Csr::permute_columns` / `Csr::permute_symmetric`), the
//! coloring runs on the relabeled instance, and [`unpermute`] maps the
//! result back so colorings are always reported in original ids. The
//! processing-order knob (`graph::Ordering`) composes on top.

use crate::csr::{Csr, CsrIndex};

/// Sentinel marking a vertex found by the current frontier but not yet
/// labeled (distinct from `u32::MAX` = "never seen").
const DISCOVERED: u32 = u32::MAX - 1;

/// Which locality relabeling to apply before coloring.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LocalityOrder {
    /// Keep the instance's native ids.
    #[default]
    None,
    /// Stable sort of columns by descending degree: hubs land together at
    /// the front, so the densest gathers share cache lines.
    Degree,
    /// Cuthill–McKee-style BFS sweep from low-degree seeds, alternating
    /// columns and rows: co-occurring columns get nearby ids, shrinking
    /// the working set of each net's gather.
    Bfs,
}

impl LocalityOrder {
    /// All relabelings, for sweep/axis enumeration.
    pub fn all() -> [LocalityOrder; 3] {
        [LocalityOrder::None, LocalityOrder::Degree, LocalityOrder::Bfs]
    }

    /// Name as used in flags and benchmark records.
    pub fn label(self) -> &'static str {
        match self {
            LocalityOrder::None => "none",
            LocalityOrder::Degree => "degree",
            LocalityOrder::Bfs => "bfs",
        }
    }

    /// Parses a relabeling name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "none" | "natural" => Some(LocalityOrder::None),
            "degree" => Some(LocalityOrder::Degree),
            "bfs" | "cm" | "rcm" => Some(LocalityOrder::Bfs),
            _ => None,
        }
    }

    /// Column permutation for a bipartite pattern: `perm[old] = new`.
    /// `None` means the identity (no relabeling requested).
    pub fn column_perm<I: CsrIndex>(self, m: &Csr<I>) -> Option<Vec<u32>> {
        match self {
            LocalityOrder::None => None,
            LocalityOrder::Degree => Some(degree_column_perm(m)),
            LocalityOrder::Bfs => Some(bfs_column_perm(m)),
        }
    }

    /// Symmetric relabeling for a square adjacency pattern (D2GC):
    /// `perm[old] = new`. `None` means the identity.
    pub fn symmetric_perm<I: CsrIndex>(self, m: &Csr<I>) -> Option<Vec<u32>> {
        match self {
            LocalityOrder::None => None,
            LocalityOrder::Degree => Some(degree_symmetric_perm(m)),
            LocalityOrder::Bfs => Some(bfs_symmetric_perm(m)),
        }
    }

    /// Applies the column relabeling: returns the permuted pattern and the
    /// permutation used (identity relabeling returns a plain clone).
    pub fn apply_columns<I: CsrIndex>(self, m: &Csr<I>) -> (Csr<I>, Option<Vec<u32>>) {
        match self.column_perm(m) {
            Some(perm) => (m.permute_columns(&perm), Some(perm)),
            None => (m.clone(), None),
        }
    }

    /// Applies the symmetric relabeling (square patterns, D2GC).
    pub fn apply_symmetric<I: CsrIndex>(self, m: &Csr<I>) -> (Csr<I>, Option<Vec<u32>>) {
        match self.symmetric_perm(m) {
            Some(perm) => (m.permute_symmetric(&perm), Some(perm)),
            None => (m.clone(), None),
        }
    }
}

/// Per-column degrees (number of rows each column appears in).
fn column_degrees<I: CsrIndex>(m: &Csr<I>) -> Vec<u32> {
    let mut deg = vec![0u32; m.ncols()];
    for &j in m.col_idx() {
        deg[j as usize] += 1;
    }
    deg
}

/// Stable descending-degree column permutation: `perm[old] = new`.
pub fn degree_column_perm<I: CsrIndex>(m: &Csr<I>) -> Vec<u32> {
    let deg = column_degrees(m);
    perm_from_sorted(&deg)
}

/// Stable descending-degree symmetric permutation for a square pattern.
pub fn degree_symmetric_perm<I: CsrIndex>(m: &Csr<I>) -> Vec<u32> {
    assert_eq!(m.nrows(), m.ncols(), "symmetric relabeling needs a square pattern");
    let deg: Vec<u32> = (0..m.nrows()).map(|i| m.row_len(i) as u32).collect();
    perm_from_sorted(&deg)
}

/// Builds `perm[old] = new` from a stable sort by descending key.
fn perm_from_sorted(key: &[u32]) -> Vec<u32> {
    let mut ids: Vec<u32> = (0..key.len() as u32).collect();
    ids.sort_by_key(|&c| std::cmp::Reverse(key[c as usize]));
    let mut perm = vec![0u32; key.len()];
    for (new, &old) in ids.iter().enumerate() {
        perm[old as usize] = new as u32;
    }
    perm
}

/// Cuthill–McKee-style column permutation of a bipartite pattern.
///
/// Sweeps breadth-first from the unvisited column of minimum degree,
/// alternating column → incident rows → their columns; newly discovered
/// columns are labeled in degree-ascending order within each frontier
/// step, the classic CM tie-break. Disconnected components are each swept
/// from their own minimum-degree seed, so the result is always a full
/// permutation.
pub fn bfs_column_perm<I: CsrIndex>(m: &Csr<I>) -> Vec<u32> {
    let ncols = m.ncols();
    let deg = column_degrees(m);
    let t = m.transpose(); // column -> incident rows
    let mut perm = vec![u32::MAX; ncols];
    let mut row_seen = vec![false; m.nrows()];
    let mut next_label = 0u32;

    // Seeds in ascending degree order; each unvisited seed starts a
    // component sweep.
    let mut seeds: Vec<u32> = (0..ncols as u32).collect();
    seeds.sort_by_key(|&c| deg[c as usize]);

    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut discovered: Vec<u32> = Vec::new();
    for seed in seeds {
        if perm[seed as usize] != u32::MAX {
            continue;
        }
        perm[seed as usize] = next_label;
        next_label += 1;
        queue.push_back(seed);
        while let Some(c) = queue.pop_front() {
            discovered.clear();
            for &r in t.row(c as usize) {
                let r = r as usize;
                if row_seen[r] {
                    continue;
                }
                row_seen[r] = true;
                for &j in m.row(r) {
                    if perm[j as usize] == u32::MAX {
                        perm[j as usize] = DISCOVERED;
                        discovered.push(j);
                    }
                }
            }
            discovered.sort_by_key(|&j| (deg[j as usize], j));
            for &j in &discovered {
                perm[j as usize] = next_label;
                next_label += 1;
                queue.push_back(j);
            }
        }
    }
    debug_assert_eq!(next_label as usize, ncols);
    perm
}

/// Cuthill–McKee permutation of a square adjacency pattern (the D2GC
/// analogue of [`bfs_column_perm`]), neighbors labeled degree-ascending.
pub fn bfs_symmetric_perm<I: CsrIndex>(m: &Csr<I>) -> Vec<u32> {
    assert_eq!(m.nrows(), m.ncols(), "symmetric relabeling needs a square pattern");
    let n = m.nrows();
    let mut perm = vec![u32::MAX; n];
    let mut next_label = 0u32;

    let mut seeds: Vec<u32> = (0..n as u32).collect();
    seeds.sort_by_key(|&v| m.row_len(v as usize));

    let mut queue: std::collections::VecDeque<u32> = std::collections::VecDeque::new();
    let mut discovered: Vec<u32> = Vec::new();
    for seed in seeds {
        if perm[seed as usize] != u32::MAX {
            continue;
        }
        perm[seed as usize] = next_label;
        next_label += 1;
        queue.push_back(seed);
        while let Some(v) = queue.pop_front() {
            discovered.clear();
            for &u in m.row(v as usize) {
                if perm[u as usize] == u32::MAX {
                    perm[u as usize] = DISCOVERED;
                    discovered.push(u);
                }
            }
            discovered.sort_by_key(|&u| (m.row_len(u as usize), u));
            for &u in &discovered {
                perm[u as usize] = next_label;
                next_label += 1;
                queue.push_back(u);
            }
        }
    }
    debug_assert_eq!(next_label as usize, n);
    perm
}

/// Inverts a permutation: `invert_perm(p)[p[i]] == i`.
pub fn invert_perm(perm: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p as usize] = i as u32;
    }
    inv
}

/// Maps per-vertex values computed on a relabeled instance back to the
/// original ids: `unpermute(v, perm)[old] == v[perm[old]]`. This is how a
/// coloring of the permuted graph becomes a coloring of the original.
pub fn unpermute<T: Copy>(values: &[T], perm: &[u32]) -> Vec<T> {
    assert_eq!(values.len(), perm.len(), "permutation length mismatch");
    perm.iter().map(|&p| values[p as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::is_permutation;

    fn rating() -> Csr {
        // 4 rows x 6 cols, col degrees: 0→1, 1→3, 2→1, 3→2, 4→0, 5→2
        Csr::from_rows(
            6,
            &[vec![1, 3], vec![0, 1, 5], vec![1, 2], vec![3, 5]],
        )
    }

    #[test]
    fn degree_perm_puts_hubs_first() {
        let m = rating();
        let perm = degree_column_perm(&m);
        assert!(is_permutation(&perm));
        // col 1 has the highest degree (3) → new id 0
        assert_eq!(perm[1], 0);
        // degree-0 col 4 goes last
        assert_eq!(perm[4], 5);
        // stable: cols 3 and 5 both have degree 2, 3 < 5 keeps their order
        assert!(perm[3] < perm[5]);
    }

    #[test]
    fn bfs_perm_is_a_permutation_and_deterministic() {
        let m = rating();
        let perm = bfs_column_perm(&m);
        assert!(is_permutation(&perm));
        assert_eq!(perm, bfs_column_perm(&m));
        // isolated col 4 still gets a label (own component)
        assert!(perm[4] < 6);
    }

    #[test]
    fn bfs_groups_connected_columns() {
        // two disconnected column groups: {0,1} and {2,3}
        let m = Csr::from_rows(4, &[vec![0, 1], vec![2, 3]]);
        let perm = bfs_column_perm(&m);
        assert!(is_permutation(&perm));
        let group_a: Vec<u32> = vec![perm[0], perm[1]];
        let group_b: Vec<u32> = vec![perm[2], perm[3]];
        // each group occupies contiguous labels
        assert_eq!((group_a.iter().max().unwrap() - group_a.iter().min().unwrap()), 1);
        assert_eq!((group_b.iter().max().unwrap() - group_b.iter().min().unwrap()), 1);
    }

    #[test]
    fn symmetric_perms_are_permutations() {
        let m = Csr::from_rows(
            4,
            &[vec![1], vec![0, 2, 3], vec![1], vec![1]],
        );
        for order in [LocalityOrder::Degree, LocalityOrder::Bfs] {
            let perm = order.symmetric_perm(&m).unwrap();
            assert!(is_permutation(&perm), "{order:?}");
        }
        // hub vertex 1 leads the degree relabeling
        assert_eq!(degree_symmetric_perm(&m)[1], 0);
        assert!(LocalityOrder::None.symmetric_perm(&m).is_none());
    }

    #[test]
    fn invert_and_unpermute_roundtrip() {
        let perm = vec![2, 0, 3, 1];
        let inv = invert_perm(&perm);
        assert_eq!(inv, vec![1, 3, 0, 2]);
        for (i, &p) in perm.iter().enumerate() {
            assert_eq!(inv[p as usize] as usize, i);
        }
        // values computed on the relabeled instance, mapped back
        let new_values = vec![10, 11, 12, 13];
        let original = unpermute(&new_values, &perm);
        assert_eq!(original, vec![12, 10, 13, 11]);
    }

    #[test]
    fn apply_columns_matches_manual_permute() {
        let m = rating();
        let (pm, perm) = LocalityOrder::Degree.apply_columns(&m);
        let perm = perm.unwrap();
        assert_eq!(pm, m.permute_columns(&perm));
        let (id, none) = LocalityOrder::None.apply_columns(&m);
        assert_eq!(id, m);
        assert!(none.is_none());
    }

    #[test]
    fn labels_roundtrip_through_from_name() {
        for order in LocalityOrder::all() {
            assert_eq!(LocalityOrder::from_name(order.label()), Some(order));
        }
        assert_eq!(LocalityOrder::from_name("zzz"), None);
    }
}
