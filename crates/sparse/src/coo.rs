//! Triplet (coordinate) pattern builder.

use crate::Csr;

/// A mutable coordinate-format pattern, convertible to [`Csr`].
///
/// Duplicates are tolerated on input and collapsed during conversion, which
/// is what Matrix Market readers and random generators need.
#[derive(Clone, Debug, Default)]
pub struct Coo {
    nrows: usize,
    ncols: usize,
    entries: Vec<(u32, u32)>,
}

impl Coo {
    /// Creates an empty builder with the given shape.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        assert!(nrows <= u32::MAX as usize && ncols <= u32::MAX as usize);
        Self {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with capacity for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        let mut coo = Self::new(nrows, ncols);
        coo.entries.reserve(cap);
        coo
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of pushed entries (before deduplication).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records entry `(i, j)`.
    ///
    /// # Panics
    /// Panics if the coordinates are out of range.
    #[inline]
    pub fn push(&mut self, i: usize, j: usize) {
        assert!(i < self.nrows, "row {i} out of range ({})", self.nrows);
        assert!(j < self.ncols, "col {j} out of range ({})", self.ncols);
        self.entries.push((i as u32, j as u32));
    }

    /// Records both `(i, j)` and `(j, i)` (square builders only).
    pub fn push_symmetric(&mut self, i: usize, j: usize) {
        self.push(i, j);
        if i != j {
            self.push(j, i);
        }
    }

    /// Converts to CSR, sorting rows and collapsing duplicates.
    pub fn into_csr(mut self) -> Csr {
        // Counting-sort by row, then sort each row's columns.
        let mut counts = vec![0usize; self.nrows + 1];
        for &(i, _) in &self.entries {
            counts[i as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            counts[i + 1] += counts[i];
        }
        let mut cols = vec![0u32; self.entries.len()];
        let mut cursor = counts.clone();
        for &(i, j) in &self.entries {
            let slot = &mut cursor[i as usize];
            cols[*slot] = j;
            *slot += 1;
        }
        self.entries.clear();
        self.entries.shrink_to_fit();

        // Sort and dedup per row, compacting in place.
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut write = 0usize;
        for i in 0..self.nrows {
            let (lo, hi) = (counts[i], counts[i + 1]);
            let row = &mut cols[lo..hi];
            row.sort_unstable();
            let mut prev: Option<u32> = None;
            let mut w = write;
            for k in lo..hi {
                let j = cols[k];
                if prev != Some(j) {
                    cols[w] = j;
                    w += 1;
                    prev = Some(j);
                }
            }
            write = w;
            row_ptr.push(write);
        }
        cols.truncate(write);
        Csr::from_parts(self.nrows, self.ncols, row_ptr, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_convert() {
        let mut coo = Coo::new(3, 3);
        coo.push(2, 0);
        coo.push(0, 1);
        coo.push(0, 0);
        coo.push(1, 2);
        let m = coo.into_csr();
        assert_eq!(m.row(0), &[0, 1]);
        assert_eq!(m.row(1), &[2]);
        assert_eq!(m.row(2), &[0]);
        m.validate().unwrap();
    }

    #[test]
    fn duplicates_collapsed() {
        let mut coo = Coo::new(2, 2);
        for _ in 0..10 {
            coo.push(0, 1);
            coo.push(1, 0);
        }
        let m = coo.into_csr();
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn symmetric_push() {
        let mut coo = Coo::new(3, 3);
        coo.push_symmetric(0, 2);
        coo.push_symmetric(1, 1);
        let m = coo.into_csr();
        assert!(m.is_structurally_symmetric());
        assert_eq!(m.nnz(), 3); // (0,2), (2,0), (1,1)
    }

    #[test]
    fn empty_builder() {
        let coo = Coo::new(4, 5);
        assert!(coo.is_empty());
        let m = coo.into_csr();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_push_panics() {
        let mut coo = Coo::new(2, 2);
        coo.push(2, 0);
    }

    #[test]
    fn large_unsorted_input_sorted_correctly() {
        let mut coo = Coo::new(100, 100);
        // reverse order pushes
        for i in (0..100).rev() {
            for j in (0..100).rev().step_by(7) {
                coo.push(i, j);
            }
        }
        let m = coo.into_csr();
        m.validate().unwrap();
        assert_eq!(m.nnz(), 100 * ((0..100).step_by(7).count()));
    }
}
