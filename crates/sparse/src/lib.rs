//! `sparse` — sparse-matrix substrate for the BGPC reproduction.
//!
//! The ICPP'17 paper colors the *columns* of sparse matrices from the UFL
//! (SuiteSparse) collection, treating rows as the nets that define the
//! partial-coloring neighborhood. This crate provides everything the rest of
//! the workspace needs from the matrix side:
//!
//! * [`Csr`] / [`Coo`] — pattern-only compressed sparse row storage and a
//!   triplet builder (values are irrelevant to coloring).
//! * [`mm`] — Matrix Market I/O so real SuiteSparse files can be used when
//!   available.
//! * [`gen`] — deterministic synthetic generators (stencil meshes, banded
//!   systems, RMAT/power-law graphs, skewed bipartite rating matrices) that
//!   stand in for the paper's UFL inputs.
//! * [`datasets`] — a registry of the paper's eight test matrices with their
//!   Table II structural signatures, each mapped to a generator recipe that
//!   reproduces the signature at a configurable scale.
//! * [`stats`] — degree-distribution statistics (max/mean/σ of row and
//!   column cardinalities) used to validate the generators against Table II.
//! * [`perm`] — locality-aware relabelings (degree-sort, BFS/CM) with
//!   invert/unpermute helpers so colorings are reported in original ids.
//! * [`prefetch`] — software prefetch hints for the irregular CSR gathers.
//!
//! [`Csr`] is parameterized by its row-pointer width ([`CsrIndex`]): `u32`
//! by default, `u64` as the fallback for instances with ≥ 2³² nonzeros
//! (see [`IndexWidth`]).

pub mod bin_io;
pub mod coo;
pub mod csr;
pub mod datasets;
pub mod gen;
pub mod mm;
pub mod perm;
pub mod prefetch;
pub mod stats;

pub use coo::Coo;
pub use csr::{Csr, CsrError, CsrIndex, IndexWidth};
pub use datasets::{Dataset, Instance};
pub use perm::{invert_perm, unpermute, LocalityOrder};
pub use stats::DegreeStats;
