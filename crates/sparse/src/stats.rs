//! Degree-distribution statistics.
//!
//! Table II of the paper characterizes each instance by its maximum column
//! degree and the standard deviation of the column-degree distribution —
//! the quantities that drive conflict rates and the color lower bound. This
//! module computes them for rows or columns of a [`Csr`].

use crate::Csr;

/// Summary statistics over a degree sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    /// Number of entities (rows or columns).
    pub count: usize,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Population standard deviation of the degrees.
    pub std_dev: f64,
}

impl DegreeStats {
    /// Computes statistics from an explicit degree sequence.
    pub fn from_degrees(degrees: impl Iterator<Item = usize> + Clone) -> Self {
        let mut count = 0usize;
        let mut min = usize::MAX;
        let mut max = 0usize;
        let mut sum = 0u128;
        for d in degrees.clone() {
            count += 1;
            min = min.min(d);
            max = max.max(d);
            sum += d as u128;
        }
        if count == 0 {
            return Self {
                count: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                std_dev: 0.0,
            };
        }
        let mean = sum as f64 / count as f64;
        let var = degrees
            .map(|d| {
                let diff = d as f64 - mean;
                diff * diff
            })
            .sum::<f64>()
            / count as f64;
        Self {
            count,
            min,
            max,
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Row-degree statistics of a pattern.
    pub fn rows(m: &Csr) -> Self {
        Self::from_degrees((0..m.nrows()).map(|i| m.row_len(i)))
    }

    /// Column-degree statistics of a pattern (computed via a counting pass;
    /// no transpose materialized).
    pub fn cols(m: &Csr) -> Self {
        let mut degrees = vec![0usize; m.ncols()];
        for &j in m.col_idx() {
            degrees[j as usize] += 1;
        }
        Self::from_degrees(degrees.iter().copied())
    }
}

/// Computes the histogram of a degree sequence up to `max` (inclusive);
/// degrees above `max` land in the last bucket.
pub fn degree_histogram(degrees: impl Iterator<Item = usize>, max: usize) -> Vec<usize> {
    let mut hist = vec![0usize; max + 1];
    for d in degrees {
        hist[d.min(max)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_known_sequence() {
        let s = DegreeStats::from_degrees([2usize, 4, 4, 4, 5, 5, 7, 9].into_iter());
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 2);
        assert_eq!(s.max, 9);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence() {
        let s = DegreeStats::from_degrees(std::iter::empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn row_and_col_stats() {
        let m = Csr::from_rows(3, &[vec![0, 1, 2], vec![1], vec![]]);
        let r = DegreeStats::rows(&m);
        assert_eq!(r.max, 3);
        assert_eq!(r.min, 0);
        let c = DegreeStats::cols(&m);
        assert_eq!(c.count, 3);
        assert_eq!(c.max, 2); // column 1 appears twice
        assert_eq!(c.min, 1);
    }

    #[test]
    fn histogram_clamps() {
        let h = degree_histogram([0usize, 1, 1, 5, 99].into_iter(), 4);
        assert_eq!(h, vec![1, 2, 0, 0, 2]);
    }
}
