//! Matrix Market (`.mtx`) pattern I/O.
//!
//! Supports the `matrix coordinate` format with `general`, `symmetric`, and
//! `skew-symmetric` storage. Values (`real`/`integer`/`complex`/`pattern`)
//! are accepted and discarded — coloring only needs the pattern. This lets
//! the harness run on real SuiteSparse downloads when they are present,
//! while the synthetic registry covers the offline case.

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::{Coo, Csr};

/// Errors produced by the Matrix Market reader.
#[derive(Debug)]
pub enum MmError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not conform to the expected format.
    Parse(String),
}

impl std::fmt::Display for MmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MmError::Io(e) => write!(f, "I/O error: {e}"),
            MmError::Parse(msg) => write!(f, "Matrix Market parse error: {msg}"),
        }
    }
}

impl std::error::Error for MmError {}

impl From<std::io::Error> for MmError {
    fn from(e: std::io::Error) -> Self {
        MmError::Io(e)
    }
}

fn parse_err(msg: impl Into<String>) -> MmError {
    MmError::Parse(msg.into())
}

/// Reads a Matrix Market pattern from a reader.
pub fn read_pattern<R: Read>(reader: R) -> Result<Csr, MmError> {
    let mut lines = BufReader::new(reader).lines();

    let header = lines
        .next()
        .ok_or_else(|| parse_err("empty file"))??
        .to_ascii_lowercase();
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() < 5 || fields[0] != "%%matrixmarket" || fields[1] != "matrix" {
        return Err(parse_err(format!("bad header line: {header}")));
    }
    if fields[2] != "coordinate" {
        return Err(parse_err(format!(
            "unsupported format `{}` (only coordinate)",
            fields[2]
        )));
    }
    let has_value = match fields[3] {
        "pattern" => false,
        "real" | "integer" | "complex" => true,
        other => return Err(parse_err(format!("unsupported field type `{other}`"))),
    };
    let symmetric = match fields[4] {
        "general" => false,
        "symmetric" | "skew-symmetric" => true,
        other => return Err(parse_err(format!("unsupported symmetry `{other}`"))),
    };

    // Skip comments, find size line.
    let size_line = loop {
        let line = lines
            .next()
            .ok_or_else(|| parse_err("missing size line"))??;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        break line;
    };
    let mut it = size_line.split_whitespace();
    let nrows: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad row count"))?;
    let ncols: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad col count"))?;
    let nnz: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| parse_err("bad nnz count"))?;

    if symmetric && nrows != ncols {
        return Err(parse_err(format!(
            "{} storage requires a square matrix, got {nrows}x{ncols}",
            fields[4]
        )));
    }

    let mut coo = Coo::with_capacity(nrows, ncols, if symmetric { nnz * 2 } else { nnz });
    let mut seen = 0usize;
    // Duplicate entries silently collapse in CSR conversion but inflate
    // the declared pattern (net degrees, nnz accounting), so they are a
    // malformed file, not a tolerable redundancy. Symmetric storage keys
    // on the unordered pair: listing both (i, j) and (j, i) mirrors to
    // the same two entries and is equally a duplicate.
    let mut keys = std::collections::HashSet::with_capacity(nnz);
    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let i: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad row index in `{trimmed}`")))?;
        let j: usize = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| parse_err(format!("bad col index in `{trimmed}`")))?;
        if has_value && it.next().is_none() {
            return Err(parse_err(format!("missing value in `{trimmed}`")));
        }
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(parse_err(format!(
                "entry ({i}, {j}) out of 1-based range {nrows}x{ncols}"
            )));
        }
        let key = if symmetric {
            (i.min(j), i.max(j))
        } else {
            (i, j)
        };
        if !keys.insert(key) {
            return Err(parse_err(format!("duplicate entry ({i}, {j})")));
        }
        // Matrix Market is 1-based.
        if symmetric {
            coo.push_symmetric(i - 1, j - 1);
        } else {
            coo.push(i - 1, j - 1);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(parse_err(format!("expected {nnz} entries, found {seen}")));
    }
    Ok(coo.into_csr())
}

/// Reads a Matrix Market pattern from a file path.
pub fn read_pattern_file(path: impl AsRef<Path>) -> Result<Csr, MmError> {
    read_pattern(std::fs::File::open(path)?)
}

/// Writes a pattern in `matrix coordinate pattern general` format.
pub fn write_pattern<W: Write>(mut writer: W, m: &Csr) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate pattern general")?;
    writeln!(writer, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (i, j) in m.iter() {
        writeln!(writer, "{} {}", i + 1, j + 1)?;
    }
    Ok(())
}

/// Writes a pattern to a file path.
pub fn write_pattern_file(path: impl AsRef<Path>, m: &Csr) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_pattern(std::io::BufWriter::new(file), m)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_general_pattern() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n\
                   % a comment\n\
                   3 4 4\n\
                   1 1\n\
                   1 3\n\
                   2 2\n\
                   3 4\n";
        let m = read_pattern(src.as_bytes()).unwrap();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.row(0), &[0, 2]);
        assert_eq!(m.row(1), &[1]);
        assert_eq!(m.row(2), &[3]);
    }

    #[test]
    fn parse_real_values_discarded() {
        let src = "%%MatrixMarket matrix coordinate real general\n\
                   2 2 2\n\
                   1 2 3.5\n\
                   2 1 -1e9\n";
        let m = read_pattern(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 2);
        assert!(m.contains(0, 1));
        assert!(m.contains(1, 0));
    }

    #[test]
    fn parse_symmetric_expands() {
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                   3 3 2\n\
                   2 1\n\
                   3 3\n";
        let m = read_pattern(src.as_bytes()).unwrap();
        assert!(m.contains(0, 1));
        assert!(m.contains(1, 0));
        assert!(m.contains(2, 2));
        assert_eq!(m.nnz(), 3);
        assert!(m.is_structurally_symmetric());
    }

    #[test]
    fn roundtrip_write_read() {
        let m = Csr::from_rows(3, &[vec![0, 2], vec![], vec![1]]);
        let mut buf = Vec::new();
        write_pattern(&mut buf, &m).unwrap();
        let back = read_pattern(buf.as_slice()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_bad_header() {
        assert!(read_pattern("%%NotMM matrix\n1 1 0\n".as_bytes()).is_err());
        assert!(read_pattern("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_out_of_range_entry() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n3 1\n";
        assert!(read_pattern(src.as_bytes()).is_err());
    }

    #[test]
    fn rejects_wrong_entry_count() {
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n";
        assert!(read_pattern(src.as_bytes()).is_err());
    }

    #[test]
    fn missing_value_detected() {
        let src = "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n";
        assert!(read_pattern(src.as_bytes()).is_err());
    }

    /// All malformed inputs must come back as `MmError::Parse` — never a
    /// panic, and never a bogus matrix.
    fn expect_parse_error(src: &str) -> String {
        match read_pattern(src.as_bytes()) {
            Err(MmError::Parse(msg)) => msg,
            Err(other) => panic!("expected Parse error, got {other:?}"),
            Ok(m) => panic!("expected Parse error, got a {}x{} matrix", m.nrows(), m.ncols()),
        }
    }

    #[test]
    fn truncated_mid_entry_is_parse_error() {
        // size line promises 3 entries, the stream ends after 2
        let msg = expect_parse_error(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 3\n1 1\n2 2\n",
        );
        assert!(msg.contains("expected 3 entries, found 2"), "{msg}");
        // a value entry cut off before its value column
        let msg =
            expect_parse_error("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n");
        assert!(msg.contains("missing value"), "{msg}");
    }

    #[test]
    fn zero_based_index_is_parse_error() {
        // Matrix Market is 1-based; a 0 index is a classic exporter bug
        let msg = expect_parse_error(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n0 1\n",
        );
        assert!(msg.contains("out of 1-based range"), "{msg}");
        let msg = expect_parse_error(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n1 0\n",
        );
        assert!(msg.contains("out of 1-based range"), "{msg}");
    }

    #[test]
    fn out_of_range_index_is_parse_error() {
        let msg = expect_parse_error(
            "%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 4\n",
        );
        assert!(msg.contains("out of 1-based range 2x3"), "{msg}");
    }

    #[test]
    fn dimension_overflow_is_parse_error() {
        // larger than any usize: the size line must fail cleanly, not wrap
        let huge = "99999999999999999999999999999999";
        let msg = expect_parse_error(&format!(
            "%%MatrixMarket matrix coordinate pattern general\n{huge} 2 1\n1 1\n"
        ));
        assert!(msg.contains("bad row count"), "{msg}");
        let msg = expect_parse_error(&format!(
            "%%MatrixMarket matrix coordinate pattern general\n2 {huge} 1\n1 1\n"
        ));
        assert!(msg.contains("bad col count"), "{msg}");
        let msg = expect_parse_error(&format!(
            "%%MatrixMarket matrix coordinate pattern general\n2 2 {huge}\n1 1\n"
        ));
        assert!(msg.contains("bad nnz count"), "{msg}");
    }

    #[test]
    fn array_format_is_parse_error() {
        let msg = expect_parse_error("%%MatrixMarket matrix array real general\n2 2\n1.0\n");
        assert!(msg.contains("unsupported format `array`"), "{msg}");
    }

    #[test]
    fn duplicate_entry_is_parse_error() {
        // Exact duplicate in a general file: would silently collapse in
        // CSR conversion while the header claims 3 distinct entries.
        let msg = expect_parse_error(
            "%%MatrixMarket matrix coordinate pattern general\n3 3 3\n1 2\n2 3\n1 2\n",
        );
        assert!(msg.contains("duplicate entry (1, 2)"), "{msg}");
    }

    #[test]
    fn mirrored_duplicate_in_symmetric_is_parse_error() {
        // Symmetric storage lists each unordered pair once; (2,1) and
        // (1,2) both mirror to the same two entries.
        let msg = expect_parse_error(
            "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n1 2\n",
        );
        assert!(msg.contains("duplicate entry (1, 2)"), "{msg}");
    }

    #[test]
    fn symmetric_nonsquare_is_parse_error() {
        // Used to panic inside the Coo mirror push; must be a clean
        // structured error instead.
        let msg = expect_parse_error(
            "%%MatrixMarket matrix coordinate pattern symmetric\n2 3 1\n1 3\n",
        );
        assert!(msg.contains("square"), "{msg}");
        let msg = expect_parse_error(
            "%%MatrixMarket matrix coordinate pattern skew-symmetric\n3 2 1\n2 1\n",
        );
        assert!(msg.contains("square"), "{msg}");
    }

    #[test]
    fn distinct_entries_still_accepted_after_dedup_check() {
        // The duplicate check must not reject legitimate files: same row
        // twice with different columns, and a symmetric diagonal entry.
        let src = "%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 1\n1 2\n";
        assert_eq!(read_pattern(src.as_bytes()).unwrap().nnz(), 2);
        let src = "%%MatrixMarket matrix coordinate pattern symmetric\n2 2 2\n1 1\n2 1\n";
        let m = read_pattern(src.as_bytes()).unwrap();
        assert_eq!(m.nnz(), 3); // (0,0), (1,0), (0,1)
    }

    #[test]
    fn missing_size_line_is_parse_error() {
        let msg = expect_parse_error("%%MatrixMarket matrix coordinate pattern general\n% only\n");
        assert!(msg.contains("missing size line"), "{msg}");
        let msg = expect_parse_error("");
        assert!(msg.contains("empty file"), "{msg}");
    }
}
