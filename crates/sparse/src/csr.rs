//! Pattern-only compressed sparse row storage.

use std::fmt;

/// A sparse pattern in compressed sparse row format.
///
/// Only the nonzero *structure* is stored — coloring never looks at values.
/// Column indices are `u32` (the perf-book "smaller integers" idiom: the
/// index arrays dominate the memory traffic of every coloring kernel, and
/// none of the paper's instances approach 2³² columns); row pointers are
/// `usize` so the nonzero count is unbounded.
///
/// ```
/// use sparse::Csr;
/// let m = Csr::from_rows(3, &[vec![0, 2], vec![1]]);
/// assert_eq!(m.nrows(), 2);
/// assert_eq!(m.row(0), &[0, 2]);
/// assert_eq!(m.transpose().row(2), &[0]);
/// ```
///
/// Invariants (checked by [`Csr::validate`], relied on everywhere):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[nrows] == col_idx.len()`;
/// * every entry of `col_idx` is `< ncols`;
/// * within each row, column indices are strictly increasing (sorted, no
///   duplicates).
#[derive(Clone, PartialEq, Eq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
}

impl fmt::Debug for Csr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Csr")
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nnz", &self.nnz())
            .finish()
    }
}

impl Csr {
    /// Builds a CSR from raw parts, validating every invariant.
    ///
    /// # Panics
    /// Panics with a descriptive message if the parts are inconsistent.
    pub fn from_parts(nrows: usize, ncols: usize, row_ptr: Vec<usize>, col_idx: Vec<u32>) -> Self {
        Self::try_from_parts(nrows, ncols, row_ptr, col_idx).expect("invalid CSR parts")
    }

    /// Builds a CSR from raw parts, returning the first violated invariant
    /// instead of panicking — the constructor for untrusted input paths.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
    ) -> Result<Self, String> {
        let csr = Self {
            nrows,
            ncols,
            row_ptr,
            col_idx,
        };
        csr.validate()?;
        Ok(csr)
    }

    /// Builds a CSR from per-row column lists. Rows are sorted and
    /// deduplicated.
    pub fn from_rows(ncols: usize, rows: &[Vec<u32>]) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        for row in rows {
            let mut cols = row.clone();
            cols.sort_unstable();
            cols.dedup();
            col_idx.extend_from_slice(&cols);
            row_ptr.push(col_idx.len());
        }
        Self::from_parts(rows.len(), ncols, row_ptr, col_idx)
    }

    /// An empty pattern with the given shape.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
        }
    }

    /// Checks all structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.row_ptr.len() != self.nrows + 1 {
            return Err(format!(
                "row_ptr length {} != nrows + 1 = {}",
                self.row_ptr.len(),
                self.nrows + 1
            ));
        }
        if self.row_ptr[0] != 0 {
            return Err("row_ptr[0] != 0".into());
        }
        if *self.row_ptr.last().unwrap() != self.col_idx.len() {
            return Err("row_ptr[nrows] != nnz".into());
        }
        for i in 0..self.nrows {
            if self.row_ptr[i] > self.row_ptr[i + 1] {
                return Err(format!("row_ptr decreases at row {i}"));
            }
            let row = &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]];
            for w in row.windows(2) {
                if w[0] >= w[1] {
                    return Err(format!("row {i} not strictly increasing"));
                }
            }
            if let Some(&last) = row.last() {
                if last as usize >= self.ncols {
                    return Err(format!("row {i} has column {last} >= ncols {}", self.ncols));
                }
            }
        }
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The column indices of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[i]..self.row_ptr[i + 1]]
    }

    /// Number of entries in row `i`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Raw row pointer array (`nrows + 1` entries).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Iterates `(row, col)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        (0..self.nrows).flat_map(move |i| self.row(i).iter().map(move |&j| (i, j)))
    }

    /// Returns true if `(i, j)` is a stored entry (binary search).
    pub fn contains(&self, i: usize, j: u32) -> bool {
        self.row(i).binary_search(&j).is_ok()
    }

    /// Transposes the pattern with a counting sort — O(nnz + nrows + ncols).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.ncols + 1];
        for &j in &self.col_idx {
            counts[j as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut cursor = counts;
        // Walking rows in order makes each transposed row come out sorted.
        for i in 0..self.nrows {
            for &j in self.row(i) {
                let slot = &mut cursor[j as usize];
                col_idx[*slot] = i as u32;
                *slot += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
        }
    }

    /// True if the pattern is square and structurally symmetric
    /// (`(i,j)` stored iff `(j,i)` stored).
    pub fn is_structurally_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx
    }

    /// Returns the symmetrized pattern `A ∪ Aᵀ` (square input required).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn symmetrize(&self) -> Csr {
        assert_eq!(
            self.nrows, self.ncols,
            "symmetrize requires a square pattern"
        );
        let t = self.transpose();
        let mut rows: Vec<Vec<u32>> = Vec::with_capacity(self.nrows);
        for i in 0..self.nrows {
            let a = self.row(i);
            let b = t.row(i);
            // merge two sorted lists
            let mut merged = Vec::with_capacity(a.len() + b.len());
            let (mut x, mut y) = (0, 0);
            while x < a.len() && y < b.len() {
                match a[x].cmp(&b[y]) {
                    std::cmp::Ordering::Less => {
                        merged.push(a[x]);
                        x += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(b[y]);
                        y += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(a[x]);
                        x += 1;
                        y += 1;
                    }
                }
            }
            merged.extend_from_slice(&a[x..]);
            merged.extend_from_slice(&b[y..]);
            rows.push(merged);
        }
        Csr::from_rows(self.ncols, &rows)
    }

    /// Removes diagonal entries (useful when interpreting a square pattern
    /// as an adjacency structure).
    pub fn strip_diagonal(&self) -> Csr {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for &j in self.row(i) {
                if j as usize != i {
                    col_idx.push(j);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
        }
    }

    /// Symmetrically permutes a square pattern: entry `(i, j)` moves to
    /// `(perm[i], perm[j])`. Preserves structural symmetry; the canonical
    /// use is applying an RCM relabeling.
    ///
    /// # Panics
    /// Panics if the pattern is not square or `perm` is not a permutation.
    pub fn permute_symmetric(&self, perm: &[u32]) -> Csr {
        assert_eq!(self.nrows, self.ncols, "symmetric permutation needs a square pattern");
        assert_eq!(perm.len(), self.nrows, "permutation length mismatch");
        debug_assert!(is_permutation(perm));
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); self.nrows];
        for i in 0..self.nrows {
            let new_i = perm[i] as usize;
            rows[new_i] = self.row(i).iter().map(|&j| perm[j as usize]).collect();
        }
        Csr::from_rows(self.ncols, &rows)
    }

    /// Permutes the columns of the pattern: new column id of old column `j`
    /// is `perm[j]`. Rows are re-sorted.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..ncols`.
    pub fn permute_columns(&self, perm: &[u32]) -> Csr {
        assert_eq!(perm.len(), self.ncols, "permutation length mismatch");
        debug_assert!(crate::csr::is_permutation(perm));
        let mut rows: Vec<Vec<u32>> = Vec::with_capacity(self.nrows);
        for i in 0..self.nrows {
            let mut row: Vec<u32> = self.row(i).iter().map(|&j| perm[j as usize]).collect();
            row.sort_unstable();
            rows.push(row);
        }
        Csr::from_rows(self.ncols, &rows)
    }
}

/// Checks that `perm` is a permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[u32]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let p = p as usize;
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // 3x4:
        // row 0: cols 0, 2
        // row 1: cols 1, 2, 3
        // row 2: (empty)
        Csr::from_parts(3, 4, vec![0, 2, 5, 5], vec![0, 2, 1, 2, 3])
    }

    #[test]
    fn basic_accessors() {
        let m = small();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row(0), &[0, 2]);
        assert_eq!(m.row(1), &[1, 2, 3]);
        assert_eq!(m.row(2), &[] as &[u32]);
        assert_eq!(m.row_len(1), 3);
        assert!(m.contains(0, 2));
        assert!(!m.contains(0, 1));
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = small();
        let entries: Vec<(usize, u32)> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0), (0, 2), (1, 1), (1, 2), (1, 3)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.nnz(), 5);
        assert_eq!(t.row(0), &[0]);
        assert_eq!(t.row(1), &[1]);
        assert_eq!(t.row(2), &[0, 1]);
        assert_eq!(t.row(3), &[1]);
        assert_eq!(t.transpose(), m);
        t.validate().unwrap();
    }

    #[test]
    fn from_rows_sorts_and_dedups() {
        let m = Csr::from_rows(5, &[vec![3, 1, 3, 0], vec![]]);
        assert_eq!(m.row(0), &[0, 1, 3]);
        assert_eq!(m.row(1), &[] as &[u32]);
    }

    #[test]
    fn symmetry_detection() {
        let sym = Csr::from_rows(3, &[vec![1], vec![0, 2], vec![1]]);
        assert!(sym.is_structurally_symmetric());
        let asym = Csr::from_rows(3, &[vec![1], vec![2], vec![]]);
        assert!(!asym.is_structurally_symmetric());
        let rect = small();
        assert!(!rect.is_structurally_symmetric());
    }

    #[test]
    fn symmetrize_produces_symmetric_superset() {
        let asym = Csr::from_rows(3, &[vec![1, 2], vec![2], vec![]]);
        let s = asym.symmetrize();
        assert!(s.is_structurally_symmetric());
        for (i, j) in asym.iter() {
            assert!(s.contains(i, j));
            assert!(s.contains(j as usize, i as u32));
        }
        s.validate().unwrap();
    }

    #[test]
    fn strip_diagonal_removes_self_loops() {
        let m = Csr::from_rows(3, &[vec![0, 1], vec![1], vec![0, 2]]);
        let s = m.strip_diagonal();
        assert_eq!(s.row(0), &[1]);
        assert_eq!(s.row(1), &[] as &[u32]);
        assert_eq!(s.row(2), &[0]);
        s.validate().unwrap();
    }

    #[test]
    fn permute_symmetric_preserves_structure() {
        let m = Csr::from_rows(3, &[vec![1], vec![0, 2], vec![1]]);
        // relabel: 0→2, 1→0, 2→1
        let p = m.permute_symmetric(&[2, 0, 1]);
        assert!(p.is_structurally_symmetric());
        assert_eq!(p.nnz(), m.nnz());
        // old edge (0,1) is now (2,0)
        assert!(p.contains(2, 0));
        assert!(p.contains(0, 2));
        p.validate().unwrap();
        // identity permutation is a no-op
        assert_eq!(m.permute_symmetric(&[0, 1, 2]), m);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn permute_symmetric_rejects_rectangular() {
        small().permute_symmetric(&[0, 1, 2]);
    }

    #[test]
    fn permute_columns_relabels() {
        let m = small();
        // swap cols 0 and 3
        let p = m.permute_columns(&[3, 1, 2, 0]);
        assert_eq!(p.row(0), &[2, 3]);
        assert_eq!(p.row(1), &[0, 1, 2]);
        p.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn unsorted_row_rejected() {
        Csr::from_parts(1, 3, vec![0, 2], vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn out_of_range_column_rejected() {
        Csr::from_parts(1, 2, vec![0, 1], vec![5]);
    }

    #[test]
    fn empty_matrix_is_valid() {
        let m = Csr::empty(4, 7);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.transpose().nrows(), 7);
    }

    #[test]
    fn is_permutation_checks() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }
}
