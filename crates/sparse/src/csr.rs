//! Pattern-only compressed sparse row storage, parameterized by the
//! row-pointer index width.

use std::fmt;

use crate::prefetch;

/// Row-pointer index type for [`Csr`].
///
/// The coloring kernels are bandwidth-bound: every vertex visit loads a
/// pair of row pointers before it touches the adjacency row, so halving
/// the pointer width (`u32` instead of the platform `usize`) measurably
/// cuts the bytes the hot loops move. `u32` covers every instance below
/// 2³² nonzeros — all of the paper's inputs — and `u64` is the fallback
/// for anything larger (see [`IndexWidth::auto_for`]).
pub trait CsrIndex:
    Copy + Clone + Eq + Ord + Send + Sync + fmt::Debug + std::hash::Hash + 'static
{
    /// Human-readable width name (`"u32"` / `"u64"`), used for dispatch
    /// flags and benchmark records.
    const LABEL: &'static str;
    /// Largest nonzero count this width can address.
    const MAX_NNZ: usize;
    /// Converts from `usize`. Callers must guarantee `x <= MAX_NNZ`.
    fn from_usize(x: usize) -> Self;
    /// Widens to `usize` (always lossless).
    fn to_usize(self) -> usize;
}

impl CsrIndex for u32 {
    const LABEL: &'static str = "u32";
    const MAX_NNZ: usize = u32::MAX as usize;
    #[inline(always)]
    fn from_usize(x: usize) -> Self {
        debug_assert!(x <= Self::MAX_NNZ);
        x as u32
    }
    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }
}

impl CsrIndex for u64 {
    const LABEL: &'static str = "u64";
    const MAX_NNZ: usize = usize::MAX;
    #[inline(always)]
    fn from_usize(x: usize) -> Self {
        x as u64
    }
    #[inline(always)]
    fn to_usize(self) -> usize {
        self as usize
    }
}

/// Row-pointer width selector used by runners and the benchmark harness
/// to dispatch between [`Csr<u32>`] and [`Csr<u64>`] per instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexWidth {
    /// 32-bit row pointers (default; instances below 2³² nonzeros).
    U32,
    /// 64-bit row pointers (fallback for huge instances).
    U64,
}

/// Largest nonzero count a `u32` row pointer can address — the
/// [`IndexWidth::auto_for`] cutoff. `bgpc::tuning` re-exports this so the
/// autotuning engine and the legacy width heuristic share one definition.
pub const U32_MAX_NNZ: usize = u32::MAX as usize;

impl IndexWidth {
    /// The narrowest width that can address `nnz` nonzeros.
    pub fn auto_for(nnz: usize) -> Self {
        if nnz <= U32_MAX_NNZ {
            IndexWidth::U32
        } else {
            IndexWidth::U64
        }
    }

    /// Width name as used in flags and benchmark records.
    pub fn label(self) -> &'static str {
        match self {
            IndexWidth::U32 => "u32",
            IndexWidth::U64 => "u64",
        }
    }

    /// Parses a width name (`u32`/`u64`, case-insensitive).
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "u32" | "32" => Some(IndexWidth::U32),
            "u64" | "64" => Some(IndexWidth::U64),
            _ => None,
        }
    }
}

/// A violated CSR invariant, reported by [`Csr::try_from_parts`] and
/// [`Csr::validate`] with enough structure for callers (the graph layer,
/// the binary loader, the CLI) to say exactly what was wrong with an
/// untrusted pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CsrError {
    /// `row_ptr.len()` is not `nrows + 1`.
    RowPtrLength {
        /// Actual length of the row-pointer array.
        len: usize,
        /// Declared row count.
        nrows: usize,
    },
    /// `row_ptr[0]` is not zero.
    RowPtrStart,
    /// `row_ptr[nrows]` disagrees with `col_idx.len()`.
    NnzMismatch {
        /// Value of the final row pointer.
        last: usize,
        /// Actual number of stored column indices.
        nnz: usize,
    },
    /// The row-pointer array decreases at this row.
    RowPtrDecreasing {
        /// First row whose pointer exceeds its successor.
        row: usize,
    },
    /// A row's column indices are not strictly increasing.
    RowNotSorted {
        /// Offending row.
        row: usize,
    },
    /// An adjacency index is at or beyond the declared column dimension.
    ColumnOutOfBounds {
        /// Row holding the offending entry.
        row: usize,
        /// The out-of-range column index.
        col: u32,
        /// Declared column count.
        ncols: usize,
    },
    /// The nonzero count does not fit the requested row-pointer width.
    IndexOverflow {
        /// Nonzero count of the pattern.
        nnz: usize,
        /// Label of the width that cannot address it.
        width: &'static str,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::RowPtrLength { len, nrows } => {
                write!(f, "row_ptr length {len} != nrows + 1 = {}", nrows + 1)
            }
            CsrError::RowPtrStart => write!(f, "row_ptr[0] != 0"),
            CsrError::NnzMismatch { last, nnz } => {
                write!(f, "row_ptr[nrows] = {last} != nnz = {nnz}")
            }
            CsrError::RowPtrDecreasing { row } => write!(f, "row_ptr decreases at row {row}"),
            CsrError::RowNotSorted { row } => write!(f, "row {row} not strictly increasing"),
            CsrError::ColumnOutOfBounds { row, col, ncols } => {
                write!(f, "row {row} has column {col} >= ncols {ncols}")
            }
            CsrError::IndexOverflow { nnz, width } => {
                write!(f, "{nnz} nonzeros exceed the {width} row-pointer range")
            }
        }
    }
}

impl std::error::Error for CsrError {}

/// Checks every CSR invariant over raw parts, including a per-entry
/// column-bound check so the offending entry is reported even when a row
/// is also unsorted.
fn check_parts(
    nrows: usize,
    ncols: usize,
    row_ptr: &[usize],
    col_idx: &[u32],
) -> Result<(), CsrError> {
    if row_ptr.len() != nrows + 1 {
        return Err(CsrError::RowPtrLength {
            len: row_ptr.len(),
            nrows,
        });
    }
    if row_ptr[0] != 0 {
        return Err(CsrError::RowPtrStart);
    }
    if row_ptr[nrows] != col_idx.len() {
        return Err(CsrError::NnzMismatch {
            last: row_ptr[nrows],
            nnz: col_idx.len(),
        });
    }
    // Full monotonicity pass first: together with `row_ptr[nrows] == nnz`
    // it bounds every pointer by nnz, so the per-row slices below cannot
    // go out of range (the old validator could panic here on a row_ptr
    // that overshot nnz mid-array and came back down).
    for i in 0..nrows {
        if row_ptr[i] > row_ptr[i + 1] {
            return Err(CsrError::RowPtrDecreasing { row: i });
        }
    }
    for i in 0..nrows {
        let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
        for &c in row {
            if c as usize >= ncols {
                return Err(CsrError::ColumnOutOfBounds {
                    row: i,
                    col: c,
                    ncols,
                });
            }
        }
        for w in row.windows(2) {
            if w[0] >= w[1] {
                return Err(CsrError::RowNotSorted { row: i });
            }
        }
    }
    Ok(())
}

/// A sparse pattern in compressed sparse row format.
///
/// Only the nonzero *structure* is stored — coloring never looks at values.
/// Column indices are `u32` (the perf-book "smaller integers" idiom: the
/// index arrays dominate the memory traffic of every coloring kernel, and
/// none of the paper's instances approach 2³² columns); row pointers are
/// width-parameterized via [`CsrIndex`], defaulting to `u32` and widening
/// to `u64` only for instances with 2³² or more nonzeros (see
/// [`Csr::to_index`] / [`IndexWidth`]).
///
/// ```
/// use sparse::Csr;
/// let m = Csr::from_rows(3, &[vec![0, 2], vec![1]]);
/// assert_eq!(m.nrows(), 2);
/// assert_eq!(m.row(0), &[0, 2]);
/// assert_eq!(m.transpose().row(2), &[0]);
/// let wide: sparse::Csr<u64> = m.to_index();
/// assert_eq!(wide.row(0), m.row(0));
/// ```
///
/// Invariants (checked by [`Csr::validate`], relied on everywhere):
/// * `row_ptr.len() == nrows + 1`, `row_ptr[0] == 0`, non-decreasing,
///   `row_ptr[nrows] == col_idx.len()`;
/// * every entry of `col_idx` is `< ncols`;
/// * within each row, column indices are strictly increasing (sorted, no
///   duplicates).
#[derive(Clone, PartialEq, Eq)]
pub struct Csr<I: CsrIndex = u32> {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<I>,
    col_idx: Vec<u32>,
}

impl<I: CsrIndex> fmt::Debug for Csr<I> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Csr")
            .field("index", &I::LABEL)
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nnz", &self.nnz())
            .finish()
    }
}

/// Narrow-index constructors. Construction always starts at the `u32`
/// default (every builder — COO, generators, Matrix Market — produces
/// in-memory patterns far below 2³² nonzeros); [`Csr::to_index`] widens
/// when a runner dispatches to the `u64` fallback.
impl Csr<u32> {
    /// Builds a CSR from raw parts, validating every invariant.
    ///
    /// # Panics
    /// Panics with a descriptive message if the parts are inconsistent.
    pub fn from_parts(nrows: usize, ncols: usize, row_ptr: Vec<usize>, col_idx: Vec<u32>) -> Self {
        Self::try_from_parts(nrows, ncols, row_ptr, col_idx)
            .unwrap_or_else(|e| panic!("invalid CSR parts: {e}"))
    }

    /// Builds a CSR from raw parts, returning the first violated invariant
    /// as a structured [`CsrError`] instead of panicking — the constructor
    /// for untrusted input paths.
    pub fn try_from_parts(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
    ) -> Result<Self, CsrError> {
        Self::try_from_raw(nrows, ncols, row_ptr, col_idx)
    }

    /// Builds a CSR from per-row column lists. Rows are sorted and
    /// deduplicated.
    pub fn from_rows(ncols: usize, rows: &[Vec<u32>]) -> Self {
        Self::from_rows_generic(ncols, rows)
    }

    /// An empty pattern with the given shape.
    pub fn empty(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
        }
    }
}

impl<I: CsrIndex> Csr<I> {
    /// Width-generic [`Csr::try_from_parts`]: validates the invariants,
    /// checks the nonzero count fits `I`, and narrows the row pointers.
    pub fn try_from_raw(
        nrows: usize,
        ncols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
    ) -> Result<Self, CsrError> {
        check_parts(nrows, ncols, &row_ptr, &col_idx)?;
        if col_idx.len() > I::MAX_NNZ {
            return Err(CsrError::IndexOverflow {
                nnz: col_idx.len(),
                width: I::LABEL,
            });
        }
        Ok(Self {
            nrows,
            ncols,
            row_ptr: row_ptr.into_iter().map(I::from_usize).collect(),
            col_idx,
        })
    }

    /// Width-generic [`Csr::from_rows`].
    fn from_rows_generic(ncols: usize, rows: &[Vec<u32>]) -> Self {
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        for row in rows {
            let mut cols = row.clone();
            cols.sort_unstable();
            cols.dedup();
            col_idx.extend_from_slice(&cols);
            row_ptr.push(col_idx.len());
        }
        Self::try_from_raw(rows.len(), ncols, row_ptr, col_idx)
            .unwrap_or_else(|e| panic!("invalid CSR parts: {e}"))
    }

    /// Re-checks all structural invariants (the constructors establish
    /// them; this is for tests and assertions on long-lived patterns).
    pub fn validate(&self) -> Result<(), CsrError> {
        let row_ptr: Vec<usize> = self.row_ptr.iter().map(|p| p.to_usize()).collect();
        check_parts(self.nrows, self.ncols, &row_ptr, &self.col_idx)
    }

    /// Converts the row pointers to another index width.
    ///
    /// # Panics
    /// Panics if the nonzero count does not fit `J` (narrowing below the
    /// actual nnz; impossible when following [`IndexWidth::auto_for`]).
    pub fn to_index<J: CsrIndex>(&self) -> Csr<J> {
        self.try_to_index()
            .unwrap_or_else(|e| panic!("index width conversion failed: {e}"))
    }

    /// Fallible [`Csr::to_index`].
    pub fn try_to_index<J: CsrIndex>(&self) -> Result<Csr<J>, CsrError> {
        if self.nnz() > J::MAX_NNZ {
            return Err(CsrError::IndexOverflow {
                nnz: self.nnz(),
                width: J::LABEL,
            });
        }
        Ok(Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr: self.row_ptr.iter().map(|p| J::from_usize(p.to_usize())).collect(),
            col_idx: self.col_idx.clone(),
        })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The column indices of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[i].to_usize()..self.row_ptr[i + 1].to_usize()]
    }

    /// Number of entries in row `i`.
    #[inline]
    pub fn row_len(&self, i: usize) -> usize {
        self.row_ptr[i + 1].to_usize() - self.row_ptr[i].to_usize()
    }

    /// Offset of row `i`'s first entry in [`Csr::col_idx`].
    #[inline]
    pub fn row_start(&self, i: usize) -> usize {
        self.row_ptr[i].to_usize()
    }

    /// Raw row pointer array (`nrows + 1` entries, width `I`).
    #[inline]
    pub fn row_ptr(&self) -> &[I] {
        &self.row_ptr
    }

    /// Raw column index array.
    #[inline]
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// Hints the cache hierarchy to pull row `i`'s column indices. Used
    /// by the coloring kernels to overlap the irregular adjacency gather
    /// of the *next* work item with the current one; a no-op on targets
    /// without a prefetch intrinsic and for out-of-range rows.
    #[inline(always)]
    pub fn prefetch_row(&self, i: usize) {
        if i < self.nrows {
            let start = self.row_ptr[i].to_usize();
            prefetch::prefetch_read(&self.col_idx, start);
        }
    }

    /// Iterates `(row, col)` over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u32)> + '_ {
        (0..self.nrows).flat_map(move |i| self.row(i).iter().map(move |&j| (i, j)))
    }

    /// Returns true if `(i, j)` is a stored entry (binary search).
    pub fn contains(&self, i: usize, j: u32) -> bool {
        self.row(i).binary_search(&j).is_ok()
    }

    /// Transposes the pattern with a counting sort — O(nnz + nrows + ncols).
    pub fn transpose(&self) -> Csr<I> {
        let mut counts = vec![0usize; self.ncols + 1];
        for &j in &self.col_idx {
            counts[j as usize + 1] += 1;
        }
        for j in 0..self.ncols {
            counts[j + 1] += counts[j];
        }
        let row_ptr: Vec<I> = counts.iter().map(|&p| I::from_usize(p)).collect();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut cursor = counts;
        // Walking rows in order makes each transposed row come out sorted.
        for i in 0..self.nrows {
            for &j in self.row(i) {
                let slot = &mut cursor[j as usize];
                col_idx[*slot] = i as u32;
                *slot += 1;
            }
        }
        Csr {
            nrows: self.ncols,
            ncols: self.nrows,
            row_ptr,
            col_idx,
        }
    }

    /// True if the pattern is square and structurally symmetric
    /// (`(i,j)` stored iff `(j,i)` stored).
    pub fn is_structurally_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        let t = self.transpose();
        self.row_ptr == t.row_ptr && self.col_idx == t.col_idx
    }

    /// Returns the symmetrized pattern `A ∪ Aᵀ` (square input required).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn symmetrize(&self) -> Csr<I> {
        assert_eq!(
            self.nrows, self.ncols,
            "symmetrize requires a square pattern"
        );
        let t = self.transpose();
        let mut rows: Vec<Vec<u32>> = Vec::with_capacity(self.nrows);
        for i in 0..self.nrows {
            let a = self.row(i);
            let b = t.row(i);
            // merge two sorted lists
            let mut merged = Vec::with_capacity(a.len() + b.len());
            let (mut x, mut y) = (0, 0);
            while x < a.len() && y < b.len() {
                match a[x].cmp(&b[y]) {
                    std::cmp::Ordering::Less => {
                        merged.push(a[x]);
                        x += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push(b[y]);
                        y += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push(a[x]);
                        x += 1;
                        y += 1;
                    }
                }
            }
            merged.extend_from_slice(&a[x..]);
            merged.extend_from_slice(&b[y..]);
            rows.push(merged);
        }
        Self::from_rows_generic(self.ncols, &rows)
    }

    /// Removes diagonal entries (useful when interpreting a square pattern
    /// as an adjacency structure).
    pub fn strip_diagonal(&self) -> Csr<I> {
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        row_ptr.push(I::from_usize(0));
        let mut col_idx = Vec::with_capacity(self.nnz());
        for i in 0..self.nrows {
            for &j in self.row(i) {
                if j as usize != i {
                    col_idx.push(j);
                }
            }
            row_ptr.push(I::from_usize(col_idx.len()));
        }
        Csr {
            nrows: self.nrows,
            ncols: self.ncols,
            row_ptr,
            col_idx,
        }
    }

    /// Symmetrically permutes a square pattern: entry `(i, j)` moves to
    /// `(perm[i], perm[j])`. Preserves structural symmetry; the canonical
    /// use is applying an RCM relabeling.
    ///
    /// # Panics
    /// Panics if the pattern is not square or `perm` is not a permutation.
    pub fn permute_symmetric(&self, perm: &[u32]) -> Csr<I> {
        assert_eq!(self.nrows, self.ncols, "symmetric permutation needs a square pattern");
        assert_eq!(perm.len(), self.nrows, "permutation length mismatch");
        debug_assert!(is_permutation(perm));
        let mut rows: Vec<Vec<u32>> = vec![Vec::new(); self.nrows];
        for i in 0..self.nrows {
            let new_i = perm[i] as usize;
            rows[new_i] = self.row(i).iter().map(|&j| perm[j as usize]).collect();
        }
        Self::from_rows_generic(self.ncols, &rows)
    }

    /// Permutes the columns of the pattern: new column id of old column `j`
    /// is `perm[j]`. Rows are re-sorted.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..ncols`.
    pub fn permute_columns(&self, perm: &[u32]) -> Csr<I> {
        assert_eq!(perm.len(), self.ncols, "permutation length mismatch");
        debug_assert!(crate::csr::is_permutation(perm));
        let mut rows: Vec<Vec<u32>> = Vec::with_capacity(self.nrows);
        for i in 0..self.nrows {
            let mut row: Vec<u32> = self.row(i).iter().map(|&j| perm[j as usize]).collect();
            row.sort_unstable();
            rows.push(row);
        }
        Self::from_rows_generic(self.ncols, &rows)
    }
}

/// Checks that `perm` is a permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[u32]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let p = p as usize;
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // 3x4:
        // row 0: cols 0, 2
        // row 1: cols 1, 2, 3
        // row 2: (empty)
        Csr::from_parts(3, 4, vec![0, 2, 5, 5], vec![0, 2, 1, 2, 3])
    }

    #[test]
    fn basic_accessors() {
        let m = small();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row(0), &[0, 2]);
        assert_eq!(m.row(1), &[1, 2, 3]);
        assert_eq!(m.row(2), &[] as &[u32]);
        assert_eq!(m.row_len(1), 3);
        assert!(m.contains(0, 2));
        assert!(!m.contains(0, 1));
    }

    #[test]
    fn iter_yields_all_entries() {
        let m = small();
        let entries: Vec<(usize, u32)> = m.iter().collect();
        assert_eq!(entries, vec![(0, 0), (0, 2), (1, 1), (1, 2), (1, 3)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = small();
        let t = m.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        assert_eq!(t.nnz(), 5);
        assert_eq!(t.row(0), &[0]);
        assert_eq!(t.row(1), &[1]);
        assert_eq!(t.row(2), &[0, 1]);
        assert_eq!(t.row(3), &[1]);
        assert_eq!(t.transpose(), m);
        t.validate().unwrap();
    }

    #[test]
    fn from_rows_sorts_and_dedups() {
        let m = Csr::from_rows(5, &[vec![3, 1, 3, 0], vec![]]);
        assert_eq!(m.row(0), &[0, 1, 3]);
        assert_eq!(m.row(1), &[] as &[u32]);
    }

    #[test]
    fn symmetry_detection() {
        let sym = Csr::from_rows(3, &[vec![1], vec![0, 2], vec![1]]);
        assert!(sym.is_structurally_symmetric());
        let asym = Csr::from_rows(3, &[vec![1], vec![2], vec![]]);
        assert!(!asym.is_structurally_symmetric());
        let rect = small();
        assert!(!rect.is_structurally_symmetric());
    }

    #[test]
    fn symmetrize_produces_symmetric_superset() {
        let asym = Csr::from_rows(3, &[vec![1, 2], vec![2], vec![]]);
        let s = asym.symmetrize();
        assert!(s.is_structurally_symmetric());
        for (i, j) in asym.iter() {
            assert!(s.contains(i, j));
            assert!(s.contains(j as usize, i as u32));
        }
        s.validate().unwrap();
    }

    #[test]
    fn strip_diagonal_removes_self_loops() {
        let m = Csr::from_rows(3, &[vec![0, 1], vec![1], vec![0, 2]]);
        let s = m.strip_diagonal();
        assert_eq!(s.row(0), &[1]);
        assert_eq!(s.row(1), &[] as &[u32]);
        assert_eq!(s.row(2), &[0]);
        s.validate().unwrap();
    }

    #[test]
    fn permute_symmetric_preserves_structure() {
        let m = Csr::from_rows(3, &[vec![1], vec![0, 2], vec![1]]);
        // relabel: 0→2, 1→0, 2→1
        let p = m.permute_symmetric(&[2, 0, 1]);
        assert!(p.is_structurally_symmetric());
        assert_eq!(p.nnz(), m.nnz());
        // old edge (0,1) is now (2,0)
        assert!(p.contains(2, 0));
        assert!(p.contains(0, 2));
        p.validate().unwrap();
        // identity permutation is a no-op
        assert_eq!(m.permute_symmetric(&[0, 1, 2]), m);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn permute_symmetric_rejects_rectangular() {
        small().permute_symmetric(&[0, 1, 2]);
    }

    #[test]
    fn permute_columns_relabels() {
        let m = small();
        // swap cols 0 and 3
        let p = m.permute_columns(&[3, 1, 2, 0]);
        assert_eq!(p.row(0), &[2, 3]);
        assert_eq!(p.row(1), &[0, 1, 2]);
        p.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn unsorted_row_rejected() {
        Csr::from_parts(1, 3, vec![0, 2], vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "invalid CSR")]
    fn out_of_range_column_rejected() {
        Csr::from_parts(1, 2, vec![0, 1], vec![5]);
    }

    #[test]
    fn out_of_range_column_is_structured() {
        // 3x4 row with column 9: the error pinpoints row, column, and bound
        let err = Csr::try_from_parts(2, 4, vec![0, 1, 2], vec![0, 9]).unwrap_err();
        assert_eq!(
            err,
            CsrError::ColumnOutOfBounds {
                row: 1,
                col: 9,
                ncols: 4
            }
        );
        assert!(err.to_string().contains("column 9 >= ncols 4"), "{err}");
        // out-of-bounds is reported even when the row is also unsorted
        let err = Csr::try_from_parts(1, 3, vec![0, 2], vec![7, 1]).unwrap_err();
        assert!(matches!(err, CsrError::ColumnOutOfBounds { col: 7, .. }), "{err:?}");
    }

    #[test]
    fn structured_errors_cover_every_invariant() {
        assert!(matches!(
            Csr::try_from_parts(2, 2, vec![0, 1], vec![0]).unwrap_err(),
            CsrError::RowPtrLength { len: 2, nrows: 2 }
        ));
        assert!(matches!(
            Csr::try_from_parts(1, 2, vec![0, 2], vec![0]).unwrap_err(),
            CsrError::NnzMismatch { last: 2, nnz: 1 }
        ));
        assert!(matches!(
            Csr::try_from_parts(1, 2, vec![1, 1], vec![]).unwrap_err(),
            CsrError::RowPtrStart
        ));
        // an intermediate pointer overshooting nnz and coming back down
        // must be a structured error, not a slice panic
        assert!(matches!(
            Csr::try_from_parts(2, 2, vec![0, 2, 1], vec![0]).unwrap_err(),
            CsrError::RowPtrDecreasing { row: 1 }
        ));
        assert!(matches!(
            Csr::try_from_parts(1, 3, vec![0, 2], vec![1, 1]).unwrap_err(),
            CsrError::RowNotSorted { row: 0 }
        ));
    }

    #[test]
    fn index_width_conversion_roundtrips() {
        let m = small();
        let wide: Csr<u64> = m.to_index();
        assert_eq!(wide.nrows(), m.nrows());
        assert_eq!(wide.nnz(), m.nnz());
        for i in 0..m.nrows() {
            assert_eq!(wide.row(i), m.row(i));
        }
        wide.validate().unwrap();
        let back: Csr<u32> = wide.to_index();
        assert_eq!(back, m);
        // wide-index structural ops stay wide
        let t: Csr<u64> = wide.transpose();
        assert_eq!(t.row(2), &[0, 1]);
        t.validate().unwrap();
    }

    #[test]
    fn index_width_auto_dispatch_rule() {
        assert_eq!(IndexWidth::auto_for(0), IndexWidth::U32);
        assert_eq!(IndexWidth::auto_for(u32::MAX as usize), IndexWidth::U32);
        assert_eq!(IndexWidth::auto_for(u32::MAX as usize + 1), IndexWidth::U64);
        assert_eq!(IndexWidth::from_name("U32"), Some(IndexWidth::U32));
        assert_eq!(IndexWidth::from_name("u64"), Some(IndexWidth::U64));
        assert_eq!(IndexWidth::from_name("u16"), None);
        assert_eq!(IndexWidth::U32.label(), "u32");
    }

    #[test]
    fn prefetch_row_is_safe_everywhere() {
        let m = small();
        for i in 0..m.nrows() + 2 {
            m.prefetch_row(i); // includes out-of-range: must not panic
        }
    }

    #[test]
    fn empty_matrix_is_valid() {
        let m = Csr::empty(4, 7);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.transpose().nrows(), 7);
    }

    #[test]
    fn is_permutation_checks() {
        assert!(is_permutation(&[2, 0, 1]));
        assert!(!is_permutation(&[0, 0, 1]));
        assert!(!is_permutation(&[0, 3, 1]));
        assert!(is_permutation(&[]));
    }
}
