//! Dependency-free chrome-trace reader and schema checker.
//!
//! The workspace is hermetic (no registry crates), so this module carries
//! a minimal recursive-descent JSON parser — enough to load the files the
//! [`chrome_trace_json`](crate::chrome_trace_json) exporter writes and to
//! validate third-party traces against the same shape. The
//! `trace_schema_check` binary and the CI trace smoke are built on it.

/// A parsed JSON value. Objects preserve key order (the exporter's output
/// is deterministic, which keeps golden tests simple).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; counter values up to 2^53 round-trip).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses a JSON document. Errors carry a byte offset and a short reason.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    _ => return Err(format!("object key must be a string at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null").map(|_| Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogates would need pairing; the exporter never
                        // writes them, so map them to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is safe).
                let rest = &b[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

/// One event from a chrome-trace file (metadata or span).
#[derive(Clone, Debug)]
pub struct ReadEvent {
    /// Event name (`color`, `conflict`, `region`, `thread_name`, ...).
    pub name: String,
    /// Phase: `"X"` for complete spans, `"M"` for metadata.
    pub ph: String,
    /// Team thread id.
    pub tid: u64,
    /// Start timestamp in microseconds (0 for metadata).
    pub ts_us: f64,
    /// Duration in microseconds (0 for metadata).
    pub dur_us: f64,
}

/// A loaded chrome-trace file.
///
/// # Example
///
/// Round-trip a recorder through the exporter and read it back:
///
/// ```
/// use trace::{reader::ChromeTrace, Recorder, SpanKind};
///
/// let rec = Recorder::new(2);
/// rec.record_span(0, SpanKind::Color, 0, 1_000, 2_000);
/// rec.record_span(0, SpanKind::Region, u32::MAX, 1_000, 2_000);
/// rec.record_span(1, SpanKind::Region, u32::MAX, 3_000, 500);
///
/// let json = trace::chrome_trace_json(&rec, "doctest");
/// let trace = ChromeTrace::parse(&json).expect("well-formed trace");
///
/// assert_eq!(trace.spans().count(), 3);
/// let busy = trace.busy_per_thread(); // sums the `region` spans per tid
/// assert_eq!(busy.len(), 2);
/// assert!((busy[0].1 - 2.0).abs() < 1e-9); // tid 0: 2000 ns = 2 us busy
/// ```
#[derive(Clone, Debug)]
pub struct ChromeTrace {
    /// All events, in file order.
    pub events: Vec<ReadEvent>,
}

impl ChromeTrace {
    /// Parses and validates a chrome-trace JSON document.
    ///
    /// Accepts the object form (`{"traceEvents": [...]}`) required by the
    /// exporter. Every event must carry a string `name`, a string `ph`,
    /// and a numeric `tid`; `"X"` events must also carry numeric
    /// `ts`/`dur`. Violations return a description of the first offender —
    /// this is the "tiny in-repo schema checker" the CI smoke runs.
    pub fn parse(text: &str) -> Result<Self, String> {
        let doc = parse(text)?;
        let events = doc
            .get("traceEvents")
            .ok_or("missing `traceEvents` key")?
            .as_arr()
            .ok_or("`traceEvents` is not an array")?;
        let mut out = Vec::with_capacity(events.len());
        for (i, e) in events.iter().enumerate() {
            let name = e
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing string `name`"))?
                .to_string();
            let ph = e
                .get("ph")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("event {i}: missing string `ph`"))?
                .to_string();
            let tid = e
                .get("tid")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric `tid`"))?
                as u64;
            let (ts_us, dur_us) = if ph == "X" {
                let ts = e
                    .get("ts")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: `X` event missing numeric `ts`"))?;
                let dur = e
                    .get("dur")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("event {i}: `X` event missing numeric `dur`"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("event {i}: negative ts/dur"));
                }
                (ts, dur)
            } else {
                (0.0, 0.0)
            };
            out.push(ReadEvent {
                name,
                ph,
                tid,
                ts_us,
                dur_us,
            });
        }
        Ok(Self { events: out })
    }

    /// Iterates the complete (`ph == "X"`) span events.
    pub fn spans(&self) -> impl Iterator<Item = &ReadEvent> {
        self.events.iter().filter(|e| e.ph == "X")
    }

    /// Sums `region` span durations per thread id, ascending by tid —
    /// the data behind the imbalance table.
    pub fn busy_per_thread(&self) -> Vec<(u64, f64)> {
        let mut busy: Vec<(u64, f64)> = Vec::new();
        for e in self.spans().filter(|e| e.name == "region") {
            match busy.iter_mut().find(|(tid, _)| *tid == e.tid) {
                Some((_, acc)) => *acc += e.dur_us,
                None => busy.push((e.tid, e.dur_us)),
            }
        }
        busy.sort_by_key(|(tid, _)| *tid);
        busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse(r#"{"a": [1, -2.5, "x\n", true, null], "b": {"c": 3e2}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_arr().unwrap().len(), 5);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_f64(), Some(300.0));
        assert_eq!(
            doc.get("a").unwrap().as_arr().unwrap()[2].as_str(),
            Some("x\n")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse(r#"{"s": "unterminated"#).is_err());
    }

    #[test]
    fn schema_checker_rejects_missing_fields() {
        assert!(ChromeTrace::parse(r#"{"other": []}"#).is_err());
        assert!(ChromeTrace::parse(r#"{"traceEvents": [{"ph": "X"}]}"#).is_err());
        let no_dur = r#"{"traceEvents": [{"name": "a", "ph": "X", "tid": 0, "ts": 1}]}"#;
        assert!(ChromeTrace::parse(no_dur).is_err());
        let neg = r#"{"traceEvents": [
            {"name": "a", "ph": "X", "tid": 0, "ts": -1, "dur": 2}]}"#;
        assert!(ChromeTrace::parse(neg).is_err());
    }

    #[test]
    fn schema_checker_accepts_minimal_trace() {
        let ok = r#"{"traceEvents": [
            {"name": "region", "ph": "X", "tid": 1, "ts": 0.5, "dur": 10},
            {"name": "thread_name", "ph": "M", "tid": 1, "args": {"name": "t"}}]}"#;
        let t = ChromeTrace::parse(ok).unwrap();
        assert_eq!(t.events.len(), 2);
        assert_eq!(t.spans().count(), 1);
        assert_eq!(t.busy_per_thread(), vec![(1, 10.0)]);
    }
}
