//! Fixed-capacity wrap-around span buffers.

/// What a recorded span covers. Kinds map to event names in the
/// chrome-trace export.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One thread's participation in a parallel region (busy time).
    Region,
    /// A runner-level optimistic coloring phase.
    Color,
    /// A runner-level conflict-removal phase.
    Conflict,
    /// The sequential repair fallback after a contained fault.
    Repair,
}

impl SpanKind {
    /// Stable name used by the chrome-trace exporter.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Region => "region",
            SpanKind::Color => "color",
            SpanKind::Conflict => "conflict",
            SpanKind::Repair => "repair",
        }
    }
}

/// One completed span, timestamped relative to the recorder's epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Span start, nanoseconds since the recorder epoch.
    pub ts_ns: u64,
    /// Span duration in nanoseconds.
    pub dur_ns: u64,
    /// What the span covers.
    pub kind: SpanKind,
    /// Runner iteration the span belongs to (`u32::MAX` when not tied to
    /// an iteration, e.g. region spans).
    pub iter: u32,
}

/// A bounded span buffer that overwrites its oldest entry when full.
///
/// Recording must never allocate or block (it runs inside the measured
/// region, possibly during a panic unwind), so the ring is sized once at
/// construction and wraps. [`overwritten`](EventRing::overwritten) reports
/// how many spans were lost to wrapping so exporters can flag truncation
/// instead of silently presenting a partial timeline.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    cap: usize,
    /// Next write position once the ring is full.
    head: usize,
    overwritten: u64,
}

impl EventRing {
    /// Creates a ring holding at most `cap` spans (allocated eagerly).
    pub fn new(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            overwritten: 0,
        }
    }

    /// Appends a span, overwriting the oldest one when full.
    #[inline]
    pub fn push(&mut self, e: Event) {
        if self.cap == 0 {
            self.overwritten = self.overwritten.saturating_add(1);
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.cap;
            self.overwritten = self.overwritten.saturating_add(1);
        }
    }

    /// Number of spans currently stored.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no span has been stored.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Spans lost to wrap-around (0 when the ring never filled).
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Iterates stored spans oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let (older, newer) = self.buf.split_at(self.head);
        newer.iter().chain(older.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            dur_ns: 1,
            kind: SpanKind::Region,
            iter: u32::MAX,
        }
    }

    #[test]
    fn stores_in_order_below_capacity() {
        let mut r = EventRing::new(4);
        for t in 0..3 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 0);
        let ts: Vec<u64> = r.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![0, 1, 2]);
    }

    #[test]
    fn wrap_around_keeps_newest_and_counts_losses() {
        let mut r = EventRing::new(4);
        for t in 0..10 {
            r.push(ev(t));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 6);
        // Oldest-first iteration over the surviving (newest) spans.
        let ts: Vec<u64> = r.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![6, 7, 8, 9]);
    }

    #[test]
    fn wrap_around_exactly_at_capacity_boundary() {
        let mut r = EventRing::new(3);
        for t in 0..3 {
            r.push(ev(t));
        }
        assert_eq!(r.overwritten(), 0);
        r.push(ev(3));
        assert_eq!(r.len(), 3);
        assert_eq!(r.overwritten(), 1);
        let ts: Vec<u64> = r.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![1, 2, 3]);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut r = EventRing::new(0);
        r.push(ev(0));
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 2);
        assert_eq!(r.iter().count(), 0);
    }
}
