//! The per-team recorder: one cache-padded slot per thread.

use std::cell::UnsafeCell;
use std::time::Instant;

use crate::counter::{Counter, CounterSheet};
use crate::ring::{Event, EventRing, SpanKind};

/// Default per-thread span capacity: a span per phase per iteration plus a
/// region span per kernel launch stays well under this for every paper
/// workload; at 32 bytes per event the slot costs 128 KiB.
pub(crate) const DEFAULT_RING_CAPACITY: usize = 4096;

/// Pads each slot to two cache lines so neighboring threads never share a
/// line (same layout contract as `par::CachePadded`; duplicated here
/// because `par` depends on this crate, not the other way around).
#[repr(align(128))]
struct Padded<T>(T);

struct Slot {
    counters: CounterSheet,
    ring: EventRing,
}

/// Collects per-thread counters and spans for one pool's lifetime.
///
/// # Write partitioning
///
/// The recorder holds one cache-padded slot per logical thread. Mutation
/// goes through `&self` (so a recorder shared across a team can be written
/// from inside parallel regions) under the same contract as
/// `par::ThreadScratch`: **slot `tid` may only be accessed by the team
/// member with that id, and the aggregate readers
/// ([`snapshot_counters`](Recorder::snapshot_counters),
/// [`events`](Recorder::events)) may only run between regions** — the
/// pool's join barrier orders all slot writes before them. The write path
/// is lock-free and allocation-free: a counter add is one array store, a
/// span push writes a fixed ring slot.
///
/// # Fault containment
///
/// Busy time is recorded by [`BusyGuard`] **on drop**, so when a worker
/// panics inside a region the unwind still flushes its span and busy-time
/// counter before `par::Pool::try_run` reports the fault — a contained
/// panic yields a complete, well-formed trace.
pub struct Recorder {
    epoch: Instant,
    slots: Vec<Padded<UnsafeCell<Slot>>>,
}

// SAFETY: concurrent access is partitioned by thread id per the contract
// documented on `Recorder`; distinct slots never alias and aggregate reads
// are ordered after slot writes by the pool's join barrier.
unsafe impl Sync for Recorder {}

impl Recorder {
    /// Creates a recorder for a team of `threads` members with the default
    /// per-thread ring capacity.
    pub fn new(threads: usize) -> Self {
        Self::with_ring_capacity(threads, DEFAULT_RING_CAPACITY)
    }

    /// Creates a recorder with an explicit per-thread ring capacity
    /// (`ring_cap` spans per thread; see [`EventRing`]).
    pub fn with_ring_capacity(threads: usize, ring_cap: usize) -> Self {
        let slots = (0..threads.max(1))
            .map(|_| {
                Padded(UnsafeCell::new(Slot {
                    counters: CounterSheet::new(),
                    ring: EventRing::new(ring_cap),
                }))
            })
            .collect();
        Self {
            epoch: Instant::now(),
            slots,
        }
    }

    /// Number of per-thread slots.
    pub fn threads(&self) -> usize {
        self.slots.len()
    }

    /// Nanoseconds elapsed since the recorder was created — the time base
    /// of every recorded span.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        // 2^64 ns ≈ 584 years; the cast cannot truncate in practice.
        self.epoch.elapsed().as_nanos() as u64
    }

    #[inline]
    fn slot(&self, tid: usize) -> &UnsafeCell<Slot> {
        &self.slots[tid].0
    }

    /// Adds `n` to thread `tid`'s counter `c`.
    ///
    /// Must be called from team member `tid` (see the struct-level write
    /// partitioning contract).
    #[inline]
    pub fn count(&self, tid: usize, c: Counter, n: u64) {
        // SAFETY: slot `tid` is only touched by team member `tid`.
        let slot = unsafe { &mut *self.slot(tid).get() };
        slot.counters.add(c, n);
    }

    /// Merges a locally accumulated sheet into thread `tid`'s counters —
    /// the kernels batch per-chunk counts in registers and flush once.
    ///
    /// Must be called from team member `tid`.
    #[inline]
    pub fn merge(&self, tid: usize, local: &CounterSheet) {
        // SAFETY: slot `tid` is only touched by team member `tid`.
        let slot = unsafe { &mut *self.slot(tid).get() };
        slot.counters.merge(local);
    }

    /// Records a completed span on thread `tid`'s ring.
    ///
    /// Must be called from team member `tid`.
    #[inline]
    pub fn record_span(&self, tid: usize, kind: SpanKind, iter: u32, ts_ns: u64, dur_ns: u64) {
        // SAFETY: slot `tid` is only touched by team member `tid`.
        let slot = unsafe { &mut *self.slot(tid).get() };
        slot.ring.push(Event {
            ts_ns,
            dur_ns,
            kind,
            iter,
        });
    }

    /// Starts a busy-time span for team member `tid`; the returned guard
    /// records a [`SpanKind::Region`] span and bumps [`Counter::BusyNs`]
    /// when dropped — **including during a panic unwind**, which is what
    /// keeps traces well-formed under `try_run` fault containment.
    #[inline]
    pub fn busy_guard(&self, tid: usize) -> BusyGuard<'_> {
        BusyGuard {
            rec: self,
            tid,
            start_ns: self.now_ns(),
        }
    }

    /// Copies every thread's counter sheet. Call only between parallel
    /// regions (the join barrier orders slot writes before this read).
    pub fn snapshot_counters(&self) -> Vec<CounterSheet> {
        self.slots
            .iter()
            // SAFETY: no region is active, so no slot has a live writer.
            .map(|s| unsafe { (*s.0.get()).counters })
            .collect()
    }

    /// Team-total counters (all thread sheets merged). Call only between
    /// parallel regions.
    pub fn totals(&self) -> CounterSheet {
        let mut total = CounterSheet::new();
        for sheet in self.snapshot_counters() {
            total.merge(&sheet);
        }
        total
    }

    /// Copies every thread's spans as `(tid, event)` pairs, oldest-first
    /// per thread. Call only between parallel regions.
    pub fn events(&self) -> Vec<(usize, Event)> {
        let mut out = Vec::new();
        for (tid, s) in self.slots.iter().enumerate() {
            // SAFETY: no region is active, so no slot has a live writer.
            let slot = unsafe { &*s.0.get() };
            out.extend(slot.ring.iter().map(|&e| (tid, e)));
        }
        out
    }

    /// Total spans lost to ring wrap-around across all threads. Call only
    /// between parallel regions.
    pub fn spans_dropped(&self) -> u64 {
        self.slots
            .iter()
            // SAFETY: no region is active, so no slot has a live writer.
            .map(|s| unsafe { (*s.0.get()).ring.overwritten() })
            .sum()
    }
}

/// Drop guard measuring one thread's participation in a parallel region;
/// see [`Recorder::busy_guard`].
pub struct BusyGuard<'a> {
    rec: &'a Recorder,
    tid: usize,
    start_ns: u64,
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        let dur = self.rec.now_ns().saturating_sub(self.start_ns);
        self.rec.count(self.tid, Counter::BusyNs, dur);
        self.rec
            .record_span(self.tid, SpanKind::Region, u32::MAX, self.start_ns, dur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_partition_by_thread() {
        let rec = Recorder::new(3);
        rec.count(0, Counter::VerticesColored, 5);
        rec.count(2, Counter::VerticesColored, 7);
        let sheets = rec.snapshot_counters();
        assert_eq!(sheets[0].get(Counter::VerticesColored), 5);
        assert_eq!(sheets[1].get(Counter::VerticesColored), 0);
        assert_eq!(sheets[2].get(Counter::VerticesColored), 7);
        assert_eq!(rec.totals().get(Counter::VerticesColored), 12);
    }

    #[test]
    fn busy_guard_records_span_and_counter_on_drop() {
        let rec = Recorder::new(1);
        {
            let _g = rec.busy_guard(0);
            std::hint::black_box(0u64);
        }
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].0, 0);
        assert_eq!(events[0].1.kind, SpanKind::Region);
        assert_eq!(
            rec.totals().get(Counter::BusyNs),
            events[0].1.dur_ns,
            "busy counter and region span must agree"
        );
    }

    #[test]
    fn busy_guard_flushes_during_unwind() {
        let rec = Recorder::new(1);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = rec.busy_guard(0);
            panic!("worker fault");
        }));
        assert!(caught.is_err());
        // The unwind ran the guard's Drop: span + busy time are recorded.
        assert_eq!(rec.events().len(), 1);
        assert!(rec.totals().get(Counter::BusyNs) > 0 || rec.events()[0].1.dur_ns == 0);
    }

    #[test]
    fn merge_flushes_local_sheet() {
        let rec = Recorder::new(2);
        let mut local = CounterSheet::new();
        local.add(Counter::ForbiddenProbes, 100);
        local.add(Counter::ChunksClaimed, 1);
        rec.merge(1, &local);
        rec.merge(1, &local);
        let sheets = rec.snapshot_counters();
        assert_eq!(sheets[1].get(Counter::ForbiddenProbes), 200);
        assert_eq!(sheets[1].get(Counter::ChunksClaimed), 2);
    }

    #[test]
    fn zero_thread_recorder_clamps_to_one_slot() {
        let rec = Recorder::new(0);
        assert_eq!(rec.threads(), 1);
    }
}
