//! Validates a chrome-trace JSON file and prints its per-thread summary.
//!
//! Usage: `trace_schema_check FILE [--quiet]`
//!
//! Exit codes: 0 = valid, 1 = schema violation, 2 = usage/IO error.
//! CI's trace smoke (`scripts/bench.sh --trace`, `scripts/verify.sh`)
//! runs this against the file the CLI's `--trace` flag emits.

use std::process::ExitCode;

use trace::reader::ChromeTrace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let [path] = files.as_slice() else {
        eprintln!("usage: trace_schema_check FILE [--quiet]");
        return ExitCode::from(2);
    };

    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_schema_check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let trace = match ChromeTrace::parse(&text) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_schema_check: {path}: INVALID: {e}");
            return ExitCode::from(1);
        }
    };

    let spans = trace.spans().count();
    let busy = trace.busy_per_thread();
    if !quiet {
        println!(
            "{path}: OK ({} events, {spans} spans, {} threads with busy time)",
            trace.events.len(),
            busy.len()
        );
        if !busy.is_empty() {
            let max = busy.iter().map(|&(_, b)| b).fold(0.0f64, f64::max);
            let mean = busy.iter().map(|&(_, b)| b).sum::<f64>() / busy.len() as f64;
            println!("tid     busy_ms");
            for (tid, us) in &busy {
                println!("{tid:>3} {:>11.3}", us / 1e3);
            }
            let ratio = if mean > 0.0 { max / mean } else { 0.0 };
            println!("busy imbalance (max/mean): {ratio:.2}");
        }
    }
    ExitCode::SUCCESS
}
