//! Monotonic per-thread counters and their fixed-size accumulation sheet.

/// The counter vocabulary. Every counter is monotonic within a run and
/// accumulated per thread; totals are merged after the join, so no counter
/// is ever shared between writers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Chunks claimed from the dynamic cursor or a local steal slot.
    ChunksClaimed,
    /// Steal attempts under [`Sched::Stealing`](../par/enum.Sched.html)
    /// (a drained worker probing victims), successful or not.
    StealsAttempted,
    /// Steal attempts that won a range.
    StealsWon,
    /// Optimistic color assignments (recolored vertices count again).
    VerticesColored,
    /// Conflicts detected — vertices pushed to the next work queue.
    ConflictsDetected,
    /// Forbidden-set inserts while gathering a distance-2 neighborhood.
    ForbiddenProbes,
    /// Software prefetch hints issued by the gather loops.
    PrefetchIssues,
    /// 8-lane vector blocks executed by the SIMD gather/conflict kernels
    /// (zero under `--kernel scalar` or when pin lists are too short).
    SimdPathHits,
    /// Steals won from a victim in the thief's near tier (same physical
    /// core/package under the topology model). Subset of `StealsWon`.
    StealsNear,
    /// Steals won from a far victim. `StealsNear + StealsFar = StealsWon`
    /// when the topology-aware scheduler is active.
    StealsFar,
    /// Nanoseconds spent inside parallel regions (busy time).
    BusyNs,
}

impl Counter {
    /// Number of distinct counters (the sheet's array length).
    pub const COUNT: usize = 11;

    /// All counters, in sheet order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::ChunksClaimed,
        Counter::StealsAttempted,
        Counter::StealsWon,
        Counter::VerticesColored,
        Counter::ConflictsDetected,
        Counter::ForbiddenProbes,
        Counter::PrefetchIssues,
        Counter::SimdPathHits,
        Counter::StealsNear,
        Counter::StealsFar,
        Counter::BusyNs,
    ];

    /// Stable snake_case label used by the JSON exporters.
    pub fn label(self) -> &'static str {
        match self {
            Counter::ChunksClaimed => "chunks_claimed",
            Counter::StealsAttempted => "steals_attempted",
            Counter::StealsWon => "steals_won",
            Counter::VerticesColored => "vertices_colored",
            Counter::ConflictsDetected => "conflicts_detected",
            Counter::ForbiddenProbes => "forbidden_probes",
            Counter::PrefetchIssues => "prefetch_issues",
            Counter::SimdPathHits => "simd_path_hits",
            Counter::StealsNear => "steals_near",
            Counter::StealsFar => "steals_far",
            Counter::BusyNs => "busy_ns",
        }
    }
}

/// One thread's counter values — a plain array of `u64`, owned by exactly
/// one writer at a time (see [`Recorder`](crate::Recorder) for the
/// partitioning contract). Also used as a *delta* between two snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CounterSheet {
    vals: [u64; Counter::COUNT],
}

impl CounterSheet {
    /// An all-zero sheet.
    pub const fn new() -> Self {
        Self {
            vals: [0; Counter::COUNT],
        }
    }

    /// Adds `n` to counter `c`. Saturates instead of wrapping: a counter
    /// pinned at `u64::MAX` is an obvious "overflowed" sentinel, while a
    /// wrapped counter silently corrupts every downstream delta.
    #[inline]
    pub fn add(&mut self, c: Counter, n: u64) {
        let v = &mut self.vals[c as usize];
        *v = v.saturating_add(n);
    }

    /// Current value of counter `c`.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Element-wise saturating difference `self - earlier` — the activity
    /// between two snapshots of a monotonic sheet.
    pub fn delta(&self, earlier: &CounterSheet) -> CounterSheet {
        let mut out = CounterSheet::new();
        for (i, v) in out.vals.iter_mut().enumerate() {
            *v = self.vals[i].saturating_sub(earlier.vals[i]);
        }
        out
    }

    /// Element-wise saturating sum of `other` into `self` (merging thread
    /// sheets into a team total).
    pub fn merge(&mut self, other: &CounterSheet) {
        for (i, v) in self.vals.iter_mut().enumerate() {
            *v = v.saturating_add(other.vals[i]);
        }
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_roundtrip() {
        let mut s = CounterSheet::new();
        s.add(Counter::VerticesColored, 7);
        s.add(Counter::VerticesColored, 3);
        s.add(Counter::StealsWon, 1);
        assert_eq!(s.get(Counter::VerticesColored), 10);
        assert_eq!(s.get(Counter::StealsWon), 1);
        assert_eq!(s.get(Counter::BusyNs), 0);
    }

    #[test]
    fn overflow_saturates_instead_of_wrapping() {
        let mut s = CounterSheet::new();
        s.add(Counter::ForbiddenProbes, u64::MAX - 1);
        s.add(Counter::ForbiddenProbes, 5);
        assert_eq!(s.get(Counter::ForbiddenProbes), u64::MAX);
        // Merging two near-max sheets must also pin, not wrap.
        let mut t = CounterSheet::new();
        t.add(Counter::ForbiddenProbes, u64::MAX);
        t.merge(&s);
        assert_eq!(t.get(Counter::ForbiddenProbes), u64::MAX);
    }

    #[test]
    fn delta_between_snapshots() {
        let mut a = CounterSheet::new();
        a.add(Counter::ChunksClaimed, 10);
        let mut b = a;
        b.add(Counter::ChunksClaimed, 5);
        b.add(Counter::ConflictsDetected, 2);
        let d = b.delta(&a);
        assert_eq!(d.get(Counter::ChunksClaimed), 5);
        assert_eq!(d.get(Counter::ConflictsDetected), 2);
        // A (buggy) backwards delta saturates at zero rather than wrapping.
        assert!(a.delta(&b).get(Counter::ChunksClaimed) == 0);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Counter::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), Counter::COUNT);
    }
}
