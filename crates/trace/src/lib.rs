//! Low-overhead observability for the BGPC workspace.
//!
//! The paper's evaluation is built on phase-level visibility: Figure 1
//! plots per-iteration coloring vs. conflict-removal time and Table I
//! reports residual work-queue sizes. This crate provides that telemetry
//! for our runners without perturbing what it measures:
//!
//! - [`Counter`] — a fixed vocabulary of monotonic per-thread counters
//!   (chunks claimed, steals attempted/won, vertices colored, conflicts
//!   detected, forbidden-set probes, prefetch issues, busy nanoseconds),
//!   accumulated in plain thread-owned `u64`s (see [`CounterSheet`]).
//! - [`EventRing`] — a fixed-capacity, wrap-around span buffer per thread;
//!   recording never allocates and never blocks.
//! - [`Recorder`] — the per-team aggregation point. Each thread writes only
//!   to its own cache-padded slot, so there is no sharing and no locking on
//!   the record path. `par::Pool` installs busy-time guards around every
//!   parallel region; the guards record on drop, so a panicking worker
//!   still flushes its timing before the unwind leaves the region
//!   (`try_run` fault containment is preserved).
//! - Exporters — [`chrome_trace_json`] (loadable in `chrome://tracing` and
//!   Perfetto), [`imbalance_table`] (human-readable per-thread busy time
//!   with a max/mean ratio), and [`RunSummary`] (a structured report merged
//!   into `BENCH_coloring.json` by the bench harness).
//! - [`reader`] — a dependency-free chrome-trace parser used by the
//!   `trace_schema_check` binary and by tests to validate emitted files.
//!
//! # Cost model
//!
//! Tracing is **disabled by default at run time**: a pool without an
//! installed [`Recorder`] skips every hook behind one `Option` check per
//! region, and kernels accumulate into stack-local integers that die in
//! registers. For a **compile-time** guarantee the `sink-off` feature
//! turns [`COMPILED`] into `false`, folding every accumulation site to
//! nothing. The `trace_overhead` microbench in `crates/bench` demonstrates
//! both bounds (<2% enabled, unmeasurable disabled).

#![warn(missing_docs)]

mod counter;
mod export;
pub mod reader;
mod recorder;
mod ring;

pub use counter::{Counter, CounterSheet};
pub use export::{chrome_trace_json, imbalance_table, RunSummary, ThreadSummary};
pub use recorder::{BusyGuard, Recorder};
pub use ring::{Event, EventRing, SpanKind};

/// `true` unless the `sink-off` feature compiled the counter sinks out.
///
/// Instrumentation sites in the kernels are written as
/// `if trace::COMPILED { probes += 1; }`; with `sink-off` the constant
/// folds the increment away entirely, giving a hard zero-cost guarantee
/// on top of the runtime-disabled path.
pub const COMPILED: bool = cfg!(not(feature = "sink-off"));
