//! Exporters: chrome-trace JSON, structured run summaries, and the
//! human-readable imbalance table.

use std::fmt::Write as _;

use crate::counter::{Counter, CounterSheet};
use crate::recorder::Recorder;

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders the recorder's spans as a chrome-trace ("Trace Event Format")
/// JSON object, loadable in `chrome://tracing` and Perfetto.
///
/// Spans become `ph: "X"` complete events with microsecond `ts`/`dur`
/// (the format's unit), one `pid` (0) and the team thread id as `tid`.
/// Thread-name metadata events label each row, and per-thread counter
/// totals ride along under `bgpc_counters` so a trace file is
/// self-contained.
pub fn chrome_trace_json(rec: &Recorder, process_name: &str) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"traceEvents\": [\n");
    let mut first = true;
    let mut push_event = |s: String, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("    ");
        out.push_str(&s);
    };

    let mut meta = String::new();
    meta.push_str("{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"args\": {\"name\": \"");
    escape_into(&mut meta, process_name);
    meta.push_str("\"}}");
    push_event(meta, &mut out);
    for tid in 0..rec.threads() {
        push_event(
            format!(
                "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": {tid}, \
                 \"args\": {{\"name\": \"team-{tid}\"}}}}"
            ),
            &mut out,
        );
    }
    for (tid, e) in rec.events() {
        let ts_us = e.ts_ns as f64 / 1000.0;
        let dur_us = e.dur_ns as f64 / 1000.0;
        let args = if e.iter == u32::MAX {
            String::from("{}")
        } else {
            format!("{{\"iter\": {}}}", e.iter)
        };
        push_event(
            format!(
                "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": 0, \"tid\": {tid}, \
                 \"ts\": {ts_us:.3}, \"dur\": {dur_us:.3}, \"args\": {args}}}",
                e.kind.name()
            ),
            &mut out,
        );
    }
    out.push_str("\n  ],\n  \"bgpc_counters\": [\n");
    let sheets = rec.snapshot_counters();
    for (tid, sheet) in sheets.iter().enumerate() {
        if tid > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "    {{\"tid\": {tid}");
        for c in Counter::ALL {
            let _ = write!(out, ", \"{}\": {}", c.label(), sheet.get(c));
        }
        out.push('}');
    }
    let _ = write!(
        out,
        "\n  ],\n  \"spans_dropped\": {},\n  \"displayTimeUnit\": \"ms\"\n}}\n",
        rec.spans_dropped()
    );
    out
}

/// Per-thread slice of a [`RunSummary`].
#[derive(Clone, Copy, Debug)]
pub struct ThreadSummary {
    /// Team thread id.
    pub tid: usize,
    /// Final counter values for this thread.
    pub sheet: CounterSheet,
}

/// A structured whole-run report derived from a [`Recorder`] — the bench
/// harness merges its JSON form into `BENCH_coloring.json`.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Team size the recorder tracked.
    pub threads: usize,
    /// Per-thread final counters.
    pub per_thread: Vec<ThreadSummary>,
    /// Team-total counters.
    pub totals: CounterSheet,
    /// Busy-time imbalance: `max(busy) / mean(busy)` (1.0 = perfectly
    /// balanced; 0.0 when nothing was recorded).
    pub imbalance: f64,
    /// Spans lost to ring wrap-around.
    pub spans_dropped: u64,
}

impl RunSummary {
    /// Builds the summary from a recorder. Call only between parallel
    /// regions (see [`Recorder`]'s partitioning contract).
    pub fn from_recorder(rec: &Recorder) -> Self {
        let sheets = rec.snapshot_counters();
        let mut totals = CounterSheet::new();
        for s in &sheets {
            totals.merge(s);
        }
        let busy: Vec<u64> = sheets.iter().map(|s| s.get(Counter::BusyNs)).collect();
        let max = busy.iter().copied().max().unwrap_or(0);
        let mean = if busy.is_empty() {
            0.0
        } else {
            busy.iter().sum::<u64>() as f64 / busy.len() as f64
        };
        let imbalance = if mean > 0.0 { max as f64 / mean } else { 0.0 };
        Self {
            threads: sheets.len(),
            per_thread: sheets
                .iter()
                .enumerate()
                .map(|(tid, &sheet)| ThreadSummary { tid, sheet })
                .collect(),
            totals,
            imbalance,
            spans_dropped: rec.spans_dropped(),
        }
    }

    /// Serializes the summary as a JSON object (self-contained — callers
    /// embed the string verbatim).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"threads\": {}, \"imbalance\": {:.4}, \"spans_dropped\": {}, \"totals\": {{",
            self.threads, self.imbalance, self.spans_dropped
        );
        for (i, c) in Counter::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", c.label(), self.totals.get(*c));
        }
        out.push_str("}, \"per_thread\": [");
        for (i, t) in self.per_thread.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"tid\": {}", t.tid);
            for c in Counter::ALL {
                let _ = write!(out, ", \"{}\": {}", c.label(), t.sheet.get(c));
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Formats the per-thread imbalance table: busy time, work counters, and
/// the max/mean busy ratio the paper's balance heuristics target.
///
/// ```text
/// tid   busy_ms  chunks  steal_w/a  colored  conflicts
///   0     12.34      81       3/9    10241        107
///   ...
/// busy imbalance (max/mean): 1.08
/// ```
pub fn imbalance_table(sheets: &[CounterSheet]) -> String {
    let mut out = String::new();
    out.push_str("tid     busy_ms    chunks  steal_w/a    colored  conflicts\n");
    let mut busy_max = 0u64;
    let mut busy_sum = 0u64;
    for (tid, s) in sheets.iter().enumerate() {
        let busy = s.get(Counter::BusyNs);
        busy_max = busy_max.max(busy);
        busy_sum += busy;
        let _ = writeln!(
            out,
            "{tid:>3} {:>11.3} {:>9} {:>6}/{:<4} {:>9} {:>10}",
            busy as f64 / 1e6,
            s.get(Counter::ChunksClaimed),
            s.get(Counter::StealsWon),
            s.get(Counter::StealsAttempted),
            s.get(Counter::VerticesColored),
            s.get(Counter::ConflictsDetected),
        );
    }
    let mean = if sheets.is_empty() {
        0.0
    } else {
        busy_sum as f64 / sheets.len() as f64
    };
    let ratio = if mean > 0.0 {
        busy_max as f64 / mean
    } else {
        0.0
    };
    let _ = writeln!(out, "busy imbalance (max/mean): {ratio:.2}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::SpanKind;

    fn sample_recorder() -> Recorder {
        let rec = Recorder::new(2);
        rec.count(0, Counter::VerticesColored, 10);
        rec.count(1, Counter::VerticesColored, 12);
        rec.count(0, Counter::BusyNs, 2_000_000);
        rec.count(1, Counter::BusyNs, 1_000_000);
        rec.record_span(0, SpanKind::Color, 0, 100, 500);
        rec.record_span(1, SpanKind::Region, u32::MAX, 90, 600);
        rec
    }

    #[test]
    fn chrome_trace_parses_and_carries_spans() {
        let rec = sample_recorder();
        let json = chrome_trace_json(&rec, "unit-test");
        let trace = crate::reader::ChromeTrace::parse(&json).expect("valid chrome trace");
        // 1 process_name + 2 thread_name metadata + 2 span events.
        assert_eq!(trace.events.len(), 5);
        assert_eq!(trace.spans().count(), 2);
        let color = trace.spans().find(|e| e.name == "color").unwrap();
        assert_eq!(color.tid, 0);
        assert!((color.dur_us - 0.5).abs() < 1e-9);
    }

    #[test]
    fn summary_totals_and_imbalance() {
        let rec = sample_recorder();
        let s = RunSummary::from_recorder(&rec);
        assert_eq!(s.threads, 2);
        assert_eq!(s.totals.get(Counter::VerticesColored), 22);
        // busy = [2ms, 1ms]: max/mean = 2 / 1.5
        assert!((s.imbalance - 2.0 / 1.5).abs() < 1e-9);
        let json = s.to_json();
        crate::reader::parse(&json).expect("summary JSON parses");
        assert!(json.contains("\"vertices_colored\": 22"));
    }

    #[test]
    fn imbalance_table_lists_each_thread() {
        let rec = sample_recorder();
        let table = imbalance_table(&rec.snapshot_counters());
        assert!(table.contains("busy imbalance (max/mean): 1.33"));
        assert_eq!(table.lines().count(), 4); // header + 2 rows + ratio
    }

    #[test]
    fn empty_recorder_exports_cleanly() {
        let rec = Recorder::new(1);
        let json = chrome_trace_json(&rec, "empty");
        crate::reader::ChromeTrace::parse(&json).expect("valid");
        let s = RunSummary::from_recorder(&rec);
        assert_eq!(s.imbalance, 0.0);
        assert!(imbalance_table(&rec.snapshot_counters()).contains("max/mean"));
    }
}
