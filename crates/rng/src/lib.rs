//! In-repo deterministic random number generation.
//!
//! The workspace builds fully offline, so the `rand`/`rand_chacha` crates
//! are replaced by two tiny, well-known generators:
//!
//! * [`SplitMix64`] — the seeding/stream-splitting generator from Steele,
//!   Lea & Flood ("Fast splittable pseudorandom number generators",
//!   OOPSLA'14). One multiply-xor-shift chain per output; used to expand a
//!   single `u64` seed into independent state words.
//! * [`Pcg32`] — the PCG-XSH-RR 64/32 generator (O'Neill, 2014), the
//!   workhorse stream used by every synthetic instance generator and
//!   ordering shuffle.
//!
//! Determinism contract: the same `(parameters, seed)` pair yields the
//! identical byte sequence on every platform, build, and run — the same
//! guarantee the generators previously got from ChaCha8. The streams
//! *differ* from the ChaCha8 streams, so synthetic instances changed once,
//! at the PR that introduced this crate, and are stable from then on.
//!
//! ```
//! use rng::Pcg32;
//! let mut a = Pcg32::seed_from_u64(42);
//! let mut b = Pcg32::seed_from_u64(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! let i = a.gen_range(0..10usize);
//! assert!(i < 10);
//! ```

use std::ops::{Range, RangeInclusive};

/// SplitMix64: a tiny splittable generator used for seeding.
///
/// Every call advances an internal counter by the golden-ratio increment
/// and scrambles it; distinct seeds give uncorrelated sequences, which is
/// exactly what seeding a larger-state generator needs.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Convenience: one SplitMix64 scramble of a single value (stateless).
///
/// Useful for deriving per-case or per-thread seeds from a base seed
/// without constructing a generator.
pub fn split_mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// PCG-XSH-RR 64/32: 64-bit LCG state, 32-bit permuted output.
#[derive(Clone, Debug)]
pub struct Pcg32 {
    state: u64,
    /// Stream selector; must be odd.
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion
    /// (state and stream are derived independently).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let initstate = sm.next_u64();
        let initseq = sm.next_u64();
        let mut pcg = Self {
            state: 0,
            inc: (initseq << 1) | 1,
        };
        // Standard PCG initialization: advance once, add the seed, advance.
        pcg.state = pcg.state.wrapping_mul(PCG_MULT).wrapping_add(pcg.inc);
        pcg.state = pcg.state.wrapping_add(initstate);
        pcg.next_u32();
        pcg
    }

    /// Returns the next 32-bit output.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Returns the next 64-bit output (two 32-bit draws).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let hi = self.next_u32() as u64;
        let lo = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Uniform `u64` below `bound` (exclusive) via multiply-shift with
    /// rejection — unbiased for every bound.
    #[inline]
    pub fn bounded_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bounded_u64 with zero bound");
        // Lemire's multiply-shift rejection method.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            if (m as u64) >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Uniform draw from a range — `rng.gen_range(0..n)`,
    /// `rng.gen_range(0..=i)`, `rng.gen_range(-0.05..0.05)`.
    ///
    /// # Panics
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.gen_range(0..=i);
            data.swap(i, j);
        }
    }
}

/// A range that [`Pcg32::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample_from(self, rng: &mut Pcg32) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_from(self, rng: &mut Pcg32) -> $ty {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + rng.bounded_u64(span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_from(self, rng: &mut Pcg32) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.bounded_u64(span + 1) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(usize, u32, u64);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut Pcg32) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + rng.gen_f64() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the canonical C
        // implementation (Vigna, prng.di.unimi.it).
        let mut sm = SplitMix64::new(1234567);
        assert_eq!(sm.next_u64(), 6457827717110365317);
        assert_eq!(sm.next_u64(), 3203168211198807973);
        assert_eq!(sm.next_u64(), 9817491932198370423);
    }

    #[test]
    fn pcg_streams_deterministic_and_seed_sensitive() {
        let a: Vec<u32> = {
            let mut r = Pcg32::seed_from_u64(7);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let b: Vec<u32> = {
            let mut r = Pcg32::seed_from_u64(7);
            (0..8).map(|_| r.next_u32()).collect()
        };
        let c: Vec<u32> = {
            let mut r = Pcg32::seed_from_u64(8);
            (0..8).map(|_| r.next_u32()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn bounded_values_stay_in_bounds() {
        let mut r = Pcg32::seed_from_u64(99);
        for bound in [1u64, 2, 3, 7, 10, 1000, u64::MAX] {
            for _ in 0..200 {
                assert!(r.bounded_u64(bound) < bound);
            }
        }
    }

    #[test]
    fn small_bounds_hit_every_value() {
        let mut r = Pcg32::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn inclusive_range_reaches_endpoints() {
        let mut r = Pcg32::seed_from_u64(11);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match r.gen_range(0..=3usize) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                1 | 2 => {}
                _ => unreachable!(),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = Pcg32::seed_from_u64(5);
        let vals: Vec<f64> = (0..1000).map(|_| r.gen_f64()).collect();
        assert!(vals.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut r = Pcg32::seed_from_u64(17);
        for _ in 0..500 {
            let x = r.gen_range(-0.05..0.05);
            assert!((-0.05..0.05).contains(&x));
        }
    }

    #[test]
    fn gen_bool_probability_roughly_honored() {
        let mut r = Pcg32::seed_from_u64(23);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.1)));
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        Pcg32::seed_from_u64(1).shuffle(&mut a);
        Pcg32::seed_from_u64(1).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        let mut c: Vec<u32> = (0..100).collect();
        Pcg32::seed_from_u64(2).shuffle(&mut c);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Pcg32::seed_from_u64(0).gen_range(5..5usize);
    }

    #[test]
    fn split_mix64_helper_matches_generator() {
        assert_eq!(split_mix64(42), SplitMix64::new(42).next_u64());
    }
}
