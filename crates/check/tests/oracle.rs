//! Differential-oracle properties under the minicheck shrinking harness.
//!
//! The same case logic the seeded `check_smoke` sweep runs, driven from
//! [`minicheck::Gen`] instead of a raw PCG stream: when a case fails,
//! minicheck greedily shrinks the recorded choice stream, so the panic
//! message carries a *minimal* failing instance/configuration rather than
//! whatever large case tripped first.

use check::oracle::{run_bgpc_case, run_d2gc_case};

#[test]
fn oracle_bgpc_never_diverges_from_the_sequential_baseline() {
    minicheck::check("oracle_bgpc", 120, run_bgpc_case);
}

#[test]
fn oracle_d2gc_never_diverges_from_the_sequential_baseline() {
    minicheck::check("oracle_d2gc", 120, run_d2gc_case);
}
