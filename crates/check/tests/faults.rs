//! Fault-coverage integration test.
//!
//! A single `#[test]` on purpose: the fail-point registry and the panic
//! hook are process-global, so the scenarios must run serially and must
//! not share a binary with tests that run colorings concurrently.

#[test]
fn every_registered_fail_point_is_caught_reported_and_repaired() {
    check::faultcov::check_all_faults_caught(0xFA57).unwrap_or_else(|e| panic!("{e}"));
    // Stall perturbation must leave runs clean (no degrade, valid result).
    check::faultcov::check_stall_perturbation(0xFA57).unwrap_or_else(|e| panic!("{e}"));
}
