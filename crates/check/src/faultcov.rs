//! Fault-coverage checks: every registered fail point must be *caught*.
//!
//! The runtime registers four fail points inside its parallel kernels
//! (`bgpc.color`, `bgpc.conflict`, `d2gc.color`, `d2gc.conflict`, fired
//! via [`par::faults::fire`]). Surviving an injected panic is necessary
//! but not sufficient — a runner that silently swallowed the fault and
//! returned a half-colored result would also "survive". These checks pin
//! the full containment contract for each point:
//!
//! 1. the armed panic actually fires ([`par::faults::hits`] > 0 — a
//!    check that never executes the faulty path proves nothing),
//! 2. the run reports it: `degraded` is a
//!    [`DegradeReason::WorkerPanic`] naming the correct phase, with the
//!    fail point's message preserved,
//! 3. the sequential repair still produced a valid, complete coloring.
//!
//! The fail-point registry is process-global, so these functions must not
//! run concurrently with other colorings in the same process. The
//! `check_smoke` binary runs them serially; the integration test wraps
//! them in a single `#[test]`.

use std::time::Duration;

use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::{DegradeReason, FailedPhase, Schedule};
use graph::{BipartiteGraph, Graph, Ordering};
use par::faults::{self, FaultAction};
use par::Pool;

/// One registered fail point and the phase its containment must report.
#[derive(Clone, Copy, Debug)]
pub struct FaultPoint {
    /// Registry key, as fired by the kernels.
    pub point: &'static str,
    /// Phase the degrade report must name.
    pub phase: FailedPhase,
    /// Whether the point lives in the D2GC kernels (else BGPC).
    pub d2gc: bool,
}

/// Every fail point the kernels register, with its expected phase.
pub const FAULT_POINTS: [FaultPoint; 4] = [
    FaultPoint {
        point: "bgpc.color",
        phase: FailedPhase::Color,
        d2gc: false,
    },
    FaultPoint {
        point: "bgpc.conflict",
        phase: FailedPhase::Conflict,
        d2gc: false,
    },
    FaultPoint {
        point: "d2gc.color",
        phase: FailedPhase::Color,
        d2gc: true,
    },
    FaultPoint {
        point: "d2gc.conflict",
        phase: FailedPhase::Conflict,
        d2gc: true,
    },
];

fn run_with_fault(fp: FaultPoint, seed: u64, pool: &Pool) -> Result<(), String> {
    // Deterministic, conflict-prone instances: dense enough that every
    // phase of iteration 0 visits many vertices, so a single armed firing
    // lands regardless of chunk assignment.
    if fp.d2gc {
        let m = sparse::gen::erdos_renyi(48, 96, seed);
        let g = Graph::from_symmetric_matrix(&m);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let schedule = Schedule::v_v_64d();
        let res = bgpc::d2gc::color_d2gc(&g, &order, &schedule, pool);
        check_outcome(fp, res.degraded.as_ref(), || {
            verify_d2gc(&g, &res.colors).map_err(|e| e.to_string())
        })
    } else {
        let m = sparse::gen::bipartite_uniform(64, 64, 512, seed);
        let g = BipartiteGraph::from_matrix(&m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let schedule = Schedule::v_v();
        let res = bgpc::color_bgpc(&g, &order, &schedule, pool);
        check_outcome(fp, res.degraded.as_ref(), || {
            verify_bgpc(&g, &res.colors).map_err(|e| e.to_string())
        })
    }
}

fn check_outcome(
    fp: FaultPoint,
    degraded: Option<&DegradeReason>,
    verify: impl FnOnce() -> Result<(), String>,
) -> Result<(), String> {
    if faults::hits(fp.point) == 0 {
        return Err(format!(
            "fail point `{}` armed but never fired — the check exercised nothing",
            fp.point
        ));
    }
    match degraded {
        Some(DegradeReason::WorkerPanic {
            phase,
            message,
            ..
        }) => {
            if *phase != fp.phase {
                return Err(format!(
                    "fail point `{}` reported in the wrong phase: {phase} (expected {})",
                    fp.point, fp.phase
                ));
            }
            if !message.contains(fp.point) {
                return Err(format!(
                    "degrade report for `{}` lost the fail-point message: {message:?}",
                    fp.point
                ));
            }
        }
        other => {
            return Err(format!(
                "fail point `{}` fired but the run did not report a worker panic \
                 (degraded: {other:?}) — the fault was swallowed",
                fp.point
            ));
        }
    }
    verify().map_err(|e| {
        format!(
            "repair after fail point `{}` left an invalid coloring: {e}",
            fp.point
        )
    })
}

/// Arms each registered fail point in turn (panic action, any thread),
/// runs a 4-thread coloring through it, and checks the containment
/// contract. The registry is reset between points and on exit.
pub fn check_all_faults_caught(seed: u64) -> Result<(), String> {
    let pool = Pool::new(4);
    // The injected panics are expected and contained; silence the default
    // hook so they don't spray backtraces over the check output. (This
    // function already requires exclusive use of the process-global fault
    // registry, so taking the process-global hook adds no new constraint.)
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut result = Ok(());
    for fp in FAULT_POINTS {
        faults::reset();
        faults::arm(fp.point, FaultAction::Panic);
        let outcome = run_with_fault(fp, seed, &pool);
        faults::reset();
        if outcome.is_err() {
            result = outcome;
            break;
        }
    }
    std::panic::set_hook(hook);
    result
}

/// Deep-mode perturbation: arms each point with repeated short *stalls*
/// instead of panics. A stall shifts thread interleavings without
/// aborting anything, so the run must complete clean — valid and
/// non-degraded — under the skewed timing.
pub fn check_stall_perturbation(seed: u64) -> Result<(), String> {
    let pool = Pool::new(4);
    for fp in FAULT_POINTS {
        faults::reset();
        faults::arm_with(
            fp.point,
            FaultAction::Stall(Duration::from_micros(200)),
            32,
            None,
        );
        let outcome = if fp.d2gc {
            let m = sparse::gen::erdos_renyi(48, 96, seed);
            let g = Graph::from_symmetric_matrix(&m);
            let order = Ordering::Natural.vertex_order_d2(&g);
            let res = bgpc::d2gc::color_d2gc(&g, &order, &Schedule::v_v_64d(), &pool);
            res.degraded
                .as_ref()
                .map(|r| Err(format!("stall on `{}` degraded the run: {r}", fp.point)))
                .unwrap_or_else(|| verify_d2gc(&g, &res.colors).map_err(|e| e.to_string()))
        } else {
            let m = sparse::gen::bipartite_uniform(64, 64, 512, seed);
            let g = BipartiteGraph::from_matrix(&m);
            let order = Ordering::Natural.vertex_order_bgpc(&g);
            let res = bgpc::color_bgpc(&g, &order, &Schedule::v_v(), &pool);
            res.degraded
                .as_ref()
                .map(|r| Err(format!("stall on `{}` degraded the run: {r}", fp.point)))
                .unwrap_or_else(|| verify_bgpc(&g, &res.colors).map_err(|e| e.to_string()))
        };
        faults::reset();
        outcome?;
    }
    Ok(())
}
