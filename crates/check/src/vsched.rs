//! The virtual scheduler: deterministic interleaving exploration.
//!
//! A *model run* is a set of virtual threads ([`ThreadProgram`]s) sharing
//! one state value. Each call to [`ThreadProgram::step`] executes exactly
//! one atomic action (one load, one read-modify-write, one store — the
//! granularity at which real hardware can interleave the protocols under
//! test), so a full run is characterized by the sequence of thread picks:
//! its *schedule*. The scheduler owns that sequence, which is what makes
//! every run replayable — unlike a real thread interleaving, a schedule is
//! a plain `Vec<usize>` that can be printed, stored, and re-executed.
//!
//! Two exploration strategies are provided:
//!
//! * [`explore_exhaustive`] — depth-first enumeration of *every* schedule
//!   (bounded by a schedule budget), via replay with a forced prefix: run
//!   once picking the first runnable thread beyond the prefix, then
//!   backtrack to the deepest step with an untried alternative.
//! * [`explore_random`] — seeded sampling of schedules for state spaces
//!   too large to enumerate; each round derives its own sub-seed, and a
//!   failure reports that seed so the exact interleaving can be replayed.
//!
//! Both return a [`CheckFailure`] carrying the failing schedule; feeding
//! it to [`replay`] re-executes the identical interleaving.

use rng::{split_mix64, Pcg32};

/// One virtual thread of a model run.
///
/// `step` executes the thread's next atomic action against the shared
/// state and returns `true` while the thread has more actions left. A
/// thread that returned `false` is finished and is never stepped again.
pub trait ThreadProgram<S> {
    /// Executes one atomic action; `false` means the thread is done.
    fn step(&mut self, shared: &mut S) -> bool;
}

/// The schedule decisions of one completed run.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Index into the runnable set chosen at each step.
    pub choices: Vec<usize>,
    /// Size of the runnable set at each step (for backtracking).
    pub runnable: Vec<usize>,
}

/// A failed check: the violated invariant plus everything needed to
/// reproduce the exact interleaving that violated it.
#[derive(Clone, Debug)]
pub struct CheckFailure {
    /// Invariant violation message.
    pub message: String,
    /// The schedule (runnable-set indices per step) that produced it.
    pub schedule: Vec<usize>,
    /// Replay seed, when the failure came from [`explore_random`].
    pub seed: Option<u64>,
}

impl std::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)?;
        if let Some(seed) = self.seed {
            write!(f, "\n  replay seed: {seed}")?;
        }
        write!(f, "\n  schedule: {:?}", self.schedule)
    }
}

impl std::error::Error for CheckFailure {}

/// Runs one schedule to completion: at each step `pick(n, step)` chooses
/// among the `n` currently runnable threads (values are taken modulo `n`).
/// Returns the record of choices actually made.
pub fn run<S, P: ThreadProgram<S>>(
    shared: &mut S,
    threads: &mut [P],
    mut pick: impl FnMut(usize, usize) -> usize,
) -> RunRecord {
    let mut live: Vec<bool> = vec![true; threads.len()];
    let mut record = RunRecord::default();
    let mut step = 0usize;
    loop {
        let runnable: Vec<usize> = (0..threads.len()).filter(|&t| live[t]).collect();
        if runnable.is_empty() {
            return record;
        }
        let k = pick(runnable.len(), step) % runnable.len();
        let tid = runnable[k];
        record.choices.push(k);
        record.runnable.push(runnable.len());
        if !threads[tid].step(shared) {
            live[tid] = false;
        }
        step += 1;
    }
}

/// Re-executes the exact interleaving recorded in `schedule` (first
/// runnable thread beyond its end) and returns the final shared state.
pub fn replay<S, P: ThreadProgram<S>>(mut shared: S, mut threads: Vec<P>, schedule: &[usize]) -> S {
    run(&mut shared, &mut threads, |_, step| {
        schedule.get(step).copied().unwrap_or(0)
    });
    shared
}

/// Outcome of an exploration that did not fail: how many schedules ran and
/// whether the budget truncated the search.
#[derive(Clone, Copy, Debug)]
pub struct Coverage {
    /// Schedules executed.
    pub schedules: usize,
    /// `true` when every schedule of the state space was enumerated
    /// (exhaustive mode only; random sampling is never complete).
    pub complete: bool,
}

/// Depth-first enumeration of every thread interleaving of the model built
/// by `mk`, bounded by `limit` schedules. `check` inspects the final
/// shared state after each completed run.
///
/// The enumeration is replay-based: each run forces the prefix of choices
/// under test and defaults to the first runnable thread beyond it, then
/// the deepest step with an untried alternative becomes the next prefix.
/// This keeps the explorer stateless with respect to the model — the model
/// is rebuilt from scratch for every schedule, so programs need no undo
/// support.
pub fn explore_exhaustive<S, P: ThreadProgram<S>>(
    mut mk: impl FnMut() -> (S, Vec<P>),
    limit: usize,
    mut check: impl FnMut(&S, &RunRecord) -> Result<(), String>,
) -> Result<Coverage, CheckFailure> {
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let (mut shared, mut threads) = mk();
        let rec = run(&mut shared, &mut threads, |_, step| {
            prefix.get(step).copied().unwrap_or(0)
        });
        schedules += 1;
        if let Err(message) = check(&shared, &rec) {
            return Err(CheckFailure {
                message,
                schedule: rec.choices,
                seed: None,
            });
        }
        if schedules >= limit {
            return Ok(Coverage {
                schedules,
                complete: false,
            });
        }
        // Backtrack: deepest step where another runnable thread exists.
        let mut i = rec.choices.len();
        loop {
            if i == 0 {
                return Ok(Coverage {
                    schedules,
                    complete: true,
                });
            }
            i -= 1;
            if rec.choices[i] + 1 < rec.runnable[i] {
                prefix = rec.choices[..i].to_vec();
                prefix.push(rec.choices[i] + 1);
                break;
            }
        }
    }
}

/// Seeded random sampling of `rounds` schedules. Round `r` derives its own
/// sub-seed `split_mix64(seed + r)`; a failing round reports that sub-seed
/// (and the full schedule) so the interleaving replays exactly.
pub fn explore_random<S, P: ThreadProgram<S>>(
    mut mk: impl FnMut() -> (S, Vec<P>),
    seed: u64,
    rounds: usize,
    mut check: impl FnMut(&S, &RunRecord) -> Result<(), String>,
) -> Result<Coverage, CheckFailure> {
    for r in 0..rounds {
        let sub_seed = split_mix64(seed.wrapping_add(r as u64));
        let mut rng = Pcg32::seed_from_u64(sub_seed);
        let (mut shared, mut threads) = mk();
        let rec = run(&mut shared, &mut threads, |n, _| {
            rng.gen_range(0..n.max(1))
        });
        if let Err(message) = check(&shared, &rec) {
            return Err(CheckFailure {
                message,
                schedule: rec.choices,
                seed: Some(sub_seed),
            });
        }
    }
    Ok(Coverage {
        schedules: rounds,
        complete: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A two-step counter increment with a deliberate lost-update race:
    /// read the counter, then (one step later) write back `read + 1`.
    /// This is the canonical non-atomic RMW — the checker must find the
    /// interleaving where two threads read the same value.
    struct RacyIncrement {
        observed: Option<u64>,
    }

    impl ThreadProgram<u64> for RacyIncrement {
        fn step(&mut self, shared: &mut u64) -> bool {
            match self.observed.take() {
                None => {
                    self.observed = Some(*shared);
                    true
                }
                Some(v) => {
                    *shared = v + 1;
                    false
                }
            }
        }
    }

    fn mk_racy() -> (u64, Vec<RacyIncrement>) {
        (0, (0..2).map(|_| RacyIncrement { observed: None }).collect())
    }

    #[test]
    fn exhaustive_finds_the_lost_update() {
        let failure = explore_exhaustive(mk_racy, 10_000, |&total, _| {
            if total == 2 {
                Ok(())
            } else {
                Err(format!("lost update: counter is {total}, expected 2"))
            }
        })
        .expect_err("the race must be found");
        assert!(failure.message.contains("lost update"), "{failure}");
        // The failing schedule replays to the same bad state.
        let (shared, threads) = mk_racy();
        let replayed = replay(shared, threads, &failure.schedule);
        assert_eq!(replayed, 1, "replay must reproduce the lost update");
    }

    #[test]
    fn exhaustive_enumerates_all_interleavings_of_two_two_step_threads() {
        // 2 threads x 2 steps = C(4,2) = 6 schedules.
        let mut seen = 0usize;
        let cov = explore_exhaustive(mk_racy, 10_000, |_, _| {
            seen += 1;
            Ok(())
        })
        .expect("no invariant checked");
        assert!(cov.complete);
        assert_eq!(cov.schedules, 6);
        assert_eq!(seen, 6);
    }

    #[test]
    fn random_exploration_is_deterministic_per_seed() {
        let collect = |seed: u64| -> Vec<Vec<usize>> {
            let mut schedules = Vec::new();
            explore_random(mk_racy, seed, 8, |_, rec| {
                schedules.push(rec.choices.clone());
                Ok(())
            })
            .unwrap();
            schedules
        };
        assert_eq!(collect(7), collect(7), "same seed, same interleavings");
        assert_ne!(collect(7), collect(8), "different seed, different order");
    }

    #[test]
    fn random_exploration_finds_the_race_and_reports_a_seed() {
        let failure = explore_random(mk_racy, 1, 64, |&total, _| {
            if total == 2 {
                Ok(())
            } else {
                Err("lost update".into())
            }
        })
        .expect_err("sampling 64 schedules of a 6-schedule space must hit it");
        let sub_seed = failure.seed.expect("random failures carry a seed");
        // The reported sub-seed drives the same Pcg32 stream, so re-running
        // that single round reproduces the failing interleaving exactly.
        let (mut shared, mut threads) = mk_racy();
        let mut rng = Pcg32::seed_from_u64(sub_seed);
        run(&mut shared, &mut threads, |n, _| rng.gen_range(0..n.max(1)));
        assert_eq!(shared, 1, "sub-seed replay must reproduce the lost update");
        // And the recorded schedule replays it too.
        let (shared, threads) = mk_racy();
        assert_eq!(replay(shared, threads, &failure.schedule), 1);
    }

    #[test]
    fn budget_truncation_is_reported_as_incomplete() {
        let cov = explore_exhaustive(mk_racy, 3, |_, _| Ok(())).unwrap();
        assert_eq!(cov.schedules, 3);
        assert!(!cov.complete);
    }
}
