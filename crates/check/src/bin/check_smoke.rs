//! `check_smoke` — the tier-1 correctness gate.
//!
//! Runs, in order: the interleaving-model explorations (including the
//! detection-power self-test), the op-granularity runs against the real
//! lock-free structures, the differential oracle sweep, and the
//! fault-coverage checks. Everything is seeded: the same `--seed` runs
//! the same interleavings and the same randomized instances, and every
//! failure prints the seed (and, for model failures, the schedule) that
//! replays it.
//!
//! ```text
//! check_smoke [--seed N] [--cases N] [--deep] [--kernel K] [--autotune]
//!             [--delta] [--dist] [--replay-case SEED]
//! ```
//!
//! * `--seed N` — base seed (default 20260806).
//! * `--cases N` — differential-oracle cases (default 200).
//! * `--deep` — long mode for `bench.sh --check-deep`: more random
//!   schedules, more oracle cases, plus stall-perturbation runs.
//! * `--kernel scalar|simd|auto` — pin the oracle sweep's forbidden-set
//!   kernel axis instead of drawing it per case (`scripts/verify.sh`
//!   forces both `scalar` and `simd` through the sweep).
//! * `--delta` — run *only* the incremental-recoloring oracle sweep
//!   ([`check::delta`]): random mutation batches applied with
//!   `apply_delta`, recolored from the dirty set, checked against the
//!   mutated graph and the full-recolor reference. A standalone stage
//!   so `scripts/verify.sh` can gate it with its own case budget.
//! * `--dist` — run *only* the sharded-coloring oracle sweep
//!   ([`check::sharded`]): shard-count × partitioner cases driven
//!   through the multi-process coordinator over loopback worker
//!   daemons, checked against the single-node baseline. A standalone
//!   stage so `scripts/verify.sh` can gate it with its own case budget.
//! * `--autotune` — run *only* the engine-selection oracle sweep
//!   ([`check::autotune`]): deterministic selection, schedule-name
//!   round-trips, and engine-chosen configs verifying end-to-end. A
//!   separate stage so `scripts/verify.sh` can gate it with its own
//!   case budget without re-running the model explorations.
//! * `--replay-case SEED` — re-run a single oracle case printed by a
//!   failure, then exit (an autotune-sweep case with `--autotune`, a
//!   delta-sweep case with `--delta`, a sharded case with `--dist`).
//!
//! Exit codes: 0 clean, 1 a check failed, 2 bad usage.

use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str =
    "usage: check_smoke [--seed N] [--cases N] [--deep] [--kernel scalar|simd|auto] \
     [--autotune] [--delta] [--dist] [--replay-case SEED]";

fn usage() -> ExitCode {
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

struct Args {
    seed: u64,
    cases: usize,
    deep: bool,
    autotune: bool,
    delta: bool,
    dist: bool,
    kernel: Option<bgpc::KernelImpl>,
    replay_case: Option<u64>,
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut args = Args {
        seed: 20260806,
        cases: 200,
        deep: false,
        autotune: false,
        delta: false,
        dist: false,
        kernel: None,
        replay_case: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut take = |what: &str| -> Result<u64, ExitCode> {
            it.next()
                .and_then(|v| v.parse::<u64>().ok())
                .ok_or_else(|| {
                    eprintln!("check_smoke: {what} expects an integer argument");
                    usage()
                })
        };
        match arg.as_str() {
            "--seed" => args.seed = take("--seed")?,
            "--cases" => args.cases = take("--cases")? as usize,
            "--deep" => args.deep = true,
            "--autotune" => args.autotune = true,
            "--delta" => args.delta = true,
            "--dist" => args.dist = true,
            "--kernel" => {
                let v = it.next().unwrap_or_default();
                args.kernel = Some(bgpc::KernelImpl::from_name(&v).ok_or_else(|| {
                    eprintln!("check_smoke: bad --kernel `{v}` (expected scalar|simd|auto)");
                    usage()
                })?);
            }
            "--replay-case" => args.replay_case = Some(take("--replay-case")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("check_smoke: unknown argument `{other}`");
                return Err(usage());
            }
        }
    }
    Ok(args)
}

/// Runs one named stage, printing its duration; on failure prints the
/// diagnosis plus the replay instructions and flips the process outcome.
fn stage(name: &str, seed: u64, f: impl FnOnce() -> Result<String, String>) -> bool {
    let t0 = Instant::now();
    match f() {
        Ok(detail) => {
            println!(
                "  ok   {name:<28} {detail} ({:.2?})",
                t0.elapsed()
            );
            true
        }
        Err(message) => {
            println!("  FAIL {name}");
            println!("       {message}");
            println!("       replay: check_smoke --seed {seed}");
            false
        }
    }
}

type Stage = (&'static str, Box<dyn FnOnce() -> Result<String, String>>);

fn model_stages(seed: u64, deep: bool) -> Vec<Stage> {
    use check::models;
    let rounds = if deep { 5000 } else { 500 };
    fn fmt(c: check::Coverage) -> String {
        format!(
            "{} schedules{}",
            c.schedules,
            if c.complete { " (complete)" } else { "" }
        )
    }
    fn cov(
        f: impl FnOnce() -> Result<check::Coverage, check::CheckFailure> + 'static,
    ) -> Box<dyn FnOnce() -> Result<String, String>> {
        Box::new(move || f().map(fmt).map_err(|f| f.to_string()))
    }
    vec![
        (
            "model: detection self-test",
            Box::new(|| {
                models::buggy_queue_must_be_caught().map(|failure| {
                    format!(
                        "planted lost update caught in a {}-step schedule",
                        failure.schedule.len()
                    )
                })
            }),
        ),
        (
            "model: queue push",
            cov(|| models::check_queue_model_exhaustive(2, 2, 8, 200_000)),
        ),
        (
            "model: queue overflow",
            cov(|| models::check_queue_model_exhaustive(2, 2, 2, 200_000)),
        ),
        (
            "model: queue flush",
            cov(|| models::check_flush_model_exhaustive(&[3, 2], 4, 200_000)),
        ),
        (
            "model: cursor claim",
            cov(|| models::check_cursor_model_exhaustive(2, 5, 2, 1_000_000)),
        ),
        (
            "model: cursor claim (random)",
            cov(move || models::check_cursor_model_random(3, 64, 7, seed, rounds)),
        ),
        (
            "model: steal-half",
            cov(|| models::check_steal_model_exhaustive(2, 4, 2, 500_000)),
        ),
        (
            "model: steal-half (random)",
            cov(move || models::check_steal_model_random(3, 24, 3, seed ^ 0x57EA1, rounds)),
        ),
        (
            "real: queue ops",
            cov(|| {
                models::check_real_queue_ops(8, &[2, 2], false, 200_000)
                    .and_then(|_| models::check_real_queue_ops(8, &[2, 2], true, 200_000))
                    .and_then(|_| models::check_real_queue_ops(2, &[2, 2], false, 200_000))
            }),
        ),
        (
            "real: cursor ops",
            cov(|| models::check_real_cursor_ops(2, 7, 2, 1_000_000)),
        ),
        (
            "real: steal ops",
            cov(|| models::check_real_steal_ops(2, 10, 2_000_000)),
        ),
    ]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    if let Some(case_seed) = args.replay_case {
        println!(
            "replaying {} case seed {case_seed}",
            if args.autotune {
                "autotune"
            } else if args.delta {
                "delta"
            } else if args.dist {
                "sharded"
            } else {
                "oracle"
            }
        );
        let outcome = if args.autotune {
            check::run_autotune_case_from_seed(case_seed)
        } else if args.delta {
            check::run_delta_case_from_seed_with(case_seed, args.kernel)
        } else if args.dist {
            check::run_sharded_case_from_seed(case_seed)
        } else {
            check::run_case_from_seed_with(case_seed, args.kernel)
        };
        return match outcome {
            Ok(()) => {
                println!("  ok   case is clean");
                ExitCode::SUCCESS
            }
            Err(message) => {
                println!("  FAIL {message}");
                ExitCode::FAILURE
            }
        };
    }

    if args.delta {
        let t0 = Instant::now();
        println!(
            "check_smoke: seed {} | {} delta cases | kernel {}",
            args.seed,
            args.cases,
            args.kernel.map_or("drawn", |k| k.label()),
        );
        println!("incremental-recoloring oracle:");
        let ok = stage("delta: mutation sweep", args.seed, || {
            check::run_delta_sweep_with(args.seed, args.cases, args.kernel)
                .map(|n| format!("{n} mutation cases, zero divergences"))
                .map_err(|f| {
                    format!(
                        "{f}\n       replay: check_smoke --delta --replay-case {}",
                        f.case_seed
                    )
                })
        });
        println!(
            "check_smoke: {} in {:.2?}",
            if ok { "PASS" } else { "FAIL" },
            t0.elapsed()
        );
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if args.dist {
        let t0 = Instant::now();
        println!("check_smoke: seed {} | {} sharded cases", args.seed, args.cases);
        println!("sharded-coloring oracle:");
        let ok = stage("dist: sharded sweep", args.seed, || {
            check::run_sharded_sweep(args.seed, args.cases)
                .map(|n| format!("{n} sharded cases, zero divergences"))
                .map_err(|f| {
                    format!(
                        "{f}\n       replay: check_smoke --dist --replay-case {}",
                        f.case_seed
                    )
                })
        });
        println!(
            "check_smoke: {} in {:.2?}",
            if ok { "PASS" } else { "FAIL" },
            t0.elapsed()
        );
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    if args.autotune {
        let t0 = Instant::now();
        println!("check_smoke: seed {} | {} autotune cases", args.seed, args.cases);
        println!("engine-selection oracle:");
        let ok = stage("autotune: engine sweep", args.seed, || {
            check::run_autotune_sweep(args.seed, args.cases)
                .map(|n| format!("{n} cases, selections deterministic and valid"))
                .map_err(|f| {
                    format!(
                        "{f}\n       replay: check_smoke --autotune --replay-case {}",
                        f.case_seed
                    )
                })
        });
        println!(
            "check_smoke: {} in {:.2?}",
            if ok { "PASS" } else { "FAIL" },
            t0.elapsed()
        );
        return if ok { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    let t0 = Instant::now();
    println!(
        "check_smoke: seed {} | {} oracle cases | {} mode | kernel {}",
        args.seed,
        args.cases,
        if args.deep { "deep" } else { "smoke" },
        args.kernel.map_or("drawn", |k| k.label()),
    );
    let mut ok = true;

    println!("interleaving checker:");
    for (name, run) in model_stages(args.seed, args.deep) {
        ok &= stage(name, args.seed, run);
    }

    println!("differential oracle:");
    let cases = if args.deep { args.cases.max(2000) } else { args.cases };
    ok &= stage("oracle: bgpc + d2gc sweep", args.seed, || {
        check::run_oracle_sweep_with(args.seed, cases, args.kernel)
            .map(|n| format!("{n} cases, zero divergences"))
            .map_err(|f| format!("{f}\n       replay: check_smoke --replay-case {}", f.case_seed))
    });

    println!("fault coverage:");
    ok &= stage("faults: all points caught", args.seed, || {
        check::faultcov::check_all_faults_caught(args.seed)
            .map(|()| "4 fail points contained, reported, repaired".to_string())
    });
    if args.deep {
        ok &= stage("faults: stall perturbation", args.seed, || {
            check::faultcov::check_stall_perturbation(args.seed)
                .map(|()| "timing-skewed runs stayed clean".to_string())
        });
    }

    println!(
        "check_smoke: {} in {:.2?}",
        if ok { "PASS" } else { "FAIL" },
        t0.elapsed()
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
