//! The delta oracle: incremental recoloring against full recoloring.
//!
//! Each *case* draws a randomized base instance and a configuration point
//! (schedule × balancer × chunk scheduler × kernel × thread count ×
//! ordering) exactly like [`crate::oracle`], colors the base graph, then
//! draws a random **mutation batch** — insertions of absent edges and
//! deletions of present edges — applies it through
//! [`bgpc::apply_delta`], and recolors incrementally with
//! [`bgpc::recolor_bgpc_incremental`] /
//! [`bgpc::recolor_d2gc_incremental`] seeded from the base coloring and
//! the delta's dirty set. The oracle then checks:
//!
//! * **Validity on the mutated graph** — the incremental coloring must
//!   pass [`bgpc::verify::verify_bgpc`] / [`bgpc::verify::verify_d2gc`]
//!   against the *mutated* pattern, and must not be degraded. A full
//!   recolor of the mutated graph must also verify (differential
//!   sanity for the mutation machinery itself).
//! * **Dirty-set exactness** — the touched rows/columns reported by
//!   [`bgpc::apply_delta`] must be exactly the distinct endpoints of the
//!   batch, and the mutated pattern must contain precisely the base
//!   edges plus insertions minus deletions.
//! * **Bounded quality regression** — for [`bgpc::Balance::Unbalanced`]
//!   (first-fit), the incremental color count must not exceed
//!   `max(k_base, Δ₂(G′) + 1)`: stable vertices keep their base colors
//!   and every re-colored vertex first-fits below its distance-2 degree
//!   in the mutated graph. Balanced heuristics trade that bound for
//!   balance, so there only `k ≤ n` is asserted (as in the main oracle).
//! * **Empty-delta identity** — applying the empty batch and recoloring
//!   returns the base coloring bit-identically in zero rounds.
//! * **One-thread equivalences** — at one thread the incremental path
//!   must be deterministic (run-twice identical) and agree across the
//!   two forbidden-set representations, the two CSR index widths and
//!   the scalar/SIMD kernels, mirroring the main oracle's battery.
//!
//! Driven by `check_smoke --delta` (seeded sweep, standalone stage for
//! `scripts/verify.sh`) and by the in-crate tests.

use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::incremental::{recolor_bgpc_incremental_with_set, recolor_d2gc_incremental_with_set};
use bgpc::{
    apply_delta, recolor_bgpc_incremental, recolor_d2gc_incremental, Balance, BitStampSet, Color,
    CsrDelta, KernelImpl, RunnerOpts, Schedule, StampSet,
};
use graph::{BipartiteGraph, Graph};
use par::Pool;
use rng::{split_mix64, Pcg32};
use sparse::Csr;

use crate::oracle::{
    max_d2_degree_bgpc, max_d2_degree_graph, pick_balance, pick_kernel, pick_ordering, pick_sched,
    Draw, OracleFailure, PcgDraw,
};

/// Draws up to `want` distinct edges *absent* from `m` (and from
/// `avoid`), by bounded rejection sampling — a dense pattern may simply
/// not have `want` absent cells, in which case fewer are returned.
fn draw_absent_edges(
    d: &mut impl Draw,
    m: &Csr,
    want: usize,
    avoid: &[(u32, u32)],
) -> Vec<(u32, u32)> {
    let (nrows, ncols) = (m.nrows(), m.ncols());
    let mut out: Vec<(u32, u32)> = Vec::new();
    if nrows == 0 || ncols == 0 {
        return out;
    }
    let mut attempts = 4 * want + 8;
    while out.len() < want && attempts > 0 {
        attempts -= 1;
        let r = d.usize_in(0..nrows) as u32;
        let c = d.usize_in(0..ncols) as u32;
        if m.contains(r as usize, c) || out.contains(&(r, c)) || avoid.contains(&(r, c)) {
            continue;
        }
        out.push((r, c));
    }
    out
}

/// Draws `want` distinct edges *present* in `m` (fewer when the pattern
/// has fewer), sampling without replacement from an edge census.
fn draw_present_edges(d: &mut impl Draw, m: &Csr, want: usize) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m.nnz());
    for r in 0..m.nrows() {
        for &c in m.row(r) {
            edges.push((r as u32, c));
        }
    }
    let take = want.min(edges.len());
    let mut out = Vec::with_capacity(take);
    for _ in 0..take {
        let i = d.usize_in(0..edges.len());
        out.push(edges.swap_remove(i));
    }
    out
}

fn same_colors(a: &[Color], b: &[Color], what: &str) -> Result<(), String> {
    if a != b {
        return Err(format!("{what}: colorings diverge ({a:?} vs {b:?})"));
    }
    Ok(())
}

/// Checks that the mutated pattern is exactly base + insertions −
/// deletions and that the reported touched sets are exactly the batch's
/// distinct endpoints.
fn check_mutation_exact(
    m: &Csr,
    delta: &CsrDelta,
    applied: &bgpc::DeltaApplied,
    label: &str,
) -> Result<(), String> {
    let m2 = &applied.matrix;
    if m2.nrows() != m.nrows() || m2.ncols() != m.ncols() {
        return Err(format!("{label}: mutation changed the pattern dimensions"));
    }
    for &(r, c) in delta.insertions() {
        if !m2.contains(r as usize, c) {
            return Err(format!("{label}: inserted edge ({r},{c}) is missing"));
        }
    }
    for &(r, c) in delta.deletions() {
        if m2.contains(r as usize, c) {
            return Err(format!("{label}: deleted edge ({r},{c}) survived"));
        }
    }
    for r in 0..m.nrows() {
        for &c in m.row(r) {
            let deleted = delta.deletions().contains(&(r as u32, c));
            if m2.contains(r, c) == deleted {
                return Err(format!("{label}: base edge ({r},{c}) mishandled"));
            }
        }
    }
    let expected_nnz = m.nnz() + delta.insertions().len() - delta.deletions().len();
    if m2.nnz() != expected_nnz {
        return Err(format!(
            "{label}: mutated nnz {} != expected {expected_nnz}",
            m2.nnz()
        ));
    }
    let mut rows: Vec<u32> = delta
        .insertions()
        .iter()
        .chain(delta.deletions())
        .map(|&(r, _)| r)
        .collect();
    rows.sort_unstable();
    rows.dedup();
    if applied.touched_rows() != rows.as_slice() {
        return Err(format!(
            "{label}: touched rows {:?} != batch endpoints {rows:?}",
            applied.touched_rows()
        ));
    }
    let mut cols: Vec<u32> = delta
        .insertions()
        .iter()
        .chain(delta.deletions())
        .map(|&(_, c)| c)
        .collect();
    cols.sort_unstable();
    cols.dedup();
    if applied.touched_cols() != cols.as_slice() {
        return Err(format!(
            "{label}: touched cols {:?} != batch endpoints {cols:?}",
            applied.touched_cols()
        ));
    }
    Ok(())
}

/// One randomized BGPC delta case. Returns `Err` with a diagnosis when
/// any oracle check fails.
pub fn run_delta_bgpc_case(d: &mut impl Draw) -> Result<(), String> {
    run_delta_bgpc_case_with(d, None)
}

/// [`run_delta_bgpc_case`] with an optional forced `--kernel` axis value.
pub fn run_delta_bgpc_case_with(
    d: &mut impl Draw,
    forced: Option<KernelImpl>,
) -> Result<(), String> {
    // Base instance and configuration point, drawn like the main oracle.
    let nets = d.usize_in(1..17);
    let verts = d.usize_in(1..17);
    let nnz = d.usize_in(0..nets * verts + 1);
    let mseed = d.u64_any();
    let m = sparse::gen::bipartite_uniform(nets, verts, nnz, mseed);
    let g = BipartiteGraph::from_matrix(&m);
    let ordering = pick_ordering(d);
    let order = ordering.vertex_order_bgpc(&g);

    let all = Schedule::all();
    let idx = d.usize_in(0..all.len());
    let balance = pick_balance(d);
    let sched = pick_sched(d);
    let kernel = pick_kernel(d, forced);
    let threads = d.usize_in(1..5);
    let schedule = {
        let mut s = all.into_iter().nth(idx).expect("index drawn in range");
        s = s.with_balance(balance).with_sched(sched).with_kernel(kernel);
        s
    };

    // The mutation batch: up to 8 insertions of absent cells, up to 8
    // deletions of present edges (fewer when the pattern is full/empty).
    let want_ins = d.usize_in(0..9);
    let want_del = d.usize_in(0..9);
    let deletions = draw_present_edges(d, &m, want_del);
    let insertions = draw_absent_edges(d, &m, want_ins, &[]);
    let label = format!(
        "delta bgpc {} [{}] x{threads} on {nets}x{verts} nnz={nnz} seed={mseed} +{}/-{}",
        schedule.name(),
        kernel.label(),
        insertions.len(),
        deletions.len()
    );
    let delta = CsrDelta::try_new(insertions, deletions)
        .map_err(|e| format!("{label}: delta construction rejected: {e}"))?;

    // Base coloring at the drawn configuration.
    let pool = Pool::new(threads);
    let base = bgpc::color_bgpc(&g, &order, &schedule, &pool);
    verify_bgpc(&g, &base.colors).map_err(|e| format!("{label}: invalid base coloring: {e}"))?;

    // Apply the batch and check it is structurally exact.
    let applied = apply_delta(&m, &delta).map_err(|e| format!("{label}: apply_delta: {e}"))?;
    applied
        .matrix
        .validate()
        .map_err(|e| format!("{label}: mutated pattern invalid: {e}"))?;
    check_mutation_exact(&m, &delta, &applied, &label)?;

    let g2 = BipartiteGraph::from_matrix(&applied.matrix);
    let order2 = ordering.vertex_order_bgpc(&g2);
    let dirty = applied.dirty_bgpc();

    // Incremental recolor: valid on the mutated graph, not degraded,
    // bounded regression for first-fit.
    let inc = recolor_bgpc_incremental(
        &g2,
        &base.colors,
        dirty,
        &order2,
        &schedule,
        &pool,
        RunnerOpts::default(),
    );
    verify_bgpc(&g2, &inc.colors)
        .map_err(|e| format!("{label}: incremental coloring invalid on mutated graph: {e}"))?;
    if let Some(reason) = &inc.degraded {
        return Err(format!("{label}: incremental run degraded: {reason}"));
    }
    if inc.num_colors > g2.n_vertices() {
        return Err(format!(
            "{label}: {} colors for {} vertices",
            inc.num_colors,
            g2.n_vertices()
        ));
    }
    // Full recolor of the mutated graph: differential sanity, and the
    // reference point the bench crate measures the crossover against.
    let full = bgpc::color_bgpc(&g2, &order2, &schedule, &pool);
    verify_bgpc(&g2, &full.colors)
        .map_err(|e| format!("{label}: full recolor invalid on mutated graph: {e}"))?;
    if balance == Balance::Unbalanced {
        let bound = base.num_colors.max(max_d2_degree_bgpc(&g2) + 1);
        if inc.num_colors > bound {
            return Err(format!(
                "{label}: incremental used {} colors, regression bound is {bound} \
                 (base {}, full recolor {})",
                inc.num_colors, base.num_colors, full.num_colors
            ));
        }
    }

    // Empty-delta identity: straight back to the base coloring, no work.
    let noop = apply_delta(&m, &CsrDelta::empty())
        .map_err(|e| format!("{label}: empty delta rejected: {e}"))?;
    if !noop.dirty_bgpc().is_empty() || noop.matrix != m {
        return Err(format!("{label}: empty delta is not a no-op"));
    }
    let id = recolor_bgpc_incremental(
        &g,
        &base.colors,
        noop.dirty_bgpc(),
        &order,
        &schedule,
        &pool,
        RunnerOpts::default(),
    );
    same_colors(&id.colors, &base.colors, &format!("{label}: empty-delta identity"))?;
    if id.rounds() != 0 {
        return Err(format!(
            "{label}: empty-delta recolor took {} rounds",
            id.rounds()
        ));
    }

    // One-thread battery on the incremental path: determinism, the two
    // forbidden-set representations, both index widths, both kernels.
    let pool1 = Pool::new(1);
    let base1 = bgpc::color_bgpc(&g, &order, &schedule, &pool1);
    let opts = RunnerOpts::default();
    let a = recolor_bgpc_incremental(
        &g2, &base1.colors, dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    let b = recolor_bgpc_incremental(
        &g2, &base1.colors, dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    same_colors(&a.colors, &b.colors, &format!("{label}: @1 run-twice"))?;

    let stamp = recolor_bgpc_incremental_with_set::<StampSet, u32>(
        &g2, &base1.colors, dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    let bitstamp = recolor_bgpc_incremental_with_set::<BitStampSet, u32>(
        &g2, &base1.colors, dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    same_colors(
        &stamp.colors,
        &bitstamp.colors,
        &format!("{label}: StampSet vs BitStampSet @1"),
    )?;

    let m64 = applied.matrix.to_index::<u64>();
    let g64 = BipartiteGraph::from_matrix(&m64);
    let wide = recolor_bgpc_incremental(
        &g64, &base1.colors, dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    same_colors(&a.colors, &wide.colors, &format!("{label}: u32 vs u64 @1"))?;

    let other_kernel = match kernel {
        KernelImpl::Scalar => KernelImpl::Simd,
        _ => KernelImpl::Scalar,
    };
    let kflipped = schedule.clone().with_kernel(other_kernel);
    let kc = recolor_bgpc_incremental(&g2, &base1.colors, dirty, &order2, &kflipped, &pool1, opts);
    same_colors(
        &a.colors,
        &kc.colors,
        &format!("{label}: {} vs {} kernel @1", kernel.label(), other_kernel.label()),
    )?;

    Ok(())
}

/// One randomized D2GC delta case: the unipartite twin, mutating with a
/// symmetrized batch so the adjacency pattern stays symmetric.
pub fn run_delta_d2gc_case(d: &mut impl Draw) -> Result<(), String> {
    run_delta_d2gc_case_with(d, None)
}

/// [`run_delta_d2gc_case`] with an optional forced `--kernel` axis value.
pub fn run_delta_d2gc_case_with(
    d: &mut impl Draw,
    forced: Option<KernelImpl>,
) -> Result<(), String> {
    let n = d.usize_in(1..21);
    let max_edges = (2 * n).min(n * (n - 1) / 2);
    let nedges = d.usize_in(0..max_edges + 1);
    let mseed = d.u64_any();
    let m = sparse::gen::erdos_renyi(n, nedges, mseed);
    let g = Graph::from_symmetric_matrix(&m);
    let ordering = pick_ordering(d);
    let order = ordering.vertex_order_d2(&g);

    let set = Schedule::d2gc_set();
    let idx = d.usize_in(0..set.len());
    let balance = pick_balance(d);
    let sched = pick_sched(d);
    let kernel = pick_kernel(d, forced);
    let threads = d.usize_in(1..5);
    let schedule = {
        let mut s = set.into_iter().nth(idx).expect("in range");
        s = s.with_balance(balance).with_sched(sched).with_kernel(kernel);
        s
    };

    // Draw *undirected* mutations — one direction each, no self loops —
    // then mirror through `symmetrized()` so both triangles move.
    let want_del = d.usize_in(0..5);
    let mut deletions = Vec::new();
    for (u, v) in draw_present_edges(d, &m, 2 * want_del) {
        if u < v && deletions.len() < want_del {
            deletions.push((u, v));
        }
    }
    let want_ins = d.usize_in(0..5);
    let mut insertions = Vec::new();
    if n > 1 {
        let mut attempts = 4 * want_ins + 8;
        while insertions.len() < want_ins && attempts > 0 {
            attempts -= 1;
            let u = d.usize_in(0..n) as u32;
            let v = d.usize_in(0..n) as u32;
            let (u, v) = (u.min(v), u.max(v));
            if u == v || m.contains(u as usize, v) || insertions.contains(&(u, v)) {
                continue;
            }
            insertions.push((u, v));
        }
    }
    let label = format!(
        "delta d2gc {} [{}] x{threads} on n={n} edges={nedges} seed={mseed} +{}/-{}",
        schedule.name(),
        kernel.label(),
        insertions.len(),
        deletions.len()
    );
    let delta = CsrDelta::try_new(insertions, deletions)
        .map_err(|e| format!("{label}: delta construction rejected: {e}"))?
        .symmetrized()
        .map_err(|e| format!("{label}: symmetrization rejected: {e}"))?;

    let pool = Pool::new(threads);
    let base = bgpc::d2gc::runner::color_d2gc(&g, &order, &schedule, &pool);
    verify_d2gc(&g, &base.colors).map_err(|e| format!("{label}: invalid base coloring: {e}"))?;

    let applied = apply_delta(&m, &delta).map_err(|e| format!("{label}: apply_delta: {e}"))?;
    applied
        .matrix
        .validate()
        .map_err(|e| format!("{label}: mutated pattern invalid: {e}"))?;
    if !applied.matrix.is_structurally_symmetric() {
        return Err(format!("{label}: symmetrized delta broke symmetry"));
    }
    check_mutation_exact(&m, &delta, &applied, &label)?;

    let g2 = Graph::from_symmetric_matrix(&applied.matrix);
    let order2 = ordering.vertex_order_d2(&g2);
    let dirty = applied.dirty_d2gc();

    let inc = recolor_d2gc_incremental(
        &g2,
        &base.colors,
        &dirty,
        &order2,
        &schedule,
        &pool,
        RunnerOpts::default(),
    );
    verify_d2gc(&g2, &inc.colors)
        .map_err(|e| format!("{label}: incremental coloring invalid on mutated graph: {e}"))?;
    if let Some(reason) = &inc.degraded {
        return Err(format!("{label}: incremental run degraded: {reason}"));
    }
    if inc.num_colors > g2.n_vertices() {
        return Err(format!(
            "{label}: {} colors for {} vertices",
            inc.num_colors,
            g2.n_vertices()
        ));
    }
    let full = bgpc::d2gc::runner::color_d2gc(&g2, &order2, &schedule, &pool);
    verify_d2gc(&g2, &full.colors)
        .map_err(|e| format!("{label}: full recolor invalid on mutated graph: {e}"))?;
    if balance == Balance::Unbalanced {
        let bound = base.num_colors.max(max_d2_degree_graph(&g2) + 1);
        if inc.num_colors > bound {
            return Err(format!(
                "{label}: incremental used {} colors, regression bound is {bound} \
                 (base {}, full recolor {})",
                inc.num_colors, base.num_colors, full.num_colors
            ));
        }
    }

    // Empty-delta identity.
    let noop = apply_delta(&m, &CsrDelta::empty())
        .map_err(|e| format!("{label}: empty delta rejected: {e}"))?;
    let id = recolor_d2gc_incremental(
        &g,
        &base.colors,
        &noop.dirty_d2gc(),
        &order,
        &schedule,
        &pool,
        RunnerOpts::default(),
    );
    same_colors(&id.colors, &base.colors, &format!("{label}: empty-delta identity"))?;
    if id.rounds() != 0 {
        return Err(format!(
            "{label}: empty-delta recolor took {} rounds",
            id.rounds()
        ));
    }

    // One-thread battery.
    let pool1 = Pool::new(1);
    let base1 = bgpc::d2gc::runner::color_d2gc(&g, &order, &schedule, &pool1);
    let opts = RunnerOpts::default();
    let a = recolor_d2gc_incremental(
        &g2, &base1.colors, &dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    let b = recolor_d2gc_incremental(
        &g2, &base1.colors, &dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    same_colors(&a.colors, &b.colors, &format!("{label}: @1 run-twice"))?;

    let stamp = recolor_d2gc_incremental_with_set::<StampSet, u32>(
        &g2, &base1.colors, &dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    let bitstamp = recolor_d2gc_incremental_with_set::<BitStampSet, u32>(
        &g2, &base1.colors, &dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    same_colors(
        &stamp.colors,
        &bitstamp.colors,
        &format!("{label}: StampSet vs BitStampSet @1"),
    )?;

    let m64 = applied.matrix.to_index::<u64>();
    let g64 = Graph::from_symmetric_matrix(&m64);
    let wide = recolor_d2gc_incremental(
        &g64, &base1.colors, &dirty, &order2, &schedule, &pool1, opts.clone(),
    );
    same_colors(&a.colors, &wide.colors, &format!("{label}: u32 vs u64 @1"))?;

    let other_kernel = match kernel {
        KernelImpl::Scalar => KernelImpl::Simd,
        _ => KernelImpl::Scalar,
    };
    let kflipped = schedule.clone().with_kernel(other_kernel);
    let kc =
        recolor_d2gc_incremental(&g2, &base1.colors, &dirty, &order2, &kflipped, &pool1, opts);
    same_colors(
        &a.colors,
        &kc.colors,
        &format!("{label}: {} vs {} kernel @1", kernel.label(), other_kernel.label()),
    )?;

    Ok(())
}

/// Replays a single delta case (BGPC then D2GC) from its sub-seed.
pub fn run_delta_case_from_seed(case_seed: u64) -> Result<(), String> {
    run_delta_case_from_seed_with(case_seed, None)
}

/// [`run_delta_case_from_seed`] with an optional forced kernel. As in
/// the main oracle, the draw stream is identical either way, so a
/// failing seed replays the same instance under any `--kernel` pin.
pub fn run_delta_case_from_seed_with(
    case_seed: u64,
    kernel: Option<KernelImpl>,
) -> Result<(), String> {
    let mut d = PcgDraw(Pcg32::seed_from_u64(case_seed));
    run_delta_bgpc_case_with(&mut d, kernel)?;
    run_delta_d2gc_case_with(&mut d, kernel)
}

/// Runs `cases` randomized mutation cases from the base `seed`. Case `i`
/// uses sub-seed `split_mix64(seed + i)` so any failure replays
/// standalone via `check_smoke --delta --replay-case`.
pub fn run_delta_sweep(seed: u64, cases: usize) -> Result<usize, OracleFailure> {
    run_delta_sweep_with(seed, cases, None)
}

/// [`run_delta_sweep`] with every case's kernel axis pinned to `kernel`
/// (when `Some`).
pub fn run_delta_sweep_with(
    seed: u64,
    cases: usize,
    kernel: Option<KernelImpl>,
) -> Result<usize, OracleFailure> {
    for case in 0..cases {
        let case_seed = split_mix64(seed.wrapping_add(case as u64));
        if let Err(message) = run_delta_case_from_seed_with(case_seed, kernel) {
            return Err(OracleFailure {
                case,
                case_seed,
                message,
            });
        }
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_delta_sweep_is_clean() {
        let n = run_delta_sweep(0xDE17A, 20).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(n, 20);
    }

    #[test]
    fn delta_sweeps_are_deterministic() {
        assert!(run_delta_sweep(42, 5).is_ok());
        assert!(run_delta_sweep(42, 5).is_ok());
        let case_seed = split_mix64(42);
        run_delta_case_from_seed(case_seed).expect("single-case replay is clean");
    }

    #[test]
    fn forced_kernels_replay_the_same_instances() {
        // The kernel draw is consumed even when forced, so the same seed
        // must stay clean under both pins.
        let case_seed = split_mix64(7);
        run_delta_case_from_seed_with(case_seed, Some(KernelImpl::Scalar)).unwrap();
        run_delta_case_from_seed_with(case_seed, Some(KernelImpl::Simd)).unwrap();
    }
}
