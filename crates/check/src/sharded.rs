//! The sharded oracle: multi-process coloring against the single-node
//! baseline.
//!
//! Each *case* draws a randomized bipartite instance, a shard count from
//! {1, 2, 4, 8} and a partitioner (block / cyclic / random), then colors
//! it twice: once through the [`dist::Coordinator`] over real `serve`
//! worker daemons (every superstep crosses TCP), and once through the
//! in-process [`dist::DistRunner`] on the same partition. The oracle
//! checks:
//!
//! * **Validity in original ids** — both colorings must pass
//!   [`bgpc::verify::verify_bgpc`] against the drawn pattern.
//! * **No degrade on a clean fleet** — the workers are healthy, so a
//!   `degraded` outcome means the coordinator lost a superstep.
//! * **Bounded quality** — speculative re-coloring jitters the color
//!   choice inside a window capped at [`JITTER_WINDOW_MAX`], so both
//!   paths must stay within `Δ₂(G) + 1 + JITTER_WINDOW_MAX` colors.
//! * **Superstep accounting** — conflicts recorded for round *i* are
//!   exactly the vertices re-colored in round *i + 1*, the final round
//!   is conflict-free, and a single shard colors everything in one
//!   round with zero boundary messages.
//!
//! Worker daemons run in-process (hermetic, no spawned binaries) but
//! speak the real length-prefixed protocol over loopback TCP. The sweep
//! boots one fleet of [`MAX_SHARDS`] workers and reuses it for every
//! case; `check_smoke --dist --replay-case SEED` boots a fresh fleet to
//! replay one case standalone.

use std::time::Duration;

use bgpc::verify::verify_bgpc;
use dist::{Coordinator, DistRunner, Partition};
use graph::BipartiteGraph;
use rng::{split_mix64, Pcg32};

use crate::oracle::{max_d2_degree_bgpc, Draw, OracleFailure, PcgDraw};

/// Largest shard count a case can draw; the fleet size.
pub const MAX_SHARDS: usize = 8;

/// The widest k-th-available jitter window the speculative recoloring
/// rounds use (see `dist::bsp` and `serve::shard` — the window is
/// `min(4 * superstep, 64)`). Bounds the quality cost of symmetry
/// breaking: every color picked is at most this far past first-fit.
pub const JITTER_WINDOW_MAX: usize = 64;

/// A loopback fleet of in-process `serve` worker daemons, shut down on
/// drop.
pub struct WorkerFleet {
    daemons: Vec<serve::Daemon>,
    addrs: Vec<String>,
}

impl WorkerFleet {
    /// Boots `n` workers on OS-assigned loopback ports.
    pub fn start(n: usize) -> Result<WorkerFleet, String> {
        let mut daemons = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..n {
            let cache = std::env::temp_dir().join(format!(
                "check-sharded-{}-{i}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&cache);
            let d = serve::Daemon::start(serve::ServeConfig {
                addr: "127.0.0.1:0".into(),
                pool_threads: 1,
                cache_dir: cache,
                read_timeout: Duration::from_secs(30),
                ..serve::ServeConfig::default()
            })
            .map_err(|e| format!("worker {i} failed to start: {e}"))?;
            addrs.push(d.local_addr().to_string());
            daemons.push(d);
        }
        Ok(WorkerFleet { daemons, addrs })
    }

    /// The workers' bound addresses, in boot order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }
}

impl Drop for WorkerFleet {
    fn drop(&mut self) {
        for d in self.daemons.iter_mut() {
            d.shutdown();
        }
    }
}

fn draw_partition(d: &mut impl Draw, n: usize, p: usize) -> (Partition, &'static str) {
    match d.usize_in(0..3) {
        0 => (Partition::block(n, p), "block"),
        1 => (Partition::cyclic(n, p), "cyclic"),
        _ => {
            let seed = d.u64_any();
            (Partition::random(n, p, seed), "random")
        }
    }
}

/// One randomized sharded case against the fleet at `addrs` (which must
/// hold at least [`MAX_SHARDS`] workers). Returns `Err` with a diagnosis
/// when any oracle check fails.
pub fn run_sharded_case(d: &mut impl Draw, addrs: &[String]) -> Result<(), String> {
    let nets = d.usize_in(1..33);
    let verts = d.usize_in(1..33);
    let nnz = d.usize_in(0..nets * verts + 1);
    let mseed = d.u64_any();
    let shards = [1, 2, 4, 8][d.usize_in(0..4)];

    let m = sparse::gen::bipartite_uniform(nets, verts, nnz, mseed);
    let g = BipartiteGraph::from_matrix(&m);
    let n = g.n_vertices();
    let (partition, pname) = draw_partition(d, n, shards);
    let label =
        format!("sharded bgpc {pname} p={shards} on {nets}x{verts} nnz={nnz} seed={mseed}");

    let mut coord = Coordinator::connect(&addrs[..shards])
        .map_err(|e| format!("{label}: connecting workers: {e}"))?;
    let outcome = coord
        .color(&m, &partition)
        .map_err(|e| format!("{label}: coordinator rejected the instance: {e}"))?;
    if let Some(reason) = &outcome.degraded {
        return Err(format!("{label}: degraded on a healthy fleet: {reason}"));
    }
    verify_bgpc(&g, &outcome.colors)
        .map_err(|e| format!("{label}: sharded coloring invalid in original ids: {e}"))?;

    // Quality: first-fit plus the capped jitter window bounds every pick.
    let bound = max_d2_degree_bgpc(&g) + 1 + JITTER_WINDOW_MAX;
    if outcome.num_colors > bound {
        return Err(format!(
            "{label}: {} colors exceeds the Δ₂+1+{JITTER_WINDOW_MAX} bound of {bound}",
            outcome.num_colors
        ));
    }

    // Superstep accounting: conflicts of round i are re-colored in round
    // i+1, and the run only terminates once a round is conflict-free.
    for (i, w) in outcome.supersteps.windows(2).enumerate() {
        if w[0].conflicts != w[1].colored {
            return Err(format!(
                "{label}: round {} recorded {} conflicts but round {} re-colored {}",
                i + 1,
                w[0].conflicts,
                i + 2,
                w[1].colored
            ));
        }
    }
    if let Some(last) = outcome.supersteps.last() {
        if last.conflicts != 0 {
            return Err(format!(
                "{label}: final round still has {} conflicts",
                last.conflicts
            ));
        }
    }
    if shards == 1 && (outcome.rounds() != 1 || outcome.total_messages() != 0) {
        return Err(format!(
            "{label}: single shard took {} rounds and {} messages",
            outcome.rounds(),
            outcome.total_messages()
        ));
    }

    // Differential baseline: the in-process runner on the same partition
    // must verify and respect the same bound.
    let baseline = DistRunner::new(&g, partition).run();
    verify_bgpc(&g, &baseline.colors)
        .map_err(|e| format!("{label}: single-node baseline invalid: {e}"))?;
    if baseline.num_colors > bound {
        return Err(format!(
            "{label}: baseline {} colors exceeds the bound of {bound}",
            baseline.num_colors
        ));
    }
    if outcome.colors.len() != baseline.colors.len() {
        return Err(format!(
            "{label}: sharded colored {} vertices, baseline {}",
            outcome.colors.len(),
            baseline.colors.len()
        ));
    }

    Ok(())
}

/// Replays a single sharded case from its sub-seed, booting a fresh
/// worker fleet for the one case.
pub fn run_sharded_case_from_seed(case_seed: u64) -> Result<(), String> {
    let fleet = WorkerFleet::start(MAX_SHARDS)?;
    let mut d = PcgDraw(Pcg32::seed_from_u64(case_seed));
    run_sharded_case(&mut d, fleet.addrs())
}

/// Runs `cases` randomized sharded cases from the base `seed` against
/// one shared worker fleet. Case `i` uses sub-seed `split_mix64(seed +
/// i)` so any failure replays standalone via `check_smoke --dist
/// --replay-case`.
pub fn run_sharded_sweep(seed: u64, cases: usize) -> Result<usize, OracleFailure> {
    let fleet = WorkerFleet::start(MAX_SHARDS).map_err(|message| OracleFailure {
        case: 0,
        case_seed: seed,
        message,
    })?;
    for case in 0..cases {
        let case_seed = split_mix64(seed.wrapping_add(case as u64));
        let mut d = PcgDraw(Pcg32::seed_from_u64(case_seed));
        if let Err(message) = run_sharded_case(&mut d, fleet.addrs()) {
            return Err(OracleFailure {
                case,
                case_seed,
                message,
            });
        }
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_sharded_sweep_is_clean() {
        let n = run_sharded_sweep(0x5A4D, 8).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(n, 8);
    }

    #[test]
    fn sharded_case_replay_is_deterministic() {
        let case_seed = split_mix64(0x5A4D);
        run_sharded_case_from_seed(case_seed).expect("replay is clean");
        run_sharded_case_from_seed(case_seed).expect("replay twice is clean");
    }
}
