//! Deterministic concurrency checker and differential-fuzzing oracle.
//!
//! This crate is the runtime's correctness harness, hermetic like the rest
//! of the workspace (no registry dependencies — the virtual scheduler and
//! the property layer are built on the in-tree [`rng`] and [`minicheck`]
//! crates). It attacks the speculative coloring runtime from three sides:
//!
//! * [`vsched`] — a loom-style virtual scheduler: protocols are expressed
//!   as step-wise [`vsched::ThreadProgram`]s and their interleavings are
//!   enumerated exhaustively (small state spaces) or sampled from a seed
//!   (large ones). Every failure carries a replayable schedule.
//! * [`models`] — atomic-granularity models of the `SharedQueue`
//!   push/flush, `ChunkCursor` claim and `StealRanges` steal-half
//!   protocols, op-granularity drivers for the real structures, and a
//!   deliberately-buggy queue the explorer must catch (detection-power
//!   self-test).
//! * [`oracle`] — a differential oracle running every schedule,
//!   balancer, chunk scheduler, forbidden-set representation and index
//!   width against the sequential baseline on randomized instances,
//!   checking validity, determinism and color-count bounds.
//! * [`autotune`] — the same standard applied to configurations the
//!   auto-tuning engine *selects*: deterministic selection, schedule
//!   names that round-trip through `from_name`, and engine-chosen
//!   configs (relabeling, index width, online tuner) verifying
//!   end-to-end on the original vertex ids.
//! * [`delta`] — the incremental-recoloring oracle: random mutation
//!   batches applied through [`bgpc::apply_delta`], recolored from the
//!   dirty set, checked for validity on the mutated graph, exact
//!   structural mutation, bounded color-count regression and the same
//!   one-thread equivalences as the main oracle.
//! * [`faultcov`] — proves each registered `par::faults` fail point is
//!   *caught*: the injected panic fires, the degrade report names the
//!   right phase, and the repaired coloring verifies.
//! * [`sharded`] — the multi-process oracle: shard-count × partitioner
//!   sweeps through the [`dist::Coordinator`] over real `serve` worker
//!   daemons on loopback TCP, checked for validity in original ids,
//!   clean (non-degraded) runs, bounded color counts and exact
//!   superstep accounting against the in-process single-node baseline.
//!
//! The `check_smoke` binary wires all of it into a seeded, time-boxed
//! tier-1 gate (`scripts/verify.sh`); `scripts/bench.sh --check-deep`
//! runs the long randomized sweep. On failure both print the seed that
//! replays the offending case.

pub mod autotune;
pub mod delta;
pub mod faultcov;
pub mod models;
pub mod oracle;
pub mod sharded;
pub mod vsched;

pub use autotune::{run_autotune_case_from_seed, run_autotune_sweep};
pub use delta::{
    run_delta_case_from_seed, run_delta_case_from_seed_with, run_delta_sweep,
    run_delta_sweep_with,
};
pub use oracle::{
    run_case_from_seed, run_case_from_seed_with, run_oracle_sweep, run_oracle_sweep_with,
    OracleFailure,
};
pub use sharded::{run_sharded_case_from_seed, run_sharded_sweep};
pub use vsched::{CheckFailure, Coverage, ThreadProgram};
