//! Oracle axis for the auto-tuning engine.
//!
//! The differential oracle in [`crate::oracle`] checks hand-picked
//! configurations; this module checks the configurations the *engine*
//! picks. Each case draws a random instance, asks the engine for a
//! config, and then holds the selection to the same standard as any
//! explicit one:
//!
//! * **Selection determinism** — selecting twice on the same instance
//!   yields an identical config and provenance. The table is fixed and
//!   feature extraction is a pure pass over the CSR, so any divergence
//!   is a bug (e.g. iteration-order dependence in nearest-point search).
//! * **Name round-trip** — the chosen schedule's `name()` parses back
//!   through [`bgpc::Schedule::from_name`] to the same name, so the
//!   config string recorded in benchmark JSON and the serve cache can
//!   reconstruct the schedule.
//! * **End-to-end validity** — the config is run the way real callers
//!   run it: the relabeling applied to the matrix, the graph built at
//!   the chosen index width, the online tuner enabled, at a drawn
//!   thread count (1–4). The coloring is unpermuted back to original
//!   vertex ids and must verify on the *original* graph, must not be
//!   degraded, and must respect the greedy color bound whenever the
//!   chosen schedule is unbalanced.
//!
//! The sweep shares [`crate::oracle`]'s seeding discipline: case `i`
//! runs from sub-seed `split_mix64(seed + i)` and any failure replays
//! standalone via `check_smoke --autotune --replay-case SEED`.

use bgpc::engine::{color_bgpc_with_config, color_d2gc_with_config};
use bgpc::runner::RunnerOpts;
use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::{Balance, Color, Engine, EngineChoice, OnlineTuner, Schedule};
use graph::{BipartiteGraph, Graph};
use par::Pool;
use rng::{split_mix64, Pcg32};
use sparse::{Csr, IndexWidth};

use crate::oracle::{
    max_d2_degree_bgpc, max_d2_degree_graph, pick_ordering, Draw, OracleFailure, PcgDraw,
};

/// Checks selection determinism and the schedule-name round-trip, shared
/// by both problem kinds. Returns the (single) choice on success.
fn check_choice(
    label: &str,
    first: EngineChoice,
    second: EngineChoice,
) -> Result<EngineChoice, String> {
    if first != second {
        return Err(format!(
            "{label}: selection not deterministic ({} [{}] vs {} [{}])",
            first.config.describe(),
            first.matched,
            second.config.describe(),
            second.matched,
        ));
    }
    let name = first.config.schedule.name();
    match Schedule::from_name(&name) {
        Some(s) if s.name() == name => {}
        Some(s) => {
            return Err(format!(
                "{label}: schedule name `{name}` round-trips to `{}`",
                s.name()
            ));
        }
        None => {
            return Err(format!(
                "{label}: engine chose schedule `{name}` that from_name cannot parse"
            ));
        }
    }
    Ok(first)
}

/// Shared validity battery on an unpermuted result.
fn check_result(
    label: &str,
    res: &bgpc::ColoringResult,
    colors: &[Color],
    n: usize,
    balance: Balance,
    d2_bound: impl FnOnce() -> usize,
    verify: impl FnOnce(&[Color]) -> Result<(), String>,
) -> Result<(), String> {
    verify(colors).map_err(|e| format!("{label}: invalid coloring: {e}"))?;
    if let Some(reason) = &res.degraded {
        return Err(format!("{label}: unexpectedly degraded: {reason}"));
    }
    if res.num_colors > n {
        return Err(format!("{label}: {} colors for {n} vertices", res.num_colors));
    }
    if balance == Balance::Unbalanced {
        let bound = d2_bound() + 1;
        if res.num_colors > bound {
            return Err(format!(
                "{label}: {} colors exceeds greedy bound {bound}",
                res.num_colors
            ));
        }
    }
    Ok(())
}

/// One randomized engine-selection case on a BGPC instance.
pub fn run_autotune_bgpc_case(d: &mut impl Draw, engine: &Engine) -> Result<(), String> {
    let nets = d.usize_in(1..17);
    let verts = d.usize_in(1..17);
    let nnz = d.usize_in(0..nets * verts + 1);
    let mseed = d.u64_any();
    let threads = d.usize_in(1..5);
    let m = sparse::gen::bipartite_uniform(nets, verts, nnz, mseed);
    let g = BipartiteGraph::from_matrix(&m);

    let choice = check_choice(
        &format!("autotune bgpc {nets}x{verts} nnz={nnz} seed={mseed}"),
        engine.select_bgpc(&g),
        engine.select_bgpc(&g),
    )?;
    let cfg = &choice.config;
    let label = format!(
        "autotune bgpc [{} via {}] x{threads} on {nets}x{verts} nnz={nnz} seed={mseed}",
        cfg.describe(),
        choice.matched
    );

    // Run it the way real callers do: relabel, then build at the chosen
    // width, then drive with the online tuner enabled.
    let (mp, perm) = cfg.relabel.apply_columns(&m);
    let pool = Pool::new(threads);
    let opts = RunnerOpts {
        online: Some(OnlineTuner::default()),
        ..RunnerOpts::default()
    };
    let res = match cfg.index_width {
        IndexWidth::U32 => {
            let gp = BipartiteGraph::from_matrix(&mp);
            let order = pick_ordering(d).vertex_order_bgpc(&gp);
            color_bgpc_with_config(&gp, &order, cfg, &pool, opts)
        }
        IndexWidth::U64 => {
            let mp64: Csr<u64> = mp.to_index::<u64>();
            let gp = BipartiteGraph::from_matrix(&mp64);
            let order = pick_ordering(d).vertex_order_bgpc(&gp);
            color_bgpc_with_config(&gp, &order, cfg, &pool, opts)
        }
    };
    let colors = match &perm {
        Some(p) => sparse::unpermute(&res.colors, p),
        None => res.colors.clone(),
    };
    check_result(
        &label,
        &res,
        &colors,
        g.n_vertices(),
        cfg.schedule.balance,
        || max_d2_degree_bgpc(&g),
        |c| verify_bgpc(&g, c).map_err(|e| e.to_string()),
    )
}

/// One randomized engine-selection case on a D2GC instance.
pub fn run_autotune_d2gc_case(d: &mut impl Draw, engine: &Engine) -> Result<(), String> {
    let n = d.usize_in(1..21);
    let max_edges = (2 * n).min(n * (n - 1) / 2);
    let nedges = d.usize_in(0..max_edges + 1);
    let mseed = d.u64_any();
    let threads = d.usize_in(1..5);
    let m = sparse::gen::erdos_renyi(n, nedges, mseed);
    let g = Graph::from_symmetric_matrix(&m);

    let choice = check_choice(
        &format!("autotune d2gc n={n} edges={nedges} seed={mseed}"),
        engine.select_d2gc(&g),
        engine.select_d2gc(&g),
    )?;
    let cfg = &choice.config;
    let label = format!(
        "autotune d2gc [{} via {}] x{threads} on n={n} edges={nedges} seed={mseed}",
        cfg.describe(),
        choice.matched
    );

    let (mp, perm) = cfg.relabel.apply_symmetric(&m);
    let pool = Pool::new(threads);
    let opts = RunnerOpts {
        online: Some(OnlineTuner::default()),
        ..RunnerOpts::default()
    };
    let res = match cfg.index_width {
        IndexWidth::U32 => {
            let gp = Graph::from_symmetric_matrix(&mp);
            let order = pick_ordering(d).vertex_order_d2(&gp);
            color_d2gc_with_config(&gp, &order, cfg, &pool, opts)
        }
        IndexWidth::U64 => {
            let mp64: Csr<u64> = mp.to_index::<u64>();
            let gp = Graph::from_symmetric_matrix(&mp64);
            let order = pick_ordering(d).vertex_order_d2(&gp);
            color_d2gc_with_config(&gp, &order, cfg, &pool, opts)
        }
    };
    let colors = match &perm {
        Some(p) => sparse::unpermute(&res.colors, p),
        None => res.colors.clone(),
    };
    check_result(
        &label,
        &res,
        &colors,
        g.n_vertices(),
        cfg.schedule.balance,
        || max_d2_degree_graph(&g),
        |c| verify_d2gc(&g, c).map_err(|e| e.to_string()),
    )
}

/// Replays a single autotune case (BGPC then D2GC) from its sub-seed,
/// over the shipped default table.
pub fn run_autotune_case_from_seed(case_seed: u64) -> Result<(), String> {
    let engine = Engine::with_default_table();
    let mut d = PcgDraw(Pcg32::seed_from_u64(case_seed));
    run_autotune_bgpc_case(&mut d, &engine)?;
    run_autotune_d2gc_case(&mut d, &engine)
}

/// Runs `cases` engine-selection cases from the base `seed`, over the
/// shipped default table (parsed once). Case `i` uses sub-seed
/// `split_mix64(seed + i)` so any failure replays standalone.
pub fn run_autotune_sweep(seed: u64, cases: usize) -> Result<usize, OracleFailure> {
    let engine = Engine::with_default_table();
    for case in 0..cases {
        let case_seed = split_mix64(seed.wrapping_add(case as u64));
        let mut d = PcgDraw(Pcg32::seed_from_u64(case_seed));
        let outcome = run_autotune_bgpc_case(&mut d, &engine)
            .and_then(|()| run_autotune_d2gc_case(&mut d, &engine));
        if let Err(message) = outcome {
            return Err(OracleFailure {
                case,
                case_seed,
                message,
            });
        }
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_autotune_sweep_is_clean() {
        let n = run_autotune_sweep(0xA7_70, 15).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(n, 15);
    }

    #[test]
    fn autotune_sweeps_are_deterministic_and_replayable() {
        assert!(run_autotune_sweep(7, 4).is_ok());
        assert!(run_autotune_sweep(7, 4).is_ok());
        run_autotune_case_from_seed(split_mix64(7)).expect("single-case replay is clean");
    }
}
