//! The differential oracle: every schedule against the sequential baseline.
//!
//! Each *case* draws a randomized instance from [`sparse::gen`], a point
//! of the full configuration matrix (schedule × balancer × chunk scheduler
//! × thread count × vertex ordering), runs the speculative driver, and
//! checks it against ground truth:
//!
//! * **Validity** — [`bgpc::verify::verify_bgpc`] /
//!   [`bgpc::verify::verify_d2gc`] on the final coloring, and the run must
//!   not be degraded (no fault fired, no queue overflowed, no cap
//!   tripped).
//! * **Sequential equivalence** — at one thread, the `V-V` schedule (and
//!   `V-V-64D` for D2GC) must reproduce the sequential greedy baseline
//!   *exactly*: same order, same first-fit, no conflicts to repair.
//! * **Implementation equivalences** — at one thread the two
//!   forbidden-set representations ([`bgpc::StampSet`] vs
//!   [`bgpc::BitStampSet`]), the two CSR index widths (`u32` vs `u64`)
//!   and the two chunk schedulers ([`par::Sched::Dynamic`] vs
//!   [`par::Sched::Stealing`]) must all produce identical colorings.
//! * **Determinism** — running the same configuration twice at one thread
//!   must produce identical colorings.
//! * **Color-count sanity** — never more colors than vertices, and for
//!   unbalanced first-fit never more than the maximum distance-2 degree
//!   plus one (the classic greedy bound; the `B1`/`B2` balancers trade
//!   that bound for balance, so it is only asserted for
//!   [`bgpc::Balance::Unbalanced`]).
//!
//! The case logic is written against the tiny [`Draw`] abstraction so the
//! same code runs in two harnesses: [`check_smoke`](../bin/check_smoke.rs)
//! drives it from a seeded [`rng::Pcg32`] (fast, replayable by seed), and
//! `tests/oracle.rs` drives it from [`minicheck::Gen`], which buys
//! shrinking — a failing case is automatically minimized to the smallest
//! choice stream that still fails.

use bgpc::runner::RunnerOpts;
use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::{Balance, BitStampSet, Color, KernelImpl, Schedule, StampSet};
use graph::{BipartiteGraph, Graph, Ordering};
use par::{Pool, Sched};
use rng::{split_mix64, Pcg32};

/// The random draws a differential case needs, abstracted so both the
/// seeded smoke harness and the shrinking minicheck harness can drive the
/// same case logic.
pub trait Draw {
    /// Uniform draw from a half-open range.
    fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize;
    /// Uniform 64-bit draw (instance seeds).
    fn u64_any(&mut self) -> u64;
}

impl Draw for minicheck::Gen {
    fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        minicheck::Gen::usize_in(self, range)
    }
    fn u64_any(&mut self) -> u64 {
        self.u64_in(0..u64::MAX)
    }
}

/// [`Draw`] over a plain seeded PCG stream — the smoke harness's source.
pub struct PcgDraw(pub Pcg32);

impl Draw for PcgDraw {
    fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        self.0.gen_range(range)
    }
    fn u64_any(&mut self) -> u64 {
        self.0.next_u64()
    }
}

pub(crate) fn pick_ordering(d: &mut impl Draw) -> Ordering {
    match d.usize_in(0..5) {
        0 => Ordering::Natural,
        1 => Ordering::Random(d.u64_any()),
        2 => Ordering::LargestFirst,
        3 => Ordering::SmallestLast,
        _ => Ordering::IncidenceDegree,
    }
}

pub(crate) fn pick_balance(d: &mut impl Draw) -> Balance {
    match d.usize_in(0..3) {
        0 => Balance::Unbalanced,
        1 => Balance::B1,
        _ => Balance::B2,
    }
}

pub(crate) fn pick_sched(d: &mut impl Draw) -> Sched {
    if d.usize_in(0..2) == 0 {
        Sched::Dynamic
    } else {
        Sched::Stealing
    }
}

/// Draws the forbidden-set kernel axis, or honors a forced `--kernel`
/// override. The forced path still consumes the draw so a case replays
/// the same instance and configuration with or without the override.
pub(crate) fn pick_kernel(d: &mut impl Draw, forced: Option<KernelImpl>) -> KernelImpl {
    let drawn = match d.usize_in(0..3) {
        0 => KernelImpl::Scalar,
        1 => KernelImpl::Simd,
        _ => KernelImpl::Auto,
    };
    forced.unwrap_or(drawn)
}

/// Exact maximum distance-2 degree of the colored side of a bipartite
/// graph (distinct d2 neighbors, excluding the vertex itself).
pub(crate) fn max_d2_degree_bgpc(g: &BipartiteGraph) -> usize {
    let mut max = 0usize;
    let mut seen = std::collections::HashSet::new();
    for u in 0..g.n_vertices() {
        seen.clear();
        g.for_each_d2_neighbor(u, |w| {
            if w as usize != u {
                seen.insert(w);
            }
        });
        max = max.max(seen.len());
    }
    max
}

/// Exact maximum distance-≤2 degree of a unipartite graph.
pub(crate) fn max_d2_degree_graph(g: &Graph) -> usize {
    let mut max = 0usize;
    let mut seen = std::collections::HashSet::new();
    for u in 0..g.n_vertices() {
        seen.clear();
        g.for_each_d2_neighbor(u, |w| {
            if w as usize != u {
                seen.insert(w);
            }
        });
        for &w in g.nbor(u) {
            if w as usize != u {
                seen.insert(w);
            }
        }
        max = max.max(seen.len());
    }
    max
}

fn same_colors(a: &[Color], b: &[Color], what: &str) -> Result<(), String> {
    if a != b {
        return Err(format!("{what}: colorings diverge ({a:?} vs {b:?})"));
    }
    Ok(())
}

/// One randomized BGPC differential case. Returns `Err` with a diagnosis
/// when any oracle check fails.
pub fn run_bgpc_case(d: &mut impl Draw) -> Result<(), String> {
    run_bgpc_case_with(d, None)
}

/// [`run_bgpc_case`] with an optional forced `--kernel` axis value.
pub fn run_bgpc_case_with(d: &mut impl Draw, forced: Option<KernelImpl>) -> Result<(), String> {
    // Instance: a small random bipartite matrix (rows = nets, cols = the
    // colored V_A side). Small sizes keep the full battery cheap while
    // still covering empty nets, isolated vertices and dense overlaps.
    let nets = d.usize_in(1..17);
    let verts = d.usize_in(1..17);
    let nnz = d.usize_in(0..nets * verts + 1);
    let mseed = d.u64_any();
    let m = sparse::gen::bipartite_uniform(nets, verts, nnz, mseed);
    let g = BipartiteGraph::from_matrix(&m);
    let order = pick_ordering(d).vertex_order_bgpc(&g);

    // Configuration point.
    let all = Schedule::all();
    let idx = d.usize_in(0..all.len());
    let balance = pick_balance(d);
    let sched = pick_sched(d);
    let kernel = pick_kernel(d, forced);
    let threads = d.usize_in(1..5);
    let schedule = {
        let mut s = all.into_iter().nth(idx).expect("index drawn in range");
        s = s.with_balance(balance).with_sched(sched).with_kernel(kernel);
        s
    };
    let label = format!(
        "bgpc {} [{}] x{threads} on {nets}x{verts} nnz={nnz} seed={mseed}",
        schedule.name(),
        kernel.label()
    );

    // Parallel validity.
    let pool = Pool::new(threads);
    let res = bgpc::color_bgpc(&g, &order, &schedule, &pool);
    verify_bgpc(&g, &res.colors).map_err(|e| format!("{label}: invalid coloring: {e}"))?;
    if let Some(reason) = &res.degraded {
        return Err(format!("{label}: unexpectedly degraded: {reason}"));
    }
    if res.num_colors > g.n_vertices() {
        return Err(format!(
            "{label}: {} colors for {} vertices",
            res.num_colors,
            g.n_vertices()
        ));
    }
    if balance == Balance::Unbalanced {
        let bound = max_d2_degree_bgpc(&g) + 1;
        if res.num_colors > bound {
            return Err(format!(
                "{label}: {} colors exceeds greedy bound {bound}",
                res.num_colors
            ));
        }
    }

    // One-thread battery: sequential equivalence, implementation
    // equivalences and determinism. One thread removes speculation (no
    // conflicts can arise), so every run must be bit-identical.
    let pool1 = Pool::new(1);
    let vv = Schedule::v_v();
    let par1 = bgpc::color_bgpc(&g, &order, &vv, &pool1);
    let (seq_colors, seq_k) = bgpc::seq::color_bgpc_seq(&g, &order);
    same_colors(&par1.colors, &seq_colors, &format!("{label}: V-V@1 vs seq"))?;
    if par1.num_colors != seq_k {
        return Err(format!(
            "{label}: V-V@1 used {} colors, seq used {seq_k}",
            par1.num_colors
        ));
    }

    let schedule1 = {
        let mut s = Schedule::all().into_iter().nth(idx).expect("in range");
        s = s.with_balance(balance).with_sched(sched).with_kernel(kernel);
        s
    };
    let a = bgpc::color_bgpc(&g, &order, &schedule1, &pool1);
    let b = bgpc::color_bgpc(&g, &order, &schedule1, &pool1);
    same_colors(&a.colors, &b.colors, &format!("{label}: @1 run-twice"))?;

    let opts = RunnerOpts::default();
    let stamp =
        bgpc::color_bgpc_with_set::<StampSet, u32>(&g, &order, &schedule1, &pool1, opts.clone());
    let bitstamp =
        bgpc::color_bgpc_with_set::<BitStampSet, u32>(&g, &order, &schedule1, &pool1, opts);
    same_colors(
        &stamp.colors,
        &bitstamp.colors,
        &format!("{label}: StampSet vs BitStampSet @1"),
    )?;

    let m64 = m.to_index::<u64>();
    let g64 = BipartiteGraph::from_matrix(&m64);
    let wide = bgpc::color_bgpc(&g64, &order, &schedule1, &pool1);
    same_colors(&a.colors, &wide.colors, &format!("{label}: u32 vs u64 @1"))?;

    let other_sched = match sched {
        Sched::Dynamic => Sched::Stealing,
        Sched::Stealing => Sched::Dynamic,
    };
    let flipped = {
        let mut s = Schedule::all().into_iter().nth(idx).expect("in range");
        s = s.with_balance(balance).with_sched(other_sched).with_kernel(kernel);
        s
    };
    let c = bgpc::color_bgpc(&g, &order, &flipped, &pool1);
    same_colors(
        &a.colors,
        &c.colors,
        &format!("{label}: dynamic vs stealing @1"),
    )?;

    // Kernel equivalence: at one thread the scalar spec loops and the
    // vectorized forbidden-set kernels must color identically.
    let other_kernel = match kernel {
        KernelImpl::Scalar => KernelImpl::Simd,
        _ => KernelImpl::Scalar,
    };
    let kflipped = schedule1.clone().with_kernel(other_kernel);
    let kc = bgpc::color_bgpc(&g, &order, &kflipped, &pool1);
    same_colors(
        &a.colors,
        &kc.colors,
        &format!("{label}: {} vs {} kernel @1", kernel.label(), other_kernel.label()),
    )?;

    Ok(())
}

/// One randomized D2GC differential case.
pub fn run_d2gc_case(d: &mut impl Draw) -> Result<(), String> {
    run_d2gc_case_with(d, None)
}

/// [`run_d2gc_case`] with an optional forced `--kernel` axis value.
pub fn run_d2gc_case_with(d: &mut impl Draw, forced: Option<KernelImpl>) -> Result<(), String> {
    let n = d.usize_in(1..21);
    let max_edges = (2 * n).min(n * (n - 1) / 2);
    let nedges = d.usize_in(0..max_edges + 1);
    let mseed = d.u64_any();
    let m = sparse::gen::erdos_renyi(n, nedges, mseed);
    let g = Graph::from_symmetric_matrix(&m);
    let order = pick_ordering(d).vertex_order_d2(&g);

    let set = Schedule::d2gc_set();
    let idx = d.usize_in(0..set.len());
    let balance = pick_balance(d);
    let sched = pick_sched(d);
    let kernel = pick_kernel(d, forced);
    let threads = d.usize_in(1..5);
    let schedule = {
        let mut s = set.into_iter().nth(idx).expect("in range");
        s = s.with_balance(balance).with_sched(sched).with_kernel(kernel);
        s
    };
    let label = format!(
        "d2gc {} [{}] x{threads} on n={n} edges={nedges} seed={mseed}",
        schedule.name(),
        kernel.label()
    );

    let pool = Pool::new(threads);
    let res = bgpc::d2gc::runner::color_d2gc(&g, &order, &schedule, &pool);
    verify_d2gc(&g, &res.colors).map_err(|e| format!("{label}: invalid coloring: {e}"))?;
    if let Some(reason) = &res.degraded {
        return Err(format!("{label}: unexpectedly degraded: {reason}"));
    }
    if res.num_colors > g.n_vertices() {
        return Err(format!(
            "{label}: {} colors for {} vertices",
            res.num_colors,
            g.n_vertices()
        ));
    }
    if balance == Balance::Unbalanced {
        let bound = max_d2_degree_graph(&g) + 1;
        if res.num_colors > bound {
            return Err(format!(
                "{label}: {} colors exceeds greedy bound {bound}",
                res.num_colors
            ));
        }
    }

    // One-thread battery.
    let pool1 = Pool::new(1);
    let base = Schedule::v_v_64d();
    let par1 = bgpc::d2gc::runner::color_d2gc(&g, &order, &base, &pool1);
    let (seq_colors, seq_k) = bgpc::seq::color_d2gc_seq(&g, &order);
    same_colors(
        &par1.colors,
        &seq_colors,
        &format!("{label}: V-V-64D@1 vs seq"),
    )?;
    if par1.num_colors != seq_k {
        return Err(format!(
            "{label}: V-V-64D@1 used {} colors, seq used {seq_k}",
            par1.num_colors
        ));
    }

    let schedule1 = {
        let mut s = Schedule::d2gc_set().into_iter().nth(idx).expect("in range");
        s = s.with_balance(balance).with_sched(sched).with_kernel(kernel);
        s
    };
    let a = bgpc::d2gc::runner::color_d2gc(&g, &order, &schedule1, &pool1);
    let b = bgpc::d2gc::runner::color_d2gc(&g, &order, &schedule1, &pool1);
    same_colors(&a.colors, &b.colors, &format!("{label}: @1 run-twice"))?;

    let opts = RunnerOpts::default();
    let stamp = bgpc::d2gc::runner::color_d2gc_with_set::<StampSet, u32>(
        &g, &order, &schedule1, &pool1, opts.clone(),
    );
    let bitstamp = bgpc::d2gc::runner::color_d2gc_with_set::<BitStampSet, u32>(
        &g, &order, &schedule1, &pool1, opts,
    );
    same_colors(
        &stamp.colors,
        &bitstamp.colors,
        &format!("{label}: StampSet vs BitStampSet @1"),
    )?;

    let m64 = m.to_index::<u64>();
    let g64 = Graph::from_symmetric_matrix(&m64);
    let wide = bgpc::d2gc::runner::color_d2gc(&g64, &order, &schedule1, &pool1);
    same_colors(&a.colors, &wide.colors, &format!("{label}: u32 vs u64 @1"))?;

    // Kernel equivalence at one thread (vectorized dist-2 row sweeps vs
    // the scalar spec).
    let other_kernel = match kernel {
        KernelImpl::Scalar => KernelImpl::Simd,
        _ => KernelImpl::Scalar,
    };
    let kflipped = schedule1.clone().with_kernel(other_kernel);
    let kc = bgpc::d2gc::runner::color_d2gc(&g, &order, &kflipped, &pool1);
    same_colors(
        &a.colors,
        &kc.colors,
        &format!("{label}: {} vs {} kernel @1", kernel.label(), other_kernel.label()),
    )?;

    Ok(())
}

/// A differential-oracle failure with everything needed to replay it.
#[derive(Debug)]
pub struct OracleFailure {
    /// Zero-based index of the failing case within the sweep.
    pub case: usize,
    /// Sub-seed of the failing case; feed to [`run_case_from_seed`].
    pub case_seed: u64,
    /// The oracle's diagnosis.
    pub message: String,
}

impl std::fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (case {}, replay case seed {})",
            self.message, self.case, self.case_seed
        )
    }
}

/// Replays a single case (BGPC then D2GC) from its sub-seed.
pub fn run_case_from_seed(case_seed: u64) -> Result<(), String> {
    run_case_from_seed_with(case_seed, None)
}

/// [`run_case_from_seed`] with an optional forced kernel. The draw
/// stream is identical either way (the kernel draw is consumed and
/// discarded when forced), so a failing seed replays the same instance
/// under `--kernel scalar` and `--kernel simd`.
pub fn run_case_from_seed_with(
    case_seed: u64,
    kernel: Option<KernelImpl>,
) -> Result<(), String> {
    let mut d = PcgDraw(Pcg32::seed_from_u64(case_seed));
    run_bgpc_case_with(&mut d, kernel)?;
    run_d2gc_case_with(&mut d, kernel)
}

/// Runs `cases` differential cases from the base `seed`. Case `i` uses
/// sub-seed `split_mix64(seed + i)` so any failure replays standalone.
/// Returns the number of cases run on success.
pub fn run_oracle_sweep(seed: u64, cases: usize) -> Result<usize, OracleFailure> {
    run_oracle_sweep_with(seed, cases, None)
}

/// [`run_oracle_sweep`] with every case's kernel axis pinned to `kernel`
/// (when `Some`) — the `check_smoke --kernel` cross-product hook.
pub fn run_oracle_sweep_with(
    seed: u64,
    cases: usize,
    kernel: Option<KernelImpl>,
) -> Result<usize, OracleFailure> {
    for case in 0..cases {
        let case_seed = split_mix64(seed.wrapping_add(case as u64));
        if let Err(message) = run_case_from_seed_with(case_seed, kernel) {
            return Err(OracleFailure {
                case,
                case_seed,
                message,
            });
        }
    }
    Ok(cases)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_short_sweep_is_clean() {
        let n = run_oracle_sweep(0xD1FF, 20).unwrap_or_else(|f| panic!("{f}"));
        assert_eq!(n, 20);
    }

    #[test]
    fn sweeps_are_deterministic() {
        // Same seed twice: identical outcome (and the cases themselves
        // re-run identically, which run_case_from_seed exercises).
        assert!(run_oracle_sweep(42, 5).is_ok());
        assert!(run_oracle_sweep(42, 5).is_ok());
        let case_seed = split_mix64(42);
        run_case_from_seed(case_seed).expect("single-case replay is clean");
    }
}
