//! Models of the runtime's lock-free protocols for the virtual scheduler.
//!
//! Two granularities are covered:
//!
//! * **Atomic-granularity models** re-implement the protocols of
//!   [`bgpc::workqueue::SharedQueue`], [`par::ChunkCursor`] and
//!   [`par::StealRanges`] over plain data, splitting each operation into
//!   its constituent atomic actions (one load, one read-modify-write, one
//!   store per [`ThreadProgram::step`]). The virtual scheduler can then
//!   interleave those actions in every order the real hardware could,
//!   which is exactly where torn protocols break. A deliberately-buggy
//!   queue variant (non-atomic reserve) is included so the test suite can
//!   prove the explorer *detects* lost updates rather than merely runs.
//! * **Op-granularity drivers** run the *real* structures, one whole
//!   operation per step. The operations themselves are atomic with
//!   respect to each other (that is the structures' contract), so
//!   single-threaded execution under an adversarial op order checks the
//!   logical protocol — exactly-once coverage, bounded counters, overflow
//!   accounting — without relying on the OS scheduler to produce the
//!   nasty order.
//!
//! All invariants are checked on the final state, after every virtual
//! thread has finished — mirroring the real runners, which only read the
//! shared structures after a join barrier.

use crate::vsched::{
    explore_exhaustive, explore_random, CheckFailure, Coverage, ThreadProgram,
};
use bgpc::workqueue::SharedQueue;
use par::{ChunkCursor, StealRanges};

// ---------------------------------------------------------------------------
// SharedQueue: atomic-granularity push/flush model
// ---------------------------------------------------------------------------

/// Modeled state of a [`SharedQueue`]: the tail counter, the slot array
/// and the drop counter, plus the ground truth of everything pushed.
#[derive(Debug)]
pub struct QueueState {
    cap: usize,
    tail: usize,
    slots: Vec<Option<u32>>,
    dropped: usize,
    pushed: usize,
}

impl QueueState {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            tail: 0,
            slots: vec![None; cap],
            dropped: 0,
            pushed: 0,
        }
    }
}

enum PushPc {
    /// About to execute the tail `fetch_add`.
    Reserve,
    /// Holds a reserved slot; about to store (or count the drop).
    Store { slot: usize },
}

/// One pusher thread: `items` two-step pushes (reserve, then store).
struct Pusher {
    remaining: usize,
    next_value: u32,
    pc: PushPc,
}

impl ThreadProgram<QueueState> for Pusher {
    fn step(&mut self, st: &mut QueueState) -> bool {
        match self.pc {
            PushPc::Reserve => {
                // fetch_add(1, AcqRel): read and bump in one atomic action.
                let slot = st.tail;
                st.tail += 1;
                st.pushed += 1;
                self.pc = PushPc::Store { slot };
                true
            }
            PushPc::Store { slot } => {
                if slot >= st.cap {
                    st.dropped += 1;
                } else {
                    st.slots[slot] = Some(self.next_value);
                }
                self.next_value += 1;
                self.remaining -= 1;
                self.pc = PushPc::Reserve;
                self.remaining > 0
            }
        }
    }
}

fn mk_queue_model(threads: usize, items: usize, cap: usize) -> (QueueState, Vec<Pusher>) {
    let pushers = (0..threads)
        .map(|t| Pusher {
            remaining: items,
            next_value: (t * items) as u32,
            pc: PushPc::Reserve,
        })
        .collect();
    (QueueState::new(cap), pushers)
}

fn check_queue_final(st: &QueueState) -> Result<(), String> {
    let readable = st.tail.min(st.cap);
    let mut seen = std::collections::HashSet::new();
    for (i, slot) in st.slots.iter().enumerate().take(readable) {
        let Some(w) = slot else {
            return Err(format!("hole at slot {i}: reserved but never stored"));
        };
        if !seen.insert(*w) {
            return Err(format!("value {w} landed in two slots"));
        }
    }
    if readable + st.dropped != st.pushed {
        return Err(format!(
            "work-item accounting broken: {readable} stored + {} dropped != {} pushed",
            st.dropped, st.pushed
        ));
    }
    Ok(())
}

/// Exhaustively interleaves `threads` pushers of `items` two-step pushes
/// into a `cap`-slot queue and checks the no-lost / no-duplicated /
/// no-hole / drop-accounting invariants on every final state.
pub fn check_queue_model_exhaustive(
    threads: usize,
    items: usize,
    cap: usize,
    limit: usize,
) -> Result<Coverage, CheckFailure> {
    explore_exhaustive(
        || mk_queue_model(threads, items, cap),
        limit,
        |st, _| check_queue_final(st),
    )
}

/// Randomly samples `rounds` interleavings of the queue push model.
pub fn check_queue_model_random(
    threads: usize,
    items: usize,
    cap: usize,
    seed: u64,
    rounds: usize,
) -> Result<Coverage, CheckFailure> {
    explore_random(
        || mk_queue_model(threads, items, cap),
        seed,
        rounds,
        |st, _| check_queue_final(st),
    )
}

// ---------------------------------------------------------------------------
// SharedQueue: staged-flush model
// ---------------------------------------------------------------------------

enum FlushPc {
    /// About to execute the bulk tail `fetch_add`.
    Reserve,
    /// Storing item `idx` of the batch at `base + idx`.
    Store { base: usize, idx: usize },
}

/// One flusher thread: a single staged batch flushed with one bulk
/// reserve followed by one store step per in-range entry.
struct Flusher {
    batch: Vec<u32>,
    pc: FlushPc,
}

impl ThreadProgram<QueueState> for Flusher {
    fn step(&mut self, st: &mut QueueState) -> bool {
        match self.pc {
            FlushPc::Reserve => {
                let base = st.tail;
                st.tail += self.batch.len();
                st.pushed += self.batch.len();
                // The out-of-range remainder is counted in the same
                // user-visible operation as the reservation's bookkeeping
                // (the real `flush` does both before returning; no other
                // thread observes a half-counted state because `dropped`
                // is only read after the join).
                let fits = if base >= st.cap {
                    0
                } else {
                    self.batch.len().min(st.cap - base)
                };
                st.dropped += self.batch.len() - fits;
                if fits == 0 {
                    return false;
                }
                self.batch.truncate(fits);
                self.pc = FlushPc::Store { base, idx: 0 };
                true
            }
            FlushPc::Store { base, idx } => {
                st.slots[base + idx] = Some(self.batch[idx]);
                if idx + 1 < self.batch.len() {
                    self.pc = FlushPc::Store { base, idx: idx + 1 };
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Exhaustively interleaves staged flushes (batch sizes given per thread)
/// into a `cap`-slot queue, checking the same final-state invariants as
/// the unstaged model.
pub fn check_flush_model_exhaustive(
    batches: &[usize],
    cap: usize,
    limit: usize,
) -> Result<Coverage, CheckFailure> {
    let batches = batches.to_vec();
    explore_exhaustive(
        move || {
            let mut next = 0u32;
            let flushers = batches
                .iter()
                .map(|&n| {
                    let batch = (next..next + n as u32).collect::<Vec<_>>();
                    next += n as u32;
                    Flusher {
                        batch,
                        pc: FlushPc::Reserve,
                    }
                })
                .collect();
            (QueueState::new(cap), flushers)
        },
        limit,
        |st, _| check_queue_final(st),
    )
}

// ---------------------------------------------------------------------------
// Deliberately-buggy queue: non-atomic reserve (lost update)
// ---------------------------------------------------------------------------

/// A pusher whose reserve is torn into a separate load and store — the
/// bug the `fetch_add` in the real queue exists to prevent. The explorer
/// must find the interleaving where two threads observe the same tail.
struct TornPusher {
    value: u32,
    observed: Option<usize>,
}

impl ThreadProgram<QueueState> for TornPusher {
    fn step(&mut self, st: &mut QueueState) -> bool {
        match self.observed.take() {
            None => {
                self.observed = Some(st.tail); // load
                true
            }
            Some(slot) => {
                st.tail = slot + 1; // store (non-atomic with the load!)
                st.pushed += 1;
                if slot < st.cap {
                    st.slots[slot] = Some(self.value);
                }
                false
            }
        }
    }
}

/// Runs the torn-reserve queue under exhaustive exploration and returns
/// the failure the explorer MUST produce. Used by the self-test layer to
/// prove detection power: a checker that cannot catch a planted lost
/// update proves nothing about the real protocols.
pub fn buggy_queue_must_be_caught() -> Result<CheckFailure, String> {
    let result = explore_exhaustive(
        || {
            let threads = (0..2)
                .map(|t| TornPusher {
                    value: t,
                    observed: None,
                })
                .collect::<Vec<_>>();
            (QueueState::new(8), threads)
        },
        10_000,
        |st, _| check_queue_final(st),
    );
    match result {
        Err(failure) => Ok(failure),
        Ok(cov) => Err(format!(
            "planted lost-update bug survived {} schedules undetected",
            cov.schedules
        )),
    }
}

// ---------------------------------------------------------------------------
// ChunkCursor: atomic-granularity claim model
// ---------------------------------------------------------------------------

/// Modeled state of a [`par::ChunkCursor`]: the claim counter plus a
/// per-index claim count (the coverage ledger).
#[derive(Debug)]
pub struct CursorState {
    len: usize,
    chunk: usize,
    next: usize,
    claims: Vec<usize>,
}

enum CursorPc {
    /// The `Relaxed` exhaustion pre-check load.
    Precheck,
    /// The `fetch_add` claim.
    FetchAdd,
}

struct CursorWorker {
    pc: CursorPc,
}

impl ThreadProgram<CursorState> for CursorWorker {
    fn step(&mut self, st: &mut CursorState) -> bool {
        match self.pc {
            CursorPc::Precheck => {
                if st.next >= st.len {
                    return false; // exhausted: worker leaves the loop
                }
                self.pc = CursorPc::FetchAdd;
                true
            }
            CursorPc::FetchAdd => {
                let start = st.next;
                st.next += st.chunk;
                self.pc = CursorPc::Precheck;
                if start >= st.len {
                    return false; // raced past the end: wasted fetch_add
                }
                for i in start..(start + st.chunk).min(st.len) {
                    st.claims[i] += 1;
                }
                true
            }
        }
    }
}

fn mk_cursor_model(threads: usize, len: usize, chunk: usize) -> (CursorState, Vec<CursorWorker>) {
    (
        CursorState {
            len,
            chunk: chunk.max(1),
            next: 0,
            claims: vec![0; len],
        },
        (0..threads)
            .map(|_| CursorWorker {
                pc: CursorPc::Precheck,
            })
            .collect(),
    )
}

fn check_cursor_final(st: &CursorState, threads: usize) -> Result<(), String> {
    for (i, &c) in st.claims.iter().enumerate() {
        if c != 1 {
            return Err(format!("index {i} claimed {c} times, expected exactly 1"));
        }
    }
    let bound = st.len + threads * st.chunk;
    if st.next > bound {
        return Err(format!(
            "claim counter {} exceeds bound len + threads*chunk = {bound}",
            st.next
        ));
    }
    Ok(())
}

/// Exhaustively interleaves `threads` cursor workers over `0..len` and
/// checks exactly-once coverage plus the bounded-counter invariant.
pub fn check_cursor_model_exhaustive(
    threads: usize,
    len: usize,
    chunk: usize,
    limit: usize,
) -> Result<Coverage, CheckFailure> {
    explore_exhaustive(
        || mk_cursor_model(threads, len, chunk),
        limit,
        |st, _| check_cursor_final(st, threads),
    )
}

/// Randomly samples cursor-model interleavings.
pub fn check_cursor_model_random(
    threads: usize,
    len: usize,
    chunk: usize,
    seed: u64,
    rounds: usize,
) -> Result<Coverage, CheckFailure> {
    explore_random(
        || mk_cursor_model(threads, len, chunk),
        seed,
        rounds,
        |st, _| check_cursor_final(st, threads),
    )
}

// ---------------------------------------------------------------------------
// StealRanges: atomic-granularity claim-local / steal-half model
// ---------------------------------------------------------------------------

/// Weyl-sequence multiplier — must match `par::steal::SCAN_SALT` so the
/// model walks victims in the same order as the real scheduler.
const SCAN_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Modeled state of [`par::StealRanges`]: one `(lo, hi)` pair per slot
/// (the packed `AtomicU64` word) plus the coverage ledger.
#[derive(Debug)]
pub struct StealState {
    chunk: usize,
    slots: Vec<(u32, u32)>,
    claims: Vec<usize>,
}

enum StealPc {
    /// `claim_local`: the initial Acquire load of the own slot.
    LocalLoad,
    /// `claim_local`: the CAS attempt against the observed word.
    LocalCas { observed: (u32, u32) },
    /// `steal`: scanning victim `k` of the salted order, tracking the
    /// largest block observed so far.
    Scan {
        k: usize,
        round: u64,
        best: Option<(usize, (u32, u32))>,
    },
    /// `steal`: the halving CAS against the best victim's observed word.
    StealCas {
        victim: usize,
        observed: (u32, u32),
        round: u64,
    },
    /// `steal`: publishing the stolen remainder into the own (empty) slot.
    Publish { lo: u32, hi: u32 },
}

struct StealWorker {
    tid: usize,
    pc: StealPc,
}

impl StealWorker {
    fn scan_offset(&self, round: u64, t: usize) -> usize {
        (SCAN_SALT.wrapping_mul(self.tid as u64 + round + 1) % t as u64) as usize
    }
}

impl ThreadProgram<StealState> for StealWorker {
    fn step(&mut self, st: &mut StealState) -> bool {
        let t = st.slots.len();
        match self.pc {
            StealPc::LocalLoad => {
                self.pc = StealPc::LocalCas {
                    observed: st.slots[self.tid],
                };
                true
            }
            StealPc::LocalCas { observed } => {
                let (lo, hi) = observed;
                if lo >= hi {
                    // Own block drained: fall through to stealing.
                    self.pc = StealPc::Scan {
                        k: 0,
                        round: 0,
                        best: None,
                    };
                    return true;
                }
                if st.slots[self.tid] != observed {
                    // CAS failure returns the current word; retry with it.
                    self.pc = StealPc::LocalCas {
                        observed: st.slots[self.tid],
                    };
                    return true;
                }
                let new_lo = (lo as u64 + st.chunk as u64).min(hi as u64) as u32;
                st.slots[self.tid] = (new_lo, hi);
                for i in lo..new_lo {
                    st.claims[i as usize] += 1;
                }
                self.pc = StealPc::LocalLoad;
                true
            }
            StealPc::Scan {
                k,
                round,
                ref best,
            } => {
                let mut best = *best;
                if k < t {
                    let v = (self.scan_offset(round, t) + k) % t;
                    if v != self.tid {
                        let word = st.slots[v];
                        let rem = word.1.saturating_sub(word.0);
                        let best_rem = best.map_or(0, |(_, (lo, hi))| hi.saturating_sub(lo));
                        if rem > best_rem {
                            best = Some((v, word));
                        }
                    }
                    self.pc = StealPc::Scan {
                        k: k + 1,
                        round,
                        best,
                    };
                    return true;
                }
                match best {
                    None => false, // every slot observed empty: worker done
                    Some((victim, observed)) => {
                        self.pc = StealPc::StealCas {
                            victim,
                            observed,
                            round,
                        };
                        true
                    }
                }
            }
            StealPc::StealCas {
                victim,
                observed,
                round,
            } => {
                if st.slots[victim] != observed {
                    // The victim raced us; rescan from a new offset.
                    self.pc = StealPc::Scan {
                        k: 0,
                        round: round + 1,
                        best: None,
                    };
                    return true;
                }
                let (lo, hi) = observed;
                let mid = if (hi - lo) as usize <= st.chunk {
                    lo
                } else {
                    lo + (hi - lo) / 2
                };
                st.slots[victim] = (lo, mid);
                let claim_hi = (mid as u64 + st.chunk as u64).min(hi as u64) as u32;
                for i in mid..claim_hi {
                    st.claims[i as usize] += 1;
                }
                if claim_hi < hi {
                    self.pc = StealPc::Publish { lo: claim_hi, hi };
                } else {
                    self.pc = StealPc::LocalLoad;
                }
                true
            }
            StealPc::Publish { lo, hi } => {
                // The disjointness invariant makes this a plain store in
                // the real scheduler; the model asserts the precondition.
                st.slots[self.tid] = (lo, hi);
                self.pc = StealPc::LocalLoad;
                true
            }
        }
    }
}

fn mk_steal_model(threads: usize, len: usize, chunk: usize) -> (StealState, Vec<StealWorker>) {
    let t = threads.max(1);
    let slots = (0..t)
        .map(|tid| ((len * tid / t) as u32, (len * (tid + 1) / t) as u32))
        .collect();
    (
        StealState {
            chunk: chunk.max(1),
            slots,
            claims: vec![0; len],
        },
        (0..t)
            .map(|tid| StealWorker {
                tid,
                pc: StealPc::LocalLoad,
            })
            .collect(),
    )
}

fn check_steal_final(st: &StealState) -> Result<(), String> {
    for (i, &c) in st.claims.iter().enumerate() {
        if c != 1 {
            return Err(format!(
                "steal model: index {i} claimed {c} times, expected exactly 1"
            ));
        }
    }
    Ok(())
}

/// Exhaustively interleaves the claim-local / steal-half protocol and
/// checks exactly-once coverage of `0..len`.
///
/// Note: a worker whose full scan observes every foreign slot empty
/// retires, matching the real scheduler; work published *after* that scan
/// would be missed by that worker but is still covered by its owner —
/// the coverage check holds regardless.
pub fn check_steal_model_exhaustive(
    threads: usize,
    len: usize,
    chunk: usize,
    limit: usize,
) -> Result<Coverage, CheckFailure> {
    explore_exhaustive(
        || mk_steal_model(threads, len, chunk),
        limit,
        |st, _| check_steal_final(st),
    )
}

/// Randomly samples steal-model interleavings.
pub fn check_steal_model_random(
    threads: usize,
    len: usize,
    chunk: usize,
    seed: u64,
    rounds: usize,
) -> Result<Coverage, CheckFailure> {
    explore_random(
        || mk_steal_model(threads, len, chunk),
        seed,
        rounds,
        |st, _| check_steal_final(st),
    )
}

// ---------------------------------------------------------------------------
// Op-granularity drivers for the REAL structures
// ---------------------------------------------------------------------------

/// Shared state for op-granularity runs against the real [`SharedQueue`].
pub struct RealQueueState {
    queue: SharedQueue,
    pushed: usize,
}

struct RealPusher {
    values: Vec<u32>,
    idx: usize,
    staged: bool,
    stage: Vec<u32>,
}

impl ThreadProgram<RealQueueState> for RealPusher {
    fn step(&mut self, st: &mut RealQueueState) -> bool {
        if self.idx < self.values.len() {
            let w = self.values[self.idx];
            self.idx += 1;
            if self.staged {
                st.queue.push_staged(&mut self.stage, w);
            } else {
                st.queue.push(w);
            }
            st.pushed += 1;
            true
        } else if self.staged && !self.stage.is_empty() {
            st.queue.flush(&mut self.stage);
            false
        } else {
            false
        }
    }
}

/// Drives the real queue with whole push/flush ops under every op order
/// (mixing staged and unstaged pushers) and checks that the drain returns
/// exactly the pushed values minus the counted drops.
pub fn check_real_queue_ops(
    cap: usize,
    per_thread: &[usize],
    staged: bool,
    limit: usize,
) -> Result<Coverage, CheckFailure> {
    let per_thread = per_thread.to_vec();
    explore_exhaustive(
        move || {
            let mut next = 0u32;
            let pushers = per_thread
                .iter()
                .map(|&n| {
                    let values = (next..next + n as u32).collect::<Vec<_>>();
                    next += n as u32;
                    RealPusher {
                        values,
                        idx: 0,
                        staged,
                        stage: Vec::new(),
                    }
                })
                .collect();
            (
                RealQueueState {
                    queue: SharedQueue::new(cap),
                    pushed: 0,
                },
                pushers,
            )
        },
        limit,
        |st, _| {
            let drained = st.queue.len();
            let dropped = st.queue.dropped();
            if drained + dropped != st.pushed {
                return Err(format!(
                    "real queue accounting: {drained} readable + {dropped} dropped != {} pushed",
                    st.pushed
                ));
            }
            let v = st.queue.drain_to_vec();
            let unique: std::collections::HashSet<u32> = v.iter().copied().collect();
            if unique.len() != v.len() {
                return Err("real queue: a value landed in two slots".into());
            }
            Ok(())
        },
    )
}

/// Shared state for op-granularity runs against the real scheduler
/// structures: a [`ChunkCursor`] or [`StealRanges`] plus a coverage
/// ledger.
pub struct RealSchedState {
    cursor: Option<ChunkCursor>,
    steal: Option<StealRanges>,
    claims: Vec<usize>,
}

struct RealWorker {
    tid: usize,
    /// `Stealing` workers claim locally until drained, then steal.
    stealing_phase: bool,
}

impl ThreadProgram<RealSchedState> for RealWorker {
    fn step(&mut self, st: &mut RealSchedState) -> bool {
        if let Some(cursor) = &st.cursor {
            match cursor.claim() {
                Some(r) => {
                    for i in r {
                        st.claims[i] += 1;
                    }
                    true
                }
                None => false,
            }
        } else {
            let ranges = st.steal.as_ref().expect("one structure is always set");
            if !self.stealing_phase {
                if let Some(r) = ranges.claim_local(self.tid, 4) {
                    for i in r {
                        st.claims[i] += 1;
                    }
                    return true;
                }
                self.stealing_phase = true;
            }
            match ranges.steal(self.tid, 4) {
                Some(r) => {
                    for i in r {
                        st.claims[i] += 1;
                    }
                    // A successful steal republishes local work.
                    self.stealing_phase = false;
                    true
                }
                None => false,
            }
        }
    }
}

fn check_real_sched_final(st: &RealSchedState) -> Result<(), String> {
    for (i, &c) in st.claims.iter().enumerate() {
        if c != 1 {
            return Err(format!(
                "real scheduler: index {i} claimed {c} times, expected exactly 1"
            ));
        }
    }
    Ok(())
}

/// Drives the real [`ChunkCursor`] with whole claim ops under every op
/// order and checks exactly-once coverage plus the counter bound.
pub fn check_real_cursor_ops(
    threads: usize,
    len: usize,
    chunk: usize,
    limit: usize,
) -> Result<Coverage, CheckFailure> {
    explore_exhaustive(
        move || {
            (
                RealSchedState {
                    cursor: Some(ChunkCursor::new(len, chunk)),
                    steal: None,
                    claims: vec![0; len],
                },
                (0..threads)
                    .map(|tid| RealWorker {
                        tid,
                        stealing_phase: false,
                    })
                    .collect(),
            )
        },
        limit,
        move |st, _| {
            check_real_sched_final(st)?;
            let cursor = st.cursor.as_ref().expect("cursor run");
            let bound = len + threads * cursor.chunk();
            if cursor.issued() > bound {
                return Err(format!(
                    "real cursor counter {} exceeds bound {bound}",
                    cursor.issued()
                ));
            }
            Ok(())
        },
    )
}

/// Drives the real [`StealRanges`] with whole claim-local/steal ops under
/// every op order and checks exactly-once coverage and full drain.
pub fn check_real_steal_ops(
    threads: usize,
    len: usize,
    limit: usize,
) -> Result<Coverage, CheckFailure> {
    explore_exhaustive(
        move || {
            (
                RealSchedState {
                    cursor: None,
                    steal: Some(StealRanges::new(len, threads)),
                    claims: vec![0; len],
                },
                (0..threads)
                    .map(|tid| RealWorker {
                        tid,
                        stealing_phase: false,
                    })
                    .collect(),
            )
        },
        limit,
        |st, _| {
            check_real_sched_final(st)?;
            let remaining = st.steal.as_ref().expect("steal run").remaining();
            if remaining != 0 {
                return Err(format!("real steal: {remaining} indices never claimed"));
            }
            Ok(())
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_model_exhaustive_two_pushers() {
        let cov = check_queue_model_exhaustive(2, 2, 8, 100_000).expect("protocol is sound");
        assert!(cov.complete, "small space must be fully enumerated");
        assert!(cov.schedules > 1);
    }

    #[test]
    fn queue_model_overflow_accounting_holds_under_all_orders() {
        // Capacity 2, four pushes: two entries must drop, none may be lost.
        let cov = check_queue_model_exhaustive(2, 2, 2, 100_000).expect("drop accounting sound");
        assert!(cov.complete);
    }

    #[test]
    fn flush_model_exhaustive_mixed_batches() {
        let cov =
            check_flush_model_exhaustive(&[3, 2], 4, 100_000).expect("flush accounting sound");
        assert!(cov.complete);
    }

    #[test]
    fn torn_reserve_is_caught_with_a_replayable_schedule() {
        let failure = buggy_queue_must_be_caught().expect("explorer must catch the planted bug");
        assert!(
            failure.message.contains("hole")
                || failure.message.contains("two slots")
                || failure.message.contains("accounting"),
            "unexpected failure shape: {failure}"
        );
        assert!(!failure.schedule.is_empty());
    }

    #[test]
    fn cursor_model_exhaustive_small() {
        let cov = check_cursor_model_exhaustive(2, 5, 2, 1_000_000).expect("cursor sound");
        assert!(cov.complete);
    }

    #[test]
    fn cursor_model_random_larger() {
        check_cursor_model_random(3, 64, 7, 0xC0FFEE, 200).expect("cursor sound under sampling");
    }

    #[test]
    fn steal_model_exhaustive_two_threads() {
        // CAS-failure branches inflate the schedule space, so completeness
        // is not asserted — only that no interleaving in the budget
        // violates exactly-once coverage.
        let cov = check_steal_model_exhaustive(2, 4, 2, 500_000).expect("steal sound");
        assert!(cov.schedules > 100, "space should be non-trivial");
    }

    #[test]
    fn steal_model_random_three_threads() {
        check_steal_model_random(3, 24, 3, 0xBEEF, 200).expect("steal sound under sampling");
    }

    #[test]
    fn real_queue_ops_unstaged_and_staged() {
        check_real_queue_ops(8, &[2, 2], false, 100_000).expect("real queue sound");
        check_real_queue_ops(8, &[2, 2], true, 100_000).expect("real staged queue sound");
        // Overflowing op mix: accounting must still balance.
        check_real_queue_ops(2, &[2, 2], false, 100_000).expect("real queue overflow accounted");
    }

    #[test]
    fn real_cursor_ops_exhaustive() {
        let cov = check_real_cursor_ops(2, 7, 2, 1_000_000).expect("real cursor sound");
        assert!(cov.complete);
    }

    #[test]
    fn real_steal_ops_exhaustive() {
        let cov = check_real_steal_ops(2, 10, 2_000_000).expect("real steal sound");
        assert!(cov.complete);
    }
}
