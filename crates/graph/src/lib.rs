//! `graph` — coloring-oriented graph substrate.
//!
//! Two views back the coloring algorithms:
//!
//! * [`BipartiteGraph`] — the BGPC input: vertices (`V_A`, matrix columns)
//!   on one side, nets (`V_B`, matrix rows) on the other, with CSR adjacency
//!   in *both* directions since vertex-based kernels walk `nets(u)` →
//!   `vtxs(v)` while net-based kernels walk `vtxs(v)` directly.
//! * [`Graph`] — the D2GC input: a simple undirected graph in CSR form.
//!
//! [`order`] implements the vertex orderings the paper evaluates (natural
//! and ColPack's smallest-last, plus largest-first and random for
//! completeness); orderings permute the *processing order* of the work
//! queue, not the graph itself.

pub mod bipartite;
pub mod error;
pub mod order;
pub mod rcm;
pub mod unipartite;

pub use bipartite::BipartiteGraph;
pub use error::GraphError;
pub use order::Ordering;
pub use rcm::{bandwidth, rcm_permutation};
pub use unipartite::Graph;
