//! The D2GC input structure.

use sparse::{Csr, CsrIndex};

/// A simple undirected graph in CSR form (no self-loops, symmetric
/// adjacency) — the D2GC input. Parameterized by the CSR row-pointer
/// width `I` exactly like [`Csr`] (`u32` default, `u64` fallback).
#[derive(Clone, Debug)]
pub struct Graph<I: CsrIndex = u32> {
    adj: Csr<I>,
}

impl<I: CsrIndex> Graph<I> {
    /// Builds a graph from a square, structurally symmetric pattern;
    /// diagonal entries are dropped.
    ///
    /// # Panics
    /// Panics if the pattern is not square or not symmetric (after
    /// diagonal removal). Use [`Graph::from_square_matrix`] to symmetrize
    /// arbitrary square inputs.
    pub fn from_symmetric_matrix(matrix: &Csr<I>) -> Self {
        let adj = matrix.strip_diagonal();
        assert!(
            adj.is_structurally_symmetric(),
            "adjacency must be structurally symmetric"
        );
        Self { adj }
    }

    /// Builds a graph from any square pattern by symmetrizing `A ∪ Aᵀ`
    /// and dropping the diagonal.
    pub fn from_square_matrix(matrix: &Csr<I>) -> Self {
        Self {
            adj: matrix.symmetrize().strip_diagonal(),
        }
    }

    /// Validating constructor for untrusted patterns: rejects malformed
    /// CSR structure, oversized dimensions, non-square shapes and (after
    /// diagonal removal) asymmetric adjacency with a structured error.
    pub fn try_from_symmetric_matrix(matrix: &Csr<I>) -> Result<Self, crate::GraphError> {
        crate::error::validate_pattern(matrix)?;
        if matrix.nrows() != matrix.ncols() {
            return Err(crate::GraphError::NotSquare {
                nrows: matrix.nrows(),
                ncols: matrix.ncols(),
            });
        }
        let adj = matrix.strip_diagonal();
        if !adj.is_structurally_symmetric() {
            return Err(crate::GraphError::NotSymmetric);
        }
        Ok(Self { adj })
    }

    /// Builds directly from an adjacency CSR that already satisfies the
    /// invariants (validated in debug builds).
    pub fn from_adjacency(adj: Csr<I>) -> Self {
        debug_assert!(adj.is_structurally_symmetric());
        debug_assert!((0..adj.nrows()).all(|i| !adj.contains(i, i as u32)));
        Self { adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.adj.nrows()
    }

    /// Number of undirected edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.adj.nnz() / 2
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn nbor(&self, v: usize) -> &[u32] {
        self.adj.row(v)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adj.row_len(v)
    }

    /// Maximum degree Δ. `1 + Δ` lower-bounds the D2GC color count
    /// (paper §II: `1 + max_v |nbor(v)|`).
    pub fn max_degree(&self) -> usize {
        (0..self.n_vertices()).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Calls `f(w)` for every distinct vertex within distance ≤ 2 of `u`,
    /// excluding `u` itself. For verification — allocates a stamp array.
    pub fn for_each_d2_neighbor(&self, u: usize, mut f: impl FnMut(u32)) {
        let mut seen = vec![false; self.n_vertices()];
        for &v in self.nbor(u) {
            let vi = v as usize;
            if vi != u && !seen[vi] {
                seen[vi] = true;
                f(v);
            }
            for &w in self.nbor(vi) {
                let wi = w as usize;
                if wi != u && !seen[wi] {
                    seen[wi] = true;
                    f(w);
                }
            }
        }
    }

    /// Hints the cache to pull `v`'s neighbor list (see
    /// [`Csr::prefetch_row`]).
    #[inline(always)]
    pub fn prefetch_nbor(&self, v: usize) {
        self.adj.prefetch_row(v);
    }

    /// The adjacency pattern.
    pub fn adjacency(&self) -> &Csr<I> {
        &self.adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Path graph 0 - 1 - 2 - 3.
    fn path4() -> Graph {
        Graph::from_symmetric_matrix(&Csr::from_rows(
            4,
            &[vec![1], vec![0, 2], vec![1, 3], vec![2]],
        ))
    }

    #[test]
    fn shape_and_degrees() {
        let g = path4();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_edges(), 3);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn diagonal_stripped() {
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            2,
            &[vec![0, 1], vec![0, 1]],
        ));
        assert_eq!(g.n_edges(), 1);
        assert_eq!(g.nbor(0), &[1]);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_rejected() {
        Graph::from_symmetric_matrix(&Csr::from_rows(2, &[vec![1], vec![]]));
    }

    #[test]
    fn from_square_symmetrizes() {
        let g = Graph::from_square_matrix(&Csr::from_rows(3, &[vec![1], vec![2], vec![]]));
        assert_eq!(g.n_edges(), 2);
        assert_eq!(g.nbor(1), &[0, 2]);
    }

    #[test]
    fn d2_neighborhood_of_path() {
        let g = path4();
        let mut d2 = Vec::new();
        g.for_each_d2_neighbor(0, |w| d2.push(w));
        d2.sort_unstable();
        assert_eq!(d2, vec![1, 2]); // distance 1 and 2, not 3
        let mut d2 = Vec::new();
        g.for_each_d2_neighbor(1, |w| d2.push(w));
        d2.sort_unstable();
        assert_eq!(d2, vec![0, 2, 3]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_symmetric_matrix(&Csr::empty(0, 0));
        assert_eq!(g.n_vertices(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn try_constructor_accepts_valid_symmetric() {
        let g = Graph::try_from_symmetric_matrix(&Csr::from_rows(
            4,
            &[vec![1], vec![0, 2], vec![1, 3], vec![2]],
        ))
        .unwrap();
        assert_eq!(g.n_edges(), 3);
    }

    #[test]
    fn try_constructor_rejects_non_square() {
        let err = Graph::try_from_symmetric_matrix(&Csr::from_rows(3, &[vec![0], vec![1]]))
            .unwrap_err();
        assert_eq!(
            err,
            crate::GraphError::NotSquare { nrows: 2, ncols: 3 }
        );
    }

    #[test]
    fn try_constructor_rejects_asymmetric() {
        let err = Graph::try_from_symmetric_matrix(&Csr::from_rows(2, &[vec![1], vec![]]))
            .unwrap_err();
        assert_eq!(err, crate::GraphError::NotSymmetric);
        assert!(err.to_string().contains("symmetric"));
    }
}
