//! Structured errors for graph construction.
//!
//! The panicking constructors (`from_matrix`, `from_symmetric_matrix`)
//! remain for trusted in-process patterns (generators, transposes); the
//! `try_` variants validate untrusted input — file loaders, CLI paths —
//! and report *why* a pattern was rejected instead of aborting.

use std::fmt;

/// Why a pattern was rejected as a coloring input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// The pattern violates CSR invariants: out-of-bounds, duplicate or
    /// unsorted column indices, or inconsistent row pointers. The payload
    /// is the first violated invariant, structured so callers can tell an
    /// out-of-range adjacency index from a malformed row pointer.
    InvalidPattern(sparse::CsrError),
    /// A dimension does not fit the `u32` index space the adjacency
    /// structures use.
    DimensionOverflow {
        /// Which dimension overflowed (`"rows"` or `"columns"`).
        what: &'static str,
        /// The offending dimension.
        value: usize,
    },
    /// A D2GC input was not square.
    NotSquare {
        /// Row count of the offending pattern.
        nrows: usize,
        /// Column count of the offending pattern.
        ncols: usize,
    },
    /// A D2GC input was not structurally symmetric after diagonal removal.
    NotSymmetric,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidPattern(detail) => {
                write!(f, "invalid sparse pattern: {detail}")
            }
            GraphError::DimensionOverflow { what, value } => {
                write!(
                    f,
                    "{what} dimension {value} exceeds the u32 index space ({})",
                    u32::MAX
                )
            }
            GraphError::NotSquare { nrows, ncols } => {
                write!(f, "graph input must be square, got {nrows}x{ncols}")
            }
            GraphError::NotSymmetric => {
                write!(f, "graph adjacency must be structurally symmetric")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Validates that a pattern's dimensions fit `u32` indices and that its
/// CSR invariants hold (no out-of-bounds or duplicate columns).
pub(crate) fn validate_pattern<I: sparse::CsrIndex>(
    matrix: &sparse::Csr<I>,
) -> Result<(), GraphError> {
    if matrix.nrows() > u32::MAX as usize {
        return Err(GraphError::DimensionOverflow {
            what: "rows",
            value: matrix.nrows(),
        });
    }
    if matrix.ncols() > u32::MAX as usize {
        return Err(GraphError::DimensionOverflow {
            what: "columns",
            value: matrix.ncols(),
        });
    }
    matrix.validate().map_err(GraphError::InvalidPattern)
}
