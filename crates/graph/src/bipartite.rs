//! The BGPC input structure.

use sparse::{Csr, CsrIndex};

use crate::error::{validate_pattern, GraphError};

/// A bipartite graph `G = (V_A ∪ V_B, E)` stored as two CSRs.
///
/// Following the paper's hypergraph vocabulary, `V_A` members are
/// **vertices** (the side BGPC colors — matrix columns) and `V_B` members
/// are **nets** (matrix rows). `nets(u)` lists the nets incident to vertex
/// `u`; `vtxs(v)` lists the vertices in net `v`. Both directions are
/// materialized because the vertex-based kernels iterate `nets(u) → vtxs(v)`
/// while the net-based kernels iterate nets directly.
///
/// ```
/// use graph::BipartiteGraph;
/// let m = sparse::Csr::from_rows(3, &[vec![0, 1], vec![1, 2]]);
/// let g = BipartiteGraph::from_matrix(&m);
/// assert_eq!(g.n_nets(), 2);
/// assert_eq!(g.vtxs(0), &[0, 1]);
/// assert_eq!(g.nets(1), &[0, 1]);
/// assert_eq!(g.max_net_size(), 2); // the color lower bound
/// ```
///
/// Like [`Csr`], the adjacency structures are parameterized by the
/// row-pointer width `I` (`u32` default, `u64` fallback for ≥ 2³²-pin
/// instances); the kernels stay generic and the runners dispatch per
/// instance.
#[derive(Clone, Debug)]
pub struct BipartiteGraph<I: CsrIndex = u32> {
    /// net → vertices (the input matrix: rows are nets).
    net_to_vtx: Csr<I>,
    /// vertex → nets (the transpose).
    vtx_to_net: Csr<I>,
}

impl<I: CsrIndex> BipartiteGraph<I> {
    /// Builds the bipartite view of a pattern: rows become nets, columns
    /// become the vertices to color (the paper's setup: "we colored the
    /// columns of these matrices where the rows are considered as the
    /// nets").
    pub fn from_matrix(matrix: &Csr<I>) -> Self {
        Self {
            vtx_to_net: matrix.transpose(),
            net_to_vtx: matrix.clone(),
        }
    }

    /// Builds from an owned pattern, avoiding one clone.
    pub fn from_matrix_owned(matrix: Csr<I>) -> Self {
        Self {
            vtx_to_net: matrix.transpose(),
            net_to_vtx: matrix,
        }
    }

    /// Validating constructor for untrusted patterns: rejects out-of-bounds
    /// or duplicate column indices and dimensions beyond the `u32` index
    /// space instead of panicking (or worse, silently mis-indexing) later.
    pub fn try_from_matrix(matrix: &Csr<I>) -> Result<Self, GraphError> {
        validate_pattern(matrix)?;
        Ok(Self::from_matrix(matrix))
    }

    /// Owned variant of [`try_from_matrix`](Self::try_from_matrix).
    pub fn try_from_matrix_owned(matrix: Csr<I>) -> Result<Self, GraphError> {
        validate_pattern(&matrix)?;
        Ok(Self::from_matrix_owned(matrix))
    }

    /// Number of vertices (`|V_A|`, the colored side).
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.vtx_to_net.nrows()
    }

    /// Number of nets (`|V_B|`).
    #[inline]
    pub fn n_nets(&self) -> usize {
        self.net_to_vtx.nrows()
    }

    /// Number of pins (edges of the bipartite graph).
    #[inline]
    pub fn n_pins(&self) -> usize {
        self.net_to_vtx.nnz()
    }

    /// The nets incident to vertex `u`.
    #[inline]
    pub fn nets(&self, u: usize) -> &[u32] {
        self.vtx_to_net.row(u)
    }

    /// The vertices in net `v`.
    #[inline]
    pub fn vtxs(&self, v: usize) -> &[u32] {
        self.net_to_vtx.row(v)
    }

    /// Cardinality of net `v`.
    #[inline]
    pub fn net_size(&self, v: usize) -> usize {
        self.net_to_vtx.row_len(v)
    }

    /// `max_v |vtxs(v)|` — the trivial lower bound on the number of colors
    /// of any valid partial coloring (paper §II).
    pub fn max_net_size(&self) -> usize {
        (0..self.n_nets()).map(|v| self.net_size(v)).max().unwrap_or(0)
    }

    /// Degree of vertex `u` counted with multiplicity through its nets:
    /// `Σ_{v ∈ nets(u)} (|vtxs(v)| − 1)` — an upper bound on the distance-2
    /// degree, used by the degree-based orderings.
    pub fn d2_degree_bound(&self, u: usize) -> usize {
        self.nets(u)
            .iter()
            .map(|&v| self.net_size(v as usize) - 1)
            .sum()
    }

    /// Calls `f(w)` for every distinct distance-2 neighbor `w ≠ u`
    /// (vertices sharing at least one net with `u`). Allocates a visited
    /// stamp internally — intended for tests/verification, not hot loops.
    pub fn for_each_d2_neighbor(&self, u: usize, mut f: impl FnMut(u32)) {
        let mut seen = vec![false; self.n_vertices()];
        for &v in self.nets(u) {
            for &w in self.vtxs(v as usize) {
                let wi = w as usize;
                if wi != u && !seen[wi] {
                    seen[wi] = true;
                    f(w);
                }
            }
        }
    }

    /// Hints the cache to pull vertex `u`'s net list (see
    /// [`Csr::prefetch_row`]); issued by the kernels a few work items
    /// ahead of the gather.
    #[inline(always)]
    pub fn prefetch_nets(&self, u: usize) {
        self.vtx_to_net.prefetch_row(u);
    }

    /// Hints the cache to pull net `v`'s vertex list.
    #[inline(always)]
    pub fn prefetch_vtxs(&self, v: usize) {
        self.net_to_vtx.prefetch_row(v);
    }

    /// The underlying net → vertex pattern.
    pub fn net_matrix(&self) -> &Csr<I> {
        &self.net_to_vtx
    }

    /// The underlying vertex → net pattern.
    pub fn vtx_matrix(&self) -> &Csr<I> {
        &self.vtx_to_net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 3 nets over 4 vertices:
    /// net 0 = {0, 1}; net 1 = {1, 2, 3}; net 2 = {3}
    fn tiny() -> BipartiteGraph {
        let m = Csr::from_rows(4, &[vec![0, 1], vec![1, 2, 3], vec![3]]);
        BipartiteGraph::from_matrix(&m)
    }

    #[test]
    fn shape() {
        let g = tiny();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_nets(), 3);
        assert_eq!(g.n_pins(), 6);
    }

    #[test]
    fn adjacency_both_ways() {
        let g = tiny();
        assert_eq!(g.vtxs(1), &[1, 2, 3]);
        assert_eq!(g.nets(1), &[0, 1]);
        assert_eq!(g.nets(3), &[1, 2]);
        assert_eq!(g.net_size(1), 3);
    }

    #[test]
    fn max_net_size_is_color_lower_bound() {
        assert_eq!(tiny().max_net_size(), 3);
        let empty = BipartiteGraph::from_matrix(&Csr::empty(0, 5));
        assert_eq!(empty.max_net_size(), 0);
    }

    #[test]
    fn d2_degree_bound_counts_multiplicity() {
        let g = tiny();
        // vertex 1: net 0 contributes 1, net 1 contributes 2.
        assert_eq!(g.d2_degree_bound(1), 3);
        // vertex 0: only net 0, contributes 1.
        assert_eq!(g.d2_degree_bound(0), 1);
    }

    #[test]
    fn d2_neighbors_distinct() {
        let g = tiny();
        let mut nbrs = Vec::new();
        g.for_each_d2_neighbor(1, |w| nbrs.push(w));
        nbrs.sort_unstable();
        assert_eq!(nbrs, vec![0, 2, 3]);
        // vertex in a singleton net has no d2 neighbors through it
        let mut nbrs3 = Vec::new();
        g.for_each_d2_neighbor(3, |w| nbrs3.push(w));
        nbrs3.sort_unstable();
        assert_eq!(nbrs3, vec![1, 2]);
    }

    #[test]
    fn try_from_matrix_accepts_valid_pattern() {
        let m = Csr::from_rows(4, &[vec![0, 1], vec![1, 2, 3], vec![3]]);
        let g = BipartiteGraph::try_from_matrix(&m).unwrap();
        assert_eq!(g.n_vertices(), 4);
        assert_eq!(g.n_nets(), 3);
        let owned = BipartiteGraph::try_from_matrix_owned(m).unwrap();
        assert_eq!(owned.n_pins(), 6);
    }

    #[test]
    fn try_from_matrix_rejects_out_of_bounds_column() {
        // Column 5 in a 3-column pattern; bypass the panicking constructor.
        let m = Csr::try_from_parts(1, 3, vec![0, 2], vec![0, 5]);
        assert!(
            matches!(m, Err(sparse::CsrError::ColumnOutOfBounds { col: 5, ncols: 3, .. })),
            "try_from_parts must reject the bad column with a structured error"
        );
        // Construct via the unvalidated empty + widen trick is impossible,
        // so exercise the error type through validate_pattern's other arm:
        // duplicate columns (non-strictly-increasing rows).
        let dup = Csr::try_from_parts(1, 3, vec![0, 2], vec![1, 1]);
        assert!(dup.is_err());
    }

    #[test]
    fn graph_error_messages_are_descriptive() {
        use crate::GraphError;
        let e = GraphError::DimensionOverflow {
            what: "columns",
            value: usize::MAX,
        };
        assert!(e.to_string().contains("u32 index space"));
        let e = GraphError::InvalidPattern(sparse::CsrError::RowNotSorted { row: 0 });
        assert!(e.to_string().contains("row 0"));
        let e = GraphError::InvalidPattern(sparse::CsrError::ColumnOutOfBounds {
            row: 2,
            col: 9,
            ncols: 4,
        });
        assert!(e.to_string().contains("column 9"), "{e}");
    }

    #[test]
    fn owned_constructor_matches() {
        let m = Csr::from_rows(4, &[vec![0, 1], vec![1, 2, 3], vec![3]]);
        let a = BipartiteGraph::from_matrix(&m);
        let b = BipartiteGraph::from_matrix_owned(m);
        assert_eq!(a.net_matrix(), b.net_matrix());
        assert_eq!(a.vtx_matrix(), b.vtx_matrix());
    }
}
