//! Reverse Cuthill–McKee relabeling.
//!
//! RCM is the classic bandwidth-reducing permutation for symmetric sparse
//! matrices. It matters to coloring experiments because the "natural"
//! orders of the paper's mesh matrices are already banded — RCM lets us
//! reproduce that property on synthetic instances whose generator order is
//! not (e.g. a shuffled power-law graph), and it is an extra ordering axis
//! for the ablation benches.

use crate::Graph;

/// Computes the RCM permutation: `perm[old] = new`. Components are
/// processed in order of their discovered pseudo-peripheral starting
/// vertices (minimum degree per component).
pub fn rcm_permutation(g: &Graph) -> Vec<u32> {
    let n = g.n_vertices();
    let mut order: Vec<u32> = Vec::with_capacity(n); // Cuthill–McKee order
    let mut visited = vec![false; n];

    // Vertices sorted by degree — candidate start points.
    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&v| g.degree(v as usize));

    let mut frontier: Vec<u32> = Vec::new();
    for &start in &by_degree {
        if visited[start as usize] {
            continue;
        }
        // BFS from the minimum-degree unvisited vertex, neighbors sorted
        // by degree (the CM tie-break).
        visited[start as usize] = true;
        order.push(start);
        let mut head = order.len() - 1;
        while head < order.len() {
            let u = order[head];
            head += 1;
            frontier.clear();
            for &v in g.nbor(u as usize) {
                if !visited[v as usize] {
                    visited[v as usize] = true;
                    frontier.push(v);
                }
            }
            frontier.sort_by_key(|&v| g.degree(v as usize));
            order.extend_from_slice(&frontier);
        }
    }

    // Reverse (the R in RCM) and invert into perm[old] = new.
    let mut perm = vec![0u32; n];
    for (new_id, &old) in order.iter().rev().enumerate() {
        perm[old as usize] = new_id as u32;
    }
    perm
}

/// Bandwidth of a symmetric pattern under a relabeling `perm[old] = new`:
/// `max |perm[u] − perm[v]|` over edges.
pub fn bandwidth(g: &Graph, perm: &[u32]) -> usize {
    let mut bw = 0usize;
    for u in 0..g.n_vertices() {
        let pu = perm[u] as i64;
        for &v in g.nbor(u) {
            let d = (pu - perm[v as usize] as i64).unsigned_abs() as usize;
            bw = bw.max(d);
        }
    }
    bw
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Csr;

    fn identity(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn rcm_is_permutation() {
        let g = Graph::from_symmetric_matrix(&sparse::gen::erdos_renyi(50, 120, 3));
        let perm = rcm_permutation(&g);
        assert!(sparse::csr::is_permutation(&perm));
    }

    #[test]
    fn rcm_reduces_bandwidth_of_shuffled_path() {
        // A path relabeled randomly has large bandwidth; RCM restores ~1.
        let n = 64;
        let mut rows = vec![Vec::new(); n];
        // path over a fixed pseudo-random labeling
        let labels: Vec<usize> = (0..n).map(|i| (i * 37) % n).collect();
        for w in labels.windows(2) {
            rows[w[0]].push(w[1] as u32);
            rows[w[1]].push(w[0] as u32);
        }
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(n, &rows));
        let before = bandwidth(&g, &identity(n));
        let perm = rcm_permutation(&g);
        let after = bandwidth(&g, &perm);
        assert!(after <= 2, "path bandwidth after RCM: {after}");
        assert!(after < before);
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // two triangles, no connection
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            6,
            &[
                vec![1, 2],
                vec![0, 2],
                vec![0, 1],
                vec![4, 5],
                vec![3, 5],
                vec![3, 4],
            ],
        ));
        let perm = rcm_permutation(&g);
        assert!(sparse::csr::is_permutation(&perm));
        assert_eq!(bandwidth(&g, &perm), 2);
    }

    #[test]
    fn rcm_on_empty_and_isolated() {
        let g = Graph::from_symmetric_matrix(&Csr::empty(0, 0));
        assert!(rcm_permutation(&g).is_empty());
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(3, &[vec![], vec![], vec![]]));
        let perm = rcm_permutation(&g);
        assert!(sparse::csr::is_permutation(&perm));
        assert_eq!(bandwidth(&g, &perm), 0);
    }

    #[test]
    fn mesh_bandwidth_stays_structured() {
        let g = Graph::from_symmetric_matrix(&sparse::gen::grid2d(8, 8, 1));
        let perm = rcm_permutation(&g);
        let bw = bandwidth(&g, &perm);
        // 8×8 Moore grid: RCM bandwidth should stay near the row width.
        assert!(bw <= 24, "bandwidth {bw} too large for an 8x8 grid");
    }
}
