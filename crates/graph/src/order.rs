//! Vertex orderings for greedy coloring.
//!
//! Greedy coloring quality depends heavily on the order in which vertices
//! are processed (paper §VII). The paper evaluates the **natural** order
//! (Table III) and ColPack's **smallest-last** order (Table IV); we add
//! largest-first and random for completeness and ablations.
//!
//! An ordering is a permutation of the colored vertex set giving the
//! *processing* order of the initial work queue — the graph itself is never
//! relabeled.

use rng::Pcg32;
use sparse::CsrIndex;

use crate::{BipartiteGraph, Graph};

/// A vertex-ordering strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ordering {
    /// Vertices in index order (the paper's "natural row order").
    Natural,
    /// Uniformly random permutation with the given seed.
    Random(u64),
    /// Non-increasing distance-2 degree bound (Welsh–Powell style).
    LargestFirst,
    /// Matula–Beck smallest-last on the distance-2 degree bound — the
    /// ordering ColPack implements "to reduce the number of distinct
    /// colors" (paper Table II).
    SmallestLast,
    /// Incidence-degree: repeatedly pick the vertex with the most
    /// already-ordered distance-2 neighbors (ColPack's ID ordering).
    IncidenceDegree,
}

impl Ordering {
    /// Processing order for the `V_A` side of a bipartite graph.
    pub fn vertex_order_bgpc<I: CsrIndex>(&self, g: &BipartiteGraph<I>) -> Vec<u32> {
        let n = g.n_vertices();
        match self {
            Ordering::Natural => natural(n),
            Ordering::Random(seed) => random(n, *seed),
            Ordering::LargestFirst => {
                largest_first(n, |u| g.d2_degree_bound(u))
            }
            Ordering::SmallestLast => smallest_last_bgpc(g),
            Ordering::IncidenceDegree => incidence_degree(n, |u, f| {
                let mut seen = std::collections::HashSet::new();
                for &v in g.nets(u) {
                    for &w in g.vtxs(v as usize) {
                        if w as usize != u && seen.insert(w) {
                            f(w);
                        }
                    }
                }
            }),
        }
    }

    /// Processing order for a unipartite graph colored at distance 2.
    pub fn vertex_order_d2<I: CsrIndex>(&self, g: &Graph<I>) -> Vec<u32> {
        let n = g.n_vertices();
        match self {
            Ordering::Natural => natural(n),
            Ordering::Random(seed) => random(n, *seed),
            Ordering::LargestFirst => largest_first(n, |u| {
                g.nbor(u).iter().map(|&v| g.degree(v as usize)).sum()
            }),
            Ordering::SmallestLast => smallest_last_d2(g),
            Ordering::IncidenceDegree => incidence_degree(n, |u, f| {
                let mut seen = std::collections::HashSet::new();
                for &v in g.nbor(u) {
                    if seen.insert(v) {
                        f(v);
                    }
                    for &w in g.nbor(v as usize) {
                        if w as usize != u && seen.insert(w) {
                            f(w);
                        }
                    }
                }
            }),
        }
    }

    /// Paper-style label.
    pub fn label(&self) -> &'static str {
        match self {
            Ordering::Natural => "natural",
            Ordering::Random(_) => "random",
            Ordering::LargestFirst => "largest-first",
            Ordering::SmallestLast => "smallest-last",
            Ordering::IncidenceDegree => "incidence-degree",
        }
    }
}

/// Incidence-degree ordering: a max-priority loop where a vertex's key is
/// the number of its distance-2 neighbors already placed in the order.
/// `for_each_d2` enumerates the distinct distance-2 neighborhood of a
/// vertex. O(Σ |d2(u)|) updates with a bucket queue.
fn incidence_degree(
    n: usize,
    for_each_d2: impl Fn(usize, &mut dyn FnMut(u32)),
) -> Vec<u32> {
    let mut placed = vec![false; n];
    let mut key = vec![0usize; n];
    // buckets[k] = stack of vertices with incidence k (lazy entries).
    let mut buckets: Vec<Vec<u32>> = vec![(0..n as u32).rev().collect()];
    let mut max_key = 0usize;
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        // find the highest non-empty bucket with a fresh entry
        let u = loop {
            while max_key > 0 && buckets[max_key].is_empty() {
                max_key -= 1;
            }
            match buckets[max_key].pop() {
                Some(u) if !placed[u as usize] && key[u as usize] == max_key => break u,
                Some(_) => continue, // stale
                None => {
                    debug_assert_eq!(max_key, 0);
                    // all buckets momentarily empty of fresh entries —
                    // cannot happen while unplaced vertices remain because
                    // every key update pushes a fresh entry.
                    unreachable!("incidence-degree queue exhausted early");
                }
            }
        };
        placed[u as usize] = true;
        order.push(u);
        for_each_d2(u as usize, &mut |w: u32| {
            let wi = w as usize;
            if !placed[wi] {
                key[wi] += 1;
                if key[wi] >= buckets.len() {
                    buckets.resize(key[wi] + 1, Vec::new());
                }
                buckets[key[wi]].push(w);
                max_key = max_key.max(key[wi]);
            }
        });
    }
    order
}

fn natural(n: usize) -> Vec<u32> {
    (0..n as u32).collect()
}

fn random(n: usize, seed: u64) -> Vec<u32> {
    let mut order = natural(n);
    Pcg32::seed_from_u64(seed).shuffle(&mut order);
    order
}

/// Stable counting sort by non-increasing degree.
fn largest_first(n: usize, degree: impl Fn(usize) -> usize) -> Vec<u32> {
    let degrees: Vec<usize> = (0..n).map(&degree).collect();
    let max_d = degrees.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_d + 1];
    for (u, &d) in degrees.iter().enumerate() {
        buckets[d].push(u as u32);
    }
    let mut order = Vec::with_capacity(n);
    for bucket in buckets.into_iter().rev() {
        order.extend(bucket);
    }
    order
}

/// Doubly-linked bucket structure with O(1) degree decrements, the
/// classic smallest-last workhorse.
struct BucketQueue {
    head: Vec<i64>, // head[d] = first vertex with degree d, or -1
    next: Vec<i64>,
    prev: Vec<i64>,
    deg: Vec<usize>,
    removed: Vec<bool>,
    cur_min: usize,
    live: usize,
}

impl BucketQueue {
    fn new(degrees: Vec<usize>) -> Self {
        let n = degrees.len();
        let max_d = degrees.iter().copied().max().unwrap_or(0);
        let mut q = BucketQueue {
            head: vec![-1; max_d + 1],
            next: vec![-1; n],
            prev: vec![-1; n],
            deg: degrees,
            removed: vec![false; n],
            cur_min: 0,
            live: n,
        };
        for u in (0..n).rev() {
            q.link(u);
        }
        q
    }

    fn link(&mut self, u: usize) {
        let d = self.deg[u];
        let old = self.head[d];
        self.next[u] = old;
        self.prev[u] = -1;
        if old >= 0 {
            self.prev[old as usize] = u as i64;
        }
        self.head[d] = u as i64;
    }

    fn unlink(&mut self, u: usize) {
        let d = self.deg[u];
        let (p, nx) = (self.prev[u], self.next[u]);
        if p >= 0 {
            self.next[p as usize] = nx;
        } else {
            self.head[d] = nx;
        }
        if nx >= 0 {
            self.prev[nx as usize] = p;
        }
    }

    /// Pops a vertex of minimum degree.
    fn pop_min(&mut self) -> Option<usize> {
        if self.live == 0 {
            return None;
        }
        while self.head[self.cur_min] < 0 {
            self.cur_min += 1;
        }
        let u = self.head[self.cur_min] as usize;
        self.unlink(u);
        self.removed[u] = true;
        self.live -= 1;
        Some(u)
    }

    /// Decrements the degree of a live vertex by 1.
    fn decrement(&mut self, u: usize) {
        if self.removed[u] || self.deg[u] == 0 {
            return;
        }
        self.unlink(u);
        self.deg[u] -= 1;
        self.link(u);
        if self.deg[u] < self.cur_min {
            self.cur_min = self.deg[u];
        }
    }

    fn is_removed(&self, u: usize) -> bool {
        self.removed[u]
    }
}

/// Smallest-last for BGPC on the multiplicity distance-2 degree:
/// `deg(u) = Σ_{v ∈ nets(u)} (|vtxs(v)| − 1)`. Removing `u` decrements the
/// degree of every live co-member of each of `u`'s nets — total work
/// `O(Σ_v |vtxs(v)|²)`, the same bound as ColPack's D2 ordering pass.
fn smallest_last_bgpc<I: CsrIndex>(g: &BipartiteGraph<I>) -> Vec<u32> {
    let n = g.n_vertices();
    let degrees: Vec<usize> = (0..n).map(|u| g.d2_degree_bound(u)).collect();
    let mut q = BucketQueue::new(degrees);
    let mut removal = Vec::with_capacity(n);
    while let Some(u) = q.pop_min() {
        removal.push(u as u32);
        for &v in g.nets(u) {
            for &w in g.vtxs(v as usize) {
                let w = w as usize;
                if w != u && !q.is_removed(w) {
                    q.decrement(w);
                }
            }
        }
    }
    removal.reverse();
    removal
}

/// Smallest-last for D2GC with `deg(u) = Σ_{v ∈ nbor(u)} |nbor(v)|`
/// (each vertex acts as the "net" of its own neighborhood, mirroring the
/// BGPC rule).
fn smallest_last_d2<I: CsrIndex>(g: &Graph<I>) -> Vec<u32> {
    let n = g.n_vertices();
    let degrees: Vec<usize> = (0..n)
        .map(|u| g.nbor(u).iter().map(|&v| g.degree(v as usize)).sum())
        .collect();
    let mut q = BucketQueue::new(degrees);
    let mut removal = Vec::with_capacity(n);
    while let Some(u) = q.pop_min() {
        removal.push(u as u32);
        for &v in g.nbor(u) {
            for &w in g.nbor(v as usize) {
                let w = w as usize;
                if w != u && !q.is_removed(w) {
                    q.decrement(w);
                }
            }
            // u also leaves nbor(v)'s own sum once per shared edge.
            let v = v as usize;
            if !q.is_removed(v) {
                q.decrement(v);
            }
        }
    }
    removal.reverse();
    removal
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Csr;

    fn is_perm(order: &[u32], n: usize) -> bool {
        let mut seen = vec![false; n];
        if order.len() != n {
            return false;
        }
        for &u in order {
            if seen[u as usize] {
                return false;
            }
            seen[u as usize] = true;
        }
        true
    }

    fn star_bipartite() -> BipartiteGraph {
        // net 0 = {0,1,2,3,4}; net 1 = {4,5}
        BipartiteGraph::from_matrix(&Csr::from_rows(6, &[vec![0, 1, 2, 3, 4], vec![4, 5]]))
    }

    #[test]
    fn natural_is_identity() {
        let g = star_bipartite();
        assert_eq!(Ordering::Natural.vertex_order_bgpc(&g), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn random_is_permutation_and_seeded() {
        let g = star_bipartite();
        let a = Ordering::Random(3).vertex_order_bgpc(&g);
        let b = Ordering::Random(3).vertex_order_bgpc(&g);
        assert_eq!(a, b);
        assert!(is_perm(&a, 6));
        assert_ne!(a, Ordering::Random(4).vertex_order_bgpc(&g));
    }

    #[test]
    fn largest_first_puts_hub_first() {
        let g = star_bipartite();
        let order = Ordering::LargestFirst.vertex_order_bgpc(&g);
        assert!(is_perm(&order, 6));
        // vertex 4 is in both nets: degree 4 + 1 = 5, strictly largest.
        assert_eq!(order[0], 4);
        // vertex 5 (degree 1) comes last.
        assert_eq!(order[5], 5);
    }

    #[test]
    fn smallest_last_is_permutation() {
        let g = star_bipartite();
        let order = Ordering::SmallestLast.vertex_order_bgpc(&g);
        assert!(is_perm(&order, 6));
        // Vertex 5 (degree 1) is removed first, so it comes last in the
        // reversed (processing) order; later positions are tie-broken
        // arbitrarily among the equal-degree net-0 members.
        assert_eq!(order[5], 5);
    }

    #[test]
    fn smallest_last_d2_path() {
        // path of 5: ends removed first, center last.
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            5,
            &[vec![1], vec![0, 2], vec![1, 3], vec![2, 4], vec![3]],
        ));
        let order = Ordering::SmallestLast.vertex_order_d2(&g);
        assert!(is_perm(&order, 5));
        // A path-end (minimum-degree vertex) is removed first, i.e. it is
        // the last vertex of the processing order. (On a path, removal then
        // sweeps linearly — peeling one end keeps exposing the next-lowest
        // degree vertex — so nothing stronger can be asserted.)
        let first_removed = *order.last().unwrap();
        assert!(
            first_removed == 0 || first_removed == 4,
            "expected a path end removed first, got {first_removed}"
        );
    }

    #[test]
    fn orderings_on_empty_graph() {
        let g = BipartiteGraph::from_matrix(&Csr::empty(0, 0));
        for o in [
            Ordering::Natural,
            Ordering::Random(1),
            Ordering::LargestFirst,
            Ordering::SmallestLast,
            Ordering::IncidenceDegree,
        ] {
            assert!(o.vertex_order_bgpc(&g).is_empty());
        }
    }

    #[test]
    fn incidence_degree_is_permutation_bgpc_and_d2() {
        let m = sparse::gen::bipartite_uniform(15, 25, 120, 4);
        let g = BipartiteGraph::from_matrix(&m);
        let order = Ordering::IncidenceDegree.vertex_order_bgpc(&g);
        assert!(is_perm(&order, 25));

        let sym = sparse::gen::erdos_renyi(30, 70, 4);
        let gg = Graph::from_symmetric_matrix(&sym);
        let order = Ordering::IncidenceDegree.vertex_order_d2(&gg);
        assert!(is_perm(&order, 30));
    }

    #[test]
    fn incidence_degree_places_d2_neighbor_second() {
        // star bipartite: after placing some vertex, its co-members gain
        // incidence 1 and are preferred over isolated-in-order vertices.
        let g = star_bipartite();
        let order = Ordering::IncidenceDegree.vertex_order_bgpc(&g);
        assert!(is_perm(&order, 6));
        // first two placed vertices must share a net (both in net 0 or
        // the pair {4, 5}).
        let (a, b) = (order[0], order[1]);
        let share = |x: u32, y: u32| {
            g.nets(x as usize)
                .iter()
                .any(|v| g.vtxs(*v as usize).contains(&y))
        };
        assert!(share(a, b), "first two placements {a},{b} must be d2 neighbors");
    }

    #[test]
    fn bucket_queue_pops_in_degree_order() {
        let mut q = BucketQueue::new(vec![3, 1, 2, 1]);
        let a = q.pop_min().unwrap();
        assert!(q.deg[a] == 1);
        q.decrement(0); // 3 -> 2
        q.decrement(0); // 2 -> 1
        let order: Vec<usize> = std::iter::from_fn(|| q.pop_min()).collect();
        assert_eq!(order.len(), 3);
        // remaining degrees: depends on pops; just ensure all popped once
        let mut all = order.clone();
        all.push(a);
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn bucket_queue_decrement_below_min_is_found() {
        let mut q = BucketQueue::new(vec![5, 5, 5]);
        assert!(q.pop_min().is_some()); // cur_min now 5
        q.decrement(q.removed.iter().position(|&r| !r).unwrap()); // someone drops to 4
        let u = q.pop_min().unwrap();
        assert_eq!(q.deg[u], 4);
    }

    #[test]
    fn d2_smallest_last_is_permutation_on_random_graph() {
        let m = sparse::gen::erdos_renyi(60, 150, 5);
        let g = Graph::from_symmetric_matrix(&m);
        let order = Ordering::SmallestLast.vertex_order_d2(&g);
        assert!(is_perm(&order, 60));
    }
}
