//! Bounded, priority-laned admission queue.
//!
//! The daemon's memory under overload is bounded by construction: the
//! queue holds at most `capacity` jobs across its three lanes, and a
//! submit against a full queue fails *immediately* with
//! [`SubmitError::Full`] — the handler converts that into a typed
//! `Backpressure` frame so the client backs off instead of the daemon
//! buffering without limit. Within the bound, jobs are served strictly
//! by lane ([`Priority::High`] first) and FIFO within a lane.
//!
//! One `Mutex` + `Condvar` pair is deliberate: the executor drains jobs
//! one at a time (the shared [`par::Pool`] runs one region at a time),
//! so queue throughput is never the bottleneck and the simplest correct
//! structure wins.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use crate::protocol::Priority;
use crate::sync::{lock_recover, wait_recover};

/// Seed for an incremental update job: the cached base coloring plus the
/// dirty vertices of the applied delta. Present only on jobs admitted
/// through the `Update` verb when the base graph's coloring was still in
/// the result cache — the executor then recolors just the dirty set via
/// [`bgpc::recolor_bgpc_incremental`] instead of running from scratch.
#[derive(Clone, Debug)]
pub struct UpdateSeed {
    /// The cached coloring of the *base* graph (original vertex ids).
    pub base_colors: Vec<i32>,
    /// Vertices whose colors must be rebuilt (the delta's touched
    /// columns); everything else keeps its base color.
    pub dirty: Vec<u32>,
}

/// A unit of admitted work, handed from a connection handler to the
/// executor.
pub struct Job {
    /// Admission lane.
    pub priority: Priority,
    /// Absolute deadline, already converted from the wire's relative
    /// milliseconds at admission time (queue wait counts against it).
    pub deadline: Option<Instant>,
    /// Skip the result cache for this job.
    pub no_cache: bool,
    /// Resolved schedule; `None` lets the auto-tuning engine pick the
    /// whole config from instance features at execution time.
    pub schedule: Option<bgpc::Schedule>,
    /// The decoded pattern.
    pub matrix: sparse::Csr,
    /// Content fingerprint of `matrix` (cache key).
    pub fingerprint: u128,
    /// Incremental-recoloring seed; `None` for ordinary full runs.
    pub seed: Option<UpdateSeed>,
    /// Where the executor sends the finished response; a dropped receiver
    /// (client went away) makes the send fail harmlessly.
    pub reply: Sender<crate::daemon::JobReply>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field("no_cache", &self.no_cache)
            .field("fingerprint", &format_args!("{:032x}", self.fingerprint))
            .finish_non_exhaustive()
    }
}

/// Why a submit was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity; payload is `(depth, capacity)` for the
    /// `Backpressure` frame.
    Full {
        /// Jobs queued at refusal time.
        depth: usize,
        /// Configured bound.
        capacity: usize,
    },
    /// The queue was closed (daemon shutting down).
    Closed,
}

struct Lanes {
    lanes: [VecDeque<Job>; 3],
    depth: usize,
    closed: bool,
}

/// Bounded three-lane MPSC queue (any thread submits, the executor pops).
pub struct AdmissionQueue {
    inner: Mutex<Lanes>,
    nonempty: Condvar,
    capacity: usize,
    /// High-water mark of `depth`, for the overload test and stats.
    peak_depth: AtomicUsize,
}

impl AdmissionQueue {
    /// New queue bounded at `capacity` jobs (min 1).
    pub fn new(capacity: usize) -> Self {
        AdmissionQueue {
            inner: Mutex::new(Lanes {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                depth: 0,
                closed: false,
            }),
            nonempty: Condvar::new(),
            capacity: capacity.max(1),
            peak_depth: AtomicUsize::new(0),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth across lanes.
    pub fn depth(&self) -> usize {
        lock_recover(&self.inner).depth
    }

    /// Highest depth ever observed.
    pub fn peak_depth(&self) -> usize {
        self.peak_depth.load(Ordering::Relaxed)
    }

    /// Non-blocking admission: enqueues or refuses immediately.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut g = lock_recover(&self.inner);
        // Poison-injection point: an armed panic here unwinds while the
        // queue lock is held, poisoning it — the recovery contract
        // (`lock_recover` everywhere) is what keeps the daemon alive
        // afterwards. Proven end to end in `tests/poison.rs`.
        par::faults::fire("serve.queue.poison", 0);
        if g.closed {
            return Err(SubmitError::Closed);
        }
        if g.depth >= self.capacity {
            return Err(SubmitError::Full { depth: g.depth, capacity: self.capacity });
        }
        let lane = job.priority as usize;
        g.lanes[lane].push_back(job);
        g.depth += 1;
        self.peak_depth.fetch_max(g.depth, Ordering::Relaxed);
        drop(g);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocking pop in priority order; `None` once the queue is closed
    /// *and* drained.
    pub fn pop(&self) -> Option<Job> {
        let mut g = lock_recover(&self.inner);
        loop {
            for lane in &mut g.lanes {
                if let Some(job) = lane.pop_front() {
                    g.depth -= 1;
                    return Some(job);
                }
            }
            if g.closed {
                return None;
            }
            g = wait_recover(&self.nonempty, g);
        }
    }

    /// Closes the queue: future submits fail, `pop` drains then returns
    /// `None`.
    pub fn close(&self) {
        lock_recover(&self.inner).closed = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    fn job(priority: Priority) -> Job {
        let (tx, _rx) = channel();
        // Leak the receiver side deliberately: these tests only exercise
        // queue mechanics, never reply delivery.
        std::mem::forget(_rx);
        Job {
            priority,
            deadline: None,
            no_cache: false,
            schedule: Some(bgpc::Schedule::n1_n2()),
            matrix: sparse::Csr::empty(1, 1),
            fingerprint: 0,
            seed: None,
            reply: tx,
        }
    }

    #[test]
    fn pops_in_priority_order_fifo_within_lane() {
        let q = AdmissionQueue::new(8);
        q.try_submit(job(Priority::Low)).unwrap();
        q.try_submit(job(Priority::Normal)).unwrap();
        q.try_submit(job(Priority::High)).unwrap();
        q.try_submit(job(Priority::Normal)).unwrap();
        let order: Vec<Priority> = (0..4).map(|_| q.pop().unwrap().priority).collect();
        assert_eq!(
            order,
            [Priority::High, Priority::Normal, Priority::Normal, Priority::Low]
        );
    }

    #[test]
    fn refuses_at_capacity_with_depth() {
        let q = AdmissionQueue::new(2);
        q.try_submit(job(Priority::Normal)).unwrap();
        q.try_submit(job(Priority::High)).unwrap();
        assert_eq!(
            q.try_submit(job(Priority::Low)).unwrap_err(),
            SubmitError::Full { depth: 2, capacity: 2 }
        );
        assert_eq!(q.peak_depth(), 2);
        // Draining reopens admission.
        q.pop().unwrap();
        q.try_submit(job(Priority::Low)).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = Arc::new(AdmissionQueue::new(4));
        q.try_submit(job(Priority::Normal)).unwrap();
        q.close();
        assert_eq!(q.try_submit(job(Priority::High)).unwrap_err(), SubmitError::Closed);
        assert!(q.pop().is_some(), "close drains queued work first");
        assert!(q.pop().is_none(), "then signals shutdown");
    }

    #[test]
    fn pop_blocks_until_submit() {
        let q = Arc::new(AdmissionQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop().map(|j| j.priority));
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.try_submit(job(Priority::High)).unwrap();
        assert_eq!(t.join().unwrap(), Some(Priority::High));
    }
}
