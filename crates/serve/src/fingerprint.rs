//! Content-addressing for CSR patterns.
//!
//! The result cache keys on a 128-bit FNV-1a fingerprint of the pattern's
//! dimensions and structure (`nrows`, `ncols`, `row_ptr`, `col_idx`).
//! FNV-1a is not cryptographic — the threat model here is accidental
//! collision and corruption, not an adversary hunting collisions — but at
//! 128 bits accidental collision is negligible for any realistic cache
//! population, and the hash shares its shape with the 64-bit
//! [`sparse::bin_io::Fnv1a`] used for the on-disk checksum trailers.

use sparse::{Csr, CsrIndex};

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// Streaming 128-bit FNV-1a hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a128(u128);

impl Fnv1a128 {
    /// New hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a128(FNV128_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u128;
            h = h.wrapping_mul(FNV128_PRIME);
        }
        self.0 = h;
    }

    /// Final digest.
    pub fn finish(&self) -> u128 {
        self.0
    }
}

impl Default for Fnv1a128 {
    fn default() -> Self {
        Self::new()
    }
}

/// Fingerprints a CSR pattern: dimensions, row pointers and column
/// indices, each serialized little-endian. Two patterns get the same
/// fingerprint iff they are structurally identical, independent of the
/// index width `I` they happen to be stored with.
pub fn csr_fingerprint<I: CsrIndex>(m: &Csr<I>) -> u128 {
    let mut h = Fnv1a128::new();
    h.update(&(m.nrows() as u64).to_le_bytes());
    h.update(&(m.ncols() as u64).to_le_bytes());
    for p in m.row_ptr() {
        h.update(&(p.to_usize() as u64).to_le_bytes());
    }
    for &c in m.col_idx() {
        h.update(&c.to_le_bytes());
    }
    h.finish()
}

/// Renders a fingerprint as the 32-hex-char cache entry stem.
pub fn fingerprint_hex(fp: u128) -> String {
    format!("{fp:032x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_patterns_share_a_fingerprint() {
        let a = sparse::gen::bipartite_uniform(40, 30, 200, 7);
        let b = sparse::gen::bipartite_uniform(40, 30, 200, 7);
        assert_eq!(csr_fingerprint(&a), csr_fingerprint(&b));
    }

    #[test]
    fn different_patterns_differ() {
        let a = sparse::gen::bipartite_uniform(40, 30, 200, 7);
        let b = sparse::gen::bipartite_uniform(40, 30, 200, 8);
        assert_ne!(csr_fingerprint(&a), csr_fingerprint(&b));
    }

    #[test]
    fn fingerprint_is_index_width_independent() {
        let a = sparse::gen::bipartite_uniform(40, 30, 200, 7);
        let wide: Csr<u64> = a.to_index();
        assert_eq!(csr_fingerprint(&a), csr_fingerprint(&wide));
    }

    #[test]
    fn hex_is_32_chars_zero_padded() {
        assert_eq!(fingerprint_hex(0).len(), 32);
        assert_eq!(fingerprint_hex(0xabc), format!("{:032x}", 0xabcu128));
    }

    #[test]
    fn empty_input_hashes_to_offset_basis() {
        assert_eq!(Fnv1a128::new().finish(), FNV128_OFFSET);
    }
}
