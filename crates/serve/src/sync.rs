//! Poison-tolerant mutex helpers.
//!
//! The daemon contains panics from job execution (`par::contain`) and
//! fail-point injection, but a panic that unwinds *while a lock is held*
//! poisons the mutex, and a subsequent `lock().expect(..)` kills the
//! next thread to touch it — a handler or the executor — silently
//! wedging the daemon. None of the daemon's critical sections leave
//! their protected data torn on unwind (they are short field updates
//! and queue push/pop pairs whose invariants are restored before any
//! panic point), so recovering the guard with
//! [`PoisonError::into_inner`] is sound and keeps the service
//! answering. The `serve.queue.poison` fail point plus
//! `tests/poison.rs` prove the recovery end to end.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Waits on `cv`, recovering the reacquired guard if the mutex was
/// poisoned while this thread slept.
pub fn wait_recover<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn lock_recover_survives_a_poisoning_panic() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison while holding the lock");
        })
        .join();
        assert!(m.lock().is_err(), "the mutex really is poisoned");
        assert_eq!(*lock_recover(&m), 7);
        *lock_recover(&m) = 8;
        assert_eq!(*lock_recover(&m), 8);
    }

    #[test]
    fn wait_recover_survives_poisoning_during_sleep() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut g = lock_recover(m);
            while !*g {
                g = wait_recover(cv, g);
            }
            *g
        });
        // Poison the mutex from another thread, then flip the flag and
        // notify — the waiter must come back with a usable guard.
        let pair3 = Arc::clone(&pair);
        let _ = std::thread::spawn(move || {
            let _g = lock_recover(&pair3.0);
            panic!("poison during the waiter's sleep");
        })
        .join();
        *lock_recover(&pair.0) = true;
        pair.1.notify_all();
        assert!(waiter.join().unwrap());
    }
}
