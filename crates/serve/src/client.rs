//! Retrying daemon client.
//!
//! The client owns the fault taxonomy: **retryable** failures
//! (backpressure, connection reset, torn frame, contained server error)
//! are retried on a fresh connection with capped exponential backoff plus
//! deterministic jitter; **terminal** failures (invalid job, graph error,
//! protocol violation) are surfaced immediately — retrying a job the
//! daemon has typed as unprocessable only burns the queue's capacity.
//!
//! Backoff for attempt `k` (0-based) is
//! `min(cap, base · 2^k) / 2 + jitter`, with `jitter` drawn uniformly
//! from the other half by a seeded [`rng::Pcg32`] — full-jitter-style
//! decorrelation so a herd of clients shed by the same Backpressure wave
//! does not reconverge on the daemon in lockstep, but deterministic per
//! seed so tests and the bench harness reproduce exactly.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::Duration;

use crate::protocol::{
    decode_backpressure, read_frame, write_frame, FrameKind, JobRequest, JobResult, ProtoError,
    UpdateRequest, DEFAULT_MAX_FRAME,
};
use crate::stats::ServeStats;

/// Client-side failure taxonomy.
#[derive(Debug)]
pub enum ClientError {
    /// The daemon shed the job; `(depth, capacity)` echo the queue state.
    /// Retryable.
    Backpressure {
        /// Queue depth at refusal.
        depth: u32,
        /// Queue bound.
        capacity: u32,
    },
    /// Connection-level failure: refused, reset, closed mid-frame, torn
    /// frame. Retryable on a fresh connection.
    Connection(String),
    /// The daemon contained an internal failure. Retryable.
    ServerError(String),
    /// The daemon typed the job as malformed. Terminal.
    InvalidJob(String),
    /// The graph layer rejected the pattern. Terminal.
    GraphError(String),
    /// Protocol violation (either side). Terminal — a retry would replay
    /// the same bytes.
    Protocol(String),
    /// The retry budget ran out; `last` is the final retryable failure.
    RetriesExhausted {
        /// Attempts made.
        attempts: u32,
        /// The failure that exhausted the budget.
        last: Box<ClientError>,
    },
}

impl ClientError {
    /// Whether a retry on a fresh connection can succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Backpressure { .. }
                | ClientError::Connection(_)
                | ClientError::ServerError(_)
        )
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Backpressure { depth, capacity } => {
                write!(f, "backpressure: queue {depth}/{capacity}")
            }
            ClientError::Connection(m) => write!(f, "connection failure: {m}"),
            ClientError::ServerError(m) => write!(f, "server error: {m}"),
            ClientError::InvalidJob(m) => write!(f, "invalid job: {m}"),
            ClientError::GraphError(m) => write!(f, "graph error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

/// Retry budget and backoff shape.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts (first try included); min 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Ceiling on the exponential.
    pub cap: Duration,
    /// Seed for the jitter stream (deterministic per client).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            jitter_seed: 0x5e17e,
        }
    }
}

/// Backoff before retry `attempt` (0-based): half deterministic
/// exponential, half uniform jitter.
pub fn backoff_delay(policy: &RetryPolicy, attempt: u32, rng: &mut rng::Pcg32) -> Duration {
    let exp = policy
        .base
        .saturating_mul(1u32 << attempt.min(20))
        .min(policy.cap);
    let half = exp / 2;
    let jitter_ms = rng.bounded_u64(half.as_millis().max(1) as u64);
    half + Duration::from_millis(jitter_ms)
}

/// A finished job from the client's point of view.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Color per vertex.
    pub colors: Vec<i32>,
    /// Number of distinct colors.
    pub num_colors: u32,
    /// Degradation reason, if the daemon had to cut the run short.
    pub degraded: Option<String>,
    /// Served from the daemon's result cache.
    pub cache_hit: bool,
    /// Attempts this submission took (1 = first try).
    pub attempts: u32,
}

/// Reconnecting, retrying client for one daemon address.
pub struct ServeClient {
    addr: String,
    policy: RetryPolicy,
    max_frame: u32,
    rng: rng::Pcg32,
}

impl ServeClient {
    /// New client for `addr` with the given retry policy.
    pub fn new(addr: impl Into<String>, policy: RetryPolicy) -> ServeClient {
        let seed = policy.jitter_seed;
        ServeClient {
            addr: addr.into(),
            policy,
            max_frame: DEFAULT_MAX_FRAME,
            rng: rng::Pcg32::seed_from_u64(seed),
        }
    }

    fn connect(&self) -> Result<TcpStream, ClientError> {
        let s = TcpStream::connect(&self.addr)
            .map_err(|e| ClientError::Connection(format!("connect {}: {e}", self.addr)))?;
        let _ = s.set_nodelay(true);
        Ok(s)
    }

    fn roundtrip(
        &self,
        kind: FrameKind,
        payload: &[u8],
    ) -> Result<(FrameKind, Vec<u8>), ClientError> {
        let mut s = self.connect()?;
        // tid 1 = client writer at the `serve.frame.torn` fail point; the
        // daemon writes with tid 0, so tests can tear either side's
        // frames selectively via the thread filter.
        write_frame(&mut s, kind, payload, 1)
            .map_err(|e| ClientError::Connection(format!("send: {e}")))?;
        let _ = s.flush();
        match read_frame(&mut s, self.max_frame) {
            Ok(f) => Ok(f),
            Err(ProtoError::Closed) | Err(ProtoError::Torn) => Err(ClientError::Connection(
                "daemon closed the connection mid-reply".into(),
            )),
            Err(ProtoError::Io(e)) => Err(ClientError::Connection(format!("recv: {e}"))),
            Err(e) => Err(ClientError::Protocol(e.to_string())),
        }
    }

    fn request_once(&self, frame: FrameKind, payload: &[u8]) -> Result<JobResult, ClientError> {
        let (kind, payload) = self.roundtrip(frame, payload)?;
        match kind {
            FrameKind::Result => {
                JobResult::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
            }
            FrameKind::Backpressure => {
                let (depth, capacity) = decode_backpressure(&payload)
                    .map_err(|e| ClientError::Protocol(e.to_string()))?;
                Err(ClientError::Backpressure { depth, capacity })
            }
            FrameKind::InvalidJob => {
                Err(ClientError::InvalidJob(String::from_utf8_lossy(&payload).into_owned()))
            }
            FrameKind::GraphError => {
                Err(ClientError::GraphError(String::from_utf8_lossy(&payload).into_owned()))
            }
            FrameKind::ServerError => {
                Err(ClientError::ServerError(String::from_utf8_lossy(&payload).into_owned()))
            }
            FrameKind::ProtocolError => {
                Err(ClientError::Protocol(String::from_utf8_lossy(&payload).into_owned()))
            }
            other => Err(ClientError::Protocol(format!("unexpected reply kind {other:?}"))),
        }
    }

    /// Submits a job, retrying retryable failures per the policy. Each
    /// attempt uses a fresh connection.
    pub fn submit(&mut self, req: &JobRequest) -> Result<JobOutcome, ClientError> {
        self.retrying(FrameKind::Submit, &req.encode())
    }

    /// Sends an incremental update (base graph + edge delta), retrying
    /// like [`submit`](ServeClient::submit). On a daemon whose cache
    /// still holds the base graph's coloring, the reply is served from a
    /// reused entry ([`JobOutcome::cache_hit`] is set) and only the
    /// delta's dirty vertices are recolored.
    pub fn update(&mut self, req: &UpdateRequest) -> Result<JobOutcome, ClientError> {
        self.retrying(FrameKind::Update, &req.encode())
    }

    fn retrying(&mut self, frame: FrameKind, payload: &[u8]) -> Result<JobOutcome, ClientError> {
        let attempts_budget = self.policy.max_attempts.max(1);
        let mut last: Option<ClientError> = None;
        for attempt in 0..attempts_budget {
            if attempt > 0 {
                let delay = backoff_delay(&self.policy, attempt - 1, &mut self.rng);
                std::thread::sleep(delay);
            }
            match self.request_once(frame, payload) {
                Ok(r) => {
                    return Ok(JobOutcome {
                        colors: r.colors,
                        num_colors: r.num_colors,
                        degraded: r.degraded,
                        cache_hit: r.cache_hit,
                        attempts: attempt + 1,
                    })
                }
                Err(e) if e.is_retryable() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(ClientError::RetriesExhausted {
            attempts: attempts_budget,
            last: Box::new(last.expect("loop ran at least once")),
        })
    }

    /// Single-attempt liveness probe.
    pub fn ping(&self) -> Result<(), ClientError> {
        match self.roundtrip(FrameKind::Ping, b"")? {
            (FrameKind::Pong, _) => Ok(()),
            (other, _) => Err(ClientError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }

    /// Fetches the daemon's counters.
    pub fn stats(&self) -> Result<Vec<(String, u64)>, ClientError> {
        match self.roundtrip(FrameKind::Stats, b"")? {
            (FrameKind::StatsReply, payload) => {
                Ok(ServeStats::parse(&String::from_utf8_lossy(&payload)))
            }
            (other, _) => Err(ClientError::Protocol(format!(
                "expected StatsReply, got {other:?}"
            ))),
        }
    }

    /// Asks the daemon to shut down gracefully.
    pub fn shutdown(&self) -> Result<(), ClientError> {
        match self.roundtrip(FrameKind::Shutdown, b"")? {
            (FrameKind::Pong, _) => Ok(()),
            (other, _) => Err(ClientError::Protocol(format!("expected Pong, got {other:?}"))),
        }
    }
}

/// Encodes a CSR pattern into the Submit graph payload (hardened
/// [`sparse::bin_io`] bytes).
pub fn encode_graph<I: sparse::CsrIndex>(m: &sparse::Csr<I>) -> Vec<u8> {
    let mut buf = Vec::new();
    sparse::bin_io::write_bin(&mut buf, m).expect("Vec writes are infallible");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_and_jittered_deterministically() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter_seed: 9,
        };
        let mut a = rng::Pcg32::seed_from_u64(9);
        let mut b = rng::Pcg32::seed_from_u64(9);
        for attempt in 0..8 {
            let da = backoff_delay(&policy, attempt, &mut a);
            let db = backoff_delay(&policy, attempt, &mut b);
            assert_eq!(da, db, "same seed, same delays");
            assert!(da <= policy.cap, "attempt {attempt}: {da:?} above cap");
            let floor = policy.base.saturating_mul(1 << attempt).min(policy.cap) / 2;
            assert!(da >= floor, "attempt {attempt}: {da:?} below half-floor");
        }
    }

    #[test]
    fn taxonomy_marks_the_right_errors_retryable() {
        assert!(ClientError::Backpressure { depth: 1, capacity: 1 }.is_retryable());
        assert!(ClientError::Connection("reset".into()).is_retryable());
        assert!(ClientError::ServerError("panic".into()).is_retryable());
        assert!(!ClientError::InvalidJob("bad".into()).is_retryable());
        assert!(!ClientError::GraphError("bad".into()).is_retryable());
        assert!(!ClientError::Protocol("bad".into()).is_retryable());
    }

    #[test]
    fn connect_refused_is_a_retryable_connection_error() {
        // Port 1 on localhost is essentially never listening.
        let client = ServeClient::new("127.0.0.1:1", RetryPolicy::default());
        let err = client.ping().unwrap_err();
        assert!(err.is_retryable(), "refused connect must be retryable: {err}");
    }
}
