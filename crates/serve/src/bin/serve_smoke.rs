//! End-to-end smoke driver for a running daemon — the client side of the
//! verify-script serve step.
//!
//! Submits a deterministic mix of jobs (priorities, deadlines, repeated
//! patterns) to the daemon at `<addr>`, verifies every returned coloring
//! against a locally built graph, and prints one summary line:
//!
//! ```text
//! serve_smoke ok jobs=12 cache_hits=4 degraded=1 attempts=14
//! ```
//!
//! With `--require-cache-hits` the run fails unless at least one job was
//! answered from the daemon's result cache — the restart half of the
//! kill -9 round-trip in `scripts/verify.sh` uses this to prove the cache
//! survived the crash.

use std::process::ExitCode;
use std::time::Duration;

use serve::client::encode_graph;
use serve::{ClientError, JobRequest, Priority, RetryPolicy, ServeClient};

struct Args {
    addr: String,
    jobs: usize,
    seed: u64,
    distinct: usize,
    require_cache_hits: bool,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_smoke <addr> [--jobs N] [--seed S] [--distinct M] \
         [--require-cache-hits] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let Some(addr) = it.next() else { usage() };
    if addr.starts_with("--") {
        usage();
    }
    let mut args = Args {
        addr,
        jobs: 12,
        seed: 1,
        distinct: 4,
        require_cache_hits: false,
        shutdown: false,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("serve_smoke: {name} needs a numeric value");
                    std::process::exit(2);
                })
        };
        match flag.as_str() {
            "--jobs" => args.jobs = val("--jobs") as usize,
            "--seed" => args.seed = val("--seed"),
            "--distinct" => args.distinct = (val("--distinct") as usize).max(1),
            "--require-cache-hits" => args.require_cache_hits = true,
            "--shutdown" => args.shutdown = true,
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut client = ServeClient::new(
        args.addr.clone(),
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(400),
            jitter_seed: args.seed,
        },
    );

    if let Err(e) = client.ping() {
        eprintln!("serve_smoke: daemon at {} not reachable: {e}", args.addr);
        return ExitCode::FAILURE;
    }

    let schedules = ["N1-N2", "V-V", "V-N1"];
    let mut cache_hits = 0usize;
    let mut degraded = 0usize;
    let mut attempts = 0u32;
    for i in 0..args.jobs {
        // A small pool of distinct patterns: repeats within and across
        // runs exercise the result cache deterministically.
        let pattern_seed = args.seed + (i % args.distinct) as u64;
        let matrix = sparse::gen::bipartite_uniform(300, 200, 2400, pattern_seed);
        let req = JobRequest {
            priority: Priority::ALL[i % 3],
            // Every fourth job carries a real-but-tight deadline; the
            // daemon must answer with a valid coloring either way.
            deadline_ms: if i % 4 == 3 { 40 } else { 0 },
            no_cache: false,
            schedule: schedules[i % schedules.len()].into(),
            graph_bytes: encode_graph(&matrix),
        };
        let outcome = match client.submit(&req) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("serve_smoke: job {i} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        attempts += outcome.attempts;
        cache_hits += outcome.cache_hit as usize;
        degraded += outcome.degraded.is_some() as usize;
        // Trust nothing: rebuild the graph locally and verify.
        let g = graph::BipartiteGraph::try_from_matrix_owned(matrix)
            .expect("generator emits valid patterns");
        if let Err(msg) = bgpc::verify::verify_bgpc(&g, &outcome.colors) {
            eprintln!("serve_smoke: job {i} returned an invalid coloring: {msg}");
            return ExitCode::FAILURE;
        }
        if (outcome.num_colors as usize) < g.max_net_size() {
            eprintln!(
                "serve_smoke: job {i} used {} colors, below the max-net-size bound {}",
                outcome.num_colors,
                g.max_net_size()
            );
            return ExitCode::FAILURE;
        }
    }

    if args.require_cache_hits && cache_hits == 0 {
        eprintln!("serve_smoke: expected cache hits after restart, saw none");
        return ExitCode::FAILURE;
    }

    if args.shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("serve_smoke: shutdown failed: {e}");
            return ExitCode::FAILURE;
        }
        // The daemon must actually stop accepting.
        std::thread::sleep(Duration::from_millis(100));
        match client.ping() {
            Err(ClientError::Connection(_)) => {}
            Ok(()) => {
                eprintln!("serve_smoke: daemon still answering after shutdown");
                return ExitCode::FAILURE;
            }
            Err(_) => {}
        }
    }

    println!(
        "serve_smoke ok jobs={} cache_hits={cache_hits} degraded={degraded} attempts={attempts}",
        args.jobs
    );
    ExitCode::SUCCESS
}
