//! End-to-end smoke driver for a running daemon — the client side of the
//! verify-script serve step.
//!
//! Submits a deterministic mix of jobs (priorities, deadlines, repeated
//! patterns) to the daemon at `<addr>`, verifies every returned coloring
//! against a locally built graph, and prints one summary line:
//!
//! ```text
//! serve_smoke ok jobs=12 cache_hits=4 degraded=1 attempts=14
//! ```
//!
//! With `--require-cache-hits` the run fails unless at least one job was
//! answered from the daemon's result cache — the restart half of the
//! kill -9 round-trip in `scripts/verify.sh` uses this to prove the cache
//! survived the crash.
//!
//! With `--updates N` the run additionally sends `N` `Update` frames —
//! edge deltas against patterns the job loop just submitted — and
//! *requires* every one to be served from the reused cache entry
//! (incremental dirty-set recolor seeded from the cached base coloring,
//! reported through the result's `cache_hit` flag). Each returned
//! coloring is verified against the locally mutated graph.

use std::process::ExitCode;
use std::time::Duration;

use serve::client::encode_graph;
use serve::{ClientError, JobRequest, Priority, RetryPolicy, ServeClient, UpdateRequest};

struct Args {
    addr: String,
    jobs: usize,
    seed: u64,
    distinct: usize,
    updates: usize,
    require_cache_hits: bool,
    shutdown: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: serve_smoke <addr> [--jobs N] [--seed S] [--distinct M] \
         [--updates N] [--require-cache-hits] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let Some(addr) = it.next() else { usage() };
    if addr.starts_with("--") {
        usage();
    }
    let mut args = Args {
        addr,
        jobs: 12,
        seed: 1,
        distinct: 4,
        updates: 0,
        require_cache_hits: false,
        shutdown: false,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    eprintln!("serve_smoke: {name} needs a numeric value");
                    std::process::exit(2);
                })
        };
        match flag.as_str() {
            "--jobs" => args.jobs = val("--jobs") as usize,
            "--seed" => args.seed = val("--seed"),
            "--distinct" => args.distinct = (val("--distinct") as usize).max(1),
            "--updates" => args.updates = val("--updates") as usize,
            "--require-cache-hits" => args.require_cache_hits = true,
            "--shutdown" => args.shutdown = true,
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut client = ServeClient::new(
        args.addr.clone(),
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(20),
            cap: Duration::from_millis(400),
            jitter_seed: args.seed,
        },
    );

    if let Err(e) = client.ping() {
        eprintln!("serve_smoke: daemon at {} not reachable: {e}", args.addr);
        return ExitCode::FAILURE;
    }

    let schedules = ["N1-N2", "V-V", "V-N1"];
    let mut cache_hits = 0usize;
    let mut degraded = 0usize;
    let mut attempts = 0u32;
    for i in 0..args.jobs {
        // A small pool of distinct patterns: repeats within and across
        // runs exercise the result cache deterministically.
        let pattern_seed = args.seed + (i % args.distinct) as u64;
        let matrix = sparse::gen::bipartite_uniform(300, 200, 2400, pattern_seed);
        let req = JobRequest {
            priority: Priority::ALL[i % 3],
            // Every fourth job carries a real-but-tight deadline; the
            // daemon must answer with a valid coloring either way.
            deadline_ms: if i % 4 == 3 { 40 } else { 0 },
            no_cache: false,
            schedule: schedules[i % schedules.len()].into(),
            graph_bytes: encode_graph(&matrix),
        };
        let outcome = match client.submit(&req) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("serve_smoke: job {i} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        attempts += outcome.attempts;
        cache_hits += outcome.cache_hit as usize;
        degraded += outcome.degraded.is_some() as usize;
        // Trust nothing: rebuild the graph locally and verify.
        let g = graph::BipartiteGraph::try_from_matrix_owned(matrix)
            .expect("generator emits valid patterns");
        if let Err(msg) = bgpc::verify::verify_bgpc(&g, &outcome.colors) {
            eprintln!("serve_smoke: job {i} returned an invalid coloring: {msg}");
            return ExitCode::FAILURE;
        }
        if (outcome.num_colors as usize) < g.max_net_size() {
            eprintln!(
                "serve_smoke: job {i} used {} colors, below the max-net-size bound {}",
                outcome.num_colors,
                g.max_net_size()
            );
            return ExitCode::FAILURE;
        }
    }

    if args.require_cache_hits && cache_hits == 0 {
        eprintln!("serve_smoke: expected cache hits after restart, saw none");
        return ExitCode::FAILURE;
    }

    // Update phase: edge deltas against patterns the job loop above just
    // put in the cache. Every reply must come from the reused entry.
    let mut update_reuses = 0usize;
    for u in 0..args.updates {
        let pattern_seed = args.seed + (u % args.distinct.min(args.jobs)) as u64;
        let matrix = sparse::gen::bipartite_uniform(300, 200, 2400, pattern_seed);
        // A small deterministic batch: insert the first two absent cells
        // of row u, delete the row's first stored edge.
        let row = u % 300;
        let mut insertions = Vec::new();
        for c in 0..200u32 {
            if !matrix.contains(row, c) {
                insertions.push((row as u32, c));
                if insertions.len() == 2 {
                    break;
                }
            }
        }
        let deletions: Vec<(u32, u32)> =
            matrix.row(row).first().map(|&c| (row as u32, c)).into_iter().collect();
        let delta = bgpc::CsrDelta::try_new(insertions.clone(), deletions.clone())
            .expect("drawn delta is valid");
        let mutated = bgpc::apply_delta(&matrix, &delta)
            .expect("delta applies to its own base")
            .matrix;
        let req = UpdateRequest {
            priority: Priority::Normal,
            deadline_ms: 0,
            no_cache: false,
            schedule: "N1-N2".into(),
            insertions,
            deletions,
            graph_bytes: encode_graph(&matrix),
        };
        let outcome = match client.update(&req) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("serve_smoke: update {u} failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        attempts += outcome.attempts;
        update_reuses += outcome.cache_hit as usize;
        if !outcome.cache_hit {
            eprintln!("serve_smoke: update {u} was not served from the reused cache entry");
            return ExitCode::FAILURE;
        }
        let g = graph::BipartiteGraph::try_from_matrix_owned(mutated)
            .expect("mutated pattern stays valid");
        if let Err(msg) = bgpc::verify::verify_bgpc(&g, &outcome.colors) {
            eprintln!("serve_smoke: update {u} returned an invalid coloring: {msg}");
            return ExitCode::FAILURE;
        }
    }

    if args.shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("serve_smoke: shutdown failed: {e}");
            return ExitCode::FAILURE;
        }
        // The daemon must actually stop accepting.
        std::thread::sleep(Duration::from_millis(100));
        match client.ping() {
            Err(ClientError::Connection(_)) => {}
            Ok(()) => {
                eprintln!("serve_smoke: daemon still answering after shutdown");
                return ExitCode::FAILURE;
            }
            Err(_) => {}
        }
    }

    println!(
        "serve_smoke ok jobs={} cache_hits={cache_hits} degraded={degraded} \
         updates={} update_reuses={update_reuses} attempts={attempts}",
        args.jobs, args.updates
    );
    ExitCode::SUCCESS
}
