//! Load generator for the coloring daemon.
//!
//! Starts an in-process [`serve::Daemon`], fires a deterministic job mix
//! at it from several client threads, and writes service-level metrics —
//! p50/p99 latency, throughput, cache hit rate, shed rate — to
//! `BENCH_serve.json` (override with `--out`). The JSON is hand-written
//! like the rest of the bench suite (no serde; hermetic-offline rule).
//!
//! ```text
//! bench_serve [--out PATH] [--jobs N] [--clients C] [--distinct M]
//!             [--queue-capacity Q] [--threads T] [--deadline-ms D] [--seed S]
//! ```

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serve::client::encode_graph;
use serve::{Daemon, JobRequest, Priority, RetryPolicy, ServeClient, ServeConfig};

struct Args {
    out: String,
    jobs: usize,
    clients: usize,
    distinct: usize,
    queue_capacity: usize,
    threads: usize,
    deadline_ms: u32,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            out: "BENCH_serve.json".into(),
            jobs: 48,
            clients: 4,
            distinct: 6,
            queue_capacity: 8,
            threads: 4,
            deadline_ms: 0,
            seed: 42,
        }
    }
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || {
            it.next().unwrap_or_else(|| {
                eprintln!("bench_serve: {flag} needs a value");
                std::process::exit(2);
            })
        };
        let v = val();
        let num = |s: &str| -> u64 {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bench_serve: bad numeric value {s:?}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--out" => args.out = v,
            "--jobs" => args.jobs = num(&v) as usize,
            "--clients" => args.clients = (num(&v) as usize).max(1),
            "--distinct" => args.distinct = (num(&v) as usize).max(1),
            "--queue-capacity" => args.queue_capacity = (num(&v) as usize).max(1),
            "--threads" => args.threads = (num(&v) as usize).max(1),
            "--deadline-ms" => args.deadline_ms = num(&v) as u32,
            "--seed" => args.seed = num(&v),
            _ => {
                eprintln!("bench_serve: unknown flag {flag}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[rank.min(sorted_ms.len() - 1)]
}

fn main() {
    let args = parse_args();
    let cache_dir = std::env::temp_dir().join(format!("bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let daemon = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        pool_threads: args.threads,
        queue_capacity: args.queue_capacity,
        read_timeout: Duration::from_secs(5),
        default_deadline_ms: 0,
        cache_dir: cache_dir.clone(),
        ..ServeConfig::default()
    })
    .unwrap_or_else(|e| {
        eprintln!("bench_serve: daemon failed to start: {e}");
        std::process::exit(1);
    });
    let addr = daemon.local_addr().to_string();

    // Pre-encode the distinct patterns once; clients share them read-only.
    let patterns: Arc<Vec<Vec<u8>>> = Arc::new(
        (0..args.distinct)
            .map(|i| {
                encode_graph(&sparse::gen::bipartite_uniform(
                    400,
                    300,
                    3600,
                    args.seed + i as u64,
                ))
            })
            .collect(),
    );

    let next_job = Arc::new(AtomicUsize::new(0));
    let started = Instant::now();
    let mut workers = Vec::new();
    for c in 0..args.clients {
        let addr = addr.clone();
        let patterns = Arc::clone(&patterns);
        let next_job = Arc::clone(&next_job);
        let total = args.jobs;
        let deadline_ms = args.deadline_ms;
        let seed = args.seed;
        workers.push(std::thread::spawn(move || {
            let mut client = ServeClient::new(
                addr,
                RetryPolicy {
                    max_attempts: 8,
                    base: Duration::from_millis(5),
                    cap: Duration::from_millis(200),
                    jitter_seed: seed ^ (c as u64) << 32,
                },
            );
            let mut latencies_ms: Vec<f64> = Vec::new();
            let mut failed = 0usize;
            let mut degraded = 0usize;
            let mut hits = 0usize;
            loop {
                let i = next_job.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let req = JobRequest {
                    priority: Priority::ALL[i % 3],
                    deadline_ms,
                    no_cache: false,
                    schedule: String::new(),
                    graph_bytes: patterns[i % patterns.len()].clone(),
                };
                let t0 = Instant::now();
                match client.submit(&req) {
                    Ok(o) => {
                        latencies_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                        degraded += o.degraded.is_some() as usize;
                        hits += o.cache_hit as usize;
                    }
                    Err(_) => failed += 1,
                }
            }
            (latencies_ms, failed, degraded, hits)
        }));
    }

    let mut latencies_ms: Vec<f64> = Vec::new();
    let mut failed = 0usize;
    let mut degraded = 0usize;
    let mut client_hits = 0usize;
    for w in workers {
        let (l, f, d, h) = w.join().expect("client thread panicked");
        latencies_ms.extend(l);
        failed += f;
        degraded += d;
        client_hits += h;
    }
    let wall = started.elapsed();

    let stats = daemon.stats().snapshot();
    let stat = |k: &str| {
        stats
            .iter()
            .find(|(n, _)| *n == k)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    let peak_depth = daemon.peak_queue_depth();
    // Host stamping: record the thread count we *asked* for and the
    // worker count the daemon's pool *actually* spawned as separate
    // fields — rows from clamped or oversubscribed runs must not be
    // compared as if the request had been honored.
    let pool_workers = daemon.pool_workers();
    let host_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    if pool_workers != args.threads {
        eprintln!(
            "bench_serve: WARN: requested {} worker threads but the pool runs {pool_workers}",
            args.threads
        );
    }
    if host_threads > 0 && args.threads > host_threads {
        eprintln!(
            "bench_serve: WARN: requested {} worker threads on a host with {host_threads} \
             logical CPUs; latencies reflect oversubscription",
            args.threads
        );
    }
    drop(daemon);
    let _ = std::fs::remove_dir_all(&cache_dir);

    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let completed = latencies_ms.len();
    let mean = if completed > 0 {
        latencies_ms.iter().sum::<f64>() / completed as f64
    } else {
        0.0
    };
    let hits = stat("cache_hits");
    let misses = stat("cache_misses");
    let hit_rate = if hits + misses > 0 {
        hits as f64 / (hits + misses) as f64
    } else {
        0.0
    };
    let shed = stat("shed");
    let admitted = stat("submitted");
    let shed_rate = if shed + admitted > 0 {
        shed as f64 / (shed + admitted) as f64
    } else {
        0.0
    };
    let throughput = completed as f64 / wall.as_secs_f64().max(1e-9);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serve\",\n");
    json.push_str(&format!("  \"jobs\": {},\n", args.jobs));
    json.push_str(&format!("  \"clients\": {},\n", args.clients));
    json.push_str(&format!("  \"distinct_matrices\": {},\n", args.distinct));
    json.push_str(&format!("  \"queue_capacity\": {},\n", args.queue_capacity));
    // Requested vs actually-spawned worker counts, stamped separately
    // (plus the host's logical CPU count) so a clamped pool or an
    // oversubscribed host is visible in the archived numbers.
    json.push_str(&format!("  \"requested_threads\": {},\n", args.threads));
    json.push_str(&format!("  \"pool_workers\": {pool_workers},\n"));
    json.push_str(&format!("  \"host_threads\": {host_threads},\n"));
    // ISA features the coloring kernels dispatched on, and whether the
    // daemon's pool was pinned (it never is — affinity is a bench/CLI
    // axis, not a service default) — stamped so BENCH_serve.json rows
    // are comparable across hosts like BENCH_coloring.json ones.
    json.push_str(&format!("  \"isa\": \"{}\",\n", bgpc::simd::isa_features()));
    json.push_str("  \"pinned\": false,\n");
    json.push_str(&format!("  \"deadline_ms\": {},\n", args.deadline_ms));
    json.push_str(&format!("  \"completed\": {completed},\n"));
    json.push_str(&format!("  \"failed\": {failed},\n"));
    json.push_str(&format!("  \"degraded\": {degraded},\n"));
    json.push_str(&format!("  \"deadline_miss\": {},\n", stat("deadline_miss")));
    json.push_str("  \"latency_ms\": {\n");
    json.push_str(&format!("    \"p50\": {:.3},\n", percentile(&latencies_ms, 0.50)));
    json.push_str(&format!("    \"p99\": {:.3},\n", percentile(&latencies_ms, 0.99)));
    json.push_str(&format!("    \"mean\": {mean:.3}\n"));
    json.push_str("  },\n");
    json.push_str(&format!("  \"throughput_jobs_per_s\": {throughput:.3},\n"));
    json.push_str(&format!("  \"cache_hit_rate\": {hit_rate:.4},\n"));
    json.push_str(&format!("  \"client_observed_cache_hits\": {client_hits},\n"));
    json.push_str(&format!("  \"shed_rate\": {shed_rate:.4},\n"));
    json.push_str(&format!("  \"shed\": {shed},\n"));
    json.push_str(&format!("  \"peak_queue_depth\": {peak_depth},\n"));
    json.push_str(&format!("  \"queue_bounded\": {}\n", peak_depth <= args.queue_capacity));
    json.push_str("}\n");

    let mut f = std::fs::File::create(&args.out).unwrap_or_else(|e| {
        eprintln!("bench_serve: cannot create {}: {e}", args.out);
        std::process::exit(1);
    });
    f.write_all(json.as_bytes()).expect("write BENCH_serve.json");
    println!(
        "bench_serve: {completed}/{} jobs in {:.2}s (p50 {:.1} ms, p99 {:.1} ms, \
         hit rate {:.0}%, shed rate {:.0}%) -> {}",
        args.jobs,
        wall.as_secs_f64(),
        percentile(&latencies_ms, 0.50),
        percentile(&latencies_ms, 0.99),
        hit_rate * 100.0,
        shed_rate * 100.0,
        args.out
    );
    if failed > 0 {
        eprintln!("bench_serve: {failed} jobs failed terminally");
        std::process::exit(1);
    }
}
