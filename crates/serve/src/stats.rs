//! Daemon counters.
//!
//! Lock-free atomic counters, incremented from handler threads, the
//! executor and the cache, rendered as `key value\n` text for the
//! `Stats` protocol verb. Relaxed ordering is sufficient: the counters
//! are monotone telemetry, never used for synchronization.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone service counters shared by every daemon thread.
#[derive(Debug, Default)]
pub struct ServeStats {
    /// Jobs accepted into the admission queue.
    pub submitted: AtomicU64,
    /// Jobs completed (clean or degraded, cached or computed).
    pub completed: AtomicU64,
    /// Completed jobs whose run degraded (any [`bgpc::DegradeReason`]).
    pub degraded: AtomicU64,
    /// Degraded jobs specifically due to deadline/cancellation.
    pub deadline_miss: AtomicU64,
    /// Jobs answered from the result cache.
    pub cache_hits: AtomicU64,
    /// Update requests received (the `Update` verb).
    pub updates: AtomicU64,
    /// Updates recolored incrementally from a reused cache entry (as
    /// opposed to falling back to a full run on a cache miss).
    pub update_reseeds: AtomicU64,
    /// Jobs that had to compute (cache miss or cache bypassed).
    pub cache_misses: AtomicU64,
    /// Jobs rejected with `Backpressure` because the queue was full.
    pub shed: AtomicU64,
    /// Frames rejected at the protocol layer (bad magic, oversized, …).
    pub protocol_errors: AtomicU64,
    /// Submit payloads rejected as invalid jobs (corrupt graph bytes,
    /// unknown schedule).
    pub invalid_jobs: AtomicU64,
    /// Jobs whose worker panicked and was contained (`ServerError` sent).
    pub worker_panics: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Shard installs accepted (the `Shard` verb).
    pub shard_installs: AtomicU64,
    /// Supersteps executed across all installed shards.
    pub supersteps: AtomicU64,
}

/// One `(name, value)` row of the stats snapshot.
pub type StatRow = (&'static str, u64);

impl ServeStats {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of every counter, stable order.
    pub fn snapshot(&self) -> Vec<StatRow> {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("submitted", g(&self.submitted)),
            ("completed", g(&self.completed)),
            ("degraded", g(&self.degraded)),
            ("deadline_miss", g(&self.deadline_miss)),
            ("cache_hits", g(&self.cache_hits)),
            ("updates", g(&self.updates)),
            ("update_reseeds", g(&self.update_reseeds)),
            ("cache_misses", g(&self.cache_misses)),
            ("shed", g(&self.shed)),
            ("protocol_errors", g(&self.protocol_errors)),
            ("invalid_jobs", g(&self.invalid_jobs)),
            ("worker_panics", g(&self.worker_panics)),
            ("connections", g(&self.connections)),
            ("shard_installs", g(&self.shard_installs)),
            ("supersteps", g(&self.supersteps)),
        ]
    }

    /// Renders the snapshot as `key value\n` text (the `StatsReply`
    /// payload).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.snapshot() {
            out.push_str(k);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        out
    }

    /// Parses a `StatsReply` payload back into rows (client side).
    pub fn parse(text: &str) -> Vec<(String, u64)> {
        text.lines()
            .filter_map(|l| {
                let (k, v) = l.split_once(' ')?;
                Some((k.to_string(), v.parse().ok()?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_parse_roundtrip() {
        let s = ServeStats::new();
        ServeStats::bump(&s.submitted);
        ServeStats::bump(&s.submitted);
        ServeStats::bump(&s.shed);
        let rows = ServeStats::parse(&s.render());
        let get = |k: &str| rows.iter().find(|(n, _)| n == k).unwrap().1;
        assert_eq!(get("submitted"), 2);
        assert_eq!(get("shed"), 1);
        assert_eq!(get("completed"), 0);
    }

    #[test]
    fn snapshot_covers_every_field_once() {
        let s = ServeStats::new();
        let rows = s.snapshot();
        let mut names: Vec<_> = rows.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rows.len(), "duplicate counter name");
    }
}
