//! Crash-safe, content-addressed result cache.
//!
//! Each completed (non-degraded) coloring is persisted under
//! `<cache_dir>/<fingerprint-hex>.bgpcres` so a restarted daemon answers
//! repeat jobs without recomputing. The store survives being killed at
//! any instruction:
//!
//! * **Write-temp-then-rename**: entries are written to
//!   `.tmp-<pid>-<seq>`, `sync_all`ed, then renamed into place. A crash
//!   mid-write leaves only a tmp file (swept on the next open), never a
//!   half-written entry under a valid name.
//! * **Checksum trailer**: every entry ends in a 64-bit FNV-1a of
//!   everything before it (same [`sparse::bin_io::Fnv1a`] as the graph
//!   format). Torn renames, bit flips and truncations are detected on
//!   read; a corrupt entry is deleted and the job recomputed — the cache
//!   can serve a stale miss, never a wrong coloring.
//! * **Fingerprint echo**: the entry body repeats the 128-bit key so a
//!   mis-renamed or cross-linked file cannot satisfy the wrong job.
//!
//! The `serve.cache.write_abort` fail point ([`par::faults`]) aborts a
//! store between the tmp write and the rename — exactly the window a
//! `kill -9` hits — so the crash-consistency property is exercised
//! in-process by `servecov` as well as by the verify-script kill test.
//!
//! ## Entry layout (`BGPCRES2`)
//!
//! ```text
//! magic        8 bytes  b"BGPCRES2"
//! version      4 bytes  u32 LE = 2
//! fingerprint 16 bytes  u128 LE — must match the file stem
//! num_colors   4 bytes  u32 LE
//! config_len   4 bytes  u32 LE — UTF-8 bytes of the config description
//! config       config_len bytes — the config the coloring was computed
//!              with (engine `describe()` syntax), so cached fingerprints
//!              record the chosen configuration
//! n            8 bytes  u64 LE — vertex count
//! colors       n*4      i32 LE each
//! checksum     8 bytes  u64 LE — FNV-1a 64 of all preceding bytes
//! ```
//!
//! Entries in the retired `BGPCRES1` layout fail the magic check and are
//! treated exactly like corruption: removed on read, recomputed, and
//! re-stored in the current format — the cache self-heals across the
//! format bump.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use sparse::bin_io::Fnv1a;

use crate::fingerprint::fingerprint_hex;

const ENTRY_MAGIC: [u8; 8] = *b"BGPCRES2";
const ENTRY_VERSION: u32 = 2;
const ENTRY_EXT: &str = "bgpcres";

/// A cached coloring.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CachedColoring {
    /// Number of distinct colors.
    pub num_colors: u32,
    /// Config the coloring was computed with (engine `describe()` syntax,
    /// or a `schedule=<name>` stub for explicit-schedule jobs).
    pub config: String,
    /// Color per vertex.
    pub colors: Vec<i32>,
}

/// Content-addressed on-disk store of colorings.
pub struct ResultCache {
    dir: PathBuf,
    seq: AtomicU64,
}

impl ResultCache {
    /// Opens (creating if needed) the store at `dir` and sweeps any
    /// `.tmp-*` leftovers from earlier crashed writers.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ResultCache> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        if let Ok(entries) = fs::read_dir(&dir) {
            for e in entries.flatten() {
                let name = e.file_name();
                if name.to_string_lossy().starts_with(".tmp-") {
                    let _ = fs::remove_file(e.path());
                }
            }
        }
        Ok(ResultCache { dir, seq: AtomicU64::new(0) })
    }

    /// Store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, fp: u128) -> PathBuf {
        self.dir.join(format!("{}.{ENTRY_EXT}", fingerprint_hex(fp)))
    }

    /// Looks up `fp`. Returns `None` on miss *or* on a corrupt entry —
    /// corrupt entries are removed so the recomputed result can land
    /// cleanly.
    pub fn get(&self, fp: u128) -> Option<CachedColoring> {
        let path = self.entry_path(fp);
        let bytes = fs::read(&path).ok()?;
        match decode_entry(&bytes, fp) {
            Some(c) => Some(c),
            None => {
                // Detected corruption (crash, bit flip, wrong echo):
                // drop the entry and report a miss.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Persists `coloring` under `fp` with tmp+fsync+rename discipline.
    ///
    /// The `serve.cache.write_abort` fail point fires between the
    /// durable tmp write and the rename: the store is abandoned exactly
    /// as a crash would abandon it, leaving only a tmp file.
    pub fn put(&self, fp: u128, coloring: &CachedColoring) -> std::io::Result<()> {
        let bytes = encode_entry(fp, coloring);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.seq.fetch_add(1, Ordering::Relaxed)
        ));
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        if par::faults::consume("serve.cache.write_abort", 0).is_some() {
            return Err(std::io::Error::other(
                "fail point serve.cache.write_abort: store aborted before rename",
            ));
        }
        fs::rename(&tmp, self.entry_path(fp))
    }

    /// Number of committed entries (tmp files excluded).
    pub fn len(&self) -> usize {
        fs::read_dir(&self.dir)
            .map(|it| {
                it.flatten()
                    .filter(|e| {
                        e.path().extension().map(|x| x == ENTRY_EXT).unwrap_or(false)
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the store has no committed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn encode_entry(fp: u128, c: &CachedColoring) -> Vec<u8> {
    let cfg = c.config.as_bytes();
    let mut out = Vec::with_capacity(52 + cfg.len() + c.colors.len() * 4);
    out.extend_from_slice(&ENTRY_MAGIC);
    out.extend_from_slice(&ENTRY_VERSION.to_le_bytes());
    out.extend_from_slice(&fp.to_le_bytes());
    out.extend_from_slice(&c.num_colors.to_le_bytes());
    out.extend_from_slice(&(cfg.len() as u32).to_le_bytes());
    out.extend_from_slice(cfg);
    out.extend_from_slice(&(c.colors.len() as u64).to_le_bytes());
    for &col in &c.colors {
        out.extend_from_slice(&col.to_le_bytes());
    }
    let mut h = Fnv1a::default();
    h.update(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

fn decode_entry(bytes: &[u8], want_fp: u128) -> Option<CachedColoring> {
    // Fixed header (36) + config + n (8) + trailer (8). A BGPCRES1 entry
    // fails the magic comparison here and is removed by the caller.
    if bytes.len() < 52 || bytes[..8] != ENTRY_MAGIC {
        return None;
    }
    let body = &bytes[..bytes.len() - 8];
    let mut h = Fnv1a::default();
    h.update(body);
    let stored = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte slice"));
    if h.finish() != stored {
        return None;
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4-byte slice"));
    if version != ENTRY_VERSION {
        return None;
    }
    let fp = u128::from_le_bytes(bytes[12..28].try_into().expect("16-byte slice"));
    if fp != want_fp {
        return None;
    }
    let num_colors = u32::from_le_bytes(bytes[28..32].try_into().expect("4-byte slice"));
    let cfg_len = u32::from_le_bytes(bytes[32..36].try_into().expect("4-byte slice")) as usize;
    let colors_at = 36usize.checked_add(cfg_len)?.checked_add(8)?;
    if body.len() < colors_at {
        return None;
    }
    let config = String::from_utf8(body[36..36 + cfg_len].to_vec()).ok()?;
    let n = u64::from_le_bytes(
        body[36 + cfg_len..colors_at].try_into().expect("8-byte slice"),
    ) as usize;
    if body.len() != colors_at.checked_add(n.checked_mul(4)?)? {
        return None;
    }
    let colors = body[colors_at..]
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Some(CachedColoring { num_colors, config, colors })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The fail-point registry is process-global, so every test that
    /// calls [`ResultCache::put`] serializes here — otherwise a parallel
    /// test's store could consume the `write_abort` arming.
    static FAULT_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("serve-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn sample() -> CachedColoring {
        CachedColoring {
            num_colors: 3,
            config: "schedule=N1-N2 sched=dynamic width=u32 relabel=none kernel=auto \
                     forbidden=auto"
                .into(),
            colors: vec![0, 1, 2, 0, 1],
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let _g = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let cache = ResultCache::open(tmpdir("roundtrip")).unwrap();
        assert!(cache.get(42).is_none());
        cache.put(42, &sample()).unwrap();
        assert_eq!(cache.get(42).unwrap(), sample());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reopen_preserves_entries() {
        let _g = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = tmpdir("reopen");
        ResultCache::open(&dir).unwrap().put(7, &sample()).unwrap();
        let cache = ResultCache::open(&dir).unwrap();
        assert_eq!(cache.get(7).unwrap(), sample());
    }

    #[test]
    fn every_corruption_is_a_miss_not_a_wrong_answer() {
        let _g = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = tmpdir("corrupt");
        let cache = ResultCache::open(&dir).unwrap();
        cache.put(9, &sample()).unwrap();
        let path = cache.entry_path(9);
        let clean = fs::read(&path).unwrap();
        for pos in 0..clean.len() {
            let mut bad = clean.clone();
            bad[pos] ^= 0x10;
            fs::write(&path, &bad).unwrap();
            assert!(cache.get(9).is_none(), "bit flip at byte {pos} served");
            assert!(!path.exists(), "corrupt entry at byte {pos} not removed");
            fs::write(&path, &clean).unwrap();
        }
        for cut in 0..clean.len() {
            fs::write(&path, &clean[..cut]).unwrap();
            assert!(cache.get(9).is_none(), "truncation at {cut} served");
            fs::write(&path, &clean).unwrap();
        }
        assert_eq!(cache.get(9).unwrap(), sample());
    }

    #[test]
    fn legacy_v1_entries_self_heal_as_misses() {
        let _g = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let cache = ResultCache::open(tmpdir("v1heal")).unwrap();
        // A well-formed entry in the retired BGPCRES1 layout (no config
        // field), valid checksum included.
        let mut old = Vec::new();
        old.extend_from_slice(b"BGPCRES1");
        old.extend_from_slice(&1u32.to_le_bytes());
        old.extend_from_slice(&3u128.to_le_bytes());
        old.extend_from_slice(&2u32.to_le_bytes());
        old.extend_from_slice(&2u64.to_le_bytes());
        old.extend_from_slice(&0i32.to_le_bytes());
        old.extend_from_slice(&1i32.to_le_bytes());
        let mut h = Fnv1a::default();
        h.update(&old);
        old.extend_from_slice(&h.finish().to_le_bytes());
        fs::write(cache.entry_path(3), &old).unwrap();
        assert!(cache.get(3).is_none(), "v1 entry must decode as a miss");
        assert!(!cache.entry_path(3).exists(), "v1 entry is swept on read");
        // The recomputed result lands cleanly in the new format.
        cache.put(3, &sample()).unwrap();
        assert_eq!(cache.get(3).unwrap(), sample());
    }

    #[test]
    fn entry_under_wrong_name_is_rejected() {
        let _g = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let cache = ResultCache::open(tmpdir("wrongname")).unwrap();
        cache.put(1, &sample()).unwrap();
        // Simulate a mis-rename: entry for fp 1 sitting under fp 2's name.
        fs::rename(cache.entry_path(1), cache.entry_path(2)).unwrap();
        assert!(cache.get(2).is_none(), "fingerprint echo must reject");
    }

    #[test]
    fn aborted_store_leaves_no_entry_and_sweep_cleans_tmp() {
        let _g = FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner());
        let dir = tmpdir("abort");
        let cache = ResultCache::open(&dir).unwrap();
        par::faults::arm_with(
            "serve.cache.write_abort",
            par::faults::FaultAction::Panic,
            1,
            None,
        );
        assert!(cache.put(5, &sample()).is_err());
        par::faults::disarm("serve.cache.write_abort");
        assert!(cache.get(5).is_none(), "aborted store must not be visible");
        assert_eq!(cache.len(), 0);
        let tmp_left = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .any(|e| e.file_name().to_string_lossy().starts_with(".tmp-"));
        assert!(tmp_left, "abort fires between tmp write and rename");
        // Restart: the sweep removes the leftover and the store works.
        let cache = ResultCache::open(&dir).unwrap();
        let tmp_left = fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .any(|e| e.file_name().to_string_lossy().starts_with(".tmp-"));
        assert!(!tmp_left, "open sweeps stale tmp files");
        cache.put(5, &sample()).unwrap();
        assert_eq!(cache.get(5).unwrap(), sample());
    }
}
