//! Worker-side shard executor for multi-process sharded coloring.
//!
//! A coordinator (see the `dist` crate's `coord` module) installs one
//! [`ShardWorker`] per daemon connection with a [`ShardRequest`] and then
//! drives BSP supersteps with [`SuperstepRequest`] frames. The worker
//! owns the vertices the shipped owner array assigns to its shard id and
//! follows the speculative color-then-repair loop of the in-process
//! `dist::DistRunner`, shifted by one round for the wire:
//!
//! * **Round 1** speculatively colors every owned *boundary* vertex
//!   (first-fit against the local view) and flushes the results; owned
//!   *interior* vertices — whole distance-2 neighborhood on this shard —
//!   are colored *after* the Flush frame is written, so they overlap
//!   with the coordinator routing boundary messages (the
//!   interior/boundary overlap of the distributed frameworks).
//! * **Round s > 1** first applies the routed remote colors, then
//!   re-detects conflicts for the vertices colored last round under the
//!   id-ordered rule (the larger vertex of a conflicting pair loses),
//!   and re-colors exactly the losers with a jittered color draw
//!   (`k`-th available, window widening with the round) to break the
//!   symmetry that makes replicas of a large net collide forever.
//! * A **harvest** round returns the shard's owned `(vertex, color)`
//!   assignment instead of coloring.
//!
//! Conflict detection is sound because every color a remote distance-2
//! neighbor has ever taken was flushed to this shard before the round in
//! which it matters: a vertex re-colored in round `s` can conflict only
//! with a vertex colored concurrently in round `s`, which round `s + 1`
//! detects — so a quiescent round (nothing re-colored anywhere) proves
//! the global coloring valid.

use bgpc::{Color, StampSet, UNCOLORED};
use graph::BipartiteGraph;

use crate::protocol::{FlushReply, ShardRequest, SuperstepRequest};

/// splitmix64-style hash for the jittered color draw. Must stay in sync
/// with `dist::bsp` so in-process and sharded runs draw the same jitter.
#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(b)
        .wrapping_add(0x85EBCA6B);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// The `k`-th smallest color not in the forbidden set.
fn kth_available(fb: &StampSet, k: usize) -> Color {
    let mut col = fb.first_fit_from(0);
    for _ in 0..k {
        col = fb.first_fit_from(col + 1);
    }
    col
}

/// One rank of a sharded coloring run, installed on a daemon connection.
pub struct ShardWorker {
    shard: u32,
    graph: BipartiteGraph,
    owners: Vec<u32>,
    /// This shard's knowledge of every vertex's color (authoritative for
    /// owned vertices, last-flushed for remote ones).
    view: Vec<Color>,
    /// Owned vertices colored in the previous round, conflict status
    /// unknown until the next round's updates arrive.
    pending: Vec<u32>,
    /// Owned vertices whose whole distance-2 neighborhood is owned —
    /// they can never conflict and are colored once, after round 1's
    /// flush is on the wire.
    interior: Vec<u32>,
    /// Owned vertices with at least one remote distance-2 neighbor.
    boundary: Vec<u32>,
    /// For each owned vertex, the remote shards that must learn its
    /// color (empty for interior and non-owned vertices).
    interested: Vec<Vec<u32>>,
    fb: StampSet,
    /// Interior coloring deferred until after round 1's reply is
    /// written; see [`ShardWorker::finish_deferred`].
    interior_deferred: bool,
}

impl ShardWorker {
    /// Builds a worker from an install request: decodes the checksummed
    /// graph bytes, validates the owner array against it, and
    /// precomputes the interior/boundary split.
    pub fn install(req: ShardRequest) -> Result<ShardWorker, String> {
        let matrix = sparse::bin_io::read_bin(req.graph_bytes.as_slice())
            .map_err(|e| format!("shard graph bytes: {e}"))?;
        let graph = BipartiteGraph::try_from_matrix_owned(matrix).map_err(|e| e.to_string())?;
        let n = graph.n_vertices();
        if req.owners.len() != n {
            return Err(format!(
                "owner array has {} entries for a {}-vertex graph",
                req.owners.len(),
                n
            ));
        }
        let mut interested = vec![Vec::new(); n];
        let mut interior = Vec::new();
        let mut boundary = Vec::new();
        let mut mark = vec![usize::MAX; req.n_shards as usize];
        for (v, shards) in interested.iter_mut().enumerate() {
            if req.owners[v] != req.shard {
                continue;
            }
            for &net in graph.nets(v) {
                for &u in graph.vtxs(net as usize) {
                    let r = req.owners[u as usize];
                    if r != req.shard && mark[r as usize] != v {
                        mark[r as usize] = v;
                        shards.push(r);
                    }
                }
            }
            if shards.is_empty() {
                interior.push(v as u32);
            } else {
                boundary.push(v as u32);
            }
        }
        let fb = StampSet::with_capacity(graph.max_net_size() + 16);
        Ok(ShardWorker {
            shard: req.shard,
            graph,
            owners: req.owners,
            view: vec![UNCOLORED; n],
            pending: Vec::new(),
            interior,
            boundary,
            interested,
            fb,
            interior_deferred: false,
        })
    }

    /// Runs one superstep and builds the Flush reply. The caller must
    /// write the reply to the wire and then call
    /// [`ShardWorker::finish_deferred`] — that ordering is the
    /// interior/boundary overlap.
    pub fn superstep(&mut self, req: &SuperstepRequest) -> FlushReply {
        if req.harvest {
            // Owned assignment, tagged with our own shard id.
            let messages = self
                .owners
                .iter()
                .enumerate()
                .filter(|&(_, &o)| o == self.shard)
                .map(|(v, _)| (self.shard, v as u32, self.view[v]))
                .collect();
            return FlushReply { colored: 0, conflicts: 0, messages };
        }

        // Deliver the routed remote colors first: conflict detection for
        // last round's coloring needs them.
        for &(v, c) in &req.updates {
            if let Some(slot) = self.view.get_mut(v as usize) {
                *slot = c;
            }
        }

        // Re-queue last round's losers under the id-ordered rule.
        let g = &self.graph;
        let mut queue: Vec<u32> = Vec::new();
        for &w in &self.pending {
            let wu = w as usize;
            let cw = self.view[wu];
            let lost = g.nets(wu).iter().any(|&net| {
                g.vtxs(net as usize)
                    .iter()
                    .any(|&u| u < w && self.view[u as usize] == cw)
            });
            if lost {
                queue.push(w);
            }
        }
        let conflicts = queue.len() as u32;
        if req.superstep <= 1 {
            queue = self.boundary.clone();
            self.interior_deferred = true;
        }

        // Color the queue with the jittered draw (same symmetry breaker
        // as dist::bsp): plain first-fit would make every shard's copy
        // of a large net collide on the same small colors forever.
        let window = if req.superstep <= 1 {
            1
        } else {
            (req.superstep as usize * 4).min(64)
        };
        let mut messages = Vec::new();
        for &w in &queue {
            let wu = w as usize;
            self.fb.advance();
            for &net in g.nets(wu) {
                for &u in g.vtxs(net as usize) {
                    if u != w {
                        let cu = self.view[u as usize];
                        if cu != UNCOLORED {
                            self.fb.insert(cu);
                        }
                    }
                }
            }
            let k = if window <= 1 {
                0
            } else {
                (mix(w as u64, req.superstep as u64) % window as u64) as usize
            };
            let col = kth_available(&self.fb, k);
            self.view[wu] = col;
            for &dest in &self.interested[wu] {
                messages.push((dest, w, col));
            }
        }
        let colored = queue.len() + if req.superstep <= 1 { self.interior.len() } else { 0 };
        self.pending = queue;
        FlushReply { colored: colored as u32, conflicts, messages }
    }

    /// Colors the interior vertices deferred by round 1 — called after
    /// the Flush frame is written, so interior work overlaps with the
    /// coordinator routing boundary messages (the next Superstep frame
    /// simply waits in the socket buffer). Interior vertices only ever
    /// see owned colors, so plain first-fit is conflict-free.
    pub fn finish_deferred(&mut self) {
        if !self.interior_deferred {
            return;
        }
        self.interior_deferred = false;
        let g = &self.graph;
        for i in 0..self.interior.len() {
            let wu = self.interior[i] as usize;
            self.fb.advance();
            for &net in g.nets(wu) {
                for &u in g.vtxs(net as usize) {
                    if u as usize != wu {
                        let cu = self.view[u as usize];
                        if cu != UNCOLORED {
                            self.fb.insert(cu);
                        }
                    }
                }
            }
            self.view[wu] = self.fb.first_fit_from(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ShardRequest;

    fn graph_bytes(m: &sparse::Csr) -> Vec<u8> {
        let mut buf = Vec::new();
        sparse::bin_io::write_bin(&mut buf, m).unwrap();
        buf
    }

    fn install(m: &sparse::Csr, owners: Vec<u32>, shard: u32, n_shards: u32) -> ShardWorker {
        ShardWorker::install(ShardRequest {
            shard,
            n_shards,
            owners,
            graph_bytes: graph_bytes(m),
        })
        .unwrap()
    }

    /// Drives a full sharded run in-process over `n_shards` workers and
    /// returns the assembled coloring plus the number of rounds.
    fn drive(m: &sparse::Csr, owners: &[u32], n_shards: u32) -> (Vec<i32>, usize) {
        let mut workers: Vec<ShardWorker> = (0..n_shards)
            .map(|s| install(m, owners.to_vec(), s, n_shards))
            .collect();
        let mut inbox: Vec<Vec<(u32, i32)>> = vec![Vec::new(); n_shards as usize];
        let mut rounds = 0usize;
        for s in 1..200u32 {
            let mut colored = 0u32;
            let mut next: Vec<Vec<(u32, i32)>> = vec![Vec::new(); n_shards as usize];
            for (r, w) in workers.iter_mut().enumerate() {
                let req = SuperstepRequest {
                    superstep: s,
                    harvest: false,
                    updates: std::mem::take(&mut inbox[r]),
                };
                let reply = w.superstep(&req);
                w.finish_deferred();
                colored += reply.colored;
                for (dest, v, c) in reply.messages {
                    next[dest as usize].push((v, c));
                }
            }
            inbox = next;
            if colored == 0 {
                break;
            }
            rounds += 1;
        }
        let n = m.ncols();
        let mut colors = vec![UNCOLORED; n];
        for w in workers.iter_mut() {
            let reply = w.superstep(&SuperstepRequest {
                superstep: 0,
                harvest: true,
                updates: vec![],
            });
            for (_, v, c) in reply.messages {
                colors[v as usize] = c;
            }
        }
        (colors, rounds)
    }

    #[test]
    fn install_rejects_wrong_owner_length_and_bad_bytes() {
        let m = sparse::gen::bipartite_uniform(10, 12, 40, 1);
        let bad = ShardWorker::install(ShardRequest {
            shard: 0,
            n_shards: 2,
            owners: vec![0; 5],
            graph_bytes: graph_bytes(&m),
        });
        assert!(bad.err().unwrap().contains("owner array"));
        let bad = ShardWorker::install(ShardRequest {
            shard: 0,
            n_shards: 2,
            owners: vec![0; 12],
            graph_bytes: vec![1, 2, 3],
        });
        assert!(bad.err().unwrap().contains("graph bytes"));
    }

    #[test]
    fn single_shard_colors_everything_in_one_round() {
        let m = sparse::gen::bipartite_uniform(30, 40, 300, 1);
        let g = BipartiteGraph::from_matrix(&m);
        let owners = vec![0u32; g.n_vertices()];
        let (colors, rounds) = drive(&m, &owners, 1);
        bgpc::verify::verify_bgpc(&g, &colors).unwrap();
        assert_eq!(rounds, 1, "one shard cannot conflict");
    }

    #[test]
    fn multi_shard_run_converges_to_a_valid_coloring() {
        let m = sparse::gen::bipartite_uniform(60, 80, 900, 5);
        let g = BipartiteGraph::from_matrix(&m);
        for shards in [2u32, 4, 8] {
            let owners: Vec<u32> = (0..g.n_vertices() as u32).map(|v| v % shards).collect();
            let (colors, _rounds) = drive(&m, &owners, shards);
            bgpc::verify::verify_bgpc(&g, &colors).unwrap();
        }
    }

    #[test]
    fn interior_is_deferred_until_after_the_flush() {
        // Two disjoint halves split exactly by the partition: every
        // vertex is interior, so round 1 flushes colored == n with no
        // messages, and the view fills only after finish_deferred.
        let mut rows = Vec::new();
        for i in 0..5 {
            rows.push(vec![2 * i as u32, 2 * i as u32 + 1]);
        }
        for i in 0..5 {
            rows.push(vec![10 + 2 * i as u32, 10 + 2 * i as u32 + 1]);
        }
        let m = sparse::Csr::from_rows(20, &rows);
        let owners: Vec<u32> = (0..20).map(|v| u32::from(v >= 10)).collect();
        let mut w = install(&m, owners, 0, 2);
        let reply = w.superstep(&SuperstepRequest { superstep: 1, harvest: false, updates: vec![] });
        assert_eq!(reply.colored, 10, "all owned vertices count as colored");
        assert!(reply.messages.is_empty(), "no boundary, no messages");
        assert!(w.view[..10].iter().all(|&c| c == UNCOLORED), "interior not yet colored");
        w.finish_deferred();
        assert!(w.view[..10].iter().all(|&c| c != UNCOLORED), "interior colored after flush");
    }
}
