//! `serve` — a hardened coloring daemon for the BGPC suite.
//!
//! The library turns the in-process coloring runner ([`bgpc`]) into a
//! long-lived service that stays correct and available under the failure
//! modes a real deployment sees: overload, slow or malicious clients,
//! deadline pressure, worker panics, and crashes mid-write. Everything is
//! built on `std` (`TcpListener`, `Mutex`/`Condvar`, `mpsc`) — no registry
//! dependencies, matching the workspace's hermetic-offline rule.
//!
//! # Architecture
//!
//! ```text
//! client ──TCP──▶ handler thread ──▶ AdmissionQueue ──▶ executor thread
//!                    │   ▲                 (bounded,        │  owns the
//!                    │   │ Backpressure     3 lanes)        │  par::Pool
//!                    │   └──── when full                    ▼
//!                    │                              color_bgpc_with_opts
//!                    │                               (deadline + cancel)
//!                    └◀── Result / typed error ◀─── ResultCache (crash-safe)
//! ```
//!
//! * **Admission control** ([`admission`]): a bounded three-lane priority
//!   queue. When full, the daemon answers with a typed `Backpressure`
//!   frame instead of queueing unboundedly — memory stays bounded under
//!   any offered load, and shed jobs are counted.
//! * **Deadlines** ([`daemon`]): each job's deadline and a cancellation
//!   token thread into [`bgpc::RunnerOpts`]; the speculative loop polls
//!   them once per iteration and a late job returns its best-so-far
//!   coloring tagged `DeadlineExceeded` — degraded, never absent.
//! * **Crash-safe result cache** ([`cache`]): results are content-addressed
//!   by a fingerprint of the CSR pattern ([`fingerprint`]) and persisted
//!   with write-temp-then-rename discipline; every entry carries a
//!   checksum trailer so a crash or bit flip yields a recomputation, not
//!   a wrong answer.
//! * **Incremental updates** ([`protocol::UpdateRequest`]): the `Update`
//!   verb ships the base graph plus an edge delta. When the base
//!   coloring is still cached, the daemon applies the delta with
//!   [`bgpc::apply_delta`] and recolors *only* the dirty vertices via
//!   [`bgpc::recolor_bgpc_incremental`], seeded from the cached colors —
//!   the reply is flagged as a cache hit and a clean result is stored
//!   under the mutated graph's fingerprint so update chains keep
//!   hitting. On a miss the mutated graph is colored from scratch.
//! * **Wire protocol** ([`protocol`]): length-prefixed frames with a magic,
//!   a kind byte and a capped length prefix — adversarial input (oversized
//!   prefixes, garbage, half-closed and slow-loris connections) produces
//!   typed errors, never a panic or an unbounded allocation.
//! * **Shard worker** ([`shard`]): the daemon doubles as one shard of a
//!   multi-process coloring. A `Shard` frame installs a
//!   [`ShardWorker`] on the connection (graph + owner map), after which
//!   `Superstep`/`Flush` rounds drive speculative boundary coloring
//!   with the conflict exchange riding the same TCP connection — the
//!   scale-out path behind the `dist` crate's `Coordinator` and
//!   `bgpc-cli shard` (DESIGN.md §11).
//! * **Client** ([`client`]): reconnecting client with capped exponential
//!   backoff plus deterministic jitter, distinguishing retryable faults
//!   (backpressure, connection reset, torn frame) from terminal ones
//!   (invalid job, graph error).
//! * **Fault injection**: the daemon is instrumented with
//!   [`par::faults`] fail points (`serve.frame.torn`, `serve.conn.stall`,
//!   `serve.cache.write_abort`, `serve.job.panic`,
//!   `serve.queue.poison`); the `servecov` and `poison` tests prove
//!   each degrades the affected request and nothing else. Shared locks
//!   are taken through [`sync::lock_recover`], so a mutex poisoned by
//!   a panicking holder is recovered instead of cascading panics
//!   through every later client.

pub mod admission;
pub mod cache;
pub mod client;
pub mod daemon;
pub mod fingerprint;
pub mod protocol;
pub mod shard;
pub mod stats;
pub mod sync;

pub use admission::{AdmissionQueue, Job, SubmitError, UpdateSeed};
pub use cache::ResultCache;
pub use client::{ClientError, JobOutcome, RetryPolicy, ServeClient};
pub use daemon::{Daemon, ServeConfig};
pub use fingerprint::csr_fingerprint;
pub use protocol::{
    FlushReply, FrameKind, JobRequest, JobResult, Priority, ProtoError, ShardRequest,
    SuperstepRequest, UpdateRequest,
};
pub use shard::ShardWorker;
pub use stats::ServeStats;
pub use sync::{lock_recover, wait_recover};
