//! The coloring daemon: listener, connection handlers, and the executor.
//!
//! Threading model (see the crate docs for the picture):
//!
//! * The **listener thread** accepts connections and spawns one detached
//!   **handler thread** per connection. Handlers parse frames with a read
//!   timeout (the slow-loris defense), answer protocol-level requests
//!   inline, and admit jobs to the bounded [`AdmissionQueue`].
//! * The **executor thread** owns the shared [`par::Pool`] and drains the
//!   queue one job at a time — the pool runs one parallel region at a
//!   time by contract, so jobs are serialized through it while each job
//!   parallelizes internally across the pool's threads.
//! * Every job runs under [`par::contain`]: a panic anywhere in the job
//!   body (including the `serve.job.panic` fail point) is contained into
//!   a `ServerError` reply and the daemon keeps serving.
//!
//! Deadlines are converted to absolute [`Instant`]s at admission, so time
//! spent queued counts against them; the runner polls the deadline and the
//! job's [`bgpc::CancelToken`] once per speculative iteration and a late
//! job degrades to its best-so-far coloring instead of disappearing.

use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use graph::BipartiteGraph;

use crate::admission::{AdmissionQueue, Job, SubmitError, UpdateSeed};
use crate::cache::{CachedColoring, ResultCache};
use crate::fingerprint::csr_fingerprint;
use crate::protocol::{
    encode_backpressure, read_frame, write_frame, FrameKind, JobRequest, JobResult, ProtoError,
    ShardRequest, SuperstepRequest, UpdateRequest, DEFAULT_MAX_FRAME,
};
use crate::stats::ServeStats;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick (read it back via
    /// [`Daemon::local_addr`]).
    pub addr: String,
    /// Thread count of the shared coloring pool.
    pub pool_threads: usize,
    /// Admission queue bound (jobs held across all lanes).
    pub queue_capacity: usize,
    /// Frame payload cap; oversized length prefixes are rejected before
    /// allocation.
    pub max_frame: u32,
    /// Per-connection read timeout — a peer that trickles bytes slower
    /// than this is disconnected (slow-loris defense).
    pub read_timeout: Duration,
    /// Deadline applied to jobs that do not carry one; `0` disables.
    pub default_deadline_ms: u32,
    /// Result cache directory.
    pub cache_dir: PathBuf,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            pool_threads: 4,
            queue_capacity: 64,
            max_frame: DEFAULT_MAX_FRAME,
            read_timeout: Duration::from_secs(10),
            default_deadline_ms: 0,
            cache_dir: std::env::temp_dir().join("bgpc-serve-cache"),
        }
    }
}

/// What the executor sends back to the waiting handler.
#[derive(Debug)]
pub enum JobReply {
    /// A finished coloring (clean or degraded).
    Result(JobResult),
    /// The graph layer rejected the pattern (terminal for the client).
    GraphError(String),
    /// A contained internal failure (retryable for the client).
    ServerError(String),
}

struct Shared {
    cfg: ServeConfig,
    queue: AdmissionQueue,
    stats: ServeStats,
    cache: ResultCache,
    shutdown: AtomicBool,
    addr: SocketAddr,
    /// Cancellation token of the job currently on the pool, so shutdown
    /// can reel in an in-flight run instead of waiting it out.
    current_cancel: Mutex<Option<bgpc::CancelToken>>,
    /// Worker threads the executor's pool actually spawned (0 until the
    /// executor thread has built it). May differ from the requested
    /// `cfg.pool_threads` if the pool clamps; benchmarks stamp both.
    pool_workers: AtomicUsize,
}

/// A running daemon. Dropping it shuts it down and joins its threads.
pub struct Daemon {
    shared: Arc<Shared>,
    listener: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Binds, opens the cache, and starts the listener and executor
    /// threads.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Daemon> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let cache = ResultCache::open(&cfg.cache_dir)?;
        let shared = Arc::new(Shared {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            stats: ServeStats::new(),
            cache,
            shutdown: AtomicBool::new(false),
            addr,
            current_cancel: Mutex::new(None),
            pool_workers: AtomicUsize::new(0),
            cfg,
        });

        let exec_shared = Arc::clone(&shared);
        let executor = std::thread::Builder::new()
            .name("serve-executor".into())
            .spawn(move || executor_loop(&exec_shared))?;

        let listen_shared = Arc::clone(&shared);
        let listener = std::thread::Builder::new()
            .name("serve-listener".into())
            .spawn(move || listener_loop(listener, &listen_shared))?;

        Ok(Daemon { shared, listener: Some(listener), executor: Some(executor) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &ServeStats {
        &self.shared.stats
    }

    /// Peak admission-queue depth (bounded-memory evidence).
    pub fn peak_queue_depth(&self) -> usize {
        self.shared.queue.peak_depth()
    }

    /// Worker threads the executor's pool actually spawned. Returns 0
    /// until the executor thread has built its pool (it does so before
    /// draining any job, so after the first completed job this is final).
    pub fn pool_workers(&self) -> usize {
        self.shared.pool_workers.load(Ordering::Relaxed)
    }

    /// Requests shutdown and joins both threads. Idempotent.
    pub fn shutdown(&mut self) {
        request_shutdown(&self.shared);
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        if let Some(h) = self.executor.take() {
            let _ = h.join();
        }
    }

    /// Blocks until a client sends the `Shutdown` verb (or [`shutdown`]
    /// is called from another thread), then joins.
    ///
    /// [`shutdown`]: Daemon::shutdown
    pub fn join(mut self) {
        if let Some(h) = self.listener.take() {
            let _ = h.join();
        }
        self.shutdown();
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn request_shutdown(shared: &Shared) {
    if shared.shutdown.swap(true, Ordering::SeqCst) {
        return;
    }
    shared.queue.close();
    if let Some(tok) = crate::sync::lock_recover(&shared.current_cancel).as_ref() {
        tok.cancel();
    }
    // Wake the accept loop so it notices the flag.
    let _ = TcpStream::connect(shared.addr);
}

fn listener_loop(listener: TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        ServeStats::bump(&shared.stats.connections);
        let conn_shared = Arc::clone(shared);
        // Handlers are detached: they exit on connection close, read
        // timeout, protocol violation, or the shutdown flag.
        let _ = std::thread::Builder::new()
            .name("serve-conn".into())
            .spawn(move || handle_connection(stream, &conn_shared));
    }
}

/// Best-effort frame write; a failed response write just drops the
/// connection (the client's retry layer handles it).
fn respond(stream: &mut TcpStream, kind: FrameKind, payload: &[u8]) -> bool {
    write_frame(stream, kind, payload, 0).is_ok()
}

fn handle_connection(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    // Sharded-coloring state: a Shard install binds a worker to this
    // connection; Superstep frames then drive it. Connection-local by
    // design — a dropped coordinator connection reclaims the shard.
    let mut shard: Option<crate::shard::ShardWorker> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Stall/panic injection point for the read path; a panic here
        // kills only this detached handler thread.
        par::faults::fire("serve.conn.stall", 0);
        let (kind, payload) = match read_frame(&mut stream, shared.cfg.max_frame) {
            Ok(f) => f,
            Err(ProtoError::Closed) => return,
            Err(ProtoError::Io(_)) => return, // timeout / reset: drop silently
            Err(e) => {
                // Protocol violation: one typed reply, then drop.
                ServeStats::bump(&shared.stats.protocol_errors);
                respond(&mut stream, FrameKind::ProtocolError, e.to_string().as_bytes());
                return;
            }
        };
        match kind {
            FrameKind::Ping => {
                if !respond(&mut stream, FrameKind::Pong, b"") {
                    return;
                }
            }
            FrameKind::Stats => {
                let text = shared.stats.render();
                if !respond(&mut stream, FrameKind::StatsReply, text.as_bytes()) {
                    return;
                }
            }
            FrameKind::Shutdown => {
                respond(&mut stream, FrameKind::Pong, b"");
                request_shutdown(shared);
                return;
            }
            FrameKind::Submit => {
                if !handle_submit(&mut stream, shared, &payload) {
                    return;
                }
            }
            FrameKind::Update => {
                if !handle_update(&mut stream, shared, &payload) {
                    return;
                }
            }
            FrameKind::Shard => {
                let install = ShardRequest::decode(&payload)
                    .map_err(|e| e.to_string())
                    .and_then(crate::shard::ShardWorker::install);
                match install {
                    Ok(w) => {
                        shard = Some(w);
                        ServeStats::bump(&shared.stats.shard_installs);
                        if !respond(&mut stream, FrameKind::Pong, b"") {
                            return;
                        }
                    }
                    Err(e) => {
                        ServeStats::bump(&shared.stats.invalid_jobs);
                        respond(&mut stream, FrameKind::InvalidJob, e.as_bytes());
                        return;
                    }
                }
            }
            FrameKind::Superstep => {
                let Some(worker) = shard.as_mut() else {
                    ServeStats::bump(&shared.stats.protocol_errors);
                    respond(
                        &mut stream,
                        FrameKind::ProtocolError,
                        b"Superstep before Shard install",
                    );
                    return;
                };
                match SuperstepRequest::decode(&payload) {
                    Ok(req) => {
                        let reply = worker.superstep(&req);
                        ServeStats::bump(&shared.stats.supersteps);
                        if !respond(&mut stream, FrameKind::Flush, &reply.encode()) {
                            return;
                        }
                        // Interior/boundary overlap: the Flush frame is
                        // already on the wire, so deferred interior
                        // coloring runs while the coordinator routes
                        // boundary messages (the next Superstep frame
                        // waits in the socket buffer).
                        worker.finish_deferred();
                    }
                    Err(e) => {
                        ServeStats::bump(&shared.stats.invalid_jobs);
                        respond(&mut stream, FrameKind::InvalidJob, e.to_string().as_bytes());
                        return;
                    }
                }
            }
            // A client sending response kinds is violating the protocol.
            _ => {
                ServeStats::bump(&shared.stats.protocol_errors);
                respond(
                    &mut stream,
                    FrameKind::ProtocolError,
                    format!("unexpected frame kind {kind:?} from client").as_bytes(),
                );
                return;
            }
        }
    }
}

/// Processes one Submit; returns `false` when the connection should drop.
fn handle_submit(stream: &mut TcpStream, shared: &Arc<Shared>, payload: &[u8]) -> bool {
    let req = match JobRequest::decode(payload) {
        Ok(r) => r,
        Err(e) => {
            ServeStats::bump(&shared.stats.invalid_jobs);
            return respond(stream, FrameKind::InvalidJob, e.to_string().as_bytes());
        }
    };
    // The graph travels in the hardened checksummed format, so corrupt
    // bytes surface here as a typed decode error, not a bad coloring.
    let matrix = match sparse::bin_io::read_bin(req.graph_bytes.as_slice()) {
        Ok(m) => m,
        Err(e) => {
            ServeStats::bump(&shared.stats.invalid_jobs);
            return respond(
                stream,
                FrameKind::InvalidJob,
                format!("graph payload: {e}").as_bytes(),
            );
        }
    };
    // An empty schedule string delegates the whole config to the
    // auto-tuning engine at execution time; a named schedule is explicit
    // and wins over the engine (same contract as the CLI flags).
    let schedule = if req.schedule.is_empty() {
        None
    } else {
        match bgpc::Schedule::from_name(&req.schedule) {
            Some(s) => Some(s),
            None => {
                ServeStats::bump(&shared.stats.invalid_jobs);
                return respond(
                    stream,
                    FrameKind::InvalidJob,
                    format!("unknown schedule {:?}", req.schedule).as_bytes(),
                );
            }
        }
    };

    let fingerprint = csr_fingerprint(&matrix);
    if !req.no_cache {
        if let Some(hit) = shared.cache.get(fingerprint) {
            ServeStats::bump(&shared.stats.cache_hits);
            ServeStats::bump(&shared.stats.completed);
            let result = JobResult {
                degraded: None,
                cache_hit: true,
                num_colors: hit.num_colors,
                colors: hit.colors,
            };
            return respond(stream, FrameKind::Result, &result.encode());
        }
    }

    let deadline = resolve_deadline(shared, req.deadline_ms);
    let (tx, rx): (_, Receiver<JobReply>) = channel();
    let job = Job {
        priority: req.priority,
        deadline,
        no_cache: req.no_cache,
        schedule,
        matrix,
        fingerprint,
        seed: None,
        reply: tx,
    };
    admit_and_reply(stream, shared, job, rx, false)
}

/// Converts the wire's relative deadline (with the daemon default as
/// fallback) into an absolute instant at admission time.
fn resolve_deadline(shared: &Shared, deadline_ms: u32) -> Option<Instant> {
    let deadline_ms = if deadline_ms != 0 {
        deadline_ms
    } else {
        shared.cfg.default_deadline_ms
    };
    (deadline_ms != 0).then(|| Instant::now() + Duration::from_millis(deadline_ms as u64))
}

/// Admits `job`, waits for the executor's reply and writes the response
/// frame. `reused` marks a reply whose run was seeded from a reused cache
/// entry (the incremental update path) — the wire result is flagged as a
/// cache hit so clients can observe entry reuse.
fn admit_and_reply(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    job: Job,
    rx: Receiver<JobReply>,
    reused: bool,
) -> bool {
    match shared.queue.try_submit(job) {
        Ok(()) => ServeStats::bump(&shared.stats.submitted),
        Err(SubmitError::Full { depth, capacity }) => {
            ServeStats::bump(&shared.stats.shed);
            return respond(
                stream,
                FrameKind::Backpressure,
                &encode_backpressure(depth as u32, capacity as u32),
            );
        }
        Err(SubmitError::Closed) => {
            return respond(stream, FrameKind::ServerError, b"daemon is shutting down");
        }
    }
    match rx.recv() {
        Ok(JobReply::Result(mut result)) => {
            result.cache_hit |= reused;
            respond(stream, FrameKind::Result, &result.encode())
        }
        Ok(JobReply::GraphError(msg)) => respond(stream, FrameKind::GraphError, msg.as_bytes()),
        Ok(JobReply::ServerError(msg)) => respond(stream, FrameKind::ServerError, msg.as_bytes()),
        // Executor gone (shutdown race): tell the client to retry later.
        Err(_) => respond(stream, FrameKind::ServerError, b"executor unavailable"),
    }
}

/// Processes one Update; returns `false` when the connection should drop.
///
/// The request carries the **base** graph plus an edge delta. The daemon
/// fingerprints the base, applies the delta, and picks the cheapest valid
/// path, in order:
///
/// 1. The *mutated* graph's coloring is already cached → answer straight
///    from the cache (an empty delta against a cached base always lands
///    here, since the mutated fingerprint equals the base fingerprint).
/// 2. The *base* coloring is cached → enqueue an incremental job that
///    recolors only the delta's dirty vertices, seeded from the cached
///    colors; the reply is flagged `cache_hit` because the entry was
///    reused. A clean result is stored under the mutated fingerprint, so
///    a chain of updates keeps hitting.
/// 3. Nothing cached → a full run on the mutated graph.
fn handle_update(stream: &mut TcpStream, shared: &Arc<Shared>, payload: &[u8]) -> bool {
    ServeStats::bump(&shared.stats.updates);
    let req = match UpdateRequest::decode(payload) {
        Ok(r) => r,
        Err(e) => {
            ServeStats::bump(&shared.stats.invalid_jobs);
            return respond(stream, FrameKind::InvalidJob, e.to_string().as_bytes());
        }
    };
    let base = match sparse::bin_io::read_bin(req.graph_bytes.as_slice()) {
        Ok(m) => m,
        Err(e) => {
            ServeStats::bump(&shared.stats.invalid_jobs);
            return respond(
                stream,
                FrameKind::InvalidJob,
                format!("graph payload: {e}").as_bytes(),
            );
        }
    };
    let schedule = if req.schedule.is_empty() {
        None
    } else {
        match bgpc::Schedule::from_name(&req.schedule) {
            Some(s) => Some(s),
            None => {
                ServeStats::bump(&shared.stats.invalid_jobs);
                return respond(
                    stream,
                    FrameKind::InvalidJob,
                    format!("unknown schedule {:?}", req.schedule).as_bytes(),
                );
            }
        }
    };
    // Delta validation is typed end to end: a malformed batch (duplicate
    // edge, insert-delete overlap, out-of-bounds endpoint, edge already
    // present / not present) is an InvalidJob, not a panic.
    let delta = match bgpc::CsrDelta::try_new(req.insertions.clone(), req.deletions.clone()) {
        Ok(d) => d,
        Err(e) => {
            ServeStats::bump(&shared.stats.invalid_jobs);
            return respond(stream, FrameKind::InvalidJob, format!("delta: {e}").as_bytes());
        }
    };
    let base_fp = csr_fingerprint(&base);
    let applied = match bgpc::apply_delta(&base, &delta) {
        Ok(a) => a,
        Err(e) => {
            ServeStats::bump(&shared.stats.invalid_jobs);
            return respond(stream, FrameKind::InvalidJob, format!("delta: {e}").as_bytes());
        }
    };
    let dirty = applied.dirty_bgpc().to_vec();
    let mutated = applied.matrix;
    let mutated_fp = csr_fingerprint(&mutated);

    let mut seed = None;
    if !req.no_cache {
        // Path 1: the mutated graph itself is cached (covers the empty
        // delta, whose mutated fingerprint equals the base fingerprint).
        if let Some(hit) = shared.cache.get(mutated_fp) {
            ServeStats::bump(&shared.stats.cache_hits);
            ServeStats::bump(&shared.stats.completed);
            let result = JobResult {
                degraded: None,
                cache_hit: true,
                num_colors: hit.num_colors,
                colors: hit.colors,
            };
            return respond(stream, FrameKind::Result, &result.encode());
        }
        // Path 2: the base coloring is cached — reuse the entry as the
        // incremental seed. The length check guards against a (content-
        // addressed, hence practically impossible) fingerprint collision
        // pairing colors with a different-sized graph.
        if let Some(hit) = shared.cache.get(base_fp) {
            if hit.colors.len() == mutated.ncols() {
                ServeStats::bump(&shared.stats.update_reseeds);
                seed = Some(UpdateSeed { base_colors: hit.colors, dirty });
            }
        }
    }

    let reused = seed.is_some();
    let deadline = resolve_deadline(shared, req.deadline_ms);
    let (tx, rx): (_, Receiver<JobReply>) = channel();
    let job = Job {
        priority: req.priority,
        deadline,
        no_cache: req.no_cache,
        schedule,
        matrix: mutated,
        fingerprint: mutated_fp,
        seed,
        reply: tx,
    };
    admit_and_reply(stream, shared, job, rx, reused)
}

fn executor_loop(shared: &Arc<Shared>) {
    let pool = par::Pool::new(shared.cfg.pool_threads.max(1));
    shared.pool_workers.store(pool.threads(), Ordering::Relaxed);
    // One engine per daemon: the shipped decision table is parsed once
    // and shared by every engine-routed (empty-schedule) job.
    let engine = bgpc::Engine::with_default_table();
    while let Some(job) = shared.queue.pop() {
        let reply = run_job(shared, &pool, &engine, &job);
        // A send failure means the handler (and its client) went away;
        // the result is simply dropped.
        let _ = job.reply.send(reply);
    }
}

fn run_job(shared: &Arc<Shared>, pool: &par::Pool, engine: &bgpc::Engine, job: &Job) -> JobReply {
    ServeStats::bump(&shared.stats.cache_misses);
    let cancel = bgpc::CancelToken::new();
    *crate::sync::lock_recover(&shared.current_cancel) = Some(cancel.clone());
    let outcome = par::contain(|| {
        // Panic injection for the job body — contained below, answered
        // with ServerError, daemon keeps serving.
        par::faults::fire("serve.job.panic", 0);
        let g = BipartiteGraph::try_from_matrix_owned(job.matrix.clone())
            .map_err(|e| e.to_string())?;
        let opts = bgpc::RunnerOpts {
            deadline: job.deadline,
            cancel: Some(cancel.clone()),
            ..bgpc::RunnerOpts::default()
        };
        // Incremental update: recolor only the dirty vertices, seeded
        // from the cached base coloring. The engine's relabel/width
        // machinery is bypassed — dirty sets are small, so the run is
        // dominated by the seeding scan, not the coloring itself.
        if let Some(seed) = &job.seed {
            let schedule = job
                .schedule
                .clone()
                .unwrap_or_else(bgpc::Schedule::n1_n2);
            let order = graph::Ordering::Natural.vertex_order_bgpc(&g);
            let r = bgpc::recolor_bgpc_incremental(
                &g,
                &seed.base_colors,
                &seed.dirty,
                &order,
                &schedule,
                pool,
                opts,
            );
            return Ok::<_, String>((r, format!("update schedule={}", schedule.name())));
        }
        match &job.schedule {
            // Explicit schedule: color as requested, stamp a schedule
            // stub as the cached config.
            Some(schedule) => {
                let order = graph::Ordering::Natural.vertex_order_bgpc(&g);
                let r = bgpc::color_bgpc_with_opts(&g, &order, schedule, pool, opts);
                Ok::<_, String>((r, format!("schedule={}", schedule.name())))
            }
            // Engine-routed: featurize, select a full config, apply its
            // relabeling/width at build time and its schedule/forbidden
            // choice in the driver, with the online tuner attached. The
            // coloring is mapped back through the relabel permutation, so
            // clients (and the cache) always see original vertex ids.
            None => {
                let choice = engine.select_bgpc(&g);
                let cfg = &choice.config;
                let opts = bgpc::RunnerOpts {
                    online: Some(bgpc::OnlineTuner::default()),
                    ..opts
                };
                let (pm, perm) = cfg.relabel.apply_columns(&job.matrix);
                let mut r = match cfg.index_width {
                    sparse::IndexWidth::U32 => {
                        let gp = BipartiteGraph::from_matrix(&pm);
                        let order: Vec<u32> = (0..gp.n_vertices() as u32).collect();
                        bgpc::engine::color_bgpc_with_config(&gp, &order, cfg, pool, opts)
                    }
                    sparse::IndexWidth::U64 => {
                        let pm = pm.to_index::<u64>();
                        let gp = BipartiteGraph::from_matrix(&pm);
                        let order: Vec<u32> = (0..gp.n_vertices() as u32).collect();
                        bgpc::engine::color_bgpc_with_config(&gp, &order, cfg, pool, opts)
                    }
                };
                if let Some(p) = &perm {
                    r.colors = sparse::unpermute(&r.colors, p);
                }
                Ok((r, format!("{} matched={}", cfg.describe(), choice.matched)))
            }
        }
    });
    *crate::sync::lock_recover(&shared.current_cancel) = None;
    match outcome {
        Err(panic) => {
            ServeStats::bump(&shared.stats.worker_panics);
            JobReply::ServerError(format!("job panicked (contained): {panic}"))
        }
        Ok(Err(graph_err)) => JobReply::GraphError(graph_err),
        Ok(Ok((result, config))) => {
            ServeStats::bump(&shared.stats.completed);
            if let Some(reason) = &result.degraded {
                ServeStats::bump(&shared.stats.degraded);
                if matches!(reason, bgpc::DegradeReason::DeadlineExceeded { .. }) {
                    ServeStats::bump(&shared.stats.deadline_miss);
                }
            }
            let wire = JobResult {
                degraded: result.degraded.as_ref().map(|r| r.to_string()),
                cache_hit: false,
                num_colors: result.num_colors as u32,
                colors: result.colors.clone(),
            };
            // Only clean runs are cached: a degraded (deadline-cut)
            // coloring is valid but possibly worse than a full run, and
            // must not shadow future full runs. Store failures (e.g. the
            // write_abort fail point, a full disk) cost a future cache
            // hit, never the current job.
            if !job.no_cache && result.degraded.is_none() {
                let _ = shared.cache.put(
                    job.fingerprint,
                    &CachedColoring {
                        num_colors: result.num_colors as u32,
                        config,
                        colors: result.colors,
                    },
                );
            }
            JobReply::Result(wire)
        }
    }
}

/// Writes `addr` to `path` atomically enough for a shell `until` loop
/// (tmp + rename), so scripts can wait for the bound port of a daemon
/// started with port 0.
pub fn write_addr_file(path: &std::path::Path, addr: SocketAddr) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    let mut f = std::fs::File::create(&tmp)?;
    writeln!(f, "{addr}")?;
    f.sync_all()?;
    std::fs::rename(&tmp, path)
}
