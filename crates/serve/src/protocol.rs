//! Length-prefixed binary wire protocol.
//!
//! Every message on the wire is one *frame*:
//!
//! ```text
//! magic   4 bytes  b"BGPS"
//! kind    1 byte   (see [`FrameKind`])
//! len     4 bytes  u32 LE — payload length
//! payload len bytes
//! ```
//!
//! The reader validates the magic and kind, and rejects any length prefix
//! above the configured cap *before* allocating — an adversarial
//! `len = u32::MAX` costs the daemon a 9-byte read and a typed
//! [`ProtoError::Oversized`], not 4 GiB of memory. Job graphs travel
//! inside the Submit payload in the hardened [`sparse::bin_io`] format,
//! so a bit flip anywhere in the graph bytes is caught by that layer's
//! checksum trailer and surfaces as a typed `InvalidJob` response.
//!
//! The daemon-side writer is instrumented with the `serve.frame.torn`
//! fail point ([`par::faults`]): when armed with
//! [`par::faults::FaultAction::Torn`]`(n)` it emits only the first `n`
//! bytes of the frame and then fails, which is exactly what a crashing or
//! preempted peer looks like to the other side. Clients must treat a torn
//! response as a retryable connection error.

use std::io::{Read, Write};

/// Frame magic — four bytes so a desynchronized or garbage stream is
/// rejected on the first read.
pub const FRAME_MAGIC: [u8; 4] = *b"BGPS";

/// Default cap on payload size (64 MiB). Oversized prefixes are rejected
/// before allocation.
pub const DEFAULT_MAX_FRAME: u32 = 64 << 20;

/// Frame header size on the wire (magic + kind + length).
pub const FRAME_HEADER_LEN: usize = 9;

/// Message kinds. Requests are `0x0…`, responses `0x8…`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Client → daemon: a coloring job (payload: [`JobRequest`]).
    Submit = 0x01,
    /// Client → daemon: liveness probe (empty payload).
    Ping = 0x02,
    /// Client → daemon: request the daemon's counters (empty payload).
    Stats = 0x03,
    /// Client → daemon: graceful shutdown request (empty payload).
    Shutdown = 0x04,
    /// Client → daemon: an incremental update of a previously submitted
    /// graph (payload: [`UpdateRequest`] — base graph bytes plus an edge
    /// delta). Answered with [`FrameKind::Result`]; when the base graph's
    /// coloring is still cached, the daemon recolors only the delta's
    /// dirty vertices and marks the reply `cache_hit`.
    Update = 0x05,
    /// Coordinator → worker: install a shard for sharded coloring
    /// (payload: [`ShardRequest`] — shard id, owner array, graph bytes).
    /// Acknowledged with [`FrameKind::Pong`]; the worker then answers
    /// [`FrameKind::Superstep`] frames on the same connection.
    Shard = 0x06,
    /// Coordinator → worker: drive one BSP superstep against the
    /// installed shard (payload: [`SuperstepRequest`] — round number and
    /// incoming boundary colors). Answered with [`FrameKind::Flush`].
    /// Sent before a [`FrameKind::Shard`] install it is a protocol error.
    Superstep = 0x07,
    /// Daemon → client: a finished coloring (payload: [`JobResult`]).
    Result = 0x81,
    /// Daemon → client: the admission queue is full; retry later
    /// (payload: depth u32, capacity u32). Retryable by contract.
    Backpressure = 0x82,
    /// Daemon → client: the job was malformed (bad schedule name, corrupt
    /// or truncated graph bytes). Terminal: retrying cannot succeed.
    InvalidJob = 0x83,
    /// Daemon → client: the graph layer rejected the pattern. Terminal.
    GraphError = 0x84,
    /// Daemon → client: an internal failure was contained (e.g. a panic
    /// outside the runner's own repair path). Retryable: the daemon
    /// survives and the next attempt may land cleanly.
    ServerError = 0x85,
    /// Daemon → client: reply to `Ping` (empty payload).
    Pong = 0x86,
    /// Daemon → client: reply to `Stats` (payload: `key value\n` text).
    StatsReply = 0x87,
    /// Daemon → client: the frame layer itself was violated (bad magic,
    /// unknown kind, oversized length). Sent once, then the connection is
    /// dropped.
    ProtocolError = 0x88,
    /// Worker → coordinator: the boundary flush ending one superstep
    /// (payload: [`FlushReply`] — vertices colored, conflicts re-queued,
    /// outgoing boundary messages).
    Flush = 0x89,
}

impl FrameKind {
    /// Parses a wire kind byte.
    pub fn from_u8(b: u8) -> Option<FrameKind> {
        Some(match b {
            0x01 => FrameKind::Submit,
            0x02 => FrameKind::Ping,
            0x03 => FrameKind::Stats,
            0x04 => FrameKind::Shutdown,
            0x05 => FrameKind::Update,
            0x06 => FrameKind::Shard,
            0x07 => FrameKind::Superstep,
            0x81 => FrameKind::Result,
            0x82 => FrameKind::Backpressure,
            0x83 => FrameKind::InvalidJob,
            0x84 => FrameKind::GraphError,
            0x85 => FrameKind::ServerError,
            0x86 => FrameKind::Pong,
            0x87 => FrameKind::StatsReply,
            0x88 => FrameKind::ProtocolError,
            0x89 => FrameKind::Flush,
            _ => return None,
        })
    }
}

/// Frame-layer errors. The daemon maps these to a single
/// [`FrameKind::ProtocolError`] response followed by a connection drop;
/// the client maps them to retryable/terminal [`crate::client::ClientError`]s.
#[derive(Debug)]
pub enum ProtoError {
    /// Underlying I/O failure (includes read timeouts — the slow-loris
    /// defense — and connection resets).
    Io(std::io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The stream did not start with [`FRAME_MAGIC`].
    BadMagic([u8; 4]),
    /// The kind byte is not a known [`FrameKind`].
    UnknownKind(u8),
    /// The length prefix exceeds the configured cap.
    Oversized {
        /// Declared payload length.
        len: u32,
        /// Configured cap.
        max: u32,
    },
    /// The payload ended early (torn frame / half-closed connection).
    Torn,
    /// A payload failed structural decoding.
    Malformed(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "I/O error: {e}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            ProtoError::Oversized { len, max } => {
                write!(f, "length prefix {len} exceeds frame cap {max}")
            }
            ProtoError::Torn => write!(f, "torn frame: payload ended early"),
            ProtoError::Malformed(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<std::io::Error> for ProtoError {
    fn from(e: std::io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Writes one frame. `tid` threads through to the `serve.frame.torn` fail
/// point so tests can tear a specific writer.
pub fn write_frame<W: Write>(
    w: &mut W,
    kind: FrameKind,
    payload: &[u8],
    tid: usize,
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(kind as u8);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(payload);
    if let Some(action) = par::faults::consume("serve.frame.torn", tid) {
        let torn = match action {
            par::faults::FaultAction::Torn(n) => n.min(buf.len()),
            // Panic/Stall armed on a write point: emit nothing.
            _ => 0,
        };
        w.write_all(&buf[..torn])?;
        w.flush()?;
        return Err(std::io::Error::new(
            std::io::ErrorKind::ConnectionAborted,
            format!("fail point serve.frame.torn: wrote {torn}/{} bytes", buf.len()),
        ));
    }
    w.write_all(&buf)?;
    w.flush()
}

/// Reads one frame, enforcing `max_frame` before allocating the payload.
///
/// A clean EOF *between* frames is [`ProtoError::Closed`]; an EOF inside
/// a frame is [`ProtoError::Torn`]. Read timeouts installed by the caller
/// surface as [`ProtoError::Io`] and are the slow-loris defense.
pub fn read_frame<R: Read>(r: &mut R, max_frame: u32) -> Result<(FrameKind, Vec<u8>), ProtoError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // First byte distinguishes clean close from torn frame.
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(ProtoError::Closed),
        Ok(_) => {}
        Err(e) => return Err(ProtoError::Io(e)),
    }
    read_exact_or_torn(r, &mut header[1..])?;
    let magic: [u8; 4] = header[..4].try_into().expect("4-byte slice");
    if magic != FRAME_MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let kind = FrameKind::from_u8(header[4]).ok_or(ProtoError::UnknownKind(header[4]))?;
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4-byte slice"));
    if len > max_frame {
        return Err(ProtoError::Oversized { len, max: max_frame });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_or_torn(r, &mut payload)?;
    Ok((kind, payload))
}

fn read_exact_or_torn<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<(), ProtoError> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            ProtoError::Torn
        } else {
            ProtoError::Io(e)
        }
    })
}

/// Job priority lanes of the admission queue, highest first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Priority {
    /// Served before everything else.
    High = 0,
    /// The default lane.
    Normal = 1,
    /// Served only when the higher lanes are empty.
    Low = 2,
}

impl Priority {
    /// Parses a wire priority byte.
    pub fn from_u8(b: u8) -> Option<Priority> {
        Some(match b {
            0 => Priority::High,
            1 => Priority::Normal,
            2 => Priority::Low,
            _ => return None,
        })
    }

    /// All lanes, highest first.
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Low];
}

/// A decoded Submit payload.
///
/// The graph travels as hardened [`sparse::bin_io`] bytes; decoding stops
/// at the envelope here and the daemon runs the checksummed bin reader on
/// `graph_bytes`, so envelope errors and graph corruption produce distinct
/// messages.
#[derive(Clone, Debug)]
pub struct JobRequest {
    /// Admission lane.
    pub priority: Priority,
    /// Milliseconds until this job's deadline, measured from admission;
    /// `0` means no deadline.
    pub deadline_ms: u32,
    /// Skip the result cache for this job (both lookup and fill).
    pub no_cache: bool,
    /// Schedule name (see [`bgpc::Schedule::from_name`]); empty selects
    /// the daemon default.
    pub schedule: String,
    /// The pattern in `sparse::bin_io` format (checksummed).
    pub graph_bytes: Vec<u8>,
}

impl JobRequest {
    /// Encodes into a Submit payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.schedule.len() + self.graph_bytes.len());
        out.push(self.priority as u8);
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.push(self.no_cache as u8);
        let name = self.schedule.as_bytes();
        out.push(name.len().min(255) as u8);
        out.extend_from_slice(&name[..name.len().min(255)]);
        out.extend_from_slice(&self.graph_bytes);
        out
    }

    /// Decodes a Submit payload envelope.
    pub fn decode(payload: &[u8]) -> Result<JobRequest, ProtoError> {
        if payload.len() < 7 {
            return Err(ProtoError::Malformed(format!(
                "submit payload too short: {} bytes",
                payload.len()
            )));
        }
        let priority = Priority::from_u8(payload[0])
            .ok_or_else(|| ProtoError::Malformed(format!("bad priority byte {}", payload[0])))?;
        let deadline_ms = u32::from_le_bytes(payload[1..5].try_into().expect("4-byte slice"));
        let no_cache = match payload[5] {
            0 => false,
            1 => true,
            b => return Err(ProtoError::Malformed(format!("bad no_cache byte {b}"))),
        };
        let name_len = payload[6] as usize;
        if payload.len() < 7 + name_len {
            return Err(ProtoError::Malformed("schedule name truncated".into()));
        }
        let schedule = String::from_utf8(payload[7..7 + name_len].to_vec())
            .map_err(|_| ProtoError::Malformed("schedule name is not UTF-8".into()))?;
        Ok(JobRequest {
            priority,
            deadline_ms,
            no_cache,
            schedule,
            graph_bytes: payload[7 + name_len..].to_vec(),
        })
    }
}

/// A decoded Update payload: a [`JobRequest`]-shaped envelope carrying
/// the **base** graph plus an edge delta against it.
///
/// The daemon fingerprints the base graph, looks its coloring up in the
/// result cache, applies the delta with [`bgpc::apply_delta`] and — on a
/// hit — recolors only the delta's dirty vertices via
/// [`bgpc::recolor_bgpc_incremental`], seeding from the cached colors.
/// On a miss the mutated graph is colored from scratch. Either way the
/// reply is an ordinary [`FrameKind::Result`] frame for the *mutated*
/// graph.
#[derive(Clone, Debug)]
pub struct UpdateRequest {
    /// Admission lane.
    pub priority: Priority,
    /// Milliseconds until the deadline, from admission; `0` disables.
    pub deadline_ms: u32,
    /// Skip the result cache entirely (no base lookup, no store).
    pub no_cache: bool,
    /// Schedule name; empty selects the daemon's update default.
    pub schedule: String,
    /// Edge insertions `(row, col)` — must be absent from the base.
    pub insertions: Vec<(u32, u32)>,
    /// Edge deletions `(row, col)` — must be present in the base.
    pub deletions: Vec<(u32, u32)>,
    /// The **base** pattern in `sparse::bin_io` format (checksummed).
    pub graph_bytes: Vec<u8>,
}

impl UpdateRequest {
    /// Encodes into an Update payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            16 + self.schedule.len()
                + 8 * (self.insertions.len() + self.deletions.len())
                + self.graph_bytes.len(),
        );
        out.push(self.priority as u8);
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        out.push(self.no_cache as u8);
        let name = self.schedule.as_bytes();
        out.push(name.len().min(255) as u8);
        out.extend_from_slice(&name[..name.len().min(255)]);
        out.extend_from_slice(&(self.insertions.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.deletions.len() as u32).to_le_bytes());
        for &(r, c) in self.insertions.iter().chain(&self.deletions) {
            out.extend_from_slice(&r.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.graph_bytes);
        out
    }

    /// Decodes an Update payload envelope.
    pub fn decode(payload: &[u8]) -> Result<UpdateRequest, ProtoError> {
        if payload.len() < 7 {
            return Err(ProtoError::Malformed(format!(
                "update payload too short: {} bytes",
                payload.len()
            )));
        }
        let priority = Priority::from_u8(payload[0])
            .ok_or_else(|| ProtoError::Malformed(format!("bad priority byte {}", payload[0])))?;
        let deadline_ms = u32::from_le_bytes(payload[1..5].try_into().expect("4-byte slice"));
        let no_cache = match payload[5] {
            0 => false,
            1 => true,
            b => return Err(ProtoError::Malformed(format!("bad no_cache byte {b}"))),
        };
        let name_len = payload[6] as usize;
        if payload.len() < 7 + name_len + 8 {
            return Err(ProtoError::Malformed("update envelope truncated".into()));
        }
        let schedule = String::from_utf8(payload[7..7 + name_len].to_vec())
            .map_err(|_| ProtoError::Malformed("schedule name is not UTF-8".into()))?;
        let mut off = 7 + name_len;
        let n_ins =
            u32::from_le_bytes(payload[off..off + 4].try_into().expect("4-byte slice")) as usize;
        let n_del =
            u32::from_le_bytes(payload[off + 4..off + 8].try_into().expect("4-byte slice"))
                as usize;
        off += 8;
        let pairs = n_ins
            .checked_add(n_del)
            .and_then(|n| n.checked_mul(8))
            .ok_or_else(|| ProtoError::Malformed("delta edge count overflows".into()))?;
        if payload.len() < off + pairs {
            return Err(ProtoError::Malformed("delta edge list truncated".into()));
        }
        let read_pairs = |count: usize, off: &mut usize| -> Vec<(u32, u32)> {
            (0..count)
                .map(|_| {
                    let r = u32::from_le_bytes(
                        payload[*off..*off + 4].try_into().expect("4-byte slice"),
                    );
                    let c = u32::from_le_bytes(
                        payload[*off + 4..*off + 8].try_into().expect("4-byte slice"),
                    );
                    *off += 8;
                    (r, c)
                })
                .collect()
        };
        let insertions = read_pairs(n_ins, &mut off);
        let deletions = read_pairs(n_del, &mut off);
        Ok(UpdateRequest {
            priority,
            deadline_ms,
            no_cache,
            schedule,
            insertions,
            deletions,
            graph_bytes: payload[off..].to_vec(),
        })
    }
}

/// A decoded Result payload.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Human-readable degradation reason; `None` for a clean run.
    pub degraded: Option<String>,
    /// Served from the content-addressed result cache.
    pub cache_hit: bool,
    /// Number of distinct colors.
    pub num_colors: u32,
    /// Final color per vertex, original ids.
    pub colors: Vec<i32>,
}

impl JobResult {
    /// Encodes into a Result payload.
    pub fn encode(&self) -> Vec<u8> {
        let reason = self.degraded.as_deref().unwrap_or("");
        let rbytes = &reason.as_bytes()[..reason.len().min(u16::MAX as usize)];
        let mut out = Vec::with_capacity(16 + rbytes.len() + self.colors.len() * 4);
        out.push(self.degraded.is_some() as u8);
        out.push(self.cache_hit as u8);
        out.extend_from_slice(&(rbytes.len() as u16).to_le_bytes());
        out.extend_from_slice(rbytes);
        out.extend_from_slice(&self.num_colors.to_le_bytes());
        out.extend_from_slice(&(self.colors.len() as u64).to_le_bytes());
        for &c in &self.colors {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Decodes a Result payload.
    pub fn decode(payload: &[u8]) -> Result<JobResult, ProtoError> {
        let need = |n: usize| {
            if payload.len() < n {
                Err(ProtoError::Malformed("result payload truncated".into()))
            } else {
                Ok(())
            }
        };
        need(4)?;
        let degraded_flag = payload[0] != 0;
        let cache_hit = payload[1] != 0;
        let rlen = u16::from_le_bytes(payload[2..4].try_into().expect("2-byte slice")) as usize;
        need(4 + rlen + 12)?;
        let reason = String::from_utf8(payload[4..4 + rlen].to_vec())
            .map_err(|_| ProtoError::Malformed("degrade reason is not UTF-8".into()))?;
        let mut off = 4 + rlen;
        let num_colors =
            u32::from_le_bytes(payload[off..off + 4].try_into().expect("4-byte slice"));
        off += 4;
        let n = u64::from_le_bytes(payload[off..off + 8].try_into().expect("8-byte slice"));
        off += 8;
        let n = usize::try_from(n)
            .map_err(|_| ProtoError::Malformed("color count exceeds usize".into()))?;
        need(off + n.checked_mul(4).ok_or_else(|| {
            ProtoError::Malformed("color count overflows".into())
        })?)?;
        let colors = payload[off..off + n * 4]
            .chunks_exact(4)
            .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(JobResult {
            degraded: degraded_flag.then_some(reason),
            cache_hit,
            num_colors,
            colors,
        })
    }
}

/// A decoded Shard payload: everything a worker needs to become one
/// rank of a sharded coloring run.
///
/// The coordinator ships the *whole* pattern to every worker
/// (structure-replicated, color-partitioned): BGPC conflict detection
/// needs complete distance-2 neighborhoods, so replicating the structure
/// and partitioning only the coloring work is the simplest correct
/// owner-computes split. The graph travels as checksummed
/// [`sparse::bin_io`] bytes, same as Submit.
#[derive(Clone, Debug)]
pub struct ShardRequest {
    /// This worker's shard id, `< n_shards`.
    pub shard: u32,
    /// Total number of shards in the run.
    pub n_shards: u32,
    /// Vertex-to-shard owner array (one entry per vertex, values
    /// `< n_shards`).
    pub owners: Vec<u32>,
    /// The pattern in `sparse::bin_io` format (checksummed).
    pub graph_bytes: Vec<u8>,
}

impl ShardRequest {
    /// Encodes into a Shard payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 4 * self.owners.len() + self.graph_bytes.len());
        out.extend_from_slice(&self.shard.to_le_bytes());
        out.extend_from_slice(&self.n_shards.to_le_bytes());
        out.extend_from_slice(&(self.owners.len() as u64).to_le_bytes());
        for &o in &self.owners {
            out.extend_from_slice(&o.to_le_bytes());
        }
        out.extend_from_slice(&self.graph_bytes);
        out
    }

    /// Decodes a Shard payload envelope.
    pub fn decode(payload: &[u8]) -> Result<ShardRequest, ProtoError> {
        if payload.len() < 16 {
            return Err(ProtoError::Malformed(format!(
                "shard payload too short: {} bytes",
                payload.len()
            )));
        }
        let shard = u32::from_le_bytes(payload[..4].try_into().expect("4-byte slice"));
        let n_shards = u32::from_le_bytes(payload[4..8].try_into().expect("4-byte slice"));
        if n_shards == 0 || shard >= n_shards {
            return Err(ProtoError::Malformed(format!(
                "shard id {shard} out of range for {n_shards} shards"
            )));
        }
        let n = u64::from_le_bytes(payload[8..16].try_into().expect("8-byte slice"));
        let n = usize::try_from(n)
            .map_err(|_| ProtoError::Malformed("owner count exceeds usize".into()))?;
        let bytes = n
            .checked_mul(4)
            .ok_or_else(|| ProtoError::Malformed("owner count overflows".into()))?;
        if payload.len() < 16 + bytes {
            return Err(ProtoError::Malformed("owner array truncated".into()));
        }
        let owners: Vec<u32> = payload[16..16 + bytes]
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        if let Some(&bad) = owners.iter().find(|&&o| o >= n_shards) {
            return Err(ProtoError::Malformed(format!(
                "owner id {bad} out of range for {n_shards} shards"
            )));
        }
        Ok(ShardRequest {
            shard,
            n_shards,
            owners,
            graph_bytes: payload[16 + bytes..].to_vec(),
        })
    }
}

/// A decoded Superstep payload: the coordinator's half of one BSP round.
#[derive(Clone, Debug)]
pub struct SuperstepRequest {
    /// 1-based round number. Round 1 speculatively colors every owned
    /// vertex; later rounds re-color the conflicts detected against the
    /// delivered updates.
    pub superstep: u32,
    /// Harvest round: instead of coloring, the worker replies with its
    /// owned `(vertex, color)` assignment so the coordinator can
    /// assemble the global coloring.
    pub harvest: bool,
    /// Boundary colors from the previous round's flushes, routed to this
    /// shard: `(vertex, color)` pairs for remote vertices this shard is
    /// interested in.
    pub updates: Vec<(u32, i32)>,
}

impl SuperstepRequest {
    /// Encodes into a Superstep payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13 + 8 * self.updates.len());
        out.extend_from_slice(&self.superstep.to_le_bytes());
        out.push(self.harvest as u8);
        out.extend_from_slice(&(self.updates.len() as u64).to_le_bytes());
        for &(v, c) in &self.updates {
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Decodes a Superstep payload.
    pub fn decode(payload: &[u8]) -> Result<SuperstepRequest, ProtoError> {
        if payload.len() < 13 {
            return Err(ProtoError::Malformed(format!(
                "superstep payload too short: {} bytes",
                payload.len()
            )));
        }
        let superstep = u32::from_le_bytes(payload[..4].try_into().expect("4-byte slice"));
        let harvest = match payload[4] {
            0 => false,
            1 => true,
            b => return Err(ProtoError::Malformed(format!("bad harvest byte {b}"))),
        };
        let n = u64::from_le_bytes(payload[5..13].try_into().expect("8-byte slice"));
        let n = usize::try_from(n)
            .map_err(|_| ProtoError::Malformed("update count exceeds usize".into()))?;
        let bytes = n
            .checked_mul(8)
            .ok_or_else(|| ProtoError::Malformed("update count overflows".into()))?;
        if payload.len() < 13 + bytes {
            return Err(ProtoError::Malformed("update list truncated".into()));
        }
        let updates = payload[13..13 + bytes]
            .chunks_exact(8)
            .map(|c| {
                (
                    u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    i32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                )
            })
            .collect();
        Ok(SuperstepRequest {
            superstep,
            harvest,
            updates,
        })
    }
}

/// A decoded Flush payload: the worker's half of one BSP round.
///
/// For a coloring round, `messages` carries the outgoing boundary
/// traffic as `(dest_shard, vertex, color)` triples. For a harvest
/// round it carries the shard's owned assignment as
/// `(own_shard, vertex, color)`.
#[derive(Clone, Debug)]
pub struct FlushReply {
    /// Vertices colored (or re-colored) this round.
    pub colored: u32,
    /// Conflicts detected against the delivered updates (vertices
    /// re-queued and re-colored this round).
    pub conflicts: u32,
    /// Outgoing boundary messages `(dest_shard, vertex, color)`.
    pub messages: Vec<(u32, u32, i32)>,
}

impl FlushReply {
    /// Encodes into a Flush payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 12 * self.messages.len());
        out.extend_from_slice(&self.colored.to_le_bytes());
        out.extend_from_slice(&self.conflicts.to_le_bytes());
        out.extend_from_slice(&(self.messages.len() as u64).to_le_bytes());
        for &(d, v, c) in &self.messages {
            out.extend_from_slice(&d.to_le_bytes());
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Decodes a Flush payload.
    pub fn decode(payload: &[u8]) -> Result<FlushReply, ProtoError> {
        if payload.len() < 16 {
            return Err(ProtoError::Malformed(format!(
                "flush payload too short: {} bytes",
                payload.len()
            )));
        }
        let colored = u32::from_le_bytes(payload[..4].try_into().expect("4-byte slice"));
        let conflicts = u32::from_le_bytes(payload[4..8].try_into().expect("4-byte slice"));
        let n = u64::from_le_bytes(payload[8..16].try_into().expect("8-byte slice"));
        let n = usize::try_from(n)
            .map_err(|_| ProtoError::Malformed("message count exceeds usize".into()))?;
        let bytes = n
            .checked_mul(12)
            .ok_or_else(|| ProtoError::Malformed("message count overflows".into()))?;
        if payload.len() < 16 + bytes {
            return Err(ProtoError::Malformed("message list truncated".into()));
        }
        let messages = payload[16..16 + bytes]
            .chunks_exact(12)
            .map(|c| {
                (
                    u32::from_le_bytes([c[0], c[1], c[2], c[3]]),
                    u32::from_le_bytes([c[4], c[5], c[6], c[7]]),
                    i32::from_le_bytes([c[8], c[9], c[10], c[11]]),
                )
            })
            .collect();
        Ok(FlushReply {
            colored,
            conflicts,
            messages,
        })
    }
}

/// Encodes a Backpressure payload (`depth`, `capacity`).
pub fn encode_backpressure(depth: u32, capacity: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(8);
    out.extend_from_slice(&depth.to_le_bytes());
    out.extend_from_slice(&capacity.to_le_bytes());
    out
}

/// Decodes a Backpressure payload.
pub fn decode_backpressure(payload: &[u8]) -> Result<(u32, u32), ProtoError> {
    if payload.len() != 8 {
        return Err(ProtoError::Malformed("backpressure payload must be 8 bytes".into()));
    }
    Ok((
        u32::from_le_bytes(payload[..4].try_into().expect("4-byte slice")),
        u32::from_le_bytes(payload[4..].try_into().expect("4-byte slice")),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Submit, b"hello", 0).unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(kind, FrameKind::Submit);
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn empty_payload_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Ping, b"", 0).unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(kind, FrameKind::Ping);
        assert!(payload.is_empty());
    }

    #[test]
    fn oversized_prefix_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.push(FrameKind::Submit as u8);
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut buf.as_slice(), 1024).unwrap_err();
        assert!(matches!(err, ProtoError::Oversized { len: u32::MAX, max: 1024 }));
    }

    #[test]
    fn bad_magic_and_unknown_kind_rejected() {
        let mut buf = b"XXXX\x01\x00\x00\x00\x00".to_vec();
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024).unwrap_err(),
            ProtoError::BadMagic(_)
        ));
        buf = Vec::new();
        buf.extend_from_slice(&FRAME_MAGIC);
        buf.push(0x7f);
        buf.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024).unwrap_err(),
            ProtoError::UnknownKind(0x7f)
        ));
    }

    #[test]
    fn clean_close_vs_torn_frame() {
        assert!(matches!(
            read_frame(&mut (&b""[..]), 1024).unwrap_err(),
            ProtoError::Closed
        ));
        // Header present, payload missing.
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Submit, b"payload", 0).unwrap();
        buf.truncate(FRAME_HEADER_LEN + 3);
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024).unwrap_err(),
            ProtoError::Torn
        ));
        // Header itself torn.
        let mut buf2 = Vec::new();
        write_frame(&mut buf2, FrameKind::Ping, b"", 0).unwrap();
        buf2.truncate(4);
        assert!(matches!(
            read_frame(&mut buf2.as_slice(), 1024).unwrap_err(),
            ProtoError::Torn
        ));
    }

    #[test]
    fn torn_fail_point_truncates_the_write() {
        // Thread-filtered so concurrently running tests (tid 0 writers)
        // cannot consume the armed action.
        par::faults::arm_with("serve.frame.torn", par::faults::FaultAction::Torn(5), 1, Some(7));
        let mut buf = Vec::new();
        let err = write_frame(&mut buf, FrameKind::Result, b"abcdef", 7).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionAborted);
        assert_eq!(buf.len(), 5, "only the torn prefix reaches the wire");
        par::faults::disarm("serve.frame.torn");
        // The reader sees a torn frame, not garbage.
        assert!(matches!(
            read_frame(&mut buf.as_slice(), 1024).unwrap_err(),
            ProtoError::Torn
        ));
    }

    #[test]
    fn job_request_roundtrip() {
        let req = JobRequest {
            priority: Priority::High,
            deadline_ms: 1500,
            no_cache: true,
            schedule: "N1-N2".into(),
            graph_bytes: vec![1, 2, 3, 4],
        };
        let back = JobRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.priority, Priority::High);
        assert_eq!(back.deadline_ms, 1500);
        assert!(back.no_cache);
        assert_eq!(back.schedule, "N1-N2");
        assert_eq!(back.graph_bytes, vec![1, 2, 3, 4]);
    }

    #[test]
    fn job_request_rejects_garbage() {
        assert!(JobRequest::decode(b"").is_err());
        assert!(JobRequest::decode(&[9, 0, 0, 0, 0, 0, 0]).is_err()); // bad priority
        assert!(JobRequest::decode(&[0, 0, 0, 0, 0, 7, 0]).is_err()); // bad no_cache
        assert!(JobRequest::decode(&[0, 0, 0, 0, 0, 0, 200]).is_err()); // name truncated
    }

    #[test]
    fn update_request_roundtrip() {
        let req = UpdateRequest {
            priority: Priority::Normal,
            deadline_ms: 250,
            no_cache: false,
            schedule: "V-N1".into(),
            insertions: vec![(0, 7), (3, 2)],
            deletions: vec![(1, 1)],
            graph_bytes: vec![9, 8, 7],
        };
        let back = UpdateRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.priority, Priority::Normal);
        assert_eq!(back.deadline_ms, 250);
        assert!(!back.no_cache);
        assert_eq!(back.schedule, "V-N1");
        assert_eq!(back.insertions, vec![(0, 7), (3, 2)]);
        assert_eq!(back.deletions, vec![(1, 1)]);
        assert_eq!(back.graph_bytes, vec![9, 8, 7]);
    }

    #[test]
    fn update_request_rejects_garbage() {
        assert!(UpdateRequest::decode(b"").is_err());
        assert!(UpdateRequest::decode(&[9, 0, 0, 0, 0, 0, 0]).is_err()); // bad priority
        assert!(UpdateRequest::decode(&[0, 0, 0, 0, 0, 0, 0]).is_err()); // counts missing
        // Declared edge counts larger than the payload.
        let mut enc = UpdateRequest {
            priority: Priority::Low,
            deadline_ms: 0,
            no_cache: true,
            schedule: String::new(),
            insertions: vec![(1, 2)],
            deletions: vec![],
            graph_bytes: vec![],
        }
        .encode();
        enc.truncate(enc.len() - 4);
        assert!(UpdateRequest::decode(&enc).is_err());
    }

    #[test]
    fn update_frame_kind_roundtrips() {
        assert_eq!(FrameKind::from_u8(0x05), Some(FrameKind::Update));
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Update, b"u", 0).unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(kind, FrameKind::Update);
        assert_eq!(payload, b"u");
    }

    #[test]
    fn job_result_roundtrip() {
        let r = JobResult {
            degraded: Some("deadline exceeded".into()),
            cache_hit: false,
            num_colors: 17,
            colors: vec![0, 3, -1, 16],
        };
        let back = JobResult::decode(&r.encode()).unwrap();
        assert_eq!(back.degraded.as_deref(), Some("deadline exceeded"));
        assert!(!back.cache_hit);
        assert_eq!(back.num_colors, 17);
        assert_eq!(back.colors, vec![0, 3, -1, 16]);
    }

    #[test]
    fn job_result_rejects_truncation() {
        let r = JobResult {
            degraded: None,
            cache_hit: true,
            num_colors: 2,
            colors: vec![0, 1, 0],
        };
        let enc = r.encode();
        for cut in 0..enc.len() {
            assert!(JobResult::decode(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn shard_request_roundtrip_and_garbage() {
        let req = ShardRequest {
            shard: 1,
            n_shards: 4,
            owners: vec![0, 1, 2, 3, 1],
            graph_bytes: vec![5, 6, 7],
        };
        let back = ShardRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.shard, 1);
        assert_eq!(back.n_shards, 4);
        assert_eq!(back.owners, vec![0, 1, 2, 3, 1]);
        assert_eq!(back.graph_bytes, vec![5, 6, 7]);
        assert!(ShardRequest::decode(b"").is_err());
        // shard id out of range
        let bad = ShardRequest { shard: 4, ..req.clone() };
        let mut enc = bad.encode();
        assert!(ShardRequest::decode(&enc).is_err());
        // owner id out of range
        let bad = ShardRequest { owners: vec![0, 9], ..req.clone() };
        assert!(ShardRequest::decode(&bad.encode()).is_err());
        // truncated owner array
        enc = req.encode();
        enc.truncate(18);
        assert!(ShardRequest::decode(&enc).is_err());
    }

    #[test]
    fn superstep_request_roundtrip_and_garbage() {
        let req = SuperstepRequest {
            superstep: 3,
            harvest: false,
            updates: vec![(7, 0), (9, 12)],
        };
        let back = SuperstepRequest::decode(&req.encode()).unwrap();
        assert_eq!(back.superstep, 3);
        assert!(!back.harvest);
        assert_eq!(back.updates, vec![(7, 0), (9, 12)]);
        let h = SuperstepRequest { superstep: 4, harvest: true, updates: vec![] };
        assert!(SuperstepRequest::decode(&h.encode()).unwrap().harvest);
        assert!(SuperstepRequest::decode(b"").is_err());
        let mut enc = req.encode();
        enc[4] = 9; // bad harvest byte
        assert!(SuperstepRequest::decode(&enc).is_err());
        enc = req.encode();
        enc.truncate(enc.len() - 3);
        assert!(SuperstepRequest::decode(&enc).is_err());
    }

    #[test]
    fn flush_reply_roundtrip_and_garbage() {
        let r = FlushReply {
            colored: 5,
            conflicts: 2,
            messages: vec![(0, 7, 1), (3, 9, -1)],
        };
        let back = FlushReply::decode(&r.encode()).unwrap();
        assert_eq!(back.colored, 5);
        assert_eq!(back.conflicts, 2);
        assert_eq!(back.messages, vec![(0, 7, 1), (3, 9, -1)]);
        assert!(FlushReply::decode(b"").is_err());
        let mut enc = r.encode();
        enc.truncate(enc.len() - 1);
        assert!(FlushReply::decode(&enc).is_err());
    }

    #[test]
    fn shard_frame_kinds_roundtrip() {
        assert_eq!(FrameKind::from_u8(0x06), Some(FrameKind::Shard));
        assert_eq!(FrameKind::from_u8(0x07), Some(FrameKind::Superstep));
        assert_eq!(FrameKind::from_u8(0x89), Some(FrameKind::Flush));
        let mut buf = Vec::new();
        write_frame(&mut buf, FrameKind::Flush, b"f", 0).unwrap();
        let (kind, payload) = read_frame(&mut buf.as_slice(), DEFAULT_MAX_FRAME).unwrap();
        assert_eq!(kind, FrameKind::Flush);
        assert_eq!(payload, b"f");
    }

    #[test]
    fn backpressure_roundtrip() {
        let enc = encode_backpressure(12, 64);
        assert_eq!(decode_backpressure(&enc).unwrap(), (12, 64));
        assert!(decode_backpressure(&enc[..5]).is_err());
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::High < Priority::Normal);
        assert!(Priority::Normal < Priority::Low);
        assert_eq!(Priority::from_u8(3), None);
    }
}
