//! Service-layer fault coverage: every `serve.*` fail point fires at
//! least once against a live daemon and the service degrades gracefully —
//! the affected request gets a typed (usually retryable) answer, every
//! delivered coloring verifies, and the daemon keeps serving afterwards.
//!
//! The fail-point registry is process-global, so every test here holds
//! `FAULT_GATE` for its whole body: an arming must only be consumable by
//! the test that installed it.

use std::sync::Mutex;
use std::time::Duration;

use par::faults::{self, FaultAction};
use serve::client::encode_graph;
use serve::{
    ClientError, Daemon, JobRequest, Priority, RetryPolicy, ServeClient, ServeConfig,
};

static FAULT_GATE: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    FAULT_GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_cache(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("servecov-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn start(tag: &str, tweak: impl FnOnce(&mut ServeConfig)) -> Daemon {
    let mut cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        pool_threads: 2,
        cache_dir: temp_cache(tag),
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    };
    tweak(&mut cfg);
    Daemon::start(cfg).expect("daemon start")
}

fn client_for(d: &Daemon, max_attempts: u32) -> ServeClient {
    ServeClient::new(
        d.local_addr().to_string(),
        RetryPolicy {
            max_attempts,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
            jitter_seed: 7,
        },
    )
}

fn request(seed: u64) -> (JobRequest, graph::BipartiteGraph) {
    let m = sparse::gen::bipartite_uniform(200, 150, 1500, seed);
    let g = graph::BipartiteGraph::try_from_matrix(&m).expect("valid pattern");
    let req = JobRequest {
        priority: Priority::Normal,
        deadline_ms: 0,
        no_cache: false,
        schedule: "N1-N2".into(),
        graph_bytes: encode_graph(&m),
    };
    (req, g)
}

fn assert_valid(g: &graph::BipartiteGraph, outcome: &serve::client::JobOutcome) {
    bgpc::verify::verify_bgpc(g, &outcome.colors).expect("coloring must verify");
    assert!(outcome.num_colors as usize >= g.max_net_size());
}

#[test]
fn round_trip_then_cache_hit_then_restart_hit() {
    let _g = lock();
    let dir = temp_cache("roundtrip");
    let mut d = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut c = client_for(&d, 3);
    let (req, g) = request(11);

    let first = c.submit(&req).expect("first job");
    assert!(!first.cache_hit);
    assert_valid(&g, &first);

    let second = c.submit(&req).expect("repeat job");
    assert!(second.cache_hit, "identical pattern must be served from cache");
    assert_valid(&g, &second);
    assert_eq!(first.colors, second.colors, "cache echoes the stored coloring");

    // Restart on the same store: the cache survives process death.
    d.shutdown();
    let d2 = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: dir,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut c2 = client_for(&d2, 3);
    let third = c2.submit(&req).expect("post-restart job");
    assert!(third.cache_hit, "restarted daemon must hit the persisted cache");
    assert_valid(&g, &third);
}

#[test]
fn tight_deadline_degrades_to_valid_best_so_far() {
    let _g = lock();
    let d = start("deadline", |_| {});
    let mut c = client_for(&d, 3);
    let m = sparse::gen::bipartite_uniform(4000, 3000, 60_000, 3);
    let g = graph::BipartiteGraph::try_from_matrix(&m).unwrap();
    let req = JobRequest {
        priority: Priority::High,
        deadline_ms: 1, // expires while the job is still being set up
        no_cache: true,
        schedule: "N1-N2".into(),
        graph_bytes: encode_graph(&m),
    };
    let outcome = c.submit(&req).expect("deadline miss still answers");
    let reason = outcome.degraded.as_deref().expect("1 ms deadline must degrade");
    assert!(
        reason.contains("deadline exceeded"),
        "expected a deadline degradation, got {reason:?}"
    );
    bgpc::verify::verify_bgpc(&g, &outcome.colors).expect("degraded coloring still verifies");
    let stats = c.stats().expect("stats verb");
    let get = |k: &str| stats.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap_or(0);
    assert!(get("deadline_miss") >= 1, "deadline_miss counter must move");
}

#[test]
fn overload_sheds_with_backpressure_and_memory_stays_bounded() {
    let _g = lock();
    faults::reset();
    // Each job stalls 200 ms in the executor, so concurrent submissions
    // pile into the bounded queue and the overflow is shed.
    faults::arm_with("serve.job.panic", FaultAction::Stall(Duration::from_millis(200)), 3, None);
    let d = start("overload", |cfg| {
        cfg.queue_capacity = 2;
        cfg.pool_threads = 1;
    });
    let addr = d.local_addr().to_string();
    let handles: Vec<_> = (0..8)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = ServeClient::new(
                    addr,
                    RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
                );
                let (req, _) = request(50 + i);
                c.submit(&req)
            })
        })
        .collect();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for h in handles {
        match h.join().expect("client thread") {
            Ok(_) => ok += 1,
            Err(ClientError::RetriesExhausted { last, .. }) => {
                assert!(
                    matches!(*last, ClientError::Backpressure { .. }),
                    "single-attempt failures must be backpressure, got {last}"
                );
                shed += 1;
            }
            Err(e) => panic!("unexpected failure under overload: {e}"),
        }
    }
    faults::reset();
    assert!(ok >= 1, "at least the in-flight job must complete");
    assert!(shed >= 1, "an 8-deep burst against capacity 2 must shed");
    assert!(
        d.peak_queue_depth() <= 2,
        "queue depth {} exceeded its bound under overload",
        d.peak_queue_depth()
    );
    // The daemon is still healthy after the wave.
    client_for(&d, 1).ping().expect("daemon alive after overload");
}

#[test]
fn torn_response_frame_is_retried_to_success() {
    let _g = lock();
    faults::reset();
    // Thread filter 0 = the daemon's writer; the client writes with tid 1.
    faults::arm_with("serve.frame.torn", FaultAction::Torn(6), 1, Some(0));
    let d = start("torn", |_| {});
    let mut c = client_for(&d, 4);
    let (req, g) = request(21);
    let outcome = c.submit(&req).expect("retry must recover from a torn response");
    faults::reset();
    assert!(outcome.attempts >= 2, "first response was torn, so attempts > 1");
    assert_valid(&g, &outcome);
    assert_eq!(faults::hits("serve.frame.torn"), 0, "registry was reset");
}

#[test]
fn torn_client_frame_is_retried_to_success() {
    let _g = lock();
    faults::reset();
    faults::arm_with("serve.frame.torn", FaultAction::Torn(4), 1, Some(1));
    let d = start("torn-client", |_| {});
    let mut c = client_for(&d, 4);
    let (req, g) = request(22);
    let outcome = c.submit(&req).expect("retry must recover from a torn submit");
    faults::reset();
    assert!(outcome.attempts >= 2);
    assert_valid(&g, &outcome);
    client_for(&d, 1).ping().expect("daemon alive after torn submit");
}

#[test]
fn cache_write_abort_costs_a_hit_never_an_answer() {
    let _g = lock();
    faults::reset();
    faults::arm_with("serve.cache.write_abort", FaultAction::Panic, 1, None);
    let dir = temp_cache("write-abort");
    let mut d = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: dir.clone(),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut c = client_for(&d, 3);
    let (req, g) = request(31);

    // The store is aborted mid-write, but the job itself succeeds.
    let first = c.submit(&req).expect("job survives an aborted cache store");
    assert_valid(&g, &first);
    assert_eq!(faults::hits("serve.cache.write_abort"), 1);
    faults::reset();

    // Nothing was committed, so the repeat recomputes...
    let second = c.submit(&req).expect("recompute after aborted store");
    assert!(!second.cache_hit, "aborted store must not produce a cache entry");
    assert_valid(&g, &second);

    // ...and that recompute's store landed: now it hits, even across a
    // restart (the open sweep clears the abandoned tmp file).
    d.shutdown();
    let d2 = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: dir,
        ..ServeConfig::default()
    })
    .unwrap();
    let third = client_for(&d2, 3).submit(&req).expect("post-restart job");
    assert!(third.cache_hit, "store must be readable after the aborted write");
    assert_valid(&g, &third);
}

#[test]
fn contained_worker_panic_answers_server_error_and_daemon_survives() {
    let _g = lock();
    faults::reset();
    faults::arm_with("serve.job.panic", FaultAction::Panic, 1, None);
    let d = start("panic", |_| {});

    // A single-attempt client sees the typed retryable failure.
    let mut once = client_for(&d, 1);
    let (req, g) = request(41);
    match once.submit(&req) {
        Err(ClientError::RetriesExhausted { last, .. }) => {
            assert!(matches!(*last, ClientError::ServerError(_)), "got {last}");
        }
        other => panic!("expected a contained ServerError, got {other:?}"),
    }
    faults::reset();

    // The panic was contained: the same daemon completes the retry.
    let outcome = client_for(&d, 3).submit(&req).expect("daemon survives the panic");
    assert_valid(&g, &outcome);
    let stats = once.stats().expect("stats after panic");
    let panics = stats.iter().find(|(n, _)| n == "worker_panics").map(|(_, v)| *v);
    assert_eq!(panics, Some(1));
}

#[test]
fn conn_stall_fail_point_only_delays_the_stalled_connection() {
    let _g = lock();
    faults::reset();
    faults::arm_with("serve.conn.stall", FaultAction::Stall(Duration::from_millis(150)), 1, None);
    let d = start("stall", |_| {});
    let mut c = client_for(&d, 2);
    let (req, g) = request(61);
    let t0 = std::time::Instant::now();
    let outcome = c.submit(&req).expect("stalled handler still answers");
    faults::reset();
    assert!(t0.elapsed() >= Duration::from_millis(150), "the stall actually ran");
    assert_valid(&g, &outcome);
}

#[test]
fn invalid_jobs_are_terminal_not_retried() {
    let _g = lock();
    let d = start("invalid", |_| {});
    let mut c = client_for(&d, 5);

    // Garbage graph bytes: the hardened bin reader types the corruption.
    let garbage = JobRequest {
        priority: Priority::Normal,
        deadline_ms: 0,
        no_cache: false,
        schedule: String::new(),
        graph_bytes: vec![0xde, 0xad, 0xbe, 0xef],
    };
    match c.submit(&garbage) {
        Err(e @ ClientError::InvalidJob(_)) => assert!(!e.is_retryable()),
        other => panic!("expected InvalidJob, got {other:?}"),
    }

    // Unknown schedule name.
    let (mut req, _) = request(71);
    req.schedule = "no-such-schedule".into();
    match c.submit(&req) {
        Err(ClientError::InvalidJob(msg)) => assert!(msg.contains("no-such-schedule")),
        other => panic!("expected InvalidJob, got {other:?}"),
    }

    // Structurally broken pattern with a *valid* checksum: patch a column
    // index out of range and re-seal the trailer, so the corruption gets
    // past the integrity check and must be caught by CSR validation.
    let (ok_bytes_req, _) = request(73);
    let mut bytes = ok_bytes_req.graph_bytes.clone();
    let col_at = bytes.len() - 12; // last col_idx word, before the 8-byte trailer
    bytes[col_at..col_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let mut h = sparse::bin_io::Fnv1a::default();
    h.update(&bytes[..bytes.len() - 8]);
    let trailer_at = bytes.len() - 8;
    bytes[trailer_at..].copy_from_slice(&h.finish().to_le_bytes());
    let broken = JobRequest { graph_bytes: bytes, ..ok_bytes_req };
    match c.submit(&broken) {
        Err(ClientError::InvalidJob(msg)) => {
            assert!(msg.contains("CSR invariants"), "got {msg:?}");
        }
        other => panic!("expected InvalidJob for broken CSR, got {other:?}"),
    }

    // None of that harmed the daemon.
    let (ok_req, g) = request(72);
    assert_valid(&g, &c.submit(&ok_req).expect("daemon healthy after bad jobs"));
}

#[test]
fn shutdown_verb_stops_the_daemon() {
    let _g = lock();
    let d = start("shutdown", |_| {});
    let addr = d.local_addr().to_string();
    let c = ServeClient::new(addr.clone(), RetryPolicy { max_attempts: 1, ..RetryPolicy::default() });
    c.ping().expect("alive before shutdown");
    c.shutdown().expect("shutdown verb");
    d.join(); // returns because the verb tripped the flag
    let late = ServeClient::new(addr, RetryPolicy { max_attempts: 1, ..RetryPolicy::default() });
    assert!(late.ping().is_err(), "daemon must stop answering after shutdown");
}
