//! Adversarial protocol tests: a live daemon fed hostile byte streams —
//! oversized length prefixes, zero-length and garbage frames, half-closed
//! connections, slow-loris trickles — must answer with typed protocol
//! errors (or drop the connection) and keep serving. Never a panic, never
//! a hang, never an unbounded allocation.
//!
//! No fail points are armed here, so these tests run in parallel; each
//! starts its own daemon on an ephemeral port.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serve::protocol::{read_frame, FrameKind, FRAME_MAGIC};
use serve::{Daemon, RetryPolicy, ServeClient, ServeConfig};

fn start(tag: &str, read_timeout: Duration) -> Daemon {
    let dir = std::env::temp_dir().join(format!("serve-adv-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        pool_threads: 1,
        cache_dir: dir,
        read_timeout,
        max_frame: 1 << 20,
        ..ServeConfig::default()
    })
    .expect("daemon start")
}

fn connect(d: &Daemon) -> TcpStream {
    let s = TcpStream::connect(d.local_addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

fn assert_alive(d: &Daemon) {
    ServeClient::new(
        d.local_addr().to_string(),
        RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
    )
    .ping()
    .expect("daemon must stay alive");
}

/// Reads one frame off a raw socket.
fn read_reply(s: &mut TcpStream) -> (FrameKind, Vec<u8>) {
    read_frame(s, 1 << 20).expect("daemon reply")
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocating() {
    let d = start("oversized", Duration::from_secs(5));
    let mut s = connect(&d);
    let mut evil = Vec::new();
    evil.extend_from_slice(&FRAME_MAGIC);
    evil.push(0x01); // Submit
    evil.extend_from_slice(&u32::MAX.to_le_bytes());
    s.write_all(&evil).unwrap();
    let (kind, payload) = read_reply(&mut s);
    assert_eq!(kind, FrameKind::ProtocolError);
    let msg = String::from_utf8_lossy(&payload).into_owned();
    assert!(msg.contains("exceeds frame cap"), "got {msg:?}");
    assert_alive(&d);
}

#[test]
fn garbage_stream_gets_a_typed_protocol_error() {
    let d = start("garbage", Duration::from_secs(5));
    let mut s = connect(&d);
    s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let (kind, _) = read_reply(&mut s);
    assert_eq!(kind, FrameKind::ProtocolError);
    // The daemon drops the connection after the typed reply.
    let mut rest = Vec::new();
    let _ = s.read_to_end(&mut rest);
    assert!(rest.is_empty(), "connection must be closed after a violation");
    assert_alive(&d);
}

#[test]
fn unknown_kind_byte_is_rejected() {
    let d = start("badkind", Duration::from_secs(5));
    let mut s = connect(&d);
    let mut frame = Vec::new();
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.push(0x5a);
    frame.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&frame).unwrap();
    let (kind, _) = read_reply(&mut s);
    assert_eq!(kind, FrameKind::ProtocolError);
    assert_alive(&d);
}

#[test]
fn response_kind_from_a_client_is_a_violation() {
    let d = start("respkind", Duration::from_secs(5));
    let mut s = connect(&d);
    let mut frame = Vec::new();
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.push(0x81); // Result — only the daemon may send this
    frame.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&frame).unwrap();
    let (kind, _) = read_reply(&mut s);
    assert_eq!(kind, FrameKind::ProtocolError);
    assert_alive(&d);
}

#[test]
fn zero_length_submit_is_an_invalid_job_not_a_crash() {
    let d = start("zerolen", Duration::from_secs(5));
    let mut s = connect(&d);
    let mut frame = Vec::new();
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.push(0x01); // Submit with empty payload
    frame.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&frame).unwrap();
    let (kind, _) = read_reply(&mut s);
    assert_eq!(kind, FrameKind::InvalidJob);
    // An envelope error is not a protocol violation: the connection
    // stays open for a well-formed follow-up.
    let mut ping = Vec::new();
    ping.extend_from_slice(&FRAME_MAGIC);
    ping.push(0x02);
    ping.extend_from_slice(&0u32.to_le_bytes());
    s.write_all(&ping).unwrap();
    let (kind, _) = read_reply(&mut s);
    assert_eq!(kind, FrameKind::Pong);
    assert_alive(&d);
}

#[test]
fn half_closed_connection_mid_frame_is_torn_not_hung() {
    let d = start("halfclosed", Duration::from_secs(5));
    let mut s = connect(&d);
    let mut frame = Vec::new();
    frame.extend_from_slice(&FRAME_MAGIC);
    frame.push(0x01);
    frame.extend_from_slice(&100u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 10]); // 10 of the promised 100 bytes
    s.write_all(&frame).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let (kind, payload) = read_reply(&mut s);
    assert_eq!(kind, FrameKind::ProtocolError);
    assert!(String::from_utf8_lossy(&payload).contains("torn"));
    assert_alive(&d);
}

#[test]
fn slow_loris_is_disconnected_by_the_read_timeout() {
    let d = start("loris", Duration::from_millis(200));
    let mut s = connect(&d);
    // Trickle one header byte, then stall past the read timeout.
    s.write_all(&FRAME_MAGIC[..1]).unwrap();
    std::thread::sleep(Duration::from_millis(700));
    // The daemon has dropped us: either the read returns EOF or a
    // follow-up write errors out. It must NOT still be waiting.
    let mut buf = [0u8; 16];
    let dropped = match s.read(&mut buf) {
        Ok(0) => true,
        Ok(_) => false,
        Err(_) => true,
    };
    assert!(dropped, "slow-loris connection must be disconnected");
    assert_alive(&d);
}

#[test]
fn abrupt_disconnect_between_frames_is_clean() {
    let d = start("abrupt", Duration::from_secs(5));
    for _ in 0..8 {
        let s = connect(&d);
        drop(s); // connect-and-vanish
    }
    assert_alive(&d);
}
