//! End-to-end tests of the `Update` verb: a live daemon, a submitted base
//! graph, and edge deltas against it. The daemon must serve updates from
//! the reused cache entry (incremental recolor of the dirty set), fall
//! back to a full run when nothing is cached, answer the empty delta
//! straight from the cache, and type malformed deltas as `InvalidJob`.
//!
//! No fail points are armed, so these tests run in parallel; each starts
//! its own daemon on an ephemeral port with its own cache directory.

use serve::client::encode_graph;
use serve::protocol::UpdateRequest;
use serve::{Daemon, JobRequest, Priority, RetryPolicy, ServeClient, ServeConfig};

fn start(tag: &str) -> Daemon {
    let dir = std::env::temp_dir().join(format!("serve-upd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        pool_threads: 2,
        cache_dir: dir,
        ..ServeConfig::default()
    })
    .expect("daemon start")
}

fn client(d: &Daemon) -> ServeClient {
    ServeClient::new(
        d.local_addr().to_string(),
        RetryPolicy { max_attempts: 3, ..RetryPolicy::default() },
    )
}

fn submit_req(m: &sparse::Csr) -> JobRequest {
    JobRequest {
        priority: Priority::Normal,
        deadline_ms: 0,
        no_cache: false,
        schedule: "N1-N2".into(),
        graph_bytes: encode_graph(m),
    }
}

fn update_req(
    m: &sparse::Csr,
    insertions: Vec<(u32, u32)>,
    deletions: Vec<(u32, u32)>,
) -> UpdateRequest {
    UpdateRequest {
        priority: Priority::Normal,
        deadline_ms: 0,
        no_cache: false,
        schedule: "N1-N2".into(),
        insertions,
        deletions,
        graph_bytes: encode_graph(m),
    }
}

/// Verifies `colors` against the mutated graph built locally.
fn assert_valid_on(m: sparse::Csr, colors: &[i32]) {
    let g = graph::BipartiteGraph::try_from_matrix_owned(m).expect("valid pattern");
    bgpc::verify::verify_bgpc(&g, colors).expect("coloring must be valid on the mutated graph");
}

#[test]
fn update_is_served_from_the_reused_cache_entry() {
    let d = start("reuse");
    let mut c = client(&d);
    let m = sparse::gen::bipartite_uniform(40, 30, 300, 7);

    // Seed the cache with the base graph's coloring.
    let base = c.submit(&submit_req(&m)).expect("base submit");
    assert!(!base.cache_hit, "first submit computes");

    // A small mutation batch: the daemon must reuse the cached entry.
    let delta = bgpc::CsrDelta::try_new(vec![(0, 29), (3, 17)], vec![]).expect("valid delta");
    let applied = bgpc::apply_delta(&m, &delta).expect("applies");
    let out = c
        .update(&update_req(&m, delta.insertions().to_vec(), delta.deletions().to_vec()))
        .expect("update");
    assert!(out.cache_hit, "update must be served from the reused entry");
    assert!(out.degraded.is_none());
    assert_valid_on(applied.matrix.clone(), &out.colors);

    // The daemon's counters show the reseed.
    let stats = c.stats().expect("stats");
    let get = |k: &str| stats.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap_or(0);
    assert_eq!(get("updates"), 1);
    assert_eq!(get("update_reseeds"), 1);

    // A clean update result is stored under the mutated fingerprint, so
    // submitting the mutated graph directly now hits.
    let direct = c.submit(&submit_req(&applied.matrix)).expect("mutated submit");
    assert!(direct.cache_hit, "update chains must keep hitting the cache");
}

#[test]
fn empty_delta_answers_straight_from_the_cache() {
    let d = start("empty");
    let mut c = client(&d);
    let m = sparse::gen::bipartite_uniform(25, 20, 150, 3);
    let base = c.submit(&submit_req(&m)).expect("base submit");

    let out = c.update(&update_req(&m, vec![], vec![])).expect("empty update");
    assert!(out.cache_hit, "empty delta must not recompute");
    assert_eq!(out.colors, base.colors, "identical graph, identical cached coloring");
}

#[test]
fn uncached_base_falls_back_to_a_full_run() {
    let d = start("miss");
    let mut c = client(&d);
    let m = sparse::gen::bipartite_uniform(30, 25, 200, 9);
    // No submit first: the base is not in the cache.
    let delta = bgpc::CsrDelta::try_new(vec![(1, 3)], vec![]).expect("valid delta");
    let applied = bgpc::apply_delta(&m, &delta).expect("applies");
    let out = c.update(&update_req(&m, vec![(1, 3)], vec![])).expect("update");
    assert!(!out.cache_hit, "nothing cached: the run is from scratch");
    assert_valid_on(applied.matrix, &out.colors);
}

#[test]
fn malformed_deltas_are_typed_invalid_jobs() {
    let d = start("invalid");
    let mut c = client(&d);
    let m = sparse::gen::bipartite_uniform(10, 10, 40, 1);
    c.submit(&submit_req(&m)).expect("base submit");

    // Duplicate insertion, out-of-bounds endpoint, deleting an absent
    // edge: each must come back as a terminal InvalidJob, and the daemon
    // must keep serving afterwards.
    type Edges = Vec<(u32, u32)>;
    let cases: Vec<(Edges, Edges)> = vec![
        (vec![(0, 1), (0, 1)], vec![]),
        (vec![(999, 0)], vec![]),
        (vec![], vec![(0, u32::MAX)]),
    ];
    for (ins, del) in cases {
        let err = c.update(&update_req(&m, ins.clone(), del.clone())).unwrap_err();
        assert!(
            matches!(err, serve::ClientError::InvalidJob(_)),
            "({ins:?}, {del:?}) must be InvalidJob, got {err:?}"
        );
    }
    c.ping().expect("daemon survives malformed deltas");
}

#[test]
fn no_cache_update_skips_lookup_and_store() {
    let d = start("nocache");
    let mut c = client(&d);
    let m = sparse::gen::bipartite_uniform(20, 15, 100, 5);
    c.submit(&submit_req(&m)).expect("base submit");

    let mut req = update_req(&m, vec![(0, 14)], vec![]);
    req.no_cache = true;
    let out = c.update(&req).expect("no-cache update");
    assert!(!out.cache_hit, "no_cache must bypass the reuse path");
    let applied =
        bgpc::apply_delta(&m, &bgpc::CsrDelta::try_new(vec![(0, 14)], vec![]).unwrap()).unwrap();
    assert_valid_on(applied.matrix.clone(), &out.colors);

    // And it must not have stored the mutated result either.
    let direct = c.submit(&submit_req(&applied.matrix)).expect("mutated submit");
    assert!(!direct.cache_hit, "no_cache update must not fill the cache");
}
