//! Mutex-poisoning recovery, proven end to end against a live daemon.
//!
//! The `serve.queue.poison` fail point panics *while the admission-queue
//! lock is held*, poisoning the mutex and killing the handler thread
//! mid-submit. Before the `lock_recover` conversion the next thread to
//! touch the queue — every future submit, plus the executor's `pop` —
//! died on `lock().expect(..)`, silently wedging the daemon. With
//! recovery in place the daemon must keep admitting, executing and
//! answering stats as if nothing happened.

use std::time::Duration;

use par::faults::{self, FaultAction};
use serve::client::encode_graph;
use serve::{Daemon, JobRequest, Priority, RetryPolicy, ServeClient, ServeConfig};

fn temp_cache(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("serve-poison-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn daemon_survives_a_panic_while_holding_the_queue_lock() {
    let mut d = Daemon::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        pool_threads: 2,
        cache_dir: temp_cache("queue"),
        read_timeout: Duration::from_secs(5),
        ..ServeConfig::default()
    })
    .expect("daemon start");
    let mut client = ServeClient::new(
        d.local_addr().to_string(),
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(50),
            jitter_seed: 3,
        },
    );

    let m = sparse::gen::bipartite_uniform(120, 100, 900, 11);
    let g = graph::BipartiteGraph::try_from_matrix(&m).expect("valid pattern");
    let req = JobRequest {
        priority: Priority::Normal,
        deadline_ms: 0,
        no_cache: true,
        schedule: "N1-N2".into(),
        graph_bytes: encode_graph(&m),
    };

    // First submit dies inside try_submit with the lock held: the
    // handler thread unwinds, the connection drops, and the queue mutex
    // is left poisoned. The client's retry lands on a fresh handler
    // whose lock_recover must shrug the poison off.
    faults::arm_with("serve.queue.poison", FaultAction::Panic, 1, None);
    let outcome = client.submit(&req).expect("retry must recover the poisoned queue");
    faults::disarm("serve.queue.poison");
    assert!(outcome.attempts > 1, "the first attempt must have died");
    bgpc::verify::verify_bgpc(&g, &outcome.colors).expect("recovered coloring verifies");

    // The daemon keeps answering on every path that crosses the
    // poisoned mutex: another submit (try_submit + executor pop), and
    // stats/ping for good measure.
    let again = client.submit(&req).expect("daemon still admits after poisoning");
    bgpc::verify::verify_bgpc(&g, &again.colors).expect("second coloring verifies");
    assert!(client.ping().is_ok(), "daemon still answers ping");
    let stats = client.stats().expect("daemon still answers stats");
    let get = |k: &str| stats.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap_or(0);
    assert!(get("completed") >= 2, "both submits completed: {stats:?}");

    d.shutdown();
}
