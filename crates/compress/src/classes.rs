//! Color-set-parallel execution.
//!
//! Each color class is an independent set (no two members share a net /
//! distance-2 neighborhood), so its members can be processed concurrently
//! without locks; classes are separated by barriers. Fewer classes means
//! fewer barriers, balanced classes mean every barrier-to-barrier span has
//! enough work for the whole team — the two quality axes the paper's
//! Section V optimizes.

use bgpc::Color;
use par::Pool;

/// Vertices grouped by color, ready for class-at-a-time parallel
/// processing.
#[derive(Clone, Debug)]
pub struct ColorClasses {
    classes: Vec<Vec<u32>>,
}

impl ColorClasses {
    /// Groups a complete coloring into classes (empty classes from skipped
    /// color ids are dropped).
    pub fn from_colors(colors: &[Color]) -> Self {
        for (v, &c) in colors.iter().enumerate() {
            assert!(c >= 0, "vertex {v} uncolored");
        }
        let k = colors.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let mut classes = vec![Vec::new(); k];
        for (v, &c) in colors.iter().enumerate() {
            classes[c as usize].push(v as u32);
        }
        classes.retain(|cl| !cl.is_empty());
        Self { classes }
    }

    /// Number of (non-empty) classes — the number of barriers a full sweep
    /// costs.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The classes, largest first is *not* guaranteed — order follows
    /// color ids.
    pub fn classes(&self) -> &[Vec<u32>] {
        &self.classes
    }

    /// Total vertices across classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(|c| c.len()).sum()
    }

    /// Whether there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the smallest class (the paper's skew concern: first-fit
    /// yields thousands of size-≤2 classes).
    pub fn min_class_size(&self) -> usize {
        self.classes.iter().map(|c| c.len()).min().unwrap_or(0)
    }

    /// Processes every class in color order: within a class, members run
    /// in parallel on `pool`; a barrier separates classes. `f(v)` must be
    /// safe to call concurrently for *independent* vertices — which is
    /// exactly what a valid coloring certifies.
    pub fn for_each_parallel<F>(&self, pool: &Pool, chunk: usize, f: F)
    where
        F: Fn(u32) + Sync,
    {
        for class in &self.classes {
            pool.for_dynamic(class.len(), chunk, |_tid, range| {
                for &v in &class[range] {
                    f(v);
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn grouping() {
        let cc = ColorClasses::from_colors(&[0, 1, 0, 2, 1]);
        assert_eq!(cc.num_classes(), 3);
        assert_eq!(cc.classes()[0], vec![0, 2]);
        assert_eq!(cc.len(), 5);
        assert_eq!(cc.min_class_size(), 1);
    }

    #[test]
    fn skipped_ids_dropped() {
        let cc = ColorClasses::from_colors(&[0, 2]);
        assert_eq!(cc.num_classes(), 2);
    }

    #[test]
    fn parallel_sweep_visits_every_vertex_once() {
        let colors: Vec<i32> = (0..1000).map(|v| v % 7).collect();
        let cc = ColorClasses::from_colors(&colors);
        let pool = Pool::new(4);
        let visits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        cc.for_each_parallel(&pool, 16, |v| {
            visits[v as usize].fetch_add(1, Ordering::Relaxed);
        });
        assert!(visits.iter().all(|x| x.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn lock_free_updates_are_race_free_with_valid_coloring() {
        // Chain conflict structure: vertex v "owns" cells v and v+1 of a
        // shared buffer; adjacent vertices conflict. A valid 2-coloring of
        // the path (odd/even) makes unsynchronized writes safe.
        const N: usize = 2000;
        let colors: Vec<i32> = (0..N as i32).map(|v| v % 2).collect();
        let cc = ColorClasses::from_colors(&colors);
        let pool = Pool::new(4);
        let buffer: Vec<AtomicUsize> = (0..N + 1).map(|_| AtomicUsize::new(0)).collect();
        cc.for_each_parallel(&pool, 32, |v| {
            let v = v as usize;
            // touches cells v and v+1 — conflicts with v-1 and v+1 only
            let a = buffer[v].load(Ordering::Relaxed);
            buffer[v].store(a + 1, Ordering::Relaxed);
            let b = buffer[v + 1].load(Ordering::Relaxed);
            buffer[v + 1].store(b + 1, Ordering::Relaxed);
        });
        // every interior cell touched exactly twice, ends once
        assert_eq!(buffer[0].load(Ordering::Relaxed), 1);
        assert_eq!(buffer[N].load(Ordering::Relaxed), 1);
        for cell in &buffer[1..N] {
            assert_eq!(cell.load(Ordering::Relaxed), 2);
        }
    }

    #[test]
    #[should_panic(expected = "uncolored")]
    fn uncolored_vertex_rejected() {
        ColorClasses::from_colors(&[0, -1]);
    }

    #[test]
    fn empty() {
        let cc = ColorClasses::from_colors(&[]);
        assert!(cc.is_empty());
        assert_eq!(cc.num_classes(), 0);
        cc.for_each_parallel(&Pool::new(2), 8, |_| panic!("no vertices"));
    }
}
