//! `compress` — what the coloring is *for*.
//!
//! The paper motivates BGPC with two applications, both implemented here:
//!
//! * **Sparse Jacobian compression** ([`jacobian`], [`seed`]): a valid
//!   partial coloring of the columns lets `k ≪ n` matrix–vector products
//!   (`B = J · S`, one per color) recover every nonzero of `J` exactly —
//!   the Curtis–Powell–Reid / ColPack "direct recovery" scheme. The
//!   coloring validity invariant *is* the recovery-correctness invariant.
//! * **Color-set-parallel execution** ([`classes`]): a coloring partitions
//!   vertices into independent sets; processing one set at a time allows
//!   lock-free parallel updates (the matrix-factorization workload the
//!   paper's 20M_movielens instance comes from). Balanced colorings keep
//!   every round wide enough to feed all cores — the point of B1/B2.

pub mod classes;
pub mod hessian;
pub mod jacobian;
pub mod orient;
pub mod seed;

pub use classes::ColorClasses;
pub use jacobian::SparseF64;
pub use seed::SeedMatrix;
