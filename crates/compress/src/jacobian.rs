//! Sparse Jacobian compression and direct recovery.

use sparse::Csr;

use crate::SeedMatrix;

/// A sparse matrix with `f64` values aligned to the pattern's entries.
#[derive(Clone, Debug, PartialEq)]
pub struct SparseF64 {
    pattern: Csr,
    values: Vec<f64>,
}

impl SparseF64 {
    /// Pairs a pattern with values (one per stored entry, in CSR order).
    ///
    /// # Panics
    /// Panics if the value count does not match the pattern's nnz.
    pub fn new(pattern: Csr, values: Vec<f64>) -> Self {
        assert_eq!(pattern.nnz(), values.len(), "one value per stored entry");
        Self { pattern, values }
    }

    /// Fills a pattern with deterministic pseudo-values (useful for
    /// roundtrip tests: every entry distinct and nonzero).
    pub fn with_synthetic_values(pattern: Csr) -> Self {
        let values = (0..pattern.nnz())
            .map(|k| 1.0 + (k as f64) * 0.5 + ((k % 7) as f64) * 0.01)
            .collect();
        Self::new(pattern, values)
    }

    /// The sparsity pattern.
    pub fn pattern(&self) -> &Csr {
        &self.pattern
    }

    /// The values, in CSR entry order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of entry `(i, j)` if stored.
    pub fn get(&self, i: usize, j: u32) -> Option<f64> {
        let row = self.pattern.row(i);
        let base = self.pattern.row_start(i);
        row.binary_search(&j).ok().map(|k| self.values[base + k])
    }

    /// Computes the compressed matrix `B = J · S` for a column seed
    /// matrix: `B[i][c] = Σ_{j : color(j)=c} J[i][j]`.
    ///
    /// In a real AD/finite-difference pipeline each column of `B` is one
    /// directional evaluation; here we multiply explicitly.
    pub fn compress(&self, seed: &SeedMatrix) -> Compressed {
        assert_eq!(seed.n_cols(), self.pattern.ncols(), "seed shape mismatch");
        let nrows = self.pattern.nrows();
        let k = seed.num_colors();
        let mut data = vec![0.0; nrows * k];
        for i in 0..nrows {
            let base = self.pattern.row_start(i);
            for (off, &j) in self.pattern.row(i).iter().enumerate() {
                data[i * k + seed.color(j as usize)] += self.values[base + off];
            }
        }
        Compressed { nrows, k, data }
    }

    /// Directly recovers the values of a matrix with this pattern from a
    /// compressed representation: `J[i][j] = B[i][color(j)]`.
    ///
    /// Correct iff the coloring was a valid BGPC of the pattern's columns —
    /// i.e. no row contains two columns of the same color. Returns the
    /// recovered matrix.
    pub fn recover(pattern: &Csr, seed: &SeedMatrix, compressed: &Compressed) -> SparseF64 {
        assert_eq!(pattern.nrows(), compressed.nrows);
        assert_eq!(seed.num_colors(), compressed.k);
        let mut values = Vec::with_capacity(pattern.nnz());
        for i in 0..pattern.nrows() {
            for &j in pattern.row(i) {
                values.push(compressed.get(i, seed.color(j as usize)));
            }
        }
        SparseF64::new(pattern.clone(), values)
    }
}

/// The dense `nrows × k` compressed matrix `B = J · S`.
#[derive(Clone, Debug, PartialEq)]
pub struct Compressed {
    nrows: usize,
    k: usize,
    data: Vec<f64>,
}

impl Compressed {
    /// Entry `B[i][c]`.
    #[inline]
    pub fn get(&self, i: usize, c: usize) -> f64 {
        self.data[i * self.k + c]
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of colors (compressed columns).
    pub fn num_colors(&self) -> usize {
        self.k
    }

    /// Compression ratio achieved versus evaluating every column.
    pub fn ratio(&self, original_cols: usize) -> f64 {
        if self.k == 0 {
            return 1.0;
        }
        original_cols as f64 / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpc::seq::color_bgpc_seq;
    use graph::{BipartiteGraph, Ordering};

    fn roundtrip(pattern: Csr) {
        let g = BipartiteGraph::from_matrix(&pattern);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let (colors, _) = color_bgpc_seq(&g, &order);
        bgpc::verify::verify_bgpc(&g, &colors).unwrap();

        let seed = SeedMatrix::from_coloring(&colors);
        let j = SparseF64::with_synthetic_values(pattern.clone());
        let b = j.compress(&seed);
        let recovered = SparseF64::recover(&pattern, &seed, &b);
        assert_eq!(recovered, j, "direct recovery must be exact");
        assert!(b.num_colors() <= pattern.ncols());
    }

    #[test]
    fn roundtrip_small_fixed() {
        roundtrip(Csr::from_rows(4, &[vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]));
    }

    #[test]
    fn roundtrip_random_bipartite() {
        roundtrip(sparse::gen::bipartite_uniform(40, 60, 400, 11));
    }

    #[test]
    fn roundtrip_mesh() {
        roundtrip(sparse::gen::grid2d(8, 8, 1));
    }

    #[test]
    fn compression_beats_identity_on_sparse_input() {
        let pattern = sparse::gen::banded(200, 3, 1.0, 1);
        let g = BipartiteGraph::from_matrix(&pattern);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let (colors, k) = color_bgpc_seq(&g, &order);
        let seed = SeedMatrix::from_coloring(&colors);
        let j = SparseF64::with_synthetic_values(pattern);
        let b = j.compress(&seed);
        assert!(k < 20, "banded matrix needs few colors, got {k}");
        assert!(b.ratio(200) > 10.0);
    }

    #[test]
    fn invalid_coloring_breaks_recovery() {
        // Two columns sharing a row get the same color: compression must
        // *not* round-trip — this is the contrapositive of the validity
        // invariant.
        let pattern = Csr::from_rows(2, &[vec![0, 1]]);
        let seed = SeedMatrix::from_coloring(&[0, 0]);
        let j = SparseF64::with_synthetic_values(pattern.clone());
        let b = j.compress(&seed);
        let recovered = SparseF64::recover(&pattern, &seed, &b);
        assert_ne!(recovered, j);
    }

    #[test]
    fn get_entry() {
        let j = SparseF64::new(Csr::from_rows(2, &[vec![1], vec![0, 1]]), vec![5.0, 6.0, 7.0]);
        assert_eq!(j.get(0, 1), Some(5.0));
        assert_eq!(j.get(1, 0), Some(6.0));
        assert_eq!(j.get(0, 0), None);
    }

    #[test]
    #[should_panic(expected = "one value per stored entry")]
    fn mismatched_values_rejected() {
        SparseF64::new(Csr::from_rows(1, &[vec![0]]), vec![]);
    }
}
