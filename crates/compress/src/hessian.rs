//! Symmetric (Hessian) compression via distance-2 coloring.
//!
//! For a structurally symmetric matrix `H`, the direct-recovery condition
//! "no row contains two columns of the same color" is exactly a
//! **distance-2 coloring** of `H`'s adjacency graph: two columns appearing
//! in the same row are distance-≤2 neighbors (through the row's vertex),
//! and the diagonal couples each column with its distance-1 neighbors.
//! This is the paper's D2GC use case (Hessian computation, §I).
//!
//! A distance-*1* coloring is *not* sufficient — two non-adjacent columns
//! with a common neighbor row would collide — and the
//! `d1_coloring_is_insufficient` test below demonstrates it.

use bgpc::Color;
use graph::Graph;
use par::Pool;
use sparse::Csr;

use crate::jacobian::{Compressed, SparseF64};
use crate::SeedMatrix;

/// Produces a seed matrix for a symmetric pattern by running the given
/// D2GC schedule on its adjacency graph. Panics if the pattern is not
/// structurally symmetric.
pub fn hessian_seed(
    pattern: &Csr,
    schedule: &bgpc::Schedule,
    pool: &Pool,
) -> (SeedMatrix, Vec<Color>) {
    let g = Graph::from_symmetric_matrix(pattern);
    let order = graph::Ordering::Natural.vertex_order_d2(&g);
    let result = bgpc::d2gc::color_d2gc(&g, &order, schedule, pool);
    bgpc::verify::verify_d2gc(&g, &result.colors).expect("D2GC must be valid");
    (SeedMatrix::from_coloring(&result.colors), result.colors)
}

/// Compresses a symmetric matrix with a seed derived from a D2 coloring.
///
/// # Panics
/// Panics if the matrix is not structurally symmetric (Hessian
/// compression relies on it) or the seed shape mismatches.
pub fn compress_hessian(h: &SparseF64, seed: &SeedMatrix) -> Compressed {
    assert!(
        h.pattern().is_structurally_symmetric(),
        "Hessian compression requires a symmetric pattern"
    );
    h.compress(seed)
}

/// Recovers a symmetric matrix from its compressed form (direct method).
pub fn recover_hessian(pattern: &Csr, seed: &SeedMatrix, compressed: &Compressed) -> SparseF64 {
    SparseF64::recover(pattern, seed, compressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpc::Schedule;

    /// Symmetric values: value of (i,j) must equal value of (j,i) for a
    /// meaningful Hessian; build via index-symmetric function.
    fn symmetric_values(pattern: &Csr) -> SparseF64 {
        let values: Vec<f64> = pattern
            .iter()
            .map(|(i, j)| {
                let (a, b) = if (i as u32) < j { (i as u32, j) } else { (j, i as u32) };
                1.0 + a as f64 * 0.37 + b as f64 * 1.13
            })
            .collect();
        SparseF64::new(pattern.clone(), values)
    }

    #[test]
    fn roundtrip_mesh_hessian() {
        let pattern = sparse::gen::grid2d(10, 10, 1);
        let h = symmetric_values(&pattern);
        let pool = Pool::new(2);
        let (seed, _) = hessian_seed(&pattern, &Schedule::v_n(1), &pool);
        let b = compress_hessian(&h, &seed);
        let recovered = recover_hessian(&pattern, &seed, &b);
        assert_eq!(recovered, h);
        assert!(b.num_colors() < pattern.ncols());
    }

    #[test]
    fn roundtrip_with_diagonal() {
        // tridiagonal with diagonal entries — the typical Hessian shape
        let n = 50;
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|i| {
                let mut r = vec![i as u32];
                if i > 0 {
                    r.push(i as u32 - 1);
                }
                if i + 1 < n {
                    r.push(i as u32 + 1);
                }
                r
            })
            .collect();
        let pattern = Csr::from_rows(n, &rows);
        let h = symmetric_values(&pattern);
        let pool = Pool::new(1);
        let (seed, _) = hessian_seed(&pattern, &Schedule::v_v_64d(), &pool);
        let b = compress_hessian(&h, &seed);
        assert_eq!(recover_hessian(&pattern, &seed, &b), h);
        assert!(b.num_colors() <= 5, "tridiagonal needs ~3-4 colors at d2");
    }

    #[test]
    fn d1_coloring_is_insufficient() {
        // path 0-1-2: columns 0 and 2 are non-adjacent (D1 allows equal
        // colors) but share row 1 — direct recovery must break.
        let pattern = Csr::from_rows(3, &[vec![0, 1], vec![0, 1, 2], vec![1, 2]]);
        let h = symmetric_values(&pattern);
        let g = Graph::from_symmetric_matrix(&pattern);
        let order: Vec<u32> = vec![0, 1, 2];
        let (d1_colors, _) = bgpc::d1gc::color_d1gc_seq(&g, &order);
        bgpc::d1gc::verify_d1gc(&g, &d1_colors).unwrap();
        assert_eq!(d1_colors[0], d1_colors[2], "D1 gives 0 and 2 one color");
        let seed = SeedMatrix::from_coloring(&d1_colors);
        let b = h.compress(&seed);
        let recovered = SparseF64::recover(&pattern, &seed, &b);
        assert_ne!(recovered, h, "D1-based direct recovery must fail");
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_pattern_rejected() {
        let pattern = Csr::from_rows(2, &[vec![1], vec![]]);
        let h = SparseF64::with_synthetic_values(pattern);
        let seed = SeedMatrix::from_coloring(&[0, 1]);
        compress_hessian(&h, &seed);
    }
}
