//! Compression orientation: color columns or rows, whichever is cheaper.
//!
//! For a Jacobian the coloring can compress either side — columns
//! (`B = J·S`, forward-mode/finite differences) or rows (`Bᵀ = Sᵀ·J`,
//! reverse-mode). The trivial lower bounds — max row degree for column
//! compression, max column degree for row compression — usually differ,
//! and for strongly rectangular matrices (e.g. the movielens instance)
//! picking the cheap side saves a large factor. ColPack exposes the same
//! choice via its partial-distance-2 variants on either vertex set.

use bgpc::{ColoringResult, Schedule};
use graph::{BipartiteGraph, Ordering};
use par::Pool;
use sparse::Csr;

/// Which side of the matrix a coloring compresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Side {
    /// Color the columns (forward products `J·s`).
    Columns,
    /// Color the rows (reverse products `sᵀ·J`).
    Rows,
}

/// Outcome of an orientation decision.
#[derive(Debug)]
pub struct OrientedColoring {
    /// Chosen side.
    pub side: Side,
    /// Coloring of the chosen side's vertices.
    pub result: ColoringResult,
    /// Lower bound on the chosen side.
    pub lower_bound: usize,
}

/// Lower bounds for both orientations: `(columns, rows)` — the maximum
/// row degree bounds column compression and vice versa.
pub fn lower_bounds(matrix: &Csr) -> (usize, usize) {
    let row_stats = sparse::DegreeStats::rows(matrix);
    let col_stats = sparse::DegreeStats::cols(matrix);
    (row_stats.max, col_stats.max)
}

/// Colors the cheaper side of the matrix (ties go to columns), comparing
/// by the trivial lower bound before running the expensive coloring.
pub fn color_cheaper_side(
    matrix: &Csr,
    schedule: &Schedule,
    ordering: Ordering,
    pool: &Pool,
) -> OrientedColoring {
    let (col_bound, row_bound) = lower_bounds(matrix);
    if col_bound <= row_bound {
        let g = BipartiteGraph::from_matrix(matrix);
        let order = ordering.vertex_order_bgpc(&g);
        let result = bgpc::color_bgpc(&g, &order, schedule, pool);
        OrientedColoring {
            side: Side::Columns,
            result,
            lower_bound: col_bound,
        }
    } else {
        let transposed = matrix.transpose();
        let g = BipartiteGraph::from_matrix(&transposed);
        let order = ordering.vertex_order_bgpc(&g);
        let result = bgpc::color_bgpc(&g, &order, schedule, pool);
        OrientedColoring {
            side: Side::Rows,
            result,
            lower_bound: row_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_of_rectangular_pattern() {
        // 1 dense row over 6 columns; columns have degree 1.
        let m = Csr::from_rows(6, &[vec![0, 1, 2, 3, 4, 5]]);
        let (cols, rows) = lower_bounds(&m);
        assert_eq!(cols, 6); // column compression needs ≥ 6 colors
        assert_eq!(rows, 1); // row compression needs ≥ 1
    }

    #[test]
    fn chooses_rows_when_rows_are_cheap() {
        let m = Csr::from_rows(6, &[vec![0, 1, 2, 3, 4, 5]]);
        let pool = Pool::new(2);
        let o = color_cheaper_side(&m, &Schedule::n1_n2(), Ordering::Natural, &pool);
        assert_eq!(o.side, Side::Rows);
        assert_eq!(o.lower_bound, 1);
        assert_eq!(o.result.num_colors, 1, "single row needs one color");
        // the coloring covers the *rows* (1 vertex here)
        assert_eq!(o.result.colors.len(), 1);
    }

    #[test]
    fn chooses_columns_when_columns_are_cheap() {
        // 6 rows each with one entry in a distinct column; one dense
        // column would flip it, so use a tall banded pattern instead.
        let m = Csr::from_rows(2, &(0..6).map(|i| vec![(i % 2) as u32]).collect::<Vec<_>>());
        // rows have degree 1; columns have degree 3 → colbound 1 < rowbound 3
        let (cols, rows) = lower_bounds(&m);
        assert!(cols < rows);
        let pool = Pool::new(1);
        let o = color_cheaper_side(&m, &Schedule::v_v(), Ordering::Natural, &pool);
        assert_eq!(o.side, Side::Columns);
    }

    #[test]
    fn movielens_analogue_prefers_movie_side() {
        // nets (movies) are few and huge; users are many with small
        // degree: row compression (coloring movies) is far cheaper.
        let m = sparse::gen::bipartite_skewed(40, 800, 4000, 0.9, 500, 3);
        let (cols, rows) = lower_bounds(&m);
        assert!(rows < cols, "col bound {cols} vs row bound {rows}");
        let pool = Pool::new(2);
        let o = color_cheaper_side(&m, &Schedule::n1_n2(), Ordering::Natural, &pool);
        assert_eq!(o.side, Side::Rows);
        assert!(o.result.num_colors < cols);
    }
}
