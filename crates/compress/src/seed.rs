//! Seed matrices derived from colorings.

use bgpc::Color;

/// The seed matrix `S ∈ {0,1}^{n×k}` of a column coloring: `S[j][c] = 1`
/// iff column `j` has color `c`.
///
/// Stored implicitly as the color vector plus the color count — the dense
/// form would be wasteful and is never needed: `J · S` only requires
/// knowing each column's color.
#[derive(Clone, Debug)]
pub struct SeedMatrix {
    colors: Vec<Color>,
    num_colors: usize,
}

impl SeedMatrix {
    /// Builds a seed matrix from a complete coloring.
    ///
    /// # Panics
    /// Panics if any entry is negative (uncolored).
    pub fn from_coloring(colors: &[Color]) -> Self {
        assert!(
            colors.iter().all(|&c| c >= 0),
            "seed matrix requires a complete coloring"
        );
        let num_colors = colors.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        Self {
            colors: colors.to_vec(),
            num_colors,
        }
    }

    /// Number of columns of the original matrix.
    pub fn n_cols(&self) -> usize {
        self.colors.len()
    }

    /// Number of colors `k` (columns of the compressed matrix).
    ///
    /// This is `max(color) + 1`: reverse-first-fit colorings may leave a
    /// few ids unused, but the compressed storage is indexed by color id,
    /// so gaps simply stay zero.
    pub fn num_colors(&self) -> usize {
        self.num_colors
    }

    /// Color of column `j`.
    #[inline]
    pub fn color(&self, j: usize) -> usize {
        self.colors[j] as usize
    }

    /// The columns grouped by color: `groups()[c]` lists the columns with
    /// color `c`.
    pub fn groups(&self) -> Vec<Vec<u32>> {
        let mut groups = vec![Vec::new(); self.num_colors];
        for (j, &c) in self.colors.iter().enumerate() {
            groups[c as usize].push(j as u32);
        }
        groups
    }

    /// Materializes the dense 0/1 seed matrix (tests/documentation only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut dense = vec![vec![0.0; self.num_colors]; self.n_cols()];
        for (j, &c) in self.colors.iter().enumerate() {
            dense[j][c as usize] = 1.0;
        }
        dense
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let s = SeedMatrix::from_coloring(&[0, 1, 0, 2]);
        assert_eq!(s.n_cols(), 4);
        assert_eq!(s.num_colors(), 3);
        assert_eq!(s.color(2), 0);
        assert_eq!(s.groups(), vec![vec![0, 2], vec![1], vec![3]]);
    }

    #[test]
    fn dense_rows_are_unit_vectors() {
        let s = SeedMatrix::from_coloring(&[1, 0]);
        let d = s.to_dense();
        assert_eq!(d, vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
    }

    #[test]
    fn gap_colors_allowed() {
        // color 1 unused (reverse-fit colorings can skip ids)
        let s = SeedMatrix::from_coloring(&[0, 2]);
        assert_eq!(s.num_colors(), 3);
        assert_eq!(s.groups()[1], Vec::<u32>::new());
    }

    #[test]
    #[should_panic(expected = "complete")]
    fn uncolored_rejected() {
        SeedMatrix::from_coloring(&[0, -1]);
    }

    #[test]
    fn empty_coloring() {
        let s = SeedMatrix::from_coloring(&[]);
        assert_eq!(s.num_colors(), 0);
        assert!(s.groups().is_empty());
    }
}
