//! Fork/join thread pool with caller participation and fault containment.

use std::any::Any;
use std::fmt;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use crate::cursor::ChunkCursor;
use crate::steal::{Sched, StealRanges};
use crate::topo::{CpuTopology, PinPlan};

/// Locks a mutex, recovering the guard if a previous holder panicked.
///
/// The pool is explicitly designed to survive panics inside parallel
/// regions, so a poisoned lock is an expected state, not a bug: the
/// protected `State` is only ever mutated under the lock in small,
/// atomic steps that cannot be observed half-done.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Type-erased parallel region body: `f(thread_id)`.
///
/// The pointer is only dereferenced between the publish in
/// [`Pool::try_run`] and the completion barrier at the end of the same
/// call, so the `'static` lifetime produced by the transmute in `try_run`
/// never outlives the borrow it erases.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the closure behind `f` is `Sync`, and `Job` values are only read
// (never mutated) by workers while the owning `try_run` call keeps the
// referent alive; see `Job` docs.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct State {
    /// Monotonically increasing region id; workers run once per increment.
    epoch: u64,
    /// Current region body, valid while `remaining > 0`.
    job: Option<Job>,
    /// Workers that have not yet finished the current region.
    remaining: usize,
    /// Captured panic payloads from workers in the current region.
    panics: Vec<(usize, Box<dyn Any + Send>)>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new epoch (or shutdown) is available.
    work_cv: Condvar,
    /// Signals the caller that all workers finished the region.
    done_cv: Condvar,
}

/// A panic captured inside a parallel region or a contained phase.
///
/// Holds the original payloads so callers that *want* the old abort
/// behaviour can [`resume`](RegionPanic::resume) them, while callers that
/// want fault containment can log [`first_message`](RegionPanic::first_message)
/// and fall back to a sequential path. The team itself survives: the pool's
/// worker threads catch the unwind at the region boundary and return to
/// their idle loop, so subsequent regions run normally.
pub struct RegionPanic {
    /// `(thread id, payload)` per panicked team member, master (0) first.
    payloads: Vec<(usize, Box<dyn Any + Send>)>,
}

impl RegionPanic {
    /// Wraps a payload caught outside the pool (see [`crate::contain`]).
    /// The catch happens on the calling thread, i.e. the team master.
    pub fn from_payload(payload: Box<dyn Any + Send>) -> Self {
        Self {
            payloads: vec![(0, payload)],
        }
    }

    /// Number of team members that panicked.
    pub fn count(&self) -> usize {
        self.payloads.len()
    }

    /// Thread ids that panicked, ascending (master is 0).
    pub fn threads(&self) -> Vec<usize> {
        self.payloads.iter().map(|(t, _)| *t).collect()
    }

    /// Human-readable message of the first (lowest-tid) panic.
    pub fn first_message(&self) -> String {
        self.payloads
            .first()
            // `&**p` reborrows the payload itself; a bare `p` would unsize
            // the `&Box` into the `dyn Any` and defeat the downcasts.
            .map(|(tid, p)| format!("thread {tid}: {}", payload_str(&**p)))
            .unwrap_or_else(|| "empty region panic".to_string())
    }

    /// Re-raises the captured panics with the pre-containment semantics:
    /// a master panic resumes its original payload (so `catch_unwind`
    /// callers see e.g. the original `&str`), while worker-only panics
    /// raise a summary message.
    pub fn resume(self) -> ! {
        let workers = self.payloads.iter().filter(|(t, _)| *t != 0).count();
        let detail = self.first_message();
        for (tid, payload) in self.payloads {
            if tid == 0 {
                panic::resume_unwind(payload);
            }
        }
        panic!("{workers} pool worker(s) panicked in parallel region ({detail})");
    }
}

fn payload_str(p: &(dyn Any + Send)) -> &str {
    if let Some(s) = p.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = p.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

impl fmt::Debug for RegionPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegionPanic")
            .field("threads", &self.threads())
            .field("first_message", &self.first_message())
            .finish()
    }
}

impl fmt::Display for RegionPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} team member(s) panicked in parallel region ({})",
            self.count(),
            self.first_message()
        )
    }
}

impl std::error::Error for RegionPanic {}

/// Runs `f` on the current thread, converting an unwind into a
/// [`RegionPanic`] instead of propagating it.
///
/// This is the phase-level containment primitive: the coloring runners wrap
/// each kernel call (which may itself execute pool regions whose panics are
/// re-raised by [`Pool::run`]) so a fault in any phase degrades to the
/// sequential fallback instead of aborting the process.
pub fn contain<R>(f: impl FnOnce() -> R) -> Result<R, RegionPanic> {
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(RegionPanic::from_payload)
}

/// A fixed team of threads executing fork/join parallel regions.
///
/// A pool of `t` logical threads owns `t - 1` OS worker threads; the caller
/// of [`run`](Pool::run) participates as thread 0, exactly like the OpenMP
/// master thread. `Pool::new(1)` therefore spawns nothing and runs regions
/// inline, which makes single-thread baselines free of scheduling overhead.
///
/// Threads are created once and reused for every region, so per-region cost
/// is one mutex round-trip plus condvar wakeups — negligible against the
/// millisecond-scale coloring iterations it schedules.
///
/// # Fault model
///
/// Workers wrap every region body in `catch_unwind`; a panicking member
/// never takes down its OS thread. [`try_run`](Pool::try_run) reports the
/// captured payloads as a [`RegionPanic`] and resets the region state, so
/// the team remains usable. [`run`](Pool::run) keeps the historical
/// panic-on-fault contract on top of `try_run`.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Observability sink; `None` (the default) keeps every hook to a
    /// single branch per region — see [`Pool::set_tracer`].
    tracer: Option<Arc<trace::Recorder>>,
    /// Topology plan for pinned teams — worker→CPU placement plus
    /// per-thief near-first victim orders (see [`Pool::new_pinned`]).
    plan: Option<Arc<PinPlan>>,
}

impl Pool {
    /// Creates a pool with `threads` logical threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self::build(threads, None)
    }

    /// Creates a pool whose members are pinned to CPUs in core-major
    /// topology order (caller → CPU of tid 0, worker `tid` → the `tid`-th
    /// CPU; see [`crate::topo`]). On platforms without `sched_setaffinity`
    /// the team runs unpinned — [`pinned`](Pool::pinned) reports which —
    /// but the topology's near-first steal order is used either way.
    ///
    /// Pinning the *caller* narrows its affinity for the pool's lifetime;
    /// create pinned pools from threads dedicated to the coloring run.
    pub fn new_pinned(threads: usize) -> Self {
        let plan = Arc::new(PinPlan::new(&CpuTopology::detect(), threads.max(1)));
        plan.pin(0);
        Self::build(threads, Some(plan))
    }

    fn build(threads: usize, plan: Option<Arc<PinPlan>>) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panics: Vec::new(),
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                let plan = plan.clone();
                std::thread::Builder::new()
                    .name(format!("par-worker-{tid}"))
                    .spawn(move || {
                        if let Some(p) = &plan {
                            p.pin(tid);
                        }
                        worker_loop(&shared, tid)
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
            tracer: None,
            plan,
        }
    }

    /// Number of logical threads in the team (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether the team was created with [`new_pinned`](Pool::new_pinned)
    /// *and* every affinity call succeeded. `false` for unpinned pools and
    /// on platforms where pinning gracefully no-ops.
    pub fn pinned(&self) -> bool {
        self.plan.as_ref().is_some_and(|p| p.pinned())
    }

    /// Installs an observability recorder on the team.
    ///
    /// The recorder must have been created for at least
    /// [`threads()`](Pool::threads) slots. Once installed, every parallel
    /// region wraps each member in a [`trace::BusyGuard`] (busy time +
    /// region span, flushed even when the member panics — `try_run` fault
    /// containment keeps traces well-formed), and the chunked `for_*`
    /// drivers count claims and steals. Without a recorder the only cost
    /// is one `Option` branch per region: tracing is disabled by default.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use par::Pool;
    ///
    /// let mut pool = Pool::new(2);
    /// pool.set_tracer(Arc::new(trace::Recorder::new(pool.threads())));
    /// pool.for_dynamic(100, 8, |_tid, _range| {});
    /// let totals = pool.tracer().unwrap().totals();
    /// assert!(totals.get(trace::Counter::ChunksClaimed) >= 100 / 8);
    /// assert!(totals.get(trace::Counter::BusyNs) > 0);
    /// ```
    pub fn set_tracer(&mut self, tracer: Arc<trace::Recorder>) {
        assert!(
            tracer.threads() >= self.threads,
            "recorder has {} slots for a team of {}",
            tracer.threads(),
            self.threads
        );
        self.tracer = Some(tracer);
    }

    /// The installed recorder, if any. Kernels use this to flush their
    /// locally accumulated counters once per chunk.
    #[inline]
    pub fn tracer(&self) -> Option<&trace::Recorder> {
        self.tracer.as_deref()
    }

    /// Executes `f(thread_id)` once on every team member and waits for all
    /// of them — an `omp parallel` region.
    ///
    /// Panics captured from any team member are returned as a
    /// [`RegionPanic`]; the pool itself stays usable either way. The range
    /// of indices a faulted region actually processed is unspecified —
    /// callers recover by re-validating results (the coloring runners
    /// re-detect conflicts sequentially).
    pub fn try_run<F>(&self, f: F) -> Result<(), RegionPanic>
    where
        F: Fn(usize) + Sync,
    {
        match &self.tracer {
            Some(rec) => {
                let rec: &trace::Recorder = rec;
                self.try_run_inner(move |tid| {
                    // The guard records busy time + a region span on drop,
                    // so it flushes during a panic unwind too — a contained
                    // fault still yields a complete trace.
                    let _busy = rec.busy_guard(tid);
                    f(tid);
                })
            }
            None => self.try_run_inner(f),
        }
    }

    fn try_run_inner<F>(&self, f: F) -> Result<(), RegionPanic>
    where
        F: Fn(usize) + Sync,
    {
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the erased borrow is dead before `try_run` returns —
        // workers signal completion via `remaining`/`done_cv`, and we block
        // on that barrier below before `f` can be dropped.
        let job = Job {
            f: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f_ref as *const _)
            },
        };

        if self.threads > 1 {
            let mut state = lock(&self.shared.state);
            debug_assert_eq!(state.remaining, 0, "nested/overlapping run detected");
            state.job = Some(job);
            state.epoch += 1;
            state.remaining = self.threads - 1;
            state.panics.clear();
            drop(state);
            self.shared.work_cv.notify_all();
        }

        // The caller is thread 0.
        let master = panic::catch_unwind(AssertUnwindSafe(|| f(0)));

        let mut payloads: Vec<(usize, Box<dyn Any + Send>)> = Vec::new();
        if let Err(payload) = master {
            payloads.push((0, payload));
        }

        if self.threads > 1 {
            let mut state = lock(&self.shared.state);
            while state.remaining > 0 {
                state = self
                    .shared
                    .done_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            state.job = None;
            payloads.append(&mut state.panics);
        }

        if payloads.is_empty() {
            Ok(())
        } else {
            payloads.sort_by_key(|(tid, _)| *tid);
            Err(RegionPanic { payloads })
        }
    }

    /// Executes `f(thread_id)` once on every team member and waits for all
    /// of them — an `omp parallel` region.
    ///
    /// Panics if any team member panics: a master panic is resumed with its
    /// original payload, worker panics raise a summary. Use
    /// [`try_run`](Pool::try_run) for recoverable fault containment.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        if let Err(fault) = self.try_run(f) {
            fault.resume();
        }
    }

    /// Parallel for over `0..len` with dynamic chunk scheduling — the
    /// equivalent of `#pragma omp parallel for schedule(dynamic, chunk)`.
    ///
    /// `f(thread_id, range)` is invoked for disjoint chunks covering the
    /// range exactly once.
    pub fn for_dynamic<F>(&self, len: usize, chunk: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let cursor = ChunkCursor::new(len, chunk);
        let rec = self.tracer();
        self.run(|tid| {
            let mut claims = 0u64;
            while let Some(range) = cursor.claim() {
                if trace::COMPILED {
                    claims += 1;
                }
                f(tid, range);
            }
            if let Some(r) = rec {
                r.count(tid, trace::Counter::ChunksClaimed, claims);
            }
        });
    }

    /// Parallel for over `0..len` with per-worker blocks and randomized
    /// work stealing (see [`StealRanges`]).
    ///
    /// Observationally equivalent to [`for_dynamic`](Pool::for_dynamic) —
    /// disjoint chunks covering the range exactly once — but claims hit a
    /// per-worker cache-padded slot instead of one shared cursor, and a
    /// drained worker steals half of the largest remaining block. On a
    /// [pinned](Pool::new_pinned) team the thief scans near victims (same
    /// core, then same package) before far ones and the near/far split is
    /// traced. Ranges beyond the `u32` packing space fall back to the
    /// shared cursor.
    pub fn for_stealing<F>(&self, len: usize, chunk: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        if len > u32::MAX as usize {
            return self.for_dynamic(len, chunk, f);
        }
        let ranges = StealRanges::new(len, self.threads);
        let rec = self.tracer();
        let plan = self.plan.as_deref();
        self.run(|tid| {
            let mut claims = 0u64;
            let mut attempts = 0u64;
            let mut wins = 0u64;
            let mut near_wins = 0u64;
            let mut far_wins = 0u64;
            loop {
                while let Some(range) = ranges.claim_local(tid, chunk) {
                    if trace::COMPILED {
                        claims += 1;
                    }
                    f(tid, range);
                }
                // Fault-injection hook for mid-steal panics: a thief dying
                // here has drained its own slot but not yet touched a
                // victim, the hardest spot for the disjointness invariant.
                crate::faults::fire("par.steal", tid);
                let stolen = match plan {
                    Some(p) => {
                        let (order, near) = p.victims(tid);
                        ranges.steal_ordered(tid, chunk, order, near)
                    }
                    None => ranges.steal(tid, chunk).map(|r| (r, false)),
                };
                match stolen {
                    Some((range, from_near)) => {
                        if trace::COMPILED {
                            attempts += 1;
                            wins += 1;
                            claims += 1;
                            if plan.is_some() {
                                if from_near {
                                    near_wins += 1;
                                } else {
                                    far_wins += 1;
                                }
                            }
                        }
                        f(tid, range)
                    }
                    None => {
                        if trace::COMPILED {
                            attempts += 1;
                        }
                        break;
                    }
                }
            }
            if let Some(r) = rec {
                r.count(tid, trace::Counter::ChunksClaimed, claims);
                r.count(tid, trace::Counter::StealsAttempted, attempts);
                r.count(tid, trace::Counter::StealsWon, wins);
                r.count(tid, trace::Counter::StealsNear, near_wins);
                r.count(tid, trace::Counter::StealsFar, far_wins);
            }
        });
    }

    /// Parallel for over `0..len` dispatching on the scheduling policy:
    /// [`for_dynamic`](Pool::for_dynamic) for [`Sched::Dynamic`],
    /// [`for_stealing`](Pool::for_stealing) for [`Sched::Stealing`]. Both
    /// run through [`run`](Pool::run), so `try_run`/[`contain`] fault
    /// containment applies identically.
    pub fn for_sched<F>(&self, sched: Sched, len: usize, chunk: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        match sched {
            Sched::Dynamic => self.for_dynamic(len, chunk, f),
            Sched::Stealing => self.for_stealing(len, chunk, f),
        }
    }

    /// Parallel for over `0..len` with contiguous static block partitioning —
    /// the equivalent of `schedule(static)`.
    pub fn for_static<F>(&self, len: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let t = self.threads;
        self.run(|tid| {
            let lo = len * tid / t;
            let hi = len * (tid + 1) / t;
            if lo < hi {
                f(tid, lo..hi);
            }
        });
    }

    /// Parallel map-reduce over `0..len` with dynamic chunking: `map`
    /// produces a value per chunk, `fold` combines values within a thread,
    /// and the per-thread results are reduced on the caller after the join
    /// (an OpenMP `reduction` clause).
    ///
    /// `fold` must be associative for the result to be well-defined; it
    /// need not be commutative across threads because the final reduction
    /// runs in thread-id order.
    pub fn reduce<T, M, F>(&self, len: usize, chunk: usize, identity: T, map: M, fold: F) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize, Range<usize>) -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        let partials: Vec<Mutex<T>> = (0..self.threads)
            .map(|_| Mutex::new(identity.clone()))
            .collect();
        let cursor = ChunkCursor::new(len, chunk);
        self.run(|tid| {
            let mut acc = identity.clone();
            while let Some(range) = cursor.claim() {
                acc = fold(acc, map(tid, range));
            }
            *lock(&partials[tid]) = acc;
        });
        partials
            .into_iter()
            .map(|m| m.into_inner().unwrap_or_else(PoisonError::into_inner))
            .fold(identity, &fold)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = lock(&self.shared.state);
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = lock(&shared.state);
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    let job = state.job.as_ref().expect("epoch advanced without job");
                    break Job { f: job.f };
                }
                state = shared
                    .work_cv
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        // SAFETY: `try_run` keeps the closure alive until `remaining` drops
        // to zero, which only happens after this call returns.
        let f = unsafe { &*job.f };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(tid)));

        let mut state = lock(&shared.state);
        if let Err(payload) = result {
            state.panics.push((tid, payload));
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let hit = AtomicUsize::new(0);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.into_inner(), 1);
    }

    #[test]
    fn every_thread_runs_exactly_once() {
        let pool = Pool::new(8);
        let counts: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            counts[tid].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn regions_are_reusable() {
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.into_inner(), 400);
    }

    #[test]
    fn for_dynamic_covers_range() {
        let pool = Pool::new(4);
        let n = 10_007;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.for_dynamic(n, 13, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_static_covers_range_in_blocks() {
        let pool = Pool::new(3);
        let n = 100;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.for_static(n, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_static_handles_more_threads_than_items() {
        let pool = Pool::new(8);
        let marks: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.for_static(3, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_a_noop() {
        let pool = Pool::new(4);
        pool.for_dynamic(0, 64, |_, _| panic!("must not be called"));
        pool.for_static(0, |_, _| panic!("must not be called"));
        pool.for_stealing(0, 64, |_, _| panic!("must not be called"));
    }

    #[test]
    fn for_stealing_covers_range() {
        let pool = Pool::new(4);
        let n = 10_007;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.for_stealing(n, 13, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_sched_dispatches_both_policies() {
        let pool = Pool::new(3);
        for sched in crate::Sched::all() {
            let n = 997;
            let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.for_sched(sched, n, 8, |_tid, range| {
                for i in range {
                    marks[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
                "exactly-once violated under {sched}"
            );
        }
    }

    #[test]
    fn contain_catches_stealing_region_panic() {
        let pool = Pool::new(4);
        let err = contain(|| {
            pool.for_stealing(1000, 7, |_tid, range| {
                if range.contains(&500) {
                    panic!("stealing fault");
                }
            });
        })
        .expect_err("panic under stealing must be contained");
        assert!(err.first_message().contains("fault") || err.count() >= 1);
        // Team and scheduler stay usable for the next region.
        let total = AtomicUsize::new(0);
        pool.for_stealing(100, 9, |_, r| {
            total.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 100);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn master_panic_propagates() {
        let pool = Pool::new(2);
        pool.run(|tid| {
            if tid == 0 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "pool worker")]
    fn worker_panic_propagates() {
        let pool = Pool::new(2);
        pool.run(|tid| {
            if tid == 1 {
                panic!("worker boom");
            }
        });
    }

    #[test]
    fn pool_survives_worker_panic() {
        let pool = Pool::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("first region");
                }
            });
        }));
        assert!(caught.is_err());
        // The team must still be usable afterwards.
        let total = AtomicUsize::new(0);
        pool.run(|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 2);
    }

    #[test]
    fn try_run_reports_worker_panic_without_unwinding() {
        let pool = Pool::new(4);
        let err = pool
            .try_run(|tid| {
                if tid == 2 {
                    panic!("injected at tid 2");
                }
            })
            .expect_err("panic must be reported");
        assert_eq!(err.count(), 1);
        assert_eq!(err.threads(), vec![2]);
        assert!(err.first_message().contains("injected at tid 2"));
        // The team survives and the next region is clean.
        let total = AtomicUsize::new(0);
        pool.try_run(|_| {
            total.fetch_add(1, Ordering::Relaxed);
        })
        .expect("clean region after fault");
        assert_eq!(total.into_inner(), 4);
    }

    #[test]
    fn try_run_captures_all_panicking_members() {
        let pool = Pool::new(4);
        let err = pool
            .try_run(|tid| {
                if tid % 2 == 0 {
                    panic!("even thread {tid}");
                }
            })
            .expect_err("panics must be reported");
        assert_eq!(err.threads(), vec![0, 2]);
        // Master is first, so its payload leads the report.
        assert!(err.first_message().contains("thread 0"));
    }

    #[test]
    fn try_run_single_thread_contains_master_panic() {
        let pool = Pool::new(1);
        let err = pool
            .try_run(|_| panic!("inline"))
            .expect_err("inline panic must be contained");
        assert_eq!(err.threads(), vec![0]);
        pool.try_run(|_| {}).expect("pool survives");
    }

    #[test]
    fn contain_catches_nested_region_panic() {
        let pool = Pool::new(2);
        let err = contain(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("kernel fault");
                }
            });
        })
        .expect_err("region panic must be contained");
        assert!(
            err.first_message().contains("pool worker"),
            "summary message expected, got: {}",
            err.first_message()
        );
        // Both the containment wrapper and the pool remain usable.
        contain(|| pool.run(|_| {})).expect("clean region after containment");
    }

    #[test]
    fn contain_passes_through_result() {
        assert_eq!(contain(|| 41 + 1).unwrap(), 42);
    }

    #[test]
    fn zero_threads_is_clamped() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn tracer_counts_dynamic_chunks_and_busy_time() {
        let mut pool = Pool::new(4);
        let rec = Arc::new(trace::Recorder::new(4));
        pool.set_tracer(Arc::clone(&rec));
        let n = 1000;
        let chunk = 16;
        pool.for_dynamic(n, chunk, |_tid, _r| {});
        let totals = rec.totals();
        assert_eq!(
            totals.get(trace::Counter::ChunksClaimed),
            (n as u64).div_ceil(chunk as u64)
        );
        // Every team member ran one region span with busy time.
        let regions = rec
            .events()
            .iter()
            .filter(|(_, e)| e.kind == trace::SpanKind::Region)
            .count();
        assert_eq!(regions, 4);
        assert!(totals.get(trace::Counter::BusyNs) > 0);
    }

    #[test]
    fn pinned_pool_runs_and_reports_status() {
        let mut pool = Pool::new_pinned(4);
        assert_eq!(pool.threads(), 4);
        // On Linux pinning succeeds; elsewhere it cleanly reports false.
        // Either way the team must schedule correctly with near-first
        // stealing and split the steal counter into near + far.
        let rec = Arc::new(trace::Recorder::new(4));
        pool.set_tracer(Arc::clone(&rec));
        let n = 10_007;
        let covered = AtomicUsize::new(0);
        pool.for_stealing(n, 13, |_tid, r| {
            covered.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(covered.into_inner(), n);
        let totals = rec.totals();
        assert_eq!(
            totals.get(trace::Counter::StealsNear) + totals.get(trace::Counter::StealsFar),
            totals.get(trace::Counter::StealsWon),
            "near/far split partitions the wins on a pinned team"
        );
        assert!(!Pool::new(2).pinned(), "unpinned pools report false");
    }

    #[test]
    fn tracer_counts_steal_attempts_and_wins() {
        let mut pool = Pool::new(4);
        let rec = Arc::new(trace::Recorder::new(4));
        pool.set_tracer(Arc::clone(&rec));
        let n = 10_007;
        let covered = AtomicUsize::new(0);
        pool.for_stealing(n, 13, |_tid, r| {
            covered.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(covered.into_inner(), n);
        let totals = rec.totals();
        // Every claimed range is counted, local or stolen; every member
        // ends with one failed steal attempt, so attempts ≥ wins and
        // attempts ≥ team size.
        assert!(totals.get(trace::Counter::ChunksClaimed) > 0);
        assert!(totals.get(trace::Counter::StealsAttempted) >= 4);
        assert!(
            totals.get(trace::Counter::StealsAttempted) >= totals.get(trace::Counter::StealsWon)
        );
    }

    #[test]
    fn panicking_worker_still_flushes_busy_span() {
        let mut pool = Pool::new(3);
        let rec = Arc::new(trace::Recorder::new(3));
        pool.set_tracer(Arc::clone(&rec));
        let err = pool
            .try_run(|tid| {
                if tid == 1 {
                    panic!("injected");
                }
            })
            .expect_err("panic must be contained");
        assert_eq!(err.threads(), vec![1]);
        // The faulted member's unwind ran its BusyGuard: all 3 members
        // have a region span, so the exported trace stays well-formed.
        let mut span_tids: Vec<usize> = rec
            .events()
            .iter()
            .filter(|(_, e)| e.kind == trace::SpanKind::Region)
            .map(|(tid, _)| *tid)
            .collect();
        span_tids.sort_unstable();
        assert_eq!(span_tids, vec![0, 1, 2]);
        let json = trace::chrome_trace_json(&rec, "fault-test");
        trace::reader::ChromeTrace::parse(&json).expect("trace parses after fault");
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn undersized_recorder_is_rejected() {
        let mut pool = Pool::new(4);
        pool.set_tracer(Arc::new(trace::Recorder::new(2)));
    }

    #[test]
    fn reduce_sums_range() {
        let pool = Pool::new(4);
        let sum = pool.reduce(
            10_001,
            64,
            0usize,
            |_tid, range| range.sum::<usize>(),
            |a, b| a + b,
        );
        assert_eq!(sum, 10_001 * 10_000 / 2);
    }

    #[test]
    fn reduce_empty_range_is_identity() {
        let pool = Pool::new(3);
        let v = pool.reduce(0, 8, 42usize, |_, _| panic!("no chunks"), |a, b| a.max(b));
        assert_eq!(v, 42);
    }

    #[test]
    fn reduce_max_over_blocks() {
        let data: Vec<u32> = (0..5000).map(|i| (i * 2654435761u64 % 9973) as u32).collect();
        let pool = Pool::new(4);
        let expect = *data.iter().max().unwrap();
        let got = pool.reduce(
            data.len(),
            37,
            0u32,
            |_tid, range| data[range].iter().copied().max().unwrap_or(0),
            |a, b| a.max(b),
        );
        assert_eq!(got, expect);
    }
}
