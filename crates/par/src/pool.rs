//! Fork/join thread pool with caller participation.

use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

use crate::cursor::ChunkCursor;

/// Type-erased parallel region body: `f(thread_id)`.
///
/// The pointer is only dereferenced between the publish in
/// [`Pool::run`] and the completion barrier at the end of the same call, so
/// the `'static` lifetime produced by the transmute in `run` never outlives
/// the borrow it erases.
struct Job {
    f: *const (dyn Fn(usize) + Sync),
}

// SAFETY: the closure behind `f` is `Sync`, and `Job` values are only read
// (never mutated) by workers while the owning `run` call keeps the referent
// alive; see `Job` docs.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct State {
    /// Monotonically increasing region id; workers run once per increment.
    epoch: u64,
    /// Current region body, valid while `remaining > 0`.
    job: Option<Job>,
    /// Workers that have not yet finished the current region.
    remaining: usize,
    /// Number of workers that panicked in the current region.
    panics: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers that a new epoch (or shutdown) is available.
    work_cv: Condvar,
    /// Signals the caller that all workers finished the region.
    done_cv: Condvar,
}

/// A fixed team of threads executing fork/join parallel regions.
///
/// A pool of `t` logical threads owns `t - 1` OS worker threads; the caller
/// of [`run`](Pool::run) participates as thread 0, exactly like the OpenMP
/// master thread. `Pool::new(1)` therefore spawns nothing and runs regions
/// inline, which makes single-thread baselines free of scheduling overhead.
///
/// Threads are created once and reused for every region, so per-region cost
/// is one mutex round-trip plus condvar wakeups — negligible against the
/// millisecond-scale coloring iterations it schedules.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl Pool {
    /// Creates a pool with `threads` logical threads (minimum 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panics: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("par-worker-{tid}"))
                    .spawn(move || worker_loop(&shared, tid))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self {
            shared,
            workers,
            threads,
        }
    }

    /// Number of logical threads in the team (including the caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `f(thread_id)` once on every team member and waits for all
    /// of them — an `omp parallel` region.
    ///
    /// Panics if any team member panics.
    pub fn run<F>(&self, f: F)
    where
        F: Fn(usize) + Sync,
    {
        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: the erased borrow is dead before `run` returns — workers
        // signal completion via `remaining`/`done_cv`, and we block on that
        // barrier below before `f` can be dropped.
        let job = Job {
            f: unsafe {
                std::mem::transmute::<
                    *const (dyn Fn(usize) + Sync),
                    *const (dyn Fn(usize) + Sync + 'static),
                >(f_ref as *const _)
            },
        };

        if self.threads > 1 {
            let mut state = self.shared.state.lock();
            debug_assert_eq!(state.remaining, 0, "nested/overlapping run detected");
            state.job = Some(job);
            state.epoch += 1;
            state.remaining = self.threads - 1;
            state.panics = 0;
            drop(state);
            self.shared.work_cv.notify_all();
        }

        // The caller is thread 0.
        let master = panic::catch_unwind(AssertUnwindSafe(|| f(0)));

        let worker_panics = if self.threads > 1 {
            let mut state = self.shared.state.lock();
            while state.remaining > 0 {
                self.shared.done_cv.wait(&mut state);
            }
            state.job = None;
            state.panics
        } else {
            0
        };

        if let Err(payload) = master {
            panic::resume_unwind(payload);
        }
        assert!(
            worker_panics == 0,
            "{worker_panics} pool worker(s) panicked in parallel region"
        );
    }

    /// Parallel for over `0..len` with dynamic chunk scheduling — the
    /// equivalent of `#pragma omp parallel for schedule(dynamic, chunk)`.
    ///
    /// `f(thread_id, range)` is invoked for disjoint chunks covering the
    /// range exactly once.
    pub fn for_dynamic<F>(&self, len: usize, chunk: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let cursor = ChunkCursor::new(len, chunk);
        self.run(|tid| {
            while let Some(range) = cursor.claim() {
                f(tid, range);
            }
        });
    }

    /// Parallel for over `0..len` with contiguous static block partitioning —
    /// the equivalent of `schedule(static)`.
    pub fn for_static<F>(&self, len: usize, f: F)
    where
        F: Fn(usize, Range<usize>) + Sync,
    {
        let t = self.threads;
        self.run(|tid| {
            let lo = len * tid / t;
            let hi = len * (tid + 1) / t;
            if lo < hi {
                f(tid, lo..hi);
            }
        });
    }

    /// Parallel map-reduce over `0..len` with dynamic chunking: `map`
    /// produces a value per chunk, `fold` combines values within a thread,
    /// and the per-thread results are reduced on the caller after the join
    /// (an OpenMP `reduction` clause).
    ///
    /// `fold` must be associative for the result to be well-defined; it
    /// need not be commutative across threads because the final reduction
    /// runs in thread-id order.
    pub fn reduce<T, M, F>(&self, len: usize, chunk: usize, identity: T, map: M, fold: F) -> T
    where
        T: Send + Sync + Clone,
        M: Fn(usize, Range<usize>) -> T + Sync,
        F: Fn(T, T) -> T + Sync,
    {
        use std::sync::Mutex;
        let partials: Vec<Mutex<T>> = (0..self.threads)
            .map(|_| Mutex::new(identity.clone()))
            .collect();
        let cursor = ChunkCursor::new(len, chunk);
        self.run(|tid| {
            let mut acc = identity.clone();
            while let Some(range) = cursor.claim() {
                acc = fold(acc, map(tid, range));
            }
            *partials[tid].lock().unwrap() = acc;
        });
        partials
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .fold(identity, &fold)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock();
            state.shutdown = true;
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, tid: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock();
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen_epoch {
                    seen_epoch = state.epoch;
                    let job = state.job.as_ref().expect("epoch advanced without job");
                    break Job { f: job.f };
                }
                shared.work_cv.wait(&mut state);
            }
        };

        // SAFETY: `run` keeps the closure alive until `remaining` drops to
        // zero, which only happens after this call returns.
        let f = unsafe { &*job.f };
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(tid)));

        let mut state = shared.state.lock();
        if result.is_err() {
            state.panics += 1;
        }
        state.remaining -= 1;
        if state.remaining == 0 {
            shared.done_cv.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = Pool::new(1);
        let hit = AtomicUsize::new(0);
        pool.run(|tid| {
            assert_eq!(tid, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.into_inner(), 1);
    }

    #[test]
    fn every_thread_runs_exactly_once() {
        let pool = Pool::new(8);
        let counts: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|tid| {
            counts[tid].fetch_add(1, Ordering::Relaxed);
        });
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn regions_are_reusable() {
        let pool = Pool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..100 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.into_inner(), 400);
    }

    #[test]
    fn for_dynamic_covers_range() {
        let pool = Pool::new(4);
        let n = 10_007;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.for_dynamic(n, 13, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_static_covers_range_in_blocks() {
        let pool = Pool::new(3);
        let n = 100;
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        pool.for_static(n, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn for_static_handles_more_threads_than_items() {
        let pool = Pool::new(8);
        let marks: Vec<AtomicUsize> = (0..3).map(|_| AtomicUsize::new(0)).collect();
        pool.for_static(3, |_tid, range| {
            for i in range {
                marks[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_range_is_a_noop() {
        let pool = Pool::new(4);
        pool.for_dynamic(0, 64, |_, _| panic!("must not be called"));
        pool.for_static(0, |_, _| panic!("must not be called"));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn master_panic_propagates() {
        let pool = Pool::new(2);
        pool.run(|tid| {
            if tid == 0 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "pool worker")]
    fn worker_panic_propagates() {
        let pool = Pool::new(2);
        pool.run(|tid| {
            if tid == 1 {
                panic!("worker boom");
            }
        });
    }

    #[test]
    fn pool_survives_worker_panic() {
        let pool = Pool::new(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(|tid| {
                if tid == 1 {
                    panic!("first region");
                }
            });
        }));
        assert!(caught.is_err());
        // The team must still be usable afterwards.
        let total = AtomicUsize::new(0);
        pool.run(|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.into_inner(), 2);
    }

    #[test]
    fn zero_threads_is_clamped() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
    }

    #[test]
    fn reduce_sums_range() {
        let pool = Pool::new(4);
        let sum = pool.reduce(
            10_001,
            64,
            0usize,
            |_tid, range| range.sum::<usize>(),
            |a, b| a + b,
        );
        assert_eq!(sum, 10_001 * 10_000 / 2);
    }

    #[test]
    fn reduce_empty_range_is_identity() {
        let pool = Pool::new(3);
        let v = pool.reduce(0, 8, 42usize, |_, _| panic!("no chunks"), |a, b| a.max(b));
        assert_eq!(v, 42);
    }

    #[test]
    fn reduce_max_over_blocks() {
        let data: Vec<u32> = (0..5000).map(|i| (i * 2654435761u64 % 9973) as u32).collect();
        let pool = Pool::new(4);
        let expect = *data.iter().max().unwrap();
        let got = pool.reduce(
            data.len(),
            37,
            0u32,
            |_tid, range| data[range].iter().copied().max().unwrap_or(0),
            |a, b| a.max(b),
        );
        assert_eq!(got, expect);
    }
}
