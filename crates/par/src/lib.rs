//! `par` — a minimal OpenMP-style fork/join thread pool.
//!
//! The coloring algorithms in this workspace were designed around OpenMP's
//! `#pragma omp parallel for schedule(dynamic, chunk)` construct: a fixed
//! team of threads repeatedly grabs fixed-size chunks of an index range from
//! a shared cursor. Rayon's work-stealing scheduler deliberately hides the
//! chunk size and team shape, but the paper's evaluation (`V-V` vs `V-V-64`)
//! shows the chunk size is itself a first-class experimental knob. This crate
//! therefore provides a small, dependency-light pool that mirrors the OpenMP
//! execution model:
//!
//! * [`Pool::new(t)`](Pool::new) creates a team of `t` logical threads — the
//!   caller participates as thread 0 and `t - 1` workers are spawned.
//! * [`Pool::run`] executes one closure on every team member (an
//!   `omp parallel` region).
//! * [`Pool::for_dynamic`] iterates an index range with dynamic chunking
//!   (`schedule(dynamic, chunk)`).
//! * [`Pool::for_static`] iterates with contiguous block partitioning
//!   (`schedule(static)`).
//! * [`Pool::for_stealing`] iterates with per-worker blocks plus
//!   randomized half-stealing ([`StealRanges`]) — same exactly-once
//!   contract as `for_dynamic` without the shared-cursor cache line —
//!   and [`Pool::for_sched`] dispatches on a [`Sched`] policy value.
//! * [`ThreadScratch`] provides cache-padded per-thread workspaces that live
//!   across parallel regions — the paper's "allocated only once, never reset"
//!   forbidden-color arrays depend on this.
//! * [`Pool::try_run`] and [`contain`] capture panics at the region/phase
//!   boundary as [`RegionPanic`] values instead of aborting, and
//!   [`faults`] provides the fail-point registry the fault-injection tests
//!   use to prove that recovery works.
//! * [`Pool::set_tracer`] installs a `trace::Recorder` on the team: regions
//!   then record per-thread busy time and the chunked drivers count claims
//!   and steals. Without a recorder (the default) the hooks cost one branch
//!   per region — see the `trace` crate for the full cost model.
//! * [`Pool::new_pinned`] and [`topo`] add a CPU-topology model: team
//!   members are pinned core-major (graceful no-op off Linux) and drained
//!   thieves steal from near victims first.
//!
//! # Example
//!
//! ```
//! use par::Pool;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = Pool::new(4);
//! let sum = AtomicUsize::new(0);
//! pool.for_dynamic(1000, 64, |_tid, range| {
//!     let local: usize = range.sum();
//!     sum.fetch_add(local, Ordering::Relaxed);
//! });
//! assert_eq!(sum.into_inner(), 1000 * 999 / 2);
//! ```

mod cursor;
pub mod faults;
mod padded;
mod pool;
mod scratch;
mod steal;
pub mod topo;

pub use cursor::ChunkCursor;
pub use padded::CachePadded;
pub use pool::{contain, Pool, RegionPanic};
pub use scratch::ThreadScratch;
pub use steal::{Sched, StealRanges};

/// Returns the number of logical CPUs available to this process.
///
/// Falls back to 1 if the parallelism cannot be queried.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
