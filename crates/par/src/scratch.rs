//! Cache-padded per-thread scratch storage.

use std::cell::UnsafeCell;

use crate::padded::CachePadded;

/// One value of `T` per team thread, each on its own cache line.
///
/// The coloring algorithms keep a forbidden-color stamp array and a local
/// work queue per thread, allocated once and reused across every parallel
/// region (the paper's "never actually emptied or reset" optimization).
/// `ThreadScratch` owns those buffers; inside a region each thread borrows
/// its own slot mutably via [`with`](ThreadScratch::with).
///
/// Safety model: slot `tid` may only be accessed from the team member with
/// that id, and the pool guarantees a single member per id per region, so no
/// two mutable borrows of the same slot can coexist. The fork/join barriers
/// in [`crate::Pool::run`] order cross-region accesses.
pub struct ThreadScratch<T> {
    slots: Vec<CachePadded<UnsafeCell<T>>>,
}

// SAFETY: access is partitioned by thread id (one thread per slot at a time)
// and regions are separated by the pool's fork/join barriers.
unsafe impl<T: Send> Sync for ThreadScratch<T> {}

impl<T> ThreadScratch<T> {
    /// Builds `threads` slots using `init(tid)`.
    pub fn new(threads: usize, mut init: impl FnMut(usize) -> T) -> Self {
        Self {
            slots: (0..threads.max(1))
                .map(|tid| CachePadded::new(UnsafeCell::new(init(tid))))
                .collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the scratch set is empty (never true: minimum one slot).
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Runs `f` with a mutable borrow of thread `tid`'s slot.
    ///
    /// Must only be called from the team member that owns `tid`; calling it
    /// with another thread's id from inside a parallel region is a data race
    /// the type system cannot see (hence the `unsafe` block it encapsulates
    /// — the contract is enforced by convention at every call site, which
    /// always passes the `tid` handed to the closure by the pool).
    #[inline]
    pub fn with<R>(&self, tid: usize, f: impl FnOnce(&mut T) -> R) -> R {
        // SAFETY: per the documented contract, `tid` identifies the calling
        // team member, so this is the only live reference to the slot.
        let slot = unsafe { &mut *self.slots[tid].get() };
        f(slot)
    }

    /// Mutable iteration over all slots — requires `&mut self`, so it can
    /// only happen outside parallel regions (e.g. to merge thread-local
    /// queues after a join).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().map(|c| c.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pool;

    #[test]
    fn slots_are_independent() {
        let pool = Pool::new(4);
        let scratch = ThreadScratch::new(4, |tid| tid * 100);
        pool.run(|tid| {
            scratch.with(tid, |v| *v += tid);
        });
        let mut scratch = scratch;
        let values: Vec<usize> = scratch.iter_mut().map(|v| *v).collect();
        assert_eq!(values, vec![0, 101, 202, 303]);
    }

    #[test]
    fn reused_across_regions() {
        let pool = Pool::new(3);
        let scratch = ThreadScratch::new(3, |_| Vec::<usize>::new());
        for round in 0..5 {
            pool.run(|tid| {
                scratch.with(tid, |v| v.push(round));
            });
        }
        let mut scratch = scratch;
        for v in scratch.iter_mut() {
            assert_eq!(v, &vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn minimum_one_slot() {
        let scratch = ThreadScratch::new(0, |_| 7u32);
        assert_eq!(scratch.len(), 1);
        assert!(!scratch.is_empty());
    }
}
