//! Shared chunk cursor used by dynamic scheduling.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// An atomic cursor over `0..len` that hands out fixed-size chunks.
///
/// This is the heart of `schedule(dynamic, chunk)`: every claim is a single
/// `fetch_add`, so contention is one cache line regardless of team size.
/// `Relaxed` ordering is sufficient — the chunks themselves carry no payload,
/// and the fork/join barriers in [`crate::Pool`] provide the happens-before
/// edges for the data the chunks index into.
#[derive(Debug)]
pub struct ChunkCursor {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkCursor {
    /// Creates a cursor over `0..len` yielding chunks of at most `chunk`
    /// indices. A `chunk` of 0 is treated as 1.
    pub fn new(len: usize, chunk: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk, or `None` when the range is exhausted.
    #[inline]
    pub fn claim(&self) -> Option<Range<usize>> {
        // Exhaustion check with a plain load first: without it, a team
        // spinning on an exhausted cursor keeps `fetch_add`-ing, growing
        // the counter without bound and ping-ponging the cache line
        // between cores. With the check, each thread performs at most one
        // wasted `fetch_add` (a race on the last chunk), so the counter
        // stays ≤ `len + threads × chunk`.
        if self.next.load(Ordering::Relaxed) >= self.len {
            return None;
        }
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }

    /// Observes the raw claim counter with `Acquire` ordering — the
    /// read-side of the observability API, used by the bounded-growth
    /// invariants in tests and by debug assertions that compare the
    /// cursor's progress against trace counter totals.
    ///
    /// Claims use `fetch_add`, which is a read-modify-write the `Acquire`
    /// load synchronizes with, so a value read here is never ahead of the
    /// claims it reports — unlike the `Relaxed` load this replaced, which
    /// made mid-region assertions racy under [`crate::Sched::Stealing`]'s
    /// mixed cursor/steal fallback. The fast-path claim itself stays
    /// `Relaxed`.
    pub fn issued(&self) -> usize {
        self.next.load(Ordering::Acquire)
    }

    /// Total length of the underlying range.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying range is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Configured chunk size.
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claims_cover_range_exactly_once() {
        let cursor = ChunkCursor::new(103, 10);
        let mut seen = [false; 103];
        while let Some(range) = cursor.claim() {
            for i in range {
                assert!(!seen[i], "index {i} claimed twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn zero_chunk_is_clamped_to_one() {
        let cursor = ChunkCursor::new(3, 0);
        assert_eq!(cursor.chunk(), 1);
        assert_eq!(cursor.claim(), Some(0..1));
        assert_eq!(cursor.claim(), Some(1..2));
        assert_eq!(cursor.claim(), Some(2..3));
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn empty_range_yields_nothing() {
        let cursor = ChunkCursor::new(0, 64);
        assert!(cursor.is_empty());
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn chunk_larger_than_range() {
        let cursor = ChunkCursor::new(5, 100);
        assert_eq!(cursor.claim(), Some(0..5));
        assert_eq!(cursor.claim(), None);
    }

    #[test]
    fn exhausted_cursor_counter_stays_bounded() {
        // Regression: claims after exhaustion must not keep growing the
        // counter (unbounded `fetch_add` = cache-line ping-pong on idle
        // threads). Single-threaded, the post-exhaustion counter must not
        // move at all.
        let cursor = ChunkCursor::new(10, 4);
        while cursor.claim().is_some() {}
        let settled = cursor.issued();
        for _ in 0..1000 {
            assert_eq!(cursor.claim(), None);
        }
        assert_eq!(cursor.issued(), settled, "counter grew after exhaustion");
    }

    #[test]
    fn concurrent_exhausted_claims_bounded_by_team_size() {
        let threads = 8;
        let cursor = ChunkCursor::new(1000, 7);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    // Drain, then hammer the exhausted cursor.
                    while cursor.claim().is_some() {}
                    for _ in 0..10_000 {
                        assert!(cursor.claim().is_none());
                    }
                });
            }
        });
        // Each thread can overshoot by at most one chunk.
        assert!(
            cursor.issued() <= cursor.len() + threads * cursor.chunk(),
            "counter {} not bounded",
            cursor.issued()
        );
    }

    #[test]
    fn concurrent_claims_partition_range() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cursor = ChunkCursor::new(100_000, 7);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    let mut local = 0usize;
                    while let Some(r) = cursor.claim() {
                        local += r.len();
                    }
                    total.fetch_add(local, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.into_inner(), 100_000);
    }
}
