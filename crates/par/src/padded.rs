//! Cache-line padding (in-repo replacement for `crossbeam::utils::CachePadded`).

use std::ops::{Deref, DerefMut};

/// Aligns (and therefore pads) a value to 128 bytes so that adjacent values
/// in a collection never share a cache line.
///
/// 128 bytes covers the two common cases: 64-byte lines on most x86-64 and
/// Arm cores, and the 128-byte spatial-prefetch pairs of modern Intel parts
/// and Apple silicon. The cost is memory only, and the values guarded here
/// (per-thread scratch slots, reduction partials) are O(threads), so the
/// waste is bounded.
#[derive(Clone, Copy, Debug, Default, Eq, PartialEq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps a value, padding it to its own cache line.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        // A slice of padded values puts each on a distinct line.
        let v = [CachePadded::new(0u64), CachePadded::new(1u64)];
        let a = &v[0] as *const _ as usize;
        let b = &v[1] as *const _ as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(vec![1, 2, 3]);
        p.push(4);
        assert_eq!(p.len(), 4);
        assert_eq!(p.into_inner(), vec![1, 2, 3, 4]);
    }
}
