//! Work-stealing chunk scheduler.
//!
//! The shared [`ChunkCursor`](crate::ChunkCursor) behind
//! [`Pool::for_dynamic`](crate::Pool::for_dynamic) funnels every claim of
//! every thread through one atomic counter. At small chunk sizes on large
//! teams that cache line becomes the bottleneck of the coloring kernels'
//! hot loop. This module provides the alternative: each worker starts with
//! a contiguous block of the range (so the common case is an uncontended
//! CAS on its *own* cache-padded slot) and, once drained, steals half of
//! the largest remaining block from a victim. Chunk size keeps its meaning
//! — it is the claim granularity within a block — so the paper's `V-V` vs
//! `V-V-64` knob carries over unchanged.
//!
//! The scheduler is *observationally equivalent* to the cursor: every index
//! of `0..len` is handed to exactly one `f(tid, range)` invocation. Only
//! the assignment of indices to threads differs, which the speculative
//! coloring algorithms tolerate by construction.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::padded::CachePadded;

/// Chunk-scheduling policy for the parallel-for loops of the hot kernels.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Sched {
    /// Shared-cursor dynamic scheduling (`schedule(dynamic, chunk)`), the
    /// deterministic-claim-order fallback.
    #[default]
    Dynamic,
    /// Per-worker blocks with randomized work stealing.
    Stealing,
}

impl Sched {
    /// All policies, for benchmark/test matrices.
    pub fn all() -> [Sched; 2] {
        [Sched::Dynamic, Sched::Stealing]
    }

    /// Stable label used in CLI flags and benchmark records.
    pub fn label(self) -> &'static str {
        match self {
            Sched::Dynamic => "dynamic",
            Sched::Stealing => "steal",
        }
    }

    /// Parses a label (accepts `dynamic`/`cursor` and `steal`/`stealing`).
    pub fn from_name(name: &str) -> Option<Sched> {
        match name {
            "dynamic" | "cursor" => Some(Sched::Dynamic),
            "steal" | "stealing" | "work-stealing" => Some(Sched::Stealing),
            _ => None,
        }
    }
}

impl std::fmt::Display for Sched {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Packs a half-open range into one atomic word: `lo << 32 | hi`.
///
/// Both bounds must fit `u32`; [`crate::Pool::for_stealing`] falls back to
/// the shared cursor for longer ranges. Packing makes "claim a chunk" and
/// "steal the upper half" single CAS operations — no per-slot locks, no
/// torn lo/hi pairs.
#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(word: u64) -> (u32, u32) {
    ((word >> 32) as u32, word as u32)
}

/// Weyl-sequence multiplier used to decorrelate victim-scan start offsets.
const SCAN_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Per-worker remaining ranges with half-stealing.
///
/// Every slot holds one half-open sub-range of `0..len`; the slots'
/// remaining ranges are pairwise disjoint at all times, and an index
/// removed from a slot (claimed by its owner) never reappears in any slot.
/// That invariant is what makes the owner's plain `store` of a freshly
/// stolen block into its own empty slot safe: a stale CAS by another thief
/// can only succeed if the slot holds the exact packed value the thief
/// observed, and a fully-claimed range can never be re-published.
#[derive(Debug)]
pub struct StealRanges {
    slots: Vec<CachePadded<AtomicU64>>,
}

impl StealRanges {
    /// Block-partitions `0..len` over `threads` slots (same split as
    /// `schedule(static)`).
    ///
    /// # Panics
    /// Panics if `len` exceeds the `u32` packing space.
    pub fn new(len: usize, threads: usize) -> Self {
        assert!(len <= u32::MAX as usize, "StealRanges requires len < 2^32");
        let t = threads.max(1);
        let slots = (0..t)
            .map(|tid| {
                let lo = (len * tid / t) as u32;
                let hi = (len * (tid + 1) / t) as u32;
                CachePadded::new(AtomicU64::new(pack(lo, hi)))
            })
            .collect();
        Self { slots }
    }

    /// Claims the next `chunk` indices from the caller's own block, or
    /// `None` when the block is drained. Contention on this CAS is rare:
    /// only thieves touch a foreign slot, and only to halve it.
    #[inline]
    pub fn claim_local(&self, tid: usize, chunk: usize) -> Option<Range<usize>> {
        let slot = &self.slots[tid];
        let chunk = chunk.max(1) as u64;
        let mut cur = slot.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            let new_lo = (lo as u64 + chunk).min(hi as u64) as u32;
            match slot.compare_exchange_weak(
                cur,
                pack(new_lo, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo as usize..new_lo as usize),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Steals work for a drained thief: scans the other slots from a
    /// salted offset, halves the *largest* remaining block, publishes the
    /// stolen block (minus one chunk) into the thief's own slot and
    /// returns that first chunk. Returns `None` only when every slot was
    /// observed empty in a full scan.
    pub fn steal(&self, thief: usize, chunk: usize) -> Option<Range<usize>> {
        let t = self.slots.len();
        let chunk = chunk.max(1);
        let mut round = 0u64;
        loop {
            // Salted start offset so simultaneously-starved thieves scan
            // different victims first instead of convoying on one slot.
            let offset =
                (SCAN_SALT.wrapping_mul(thief as u64 + round + 1) % t as u64) as usize;
            let mut best: Option<(usize, u64, u32, u32)> = None;
            let mut best_rem = 0u32;
            for k in 0..t {
                let v = (offset + k) % t;
                if v == thief {
                    continue;
                }
                let word = self.slots[v].load(Ordering::Acquire);
                let (lo, hi) = unpack(word);
                let rem = hi.saturating_sub(lo);
                if rem > best_rem {
                    best_rem = rem;
                    best = Some((v, word, lo, hi));
                }
            }
            let (victim, observed, lo, hi) = best?;
            // Take the upper half; a tail at or below one chunk is taken
            // whole (halving it would just bounce it between slots).
            let mid = if (hi - lo) as usize <= chunk {
                lo
            } else {
                lo + (hi - lo) / 2
            };
            if self.slots[victim]
                .compare_exchange(
                    observed,
                    pack(lo, mid),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                let claim_hi = (mid as usize + chunk).min(hi as usize) as u32;
                if claim_hi < hi {
                    // Own slot is empty and, by the disjointness invariant
                    // (see type docs), no concurrent CAS can hit it: a
                    // plain store publishes the remainder.
                    self.slots[thief].store(pack(claim_hi, hi), Ordering::Release);
                }
                return Some(mid as usize..claim_hi as usize);
            }
            // The victim raced us (claimed or was stolen from); rescan.
            round += 1;
        }
    }

    /// [`steal`](Self::steal) with an explicit victim preference: scans
    /// `order[..near]` (the near tier) for the largest block first and
    /// falls back to `order[near..]` only when every near victim was
    /// observed empty. Returns the stolen chunk and whether it came from
    /// the near tier. Same coverage contract as `steal`: `None` only when
    /// all victims were observed empty in one full scan.
    ///
    /// `order` is the thief's victim list (typically from
    /// [`topo::PinPlan::victims`](crate::topo::PinPlan::victims)); entries
    /// equal to `thief` or out of range are skipped, so a plan built for a
    /// different team size degrades to a shorter scan instead of a panic.
    pub fn steal_ordered(
        &self,
        thief: usize,
        chunk: usize,
        order: &[usize],
        near: usize,
    ) -> Option<(Range<usize>, bool)> {
        let chunk = chunk.max(1);
        let near = near.min(order.len());
        loop {
            let mut from_near = true;
            let mut best = self.best_victim(thief, &order[..near]);
            if best.is_none() {
                from_near = false;
                best = self.best_victim(thief, &order[near..]);
            }
            let (victim, observed, lo, hi) = best?;
            // Upper-half split, identical to `steal`.
            let mid = if (hi - lo) as usize <= chunk {
                lo
            } else {
                lo + (hi - lo) / 2
            };
            if self.slots[victim]
                .compare_exchange(
                    observed,
                    pack(lo, mid),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                let claim_hi = (mid as usize + chunk).min(hi as usize) as u32;
                if claim_hi < hi {
                    // See `steal`: the disjointness invariant makes this
                    // plain publish into the thief's empty slot safe.
                    self.slots[thief].store(pack(claim_hi, hi), Ordering::Release);
                }
                return Some((mid as usize..claim_hi as usize, from_near));
            }
            // Raced; rescan both tiers.
        }
    }

    /// Largest remaining block among `victims` (ids equal to `thief` or
    /// out of range are skipped).
    fn best_victim(&self, thief: usize, victims: &[usize]) -> Option<(usize, u64, u32, u32)> {
        let mut best = None;
        let mut best_rem = 0u32;
        for &v in victims {
            if v == thief || v >= self.slots.len() {
                continue;
            }
            let word = self.slots[v].load(Ordering::Acquire);
            let (lo, hi) = unpack(word);
            let rem = hi.saturating_sub(lo);
            if rem > best_rem {
                best_rem = rem;
                best = Some((v, word, lo, hi));
            }
        }
        best
    }

    /// Sum of remaining (unclaimed) indices — test/debug aid.
    pub fn remaining(&self) -> usize {
        self.slots
            .iter()
            .map(|s| {
                let (lo, hi) = unpack(s.load(Ordering::Acquire));
                hi.saturating_sub(lo) as usize
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn drain(ranges: &StealRanges, tid: usize, chunk: usize, seen: &mut Vec<usize>) {
        loop {
            while let Some(r) = ranges.claim_local(tid, chunk) {
                seen.extend(r);
            }
            match ranges.steal(tid, chunk) {
                Some(r) => seen.extend(r),
                None => break,
            }
        }
    }

    #[test]
    fn single_slot_covers_range() {
        let ranges = StealRanges::new(103, 1);
        let mut seen = Vec::new();
        drain(&ranges, 0, 10, &mut seen);
        seen.sort_unstable();
        assert_eq!(seen, (0..103).collect::<Vec<_>>());
        assert_eq!(ranges.remaining(), 0);
    }

    #[test]
    fn sequential_multi_slot_drain_covers_exactly_once() {
        // One "thread" drains its own block then steals everything else.
        let ranges = StealRanges::new(1000, 7);
        let mut seen = Vec::new();
        drain(&ranges, 3, 13, &mut seen);
        seen.sort_unstable();
        assert_eq!(seen, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_yields_nothing() {
        let ranges = StealRanges::new(0, 4);
        assert_eq!(ranges.claim_local(2, 8), None);
        assert_eq!(ranges.steal(2, 8), None);
    }

    #[test]
    fn steal_halves_the_largest_block() {
        let ranges = StealRanges::new(1024, 2);
        // Thief 1 drains its own half first.
        while ranges.claim_local(1, 64).is_some() {}
        let stolen = ranges.steal(1, 64).expect("victim has work");
        // Victim 0 held [0, 512); the thief takes the upper half's first
        // chunk and publishes the rest into its own slot.
        assert_eq!(stolen, 256..320);
        assert_eq!(ranges.remaining(), 1024 - 512 - 64);
        // The published remainder is now claimable locally.
        assert_eq!(ranges.claim_local(1, 64), Some(320..384));
    }

    #[test]
    fn concurrent_drain_partitions_range() {
        let threads = 8;
        let n = 100_000;
        let ranges = StealRanges::new(n, threads);
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let ranges = &ranges;
                let marks = &marks;
                s.spawn(move || loop {
                    while let Some(r) = ranges.claim_local(tid, 7) {
                        for i in r {
                            marks[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    match ranges.steal(tid, 7) {
                        Some(r) => {
                            for i in r {
                                marks[i].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        None => break,
                    }
                });
            }
        });
        assert!(
            marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
            "every index must be claimed exactly once"
        );
        assert_eq!(ranges.remaining(), 0);
    }

    #[test]
    fn skewed_load_is_rebalanced_by_stealing() {
        // All work in slot 0; the other slots start empty and must steal.
        let threads = 4;
        let n = 10_000;
        let ranges = StealRanges::new(n, 1);
        // Reshape: one slot with everything + empty thief slots.
        let ranges = {
            let mut slots = vec![ranges.slots.into_iter().next().unwrap()];
            for _ in 1..threads {
                slots.push(CachePadded::new(AtomicU64::new(pack(0, 0))));
            }
            StealRanges { slots }
        };
        let claimed: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let (ranges, marks, claimed) = (&ranges, &marks, &claimed);
                s.spawn(move || loop {
                    while let Some(r) = ranges.claim_local(tid, 16) {
                        claimed[tid].fetch_add(r.len(), Ordering::Relaxed);
                        for i in r {
                            marks[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    match ranges.steal(tid, 16) {
                        Some(r) => {
                            claimed[tid].fetch_add(r.len(), Ordering::Relaxed);
                            for i in r {
                                marks[i].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        None => break,
                    }
                });
            }
        });
        assert!(marks.iter().all(|m| m.load(Ordering::Relaxed) == 1));
        let total: usize = claimed.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn steal_ordered_prefers_near_tier() {
        let ranges = StealRanges::new(900, 3);
        while ranges.claim_local(0, 16).is_some() {}
        // Near tier = slot 1 only: the steal must come from it even though
        // slot 2 holds the same amount of work.
        let (r, from_near) = ranges
            .steal_ordered(0, 16, &[1, 2], 1)
            .expect("victims have work");
        assert!(from_near);
        assert!(r.start >= 300 && r.end <= 600, "stolen from slot 1: {r:?}");
    }

    #[test]
    fn steal_ordered_falls_back_to_far_tier() {
        let ranges = StealRanges::new(900, 3);
        while ranges.claim_local(0, 16).is_some() {}
        while ranges.claim_local(1, 16).is_some() {}
        let (r, from_near) = ranges
            .steal_ordered(0, 16, &[1, 2], 1)
            .expect("far victim has work");
        assert!(!from_near, "near tier empty: must report a far steal");
        assert!(r.start >= 600, "stolen from slot 2: {r:?}");
        // All empty → None, like `steal`.
        while ranges.claim_local(2, 16).is_some() {}
        while ranges.claim_local(0, 16).is_some() {}
        assert!(ranges.steal_ordered(0, 16, &[1, 2], 1).is_none());
    }

    #[test]
    fn steal_ordered_skips_bogus_victims() {
        let ranges = StealRanges::new(100, 2);
        while ranges.claim_local(1, 8).is_some() {}
        // Self, out-of-range, and valid ids mixed: only the valid victim
        // is considered.
        let (r, _) = ranges
            .steal_ordered(1, 8, &[1, 99, 0], 2)
            .expect("slot 0 has work");
        assert!(r.end <= 50);
    }

    #[test]
    fn steal_ordered_drain_covers_exactly_once() {
        let threads = 4;
        let n = 50_000;
        let ranges = StealRanges::new(n, threads);
        let marks: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..threads {
                let ranges = &ranges;
                let marks = &marks;
                let order: Vec<usize> = (0..threads).filter(|&t| t != tid).collect();
                s.spawn(move || loop {
                    while let Some(r) = ranges.claim_local(tid, 7) {
                        for i in r {
                            marks[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    match ranges.steal_ordered(tid, 7, &order, 1) {
                        Some((r, _)) => {
                            for i in r {
                                marks[i].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        None => break,
                    }
                });
            }
        });
        assert!(
            marks.iter().all(|m| m.load(Ordering::Relaxed) == 1),
            "every index must be claimed exactly once"
        );
        assert_eq!(ranges.remaining(), 0);
    }

    #[test]
    fn sched_labels_roundtrip() {
        for s in Sched::all() {
            assert_eq!(Sched::from_name(s.label()), Some(s));
            assert_eq!(s.to_string(), s.label());
        }
        assert_eq!(Sched::from_name("cursor"), Some(Sched::Dynamic));
        assert_eq!(Sched::from_name("stealing"), Some(Sched::Stealing));
        assert_eq!(Sched::from_name("bogus"), None);
        assert_eq!(Sched::default(), Sched::Dynamic);
    }

    #[test]
    #[should_panic(expected = "len < 2^32")]
    fn oversized_range_is_rejected() {
        let _ = StealRanges::new(u32::MAX as usize + 1, 2);
    }
}
