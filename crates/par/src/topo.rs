//! CPU topology model and thread pinning for locality-aware scheduling.
//!
//! [`Pool::new_pinned`](crate::Pool::new_pinned) uses this module to place
//! worker `tid`s onto CPUs in *core-major* order (siblings of one physical
//! core first, then the next core, then the next package). Because the
//! steal scheduler's initial block partition assigns chunk blocks by `tid`
//! ([`StealRanges::new`](crate::StealRanges::new)), consecutive blocks of
//! the iteration space land on physically adjacent cores — which is what
//! makes a locality-preserving vertex relabeling (the `LocalityOrder`
//! traversal order) translate into shared-cache reuse. The same model
//! yields per-thief *victim orders*: a drained worker scans near victims
//! (same core, then same package) before far ones, so stolen blocks stay
//! in the closest shared cache level that still has work.
//!
//! Everything degrades gracefully: if sysfs is unreadable the topology is
//! flat (every CPU its own core on one package), and if the
//! `sched_setaffinity` syscall is unavailable (non-Linux, seccomp)
//! [`pin_current_thread`] reports `false` and the pool simply runs
//! unpinned — the victim orders are still used, they are just a heuristic
//! rather than a guarantee.

use std::sync::atomic::{AtomicBool, Ordering};

/// One logical CPU's position in the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpuInfo {
    /// Logical CPU id (the `sched_setaffinity` bit index).
    pub cpu: usize,
    /// Physical core id within the package (SMT siblings share it).
    pub core: usize,
    /// Physical package (socket) id.
    pub package: usize,
}

/// The machine's CPU topology, sorted core-major.
#[derive(Clone, Debug)]
pub struct CpuTopology {
    cpus: Vec<CpuInfo>,
}

impl CpuTopology {
    /// Reads the topology from sysfs, falling back to a flat model (one
    /// package, one core per CPU) when sysfs is unavailable.
    pub fn detect() -> CpuTopology {
        Self::from_sysfs("/sys/devices/system/cpu").unwrap_or_else(Self::flat)
    }

    /// A flat topology over the scheduler-visible parallelism: every CPU
    /// its own core on package 0. Near/far distinctions collapse (all
    /// victims are equally near), which keeps the steal order well-defined.
    pub fn flat() -> CpuTopology {
        let n = std::thread::available_parallelism().map_or(1, |n| n.get());
        CpuTopology {
            cpus: (0..n)
                .map(|cpu| CpuInfo {
                    cpu,
                    core: cpu,
                    package: 0,
                })
                .collect(),
        }
    }

    fn from_sysfs(root: &str) -> Option<CpuTopology> {
        let mut cpus = Vec::new();
        for cpu in 0.. {
            let dir = format!("{root}/cpu{cpu}/topology");
            let core = match std::fs::read_to_string(format!("{dir}/core_id")) {
                Ok(s) => s.trim().parse().ok()?,
                Err(_) => break,
            };
            let package = std::fs::read_to_string(format!("{dir}/physical_package_id"))
                .ok()?
                .trim()
                .parse()
                .ok()?;
            cpus.push(CpuInfo { cpu, core, package });
        }
        if cpus.is_empty() {
            return None;
        }
        // Core-major: SMT siblings adjacent, cores of one package adjacent.
        cpus.sort_by_key(|c| (c.package, c.core, c.cpu));
        Some(CpuTopology { cpus })
    }

    /// Number of logical CPUs in the model.
    pub fn len(&self) -> usize {
        self.cpus.len()
    }

    /// Whether the model is empty (never true for detected topologies).
    pub fn is_empty(&self) -> bool {
        self.cpus.is_empty()
    }

    /// The CPU assigned to worker `tid`: position `tid` of the core-major
    /// order, wrapping when the team is larger than the machine.
    pub fn cpu_for_worker(&self, tid: usize) -> CpuInfo {
        self.cpus[tid % self.cpus.len()]
    }

    /// Steal-victim order for `thief` in a team of `threads`: every other
    /// tid sorted near-first (same core, then same package, then rest,
    /// stable by tid distance within a tier). Returns the order and the
    /// near-tier length (victims on the thief's package).
    pub fn victim_order(&self, thief: usize, threads: usize) -> (Vec<usize>, usize) {
        let me = self.cpu_for_worker(thief);
        let mut order: Vec<usize> = (0..threads).filter(|&t| t != thief).collect();
        order.sort_by_key(|&t| {
            let v = self.cpu_for_worker(t);
            let tier = if v.package != me.package {
                2
            } else if v.core != me.core || v.cpu == me.cpu {
                // Same package. `v.cpu == me.cpu` means the team wrapped
                // around the machine and two tids share one CPU — treat as
                // package-near, not core-near, to avoid self-preference.
                1
            } else {
                0
            };
            (tier, t.abs_diff(thief))
        });
        let near = order
            .iter()
            .filter(|&&t| self.cpu_for_worker(t).package == me.package)
            .count();
        (order, near)
    }
}

/// A pinning + victim-order plan for one team, built once per pool.
#[derive(Debug)]
pub struct PinPlan {
    /// CPU assigned to each tid.
    cpus: Vec<usize>,
    /// Per-tid `(victim order, near-tier length)`.
    victims: Vec<(Vec<usize>, usize)>,
    /// Stays `true` while every attempted pin has succeeded.
    ok: AtomicBool,
}

impl PinPlan {
    /// Plans placement for a team of `threads` on `topo`.
    pub fn new(topo: &CpuTopology, threads: usize) -> PinPlan {
        let threads = threads.max(1);
        PinPlan {
            cpus: (0..threads).map(|t| topo.cpu_for_worker(t).cpu).collect(),
            victims: (0..threads).map(|t| topo.victim_order(t, threads)).collect(),
            ok: AtomicBool::new(true),
        }
    }

    /// Pins the calling thread to tid's planned CPU, recording failure.
    pub fn pin(&self, tid: usize) {
        if !pin_current_thread(self.cpus[tid]) {
            self.ok.store(false, Ordering::Relaxed);
        }
    }

    /// Whether every pin attempted so far succeeded (false on platforms
    /// without `sched_setaffinity` — the plan still orders victims).
    pub fn pinned(&self) -> bool {
        self.ok.load(Ordering::Relaxed)
    }

    /// tid's steal-victim order and near-tier length.
    pub fn victims(&self, tid: usize) -> (&[usize], usize) {
        let (order, near) = &self.victims[tid];
        (order, *near)
    }
}

/// Maximum CPU id representable in the affinity mask below (1024 CPUs,
/// the kernel's historical `CONFIG_NR_CPUS` ceiling for a 128-byte mask).
const MASK_CPUS: usize = 1024;

/// Pins the calling thread to a single CPU via a raw `sched_setaffinity`
/// syscall (the workspace is dependency-free, so no `libc`). Returns
/// `true` on success; `false` on unsupported platforms, out-of-range CPU
/// ids, or kernel rejection (e.g. a cpuset that excludes the CPU) — the
/// caller treats any `false` as "run unpinned".
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
pub fn pin_current_thread(cpu: usize) -> bool {
    if cpu >= MASK_CPUS {
        return false;
    }
    let mut mask = [0u64; MASK_CPUS / 64];
    mask[cpu / 64] = 1u64 << (cpu % 64);
    let ret: isize;
    // SAFETY: sched_setaffinity(0, len, mask) only *reads* `mask` (len
    // bytes, in bounds) and affects scheduler state of the calling thread;
    // pid 0 means "current thread". The asm clobbers follow the Linux
    // syscall ABI for each architecture.
    #[cfg(target_arch = "x86_64")]
    unsafe {
        core::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") core::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        core::arch::asm!(
            "svc #0",
            in("x8") 122isize, // __NR_sched_setaffinity
            inlateout("x0") 0usize => ret,
            in("x1") core::mem::size_of_val(&mask),
            in("x2") mask.as_ptr(),
            options(nostack),
        );
    }
    ret == 0
}

/// Fallback for platforms without the raw syscall: reports "not pinned".
#[cfg(not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"))))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_socket_smt() -> CpuTopology {
        // 2 packages × 2 cores × 2 SMT threads; deliberately interleaved
        // cpu ids (Linux often enumerates SMT siblings half a machine
        // apart) to prove the sort normalizes them core-major.
        let mut cpus = Vec::new();
        for pkg in 0..2 {
            for core in 0..2 {
                for smt in 0..2 {
                    cpus.push(CpuInfo {
                        cpu: pkg * 2 + core + smt * 4,
                        core,
                        package: pkg,
                    });
                }
            }
        }
        let mut t = CpuTopology { cpus };
        t.cpus.sort_by_key(|c| (c.package, c.core, c.cpu));
        t
    }

    #[test]
    fn detect_never_returns_empty() {
        let t = CpuTopology::detect();
        assert!(!t.is_empty());
        // Assignment wraps instead of panicking on oversubscribed teams.
        let _ = t.cpu_for_worker(t.len() * 3 + 1);
    }

    #[test]
    fn core_major_order_groups_siblings() {
        let t = two_socket_smt();
        // tids 0,1 are SMT siblings of package 0 core 0; tid 4 starts
        // package 1.
        assert_eq!(t.cpu_for_worker(0).core, t.cpu_for_worker(1).core);
        assert_eq!(t.cpu_for_worker(0).package, 0);
        assert_eq!(t.cpu_for_worker(4).package, 1);
    }

    #[test]
    fn victim_order_prefers_near_tiers() {
        let t = two_socket_smt();
        let (order, near) = t.victim_order(0, 8);
        assert_eq!(order.len(), 7);
        // First victim: the SMT sibling (tid 1). Near tier: package 0 =
        // tids 1..4.
        assert_eq!(order[0], 1);
        assert_eq!(near, 3);
        let near_set: Vec<usize> = order[..near].to_vec();
        assert!(near_set.iter().all(|&v| v < 4), "near tier is package 0: {near_set:?}");
        // Far tier is exactly package 1.
        assert!(order[near..].iter().all(|&v| v >= 4));
    }

    #[test]
    fn victim_order_covers_every_other_tid() {
        let t = CpuTopology::flat();
        for threads in [1, 2, 5] {
            for thief in 0..threads {
                let (order, near) = t.victim_order(thief, threads);
                assert_eq!(order.len(), threads - 1);
                assert!(near <= order.len());
                assert!(!order.contains(&thief));
                let mut sorted = order.clone();
                sorted.sort_unstable();
                let expect: Vec<usize> = (0..threads).filter(|&x| x != thief).collect();
                assert_eq!(sorted, expect);
            }
        }
    }

    #[test]
    fn flat_topology_is_all_near() {
        let t = CpuTopology::flat();
        if t.len() >= 2 {
            let (order, near) = t.victim_order(0, t.len());
            assert_eq!(near, order.len(), "one package: everything is near");
        }
    }

    #[test]
    fn oversubscribed_team_wraps_without_core_near_self() {
        let t = two_socket_smt();
        // 16 tids on 8 CPUs: tid 8 shares tid 0's CPU. Its victim order
        // must still cover all 15 others and put package-0 tids first.
        let (order, near) = t.victim_order(8, 16);
        assert_eq!(order.len(), 15);
        assert!(near >= 7, "at least the package-0 tids are near");
    }

    #[test]
    fn pin_plan_reports_status_and_orders() {
        let plan = PinPlan::new(&CpuTopology::detect(), 4);
        assert!(plan.pinned(), "no pin attempted yet");
        let (order, near) = plan.victims(2);
        assert_eq!(order.len(), 3);
        assert!(near <= 3);
        // Pinning the current thread to a planned CPU must either succeed
        // (Linux) or cleanly report false — never panic.
        plan.pin(0);
        let _ = plan.pinned();
    }

    #[test]
    fn out_of_range_cpu_is_rejected() {
        assert!(!pin_current_thread(MASK_CPUS));
        assert!(!pin_current_thread(usize::MAX));
    }
}
