//! Fail-point registry for fault-injection testing.
//!
//! Kernels call [`fire`] at strategic points (e.g. `bgpc.color`,
//! `bgpc.conflict`); production runs pay a single relaxed atomic load per
//! call. Tests [`arm`] a point with a [`FaultAction`] to inject a panic or
//! a stall into a specific phase — optionally on a specific thread — and
//! then assert that the containment machinery ([`crate::Pool::try_run`],
//! [`crate::contain`]) recovers.
//!
//! Points are keyed by name and the registry is process-global, so
//! concurrently running tests must use distinct point names (or distinct
//! test binaries). [`reset`] clears everything and is intended for
//! single-binary harnesses.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// What an armed fail point does when it fires.
#[derive(Clone, Copy, Debug)]
pub enum FaultAction {
    /// Panic with a recognizable `fail point` message.
    Panic,
    /// Sleep for the given duration (stall injection).
    Stall(Duration),
    /// Service-layer structured injection: the call site truncates its
    /// write after `n` bytes (a torn frame / torn cache entry). Only
    /// meaningful through [`consume`] — sites that can't truncate treat a
    /// firing `Torn` like [`FaultAction::Panic`] when it arrives via
    /// [`fire`].
    Torn(usize),
}

struct Armed {
    point: &'static str,
    action: FaultAction,
    /// Firings left; an exhausted point stays registered for hit counting.
    remaining: usize,
    /// Restrict firing to one team thread id.
    thread: Option<usize>,
    hits: usize,
}

/// Fast-path gate: false until the first `arm` call of the process, so the
/// hot kernels never touch the registry mutex in production.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

fn registry() -> MutexGuard<'static, Vec<Armed>> {
    static REG: OnceLock<Mutex<Vec<Armed>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(Vec::new()))
        .lock()
        // A fired Panic action unwinds through test code that may hold no
        // other locks; the registry itself is only mutated atomically, so
        // recover from poisoning.
        .unwrap_or_else(PoisonError::into_inner)
}

/// Arms `point` to fire `action` once, on any thread.
pub fn arm(point: &'static str, action: FaultAction) {
    arm_with(point, action, 1, None);
}

/// Arms `point` to fire `action` up to `times` times, optionally only on
/// team thread `thread`. Re-arming a point replaces its previous spec.
pub fn arm_with(point: &'static str, action: FaultAction, times: usize, thread: Option<usize>) {
    let mut reg = registry();
    reg.retain(|a| a.point != point);
    reg.push(Armed {
        point,
        action,
        remaining: times,
        thread,
        hits: 0,
    });
    ANY_ARMED.store(true, Ordering::SeqCst);
}

/// Removes `point` from the registry (no-op if absent).
pub fn disarm(point: &'static str) {
    let mut reg = registry();
    reg.retain(|a| a.point != point);
    if reg.is_empty() {
        ANY_ARMED.store(false, Ordering::SeqCst);
    }
}

/// Clears every armed point.
pub fn reset() {
    let mut reg = registry();
    reg.clear();
    ANY_ARMED.store(false, Ordering::SeqCst);
}

/// Number of times `point` has fired since it was (last) armed.
pub fn hits(point: &str) -> usize {
    registry()
        .iter()
        .find(|a| a.point == point)
        .map(|a| a.hits)
        .unwrap_or(0)
}

/// Evaluation site: kernels call this inside their parallel loops.
///
/// Costs one relaxed atomic load unless something is armed anywhere in the
/// process; a firing `Panic` action unwinds with a message naming the point
/// and thread.
#[inline]
pub fn fire(point: &'static str, tid: usize) {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return;
    }
    fire_slow(point, tid);
}

#[cold]
fn fire_slow(point: &'static str, tid: usize) {
    let Some(action) = take_action(point, tid) else {
        return;
    };
    match action {
        FaultAction::Panic | FaultAction::Torn(_) => {
            panic!("fail point `{point}` fired on thread {tid}")
        }
        FaultAction::Stall(d) => std::thread::sleep(d),
    }
}

/// Claims one firing of `point` without executing it, for call sites that
/// implement the action themselves (the serving layer's torn-frame and
/// aborted-cache-write injections: write `n` bytes, then fail). Returns
/// `None` — at the cost of one relaxed load — when nothing is armed, so
/// production paths stay as cheap as [`fire`].
#[inline]
pub fn consume(point: &'static str, tid: usize) -> Option<FaultAction> {
    if !ANY_ARMED.load(Ordering::Relaxed) {
        return None;
    }
    take_action(point, tid)
}

/// Decrements and returns the armed action for `point`, honoring the
/// thread filter and remaining-count bookkeeping shared by [`fire`] and
/// [`consume`].
#[cold]
fn take_action(point: &'static str, tid: usize) -> Option<FaultAction> {
    let mut reg = registry();
    let armed = reg.iter_mut().find(|a| a.point == point)?;
    if armed.remaining == 0 {
        return None;
    }
    if let Some(want) = armed.thread {
        if want != tid {
            return None;
        }
    }
    armed.remaining -= 1;
    armed.hits += 1;
    Some(armed.action)
    // Guard dropped on return: never panic while holding the registry lock.
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    // Each test uses unique point names: the registry is process-global and
    // tests run concurrently.

    #[test]
    fn unarmed_point_is_a_noop() {
        fire("test.noop", 0);
        assert_eq!(hits("test.noop"), 0);
    }

    #[test]
    fn armed_panic_fires_once() {
        arm("test.once", FaultAction::Panic);
        let err = catch_unwind(|| fire("test.once", 3)).expect_err("must fire");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("test.once") && msg.contains("thread 3"), "{msg}");
        // Exhausted: the second evaluation passes through.
        fire("test.once", 3);
        assert_eq!(hits("test.once"), 1);
        disarm("test.once");
    }

    #[test]
    fn thread_filter_restricts_firing() {
        arm_with("test.tid", FaultAction::Panic, 1, Some(2));
        fire("test.tid", 0);
        fire("test.tid", 1);
        assert_eq!(hits("test.tid"), 0);
        let err = catch_unwind(|| fire("test.tid", 2));
        assert!(err.is_err());
        assert_eq!(hits("test.tid"), 1);
        disarm("test.tid");
    }

    #[test]
    fn stall_sleeps_without_panicking() {
        arm("test.stall", FaultAction::Stall(Duration::from_millis(20)));
        let t0 = std::time::Instant::now();
        fire("test.stall", 0);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(hits("test.stall"), 1);
        disarm("test.stall");
    }

    #[test]
    fn multi_shot_arming_fires_repeatedly() {
        arm_with("test.multi", FaultAction::Stall(Duration::ZERO), 3, None);
        for _ in 0..5 {
            fire("test.multi", 0);
        }
        assert_eq!(hits("test.multi"), 3);
        disarm("test.multi");
    }

    #[test]
    fn consume_returns_action_without_executing() {
        arm_with("test.consume", FaultAction::Torn(5), 2, None);
        assert!(matches!(
            consume("test.consume", 0),
            Some(FaultAction::Torn(5))
        ));
        assert!(matches!(
            consume("test.consume", 1),
            Some(FaultAction::Torn(5))
        ));
        // Exhausted after `times` firings; hits are shared with `fire`.
        assert!(consume("test.consume", 0).is_none());
        assert_eq!(hits("test.consume"), 2);
        disarm("test.consume");
        assert!(consume("test.consume", 0).is_none());
    }

    #[test]
    fn consume_honors_thread_filter() {
        arm_with("test.consume.tid", FaultAction::Panic, 1, Some(3));
        assert!(consume("test.consume.tid", 0).is_none());
        assert!(matches!(
            consume("test.consume.tid", 3),
            Some(FaultAction::Panic)
        ));
        disarm("test.consume.tid");
    }

    #[test]
    fn torn_action_via_fire_panics() {
        arm("test.torn.fire", FaultAction::Torn(8));
        let err = catch_unwind(|| fire("test.torn.fire", 1)).expect_err("must fire");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("test.torn.fire"), "{msg}");
        disarm("test.torn.fire");
    }

    #[test]
    fn disarm_clears_point() {
        arm("test.disarm", FaultAction::Panic);
        disarm("test.disarm");
        fire("test.disarm", 0); // must not panic
        assert_eq!(hits("test.disarm"), 0);
    }

    #[test]
    fn pool_worker_fault_is_contained() {
        let pool = crate::Pool::new(4);
        arm_with("test.pool", FaultAction::Panic, 1, Some(1));
        let err = pool
            .try_run(|tid| fire("test.pool", tid))
            .expect_err("armed point must panic on tid 1");
        assert_eq!(err.threads(), vec![1]);
        assert!(err.first_message().contains("test.pool"));
        disarm("test.pool");
        pool.try_run(|_| {}).expect("pool survives injection");
    }

    #[test]
    fn catch_unwind_is_unwind_safe_enough() {
        // `fire` may unwind mid-region; AssertUnwindSafe mirrors the pool's
        // own containment and must observe consistent registry state after.
        arm("test.state", FaultAction::Panic);
        let _ = catch_unwind(AssertUnwindSafe(|| fire("test.state", 0)));
        assert_eq!(hits("test.state"), 1);
        disarm("test.state");
    }
}
