//! Microbenchmark: forbidden-set representations head to head.
//!
//! `StampSet` (one stamp word per color) against the word-packed
//! `BitStampSet` (one `u64` bitmap word per 64 colors, per-word stamps) on
//! the operations the coloring kernels actually issue: epoch reset +
//! insert bursts, dense first-fit scans, and the net kernels'
//! reverse-first-fit runs. Plain timing loops on `bench::timing` — no
//! external harness.

use bench::timing::Group;
use bgpc::{BitStampSet, ForbiddenSet, StampSet};

const SAMPLES: usize = 20;

/// Builds a set with every color in `0..colors` forbidden except
/// `colors − 1`: a first-fit from 0 must walk the whole dense prefix.
fn dense<F: ForbiddenSet>(colors: usize) -> F {
    let mut fb = F::with_capacity(colors);
    fb.advance();
    for c in 0..colors as i32 - 1 {
        fb.insert(c);
    }
    fb
}

/// Dense first-fit: the pathological-but-common case late in a coloring
/// run, when nearly every small color is taken.
fn dense_first_fit() {
    for &colors in &[256usize, 1024, 4096] {
        let group = Group::new(&format!("first_fit_dense_{colors}"), SAMPLES);
        let stamp: StampSet = dense(colors);
        let bits: BitStampSet = dense(colors);
        let reps = 2000usize;
        group.bench("StampSet", || {
            let mut acc = 0i64;
            for _ in 0..reps {
                acc += stamp.first_fit_from(0) as i64;
            }
            acc
        });
        group.bench("BitStampSet", || {
            let mut acc = 0i64;
            for _ in 0..reps {
                acc += bits.first_fit_from(0) as i64;
            }
            acc
        });
    }
}

/// Reverse first-fit from the top of a dense interval — the inner step of
/// the net-based kernels (Algorithm 8).
fn dense_reverse_first_fit() {
    for &colors in &[256usize, 1024] {
        let group = Group::new(&format!("reverse_fit_dense_{colors}"), SAMPLES);
        let mut stamp = StampSet::with_capacity(colors);
        let mut bits = BitStampSet::with_capacity(colors);
        stamp.advance();
        bits.advance();
        // Forbid everything except color 0, so the reverse scan walks the
        // whole interval top-down.
        for c in 1..colors as i32 {
            stamp.insert(c);
            bits.insert(c);
        }
        let from = colors as i32 - 1;
        let reps = 2000usize;
        group.bench("StampSet", || {
            let mut acc = 0i64;
            for _ in 0..reps {
                acc += stamp.reverse_first_fit_from(from) as i64;
            }
            acc
        });
        group.bench("BitStampSet", || {
            let mut acc = 0i64;
            for _ in 0..reps {
                acc += bits.reverse_first_fit_from(from) as i64;
            }
            acc
        });
    }
}

/// The kernels' per-vertex cycle: advance, insert a neighborhood's worth
/// of colors, pick first-fit. Sparse sets — measures epoch-reset and
/// insert cost rather than scan length.
fn insert_cycle() {
    let group = Group::new("advance_insert_fit_cycle", SAMPLES);
    let colors = 512usize;
    let degree = 48i32;
    let reps = 2000usize;
    let mut stamp = StampSet::with_capacity(colors);
    group.bench("StampSet", move || {
        let mut acc = 0i64;
        for r in 0..reps as i32 {
            stamp.advance();
            for i in 0..degree {
                stamp.insert((i * 7 + r) % colors as i32);
            }
            acc += stamp.first_fit_from(0) as i64;
        }
        acc
    });
    let mut bits = BitStampSet::with_capacity(colors);
    group.bench("BitStampSet", move || {
        let mut acc = 0i64;
        for r in 0..reps as i32 {
            bits.advance();
            for i in 0..degree {
                bits.insert((i * 7 + r) % colors as i32);
            }
            acc += bits.first_fit_from(0) as i64;
        }
        acc
    });
}

fn main() {
    dense_first_fit();
    dense_reverse_first_fit();
    insert_cycle();
}
