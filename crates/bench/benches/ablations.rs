//! Ablation benches for the design choices DESIGN.md calls out:
//! dynamic chunk size, eager vs lazy conflict queues, the three net-based
//! coloring variants, balancing heuristics, and the stamp-marked forbidden
//! set versus a reset-per-vertex alternative.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bgpc::net::NetColoringVariant;
use bgpc::{Balance, Schedule};
use graph::{BipartiteGraph, Ordering};
use par::Pool;
use sparse::Dataset;

const SCALE: f64 = 0.004;
const SEED: u64 = 42;

fn instance() -> (BipartiteGraph, Vec<u32>) {
    let inst = Dataset::CoPapersDblp.build(SCALE, SEED);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    (g, order)
}

/// V-V vs V-V-64: the dynamic-chunk knob (paper's first optimization).
fn chunk_size(c: &mut Criterion) {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let mut group = c.benchmark_group("ablation_chunk_size");
    group.sample_size(10);
    for chunk in [1usize, 16, 64, 256] {
        let mut schedule = Schedule::v_v_64d();
        schedule.chunk = chunk;
        group.bench_function(BenchmarkId::from_parameter(chunk), |b| {
            b.iter(|| bgpc::color_bgpc(&g, &order, &schedule, &pool).num_colors)
        });
    }
    group.finish();
}

/// Eager shared queue vs lazy thread-private queues (the 64 → 64D step).
fn queue_strategy(c: &mut Criterion) {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let mut group = c.benchmark_group("ablation_conflict_queue");
    group.sample_size(10);
    group.bench_function("eager (V-V-64)", |b| {
        b.iter(|| bgpc::color_bgpc(&g, &order, &Schedule::v_v_64(), &pool).num_colors)
    });
    group.bench_function("lazy (V-V-64D)", |b| {
        b.iter(|| bgpc::color_bgpc(&g, &order, &Schedule::v_v_64d(), &pool).num_colors)
    });
    group.finish();
}

/// Algorithm 6 vs Algorithm 6 + reverse vs Algorithm 8 (Table I's axis).
fn net_variants(c: &mut Criterion) {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let mut group = c.benchmark_group("ablation_net_variant");
    group.sample_size(10);
    for (name, variant) in [
        ("alg6_first_fit", NetColoringVariant::SinglePassFirstFit),
        ("alg6_reverse", NetColoringVariant::SinglePassReverse),
        ("alg8_two_pass", NetColoringVariant::TwoPassReverse),
    ] {
        let schedule = Schedule::n1_n2().with_net_variant(variant);
        group.bench_function(name, |b| {
            b.iter(|| bgpc::color_bgpc(&g, &order, &schedule, &pool).num_colors)
        });
    }
    group.finish();
}

/// U vs B1 vs B2 on the headline schedule ("costless" claim of Table VI).
fn balancing(c: &mut Criterion) {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let mut group = c.benchmark_group("ablation_balance");
    group.sample_size(10);
    for balance in [Balance::Unbalanced, Balance::B1, Balance::B2] {
        let schedule = Schedule::n1_n2().with_balance(balance);
        group.bench_function(balance.label(), |b| {
            b.iter(|| bgpc::color_bgpc(&g, &order, &schedule, &pool).num_colors)
        });
    }
    group.finish();
}

/// Stamp-marked forbidden set vs a clear-per-vertex boolean set — the
/// "never reset" implementation detail of §III.
fn forbidden_set(c: &mut Criterion) {
    let (g, order) = instance();
    let mut group = c.benchmark_group("ablation_forbidden_set");
    group.sample_size(10);

    group.bench_function("stamp_set", |b| {
        b.iter(|| bgpc::seq::color_bgpc_seq(&g, &order).1)
    });
    group.bench_function("clear_per_vertex", |b| {
        // identical traversal, but resets a bool array per vertex
        b.iter(|| {
            let n = g.n_vertices();
            let mut colors = vec![-1i32; n];
            let mut forbidden = vec![false; g.max_net_size() + n + 1];
            let mut touched: Vec<usize> = Vec::new();
            for &w in &order {
                let wu = w as usize;
                for &v in g.nets(wu) {
                    for &u in g.vtxs(v as usize) {
                        if u != w {
                            let cu = colors[u as usize];
                            if cu >= 0 && !forbidden[cu as usize] {
                                forbidden[cu as usize] = true;
                                touched.push(cu as usize);
                            }
                        }
                    }
                }
                let mut col = 0usize;
                while forbidden[col] {
                    col += 1;
                }
                colors[wu] = col as i32;
                for &t in &touched {
                    forbidden[t] = false;
                }
                touched.clear();
            }
            colors[0]
        })
    });
    group.finish();
}

/// Ordering construction cost: natural is free, smallest-last pays the
/// quadratic-in-net-size pass (paper excludes it from coloring time).
fn ordering_cost(c: &mut Criterion) {
    let (g, _) = instance();
    let mut group = c.benchmark_group("ablation_ordering_cost");
    group.sample_size(10);
    for ordering in [Ordering::Natural, Ordering::LargestFirst, Ordering::SmallestLast] {
        group.bench_function(ordering.label(), |b| {
            b.iter(|| ordering.vertex_order_bgpc(&g).len())
        });
    }
    group.finish();
}

/// Jones–Plassmann vs the speculative framework (related work [23]–[25]).
fn jp_vs_speculative(c: &mut Criterion) {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let mut group = c.benchmark_group("ablation_jp_vs_speculative");
    group.sample_size(10);
    group.bench_function("jones_plassmann", |b| {
        b.iter(|| bgpc::jp::color_bgpc_jp(&g, &pool, SEED).num_colors)
    });
    group.bench_function("speculative_n1n2", |b| {
        b.iter(|| bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool).num_colors)
    });
    group.finish();
}

/// Cost of the iterative-recoloring post-pass relative to the coloring.
fn recolor_pass(c: &mut Criterion) {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let base = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
    let mut group = c.benchmark_group("ablation_recolor_pass");
    group.sample_size(10);
    group.bench_function("seq_pass", |b| {
        b.iter(|| {
            let mut colors = base.colors.clone();
            bgpc::recolor::reduce_colors_bgpc_seq(&g, &mut colors)
        })
    });
    group.bench_function("par_pass", |b| {
        b.iter(|| {
            let mut colors = base.colors.clone();
            bgpc::recolor::reduce_colors_bgpc(&g, &mut colors, &pool)
        })
    });
    group.finish();
}

/// BSP distributed baseline across rank counts.
fn distributed_bsp(c: &mut Criterion) {
    let (g, _) = instance();
    let mut group = c.benchmark_group("ablation_distributed_bsp");
    group.sample_size(10);
    for ranks in [1usize, 4, 16] {
        group.bench_function(BenchmarkId::from_parameter(ranks), |b| {
            b.iter(|| {
                let runner =
                    dist::DistRunner::new(&g, dist::Partition::block(g.n_vertices(), ranks));
                runner.run().num_colors
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    chunk_size,
    queue_strategy,
    net_variants,
    balancing,
    forbidden_set,
    ordering_cost,
    jp_vs_speculative,
    recolor_pass,
    distributed_bsp
);
criterion_main!(benches);
