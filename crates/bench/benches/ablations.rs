//! Ablation benches for the design choices DESIGN.md calls out:
//! dynamic chunk size, eager vs lazy conflict queues, the three net-based
//! coloring variants, balancing heuristics, and the stamp-marked forbidden
//! set versus a reset-per-vertex alternative. Plain timing loops on the
//! in-repo harness (`bench::timing`).

use bench::timing::Group;
use bgpc::net::NetColoringVariant;
use bgpc::{Balance, Schedule};
use graph::{BipartiteGraph, Ordering};
use par::Pool;
use sparse::Dataset;

const SCALE: f64 = 0.004;
const SEED: u64 = 42;
const SAMPLES: usize = 10;

fn instance() -> (BipartiteGraph, Vec<u32>) {
    let inst = Dataset::CoPapersDblp.build(SCALE, SEED);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    (g, order)
}

/// V-V vs V-V-64: the dynamic-chunk knob (paper's first optimization).
fn chunk_size() {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let group = Group::new("ablation_chunk_size", SAMPLES);
    for chunk in [1usize, 16, 64, 256] {
        let mut schedule = Schedule::v_v_64d();
        schedule.chunk = chunk;
        group.bench(&chunk.to_string(), || {
            bgpc::color_bgpc(&g, &order, &schedule, &pool).num_colors
        });
    }
}

/// Eager shared queue vs lazy thread-private queues (the 64 → 64D step).
fn queue_strategy() {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let group = Group::new("ablation_conflict_queue", SAMPLES);
    group.bench("eager (V-V-64)", || {
        bgpc::color_bgpc(&g, &order, &Schedule::v_v_64(), &pool).num_colors
    });
    group.bench("lazy (V-V-64D)", || {
        bgpc::color_bgpc(&g, &order, &Schedule::v_v_64d(), &pool).num_colors
    });
}

/// Algorithm 6 vs Algorithm 6 + reverse vs Algorithm 8 (Table I's axis).
fn net_variants() {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let group = Group::new("ablation_net_variant", SAMPLES);
    for (name, variant) in [
        ("alg6_first_fit", NetColoringVariant::SinglePassFirstFit),
        ("alg6_reverse", NetColoringVariant::SinglePassReverse),
        ("alg8_two_pass", NetColoringVariant::TwoPassReverse),
    ] {
        let schedule = Schedule::n1_n2().with_net_variant(variant);
        group.bench(name, || {
            bgpc::color_bgpc(&g, &order, &schedule, &pool).num_colors
        });
    }
}

/// U vs B1 vs B2 on the headline schedule ("costless" claim of Table VI).
fn balancing() {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let group = Group::new("ablation_balance", SAMPLES);
    for balance in [Balance::Unbalanced, Balance::B1, Balance::B2] {
        let schedule = Schedule::n1_n2().with_balance(balance);
        group.bench(balance.label(), || {
            bgpc::color_bgpc(&g, &order, &schedule, &pool).num_colors
        });
    }
}

/// Stamp-marked forbidden set vs a clear-per-vertex boolean set — the
/// "never reset" implementation detail of §III.
fn forbidden_set() {
    let (g, order) = instance();
    let group = Group::new("ablation_forbidden_set", SAMPLES);

    group.bench("stamp_set", || bgpc::seq::color_bgpc_seq(&g, &order).1);
    group.bench("clear_per_vertex", || {
        // identical traversal, but resets a bool array per vertex
        let n = g.n_vertices();
        let mut colors = vec![-1i32; n];
        let mut forbidden = vec![false; g.max_net_size() + n + 1];
        let mut touched: Vec<usize> = Vec::new();
        for &w in &order {
            let wu = w as usize;
            for &v in g.nets(wu) {
                for &u in g.vtxs(v as usize) {
                    if u != w {
                        let cu = colors[u as usize];
                        if cu >= 0 && !forbidden[cu as usize] {
                            forbidden[cu as usize] = true;
                            touched.push(cu as usize);
                        }
                    }
                }
            }
            let mut col = 0usize;
            while forbidden[col] {
                col += 1;
            }
            colors[wu] = col as i32;
            for &t in &touched {
                forbidden[t] = false;
            }
            touched.clear();
        }
        colors[0]
    });
}

/// Ordering construction cost: natural is free, smallest-last pays the
/// quadratic-in-net-size pass (paper excludes it from coloring time).
fn ordering_cost() {
    let (g, _) = instance();
    let group = Group::new("ablation_ordering_cost", SAMPLES);
    for ordering in [Ordering::Natural, Ordering::LargestFirst, Ordering::SmallestLast] {
        group.bench(ordering.label(), || ordering.vertex_order_bgpc(&g).len());
    }
}

/// Jones–Plassmann vs the speculative framework (related work [23]–[25]).
fn jp_vs_speculative() {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let group = Group::new("ablation_jp_vs_speculative", SAMPLES);
    group.bench("jones_plassmann", || {
        bgpc::jp::color_bgpc_jp(&g, &pool, SEED).num_colors
    });
    group.bench("speculative_n1n2", || {
        bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool).num_colors
    });
}

/// Cost of the iterative-recoloring post-pass relative to the coloring.
fn recolor_pass() {
    let (g, order) = instance();
    let pool = Pool::new(4);
    let base = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
    let group = Group::new("ablation_recolor_pass", SAMPLES);
    group.bench("seq_pass", || {
        let mut colors = base.colors.clone();
        bgpc::recolor::reduce_colors_bgpc_seq(&g, &mut colors)
    });
    group.bench("par_pass", || {
        let mut colors = base.colors.clone();
        bgpc::recolor::reduce_colors_bgpc(&g, &mut colors, &pool)
    });
}

/// BSP distributed baseline across rank counts.
fn distributed_bsp() {
    let (g, _) = instance();
    let group = Group::new("ablation_distributed_bsp", SAMPLES);
    for ranks in [1usize, 4, 16] {
        group.bench(&ranks.to_string(), || {
            let runner =
                dist::DistRunner::new(&g, dist::Partition::block(g.n_vertices(), ranks));
            runner.run().num_colors
        });
    }
}

fn main() {
    chunk_size();
    queue_strategy();
    net_variants();
    balancing();
    forbidden_set();
    ordering_cost();
    jp_vs_speculative();
    recolor_pass();
    distributed_bsp();
}
