//! Microbenchmark: cost of the tracing subsystem on the hot coloring
//! loop, in its three states (see `crates/trace` docs for the cost model):
//!
//! * **off** — no recorder installed (the default). The kernels still
//!   maintain their stack-local counter accumulators, but skip the
//!   per-chunk flush; the pool skips the busy guard.
//! * **on** — a `trace::Recorder` installed: per-chunk sheet merges, busy
//!   guards, and phase spans all active.
//! * **sink-off** (not measurable here) — building the workspace with
//!   `--features trace/sink-off` turns `trace::COMPILED` into `false`, so
//!   even the local accumulators constant-fold away. Compare this bench's
//!   "off" row across the two builds to confirm the disabled mode is
//!   zero-cost.
//!
//! The acceptance budget is <2% overhead for "on" versus "off" (min over
//! samples, which suppresses scheduler noise). The bench prints the
//! measured ratio and flags budget misses without failing: one noisy CI
//! machine must not turn a perf report into a red build — the number is
//! the deliverable.

use std::sync::Arc;
use std::time::Instant;

use bgpc::{Schedule, UNCOLORED};
use graph::{BipartiteGraph, Ordering};
use par::Pool;
use sparse::Dataset;

const SAMPLES: usize = 15;
const SEED: u64 = 20170814;

/// Minimum wall time of `samples` runs of `f`, in seconds.
fn min_secs(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let inst = Dataset::CoPapersDblp.build(0.004, SEED);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let threads = 4.min(par::available_threads());
    let schedule = Schedule::n1_n2();

    let pool_off = Pool::new(threads);
    let off = min_secs(SAMPLES, || {
        let r = bgpc::color_bgpc(&g, &order, &schedule, &pool_off);
        assert!(r.colors.iter().all(|&c| c != UNCOLORED));
        std::hint::black_box(r.num_colors);
    });

    let mut pool_on = Pool::new(threads);
    pool_on.set_tracer(Arc::new(trace::Recorder::new(threads)));
    let on = min_secs(SAMPLES, || {
        let r = bgpc::color_bgpc(&g, &order, &schedule, &pool_on);
        assert!(r.colors.iter().all(|&c| c != UNCOLORED));
        std::hint::black_box(r.num_colors);
    });

    let overhead_pct = (on / off - 1.0) * 100.0;
    println!("group trace_overhead");
    println!(
        "  trace_overhead/off: min {:>9.3} ms  (no recorder installed)",
        off * 1e3
    );
    println!(
        "  trace_overhead/on:  min {:>9.3} ms  (recorder + spans + counters)",
        on * 1e3
    );
    println!(
        "  trace_overhead/ratio: {:.4}x ({:+.2}% vs budget +2.00%) -> {}",
        on / off,
        overhead_pct,
        if overhead_pct <= 2.0 {
            "within budget"
        } else {
            "OVER BUDGET (re-run on an idle machine before acting on this)"
        }
    );
    // Sanity: the traced run actually recorded work — an accidentally
    // dead recorder would make the "on" number meaningless.
    let rec = pool_on.tracer().expect("recorder installed above");
    let totals = rec.totals();
    assert!(
        totals.get(trace::Counter::VerticesColored) > 0,
        "traced run recorded no colored vertices — instrumentation is dead"
    );
}
