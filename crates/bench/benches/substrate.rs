//! Substrate microbenches: the thread pool, the chunk cursor, and the
//! sparse kernels every coloring pass is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use par::{ChunkCursor, Pool};
use sparse::Dataset;

/// Fork/join overhead of one parallel region (bounds how short an
/// iteration can be before scheduling dominates).
fn pool_region_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_region_overhead");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                pool.run(|tid| {
                    std::hint::black_box(tid);
                })
            })
        });
    }
    group.finish();
}

/// Throughput of dynamic chunk claims (single-threaded upper bound).
fn cursor_claims(c: &mut Criterion) {
    c.bench_function("cursor_claim_1M_by_64", |b| {
        b.iter(|| {
            let cursor = ChunkCursor::new(1_000_000, 64);
            let mut total = 0usize;
            while let Some(r) = cursor.claim() {
                total += r.len();
            }
            total
        })
    });
}

/// CSR transpose — the cost of building the bipartite view.
fn transpose(c: &mut Criterion) {
    let inst = Dataset::CoPapersDblp.build(0.004, 42);
    c.bench_function("csr_transpose_coPapersDBLP", |b| {
        b.iter(|| inst.matrix.transpose().nnz())
    });
}

/// Generator throughput (instances are rebuilt by every harness run).
fn generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);
    group.bench_function("grid3d_18pt_20^3", |b| {
        b.iter(|| sparse::gen::grid3d_18pt(20, 20, 20).nnz())
    });
    group.bench_function("chung_lu_5k", |b| {
        b.iter(|| sparse::gen::chung_lu(5_000, 50_000, 2.3, 500, true, 1).nnz())
    });
    group.bench_function("bipartite_skewed_1k_x_5k", |b| {
        b.iter(|| sparse::gen::bipartite_skewed(1_000, 5_000, 40_000, 0.95, 2_000, 1).nnz())
    });
    group.finish();
}

criterion_group!(
    benches,
    pool_region_overhead,
    cursor_claims,
    transpose,
    generators
);
criterion_main!(benches);
