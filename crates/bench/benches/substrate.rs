//! Substrate microbenches: the thread pool, the chunk cursor, and the
//! sparse kernels every coloring pass is built from. Plain timing loops
//! on the in-repo harness (`bench::timing`).

use bench::timing::{bench_fn, Group};
use par::{ChunkCursor, Pool};
use sparse::Dataset;

/// Fork/join overhead of one parallel region (bounds how short an
/// iteration can be before scheduling dominates).
fn pool_region_overhead() {
    let group = Group::new("pool_region_overhead", 20);
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        group.bench(&threads.to_string(), || {
            pool.run(|tid| {
                std::hint::black_box(tid);
            })
        });
    }
}

/// Throughput of dynamic chunk claims (single-threaded upper bound).
fn cursor_claims() {
    bench_fn("cursor_claim_1M_by_64", 10, || {
        let cursor = ChunkCursor::new(1_000_000, 64);
        let mut total = 0usize;
        while let Some(r) = cursor.claim() {
            total += r.len();
        }
        total
    });
}

/// CSR transpose — the cost of building the bipartite view.
fn transpose() {
    let inst = Dataset::CoPapersDblp.build(0.004, 42);
    bench_fn("csr_transpose_coPapersDBLP", 10, || {
        inst.matrix.transpose().nnz()
    });
}

/// Generator throughput (instances are rebuilt by every harness run).
fn generators() {
    let group = Group::new("generators", 10);
    group.bench("grid3d_18pt_20^3", || {
        sparse::gen::grid3d_18pt(20, 20, 20).nnz()
    });
    group.bench("chung_lu_5k", || {
        sparse::gen::chung_lu(5_000, 50_000, 2.3, 500, true, 1).nnz()
    });
    group.bench("bipartite_skewed_1k_x_5k", || {
        sparse::gen::bipartite_skewed(1_000, 5_000, 40_000, 0.95, 2_000, 1).nnz()
    });
}

fn main() {
    pool_region_overhead();
    cursor_claims();
    transpose();
    generators();
}
