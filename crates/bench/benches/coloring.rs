//! Benches over the paper's algorithm grid: one group per experiment
//! family. These are micro-scale companions to the `repro` binary (which
//! runs the full paper-shaped sweeps). Plain timing loops on the in-repo
//! harness (`bench::timing`) — no external bench framework.

use bench::timing::Group;
use bgpc::Schedule;
use graph::{BipartiteGraph, Graph, Ordering};
use par::Pool;
use sparse::Dataset;

const SCALE: f64 = 0.004;
const SEED: u64 = 42;
const SAMPLES: usize = 10;

/// Table III/Figure 2 companion: every schedule on the coPapersDBLP
/// analogue at a fixed team size.
fn bgpc_schedules() {
    let inst = Dataset::CoPapersDblp.build(SCALE, SEED);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);

    let group = Group::new("bgpc_schedules_coPapersDBLP", SAMPLES);
    for schedule in Schedule::all() {
        group.bench(&schedule.name(), || {
            let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
            assert!(r.num_colors >= g.max_net_size());
            r.num_colors
        });
    }
}

/// Thread sweep of the headline schedule (Figure 2's x-axis).
fn bgpc_thread_sweep() {
    let inst = Dataset::Bone010.build(SCALE, SEED);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let schedule = Schedule::n1_n2();

    let group = Group::new("bgpc_threads_bone010_N1-N2", SAMPLES);
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        group.bench(&threads.to_string(), || {
            bgpc::color_bgpc(&g, &order, &schedule, &pool).num_colors
        });
    }
}

/// Sequential baseline (Table II's timing columns).
fn bgpc_sequential() {
    let group = Group::new("bgpc_sequential", SAMPLES);
    for dataset in [Dataset::AfShell10, Dataset::CoPapersDblp] {
        let inst = dataset.build(SCALE, SEED);
        let g = BipartiteGraph::from_matrix(&inst.matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        group.bench(dataset.name(), || bgpc::seq::color_bgpc_seq(&g, &order).1);
    }
}

/// Table V companion: D2GC schedules on the nlpkkt analogue.
fn d2gc_schedules() {
    let inst = Dataset::Nlpkkt120.build(SCALE, SEED);
    let g = Graph::from_symmetric_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_d2(&g);
    let pool = Pool::new(4);

    let group = Group::new("d2gc_schedules_nlpkkt120", SAMPLES);
    for schedule in Schedule::d2gc_set() {
        group.bench(&schedule.name(), || {
            bgpc::d2gc::color_d2gc(&g, &order, &schedule, &pool).num_colors
        });
    }
}

fn main() {
    bgpc_schedules();
    bgpc_thread_sweep();
    bgpc_sequential();
    d2gc_schedules();
}
