//! Criterion benches over the paper's algorithm grid: one group per
//! experiment family. These are micro-scale companions to the `repro`
//! binary (which runs the full paper-shaped sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use bgpc::Schedule;
use graph::{BipartiteGraph, Graph, Ordering};
use par::Pool;
use sparse::Dataset;

const SCALE: f64 = 0.004;
const SEED: u64 = 42;

/// Table III/Figure 2 companion: every schedule on the coPapersDBLP
/// analogue at a fixed team size.
fn bgpc_schedules(c: &mut Criterion) {
    let inst = Dataset::CoPapersDblp.build(SCALE, SEED);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let pool = Pool::new(4);

    let mut group = c.benchmark_group("bgpc_schedules_coPapersDBLP");
    group.sample_size(10);
    for schedule in Schedule::all() {
        group.bench_function(BenchmarkId::from_parameter(schedule.name()), |b| {
            b.iter(|| {
                let r = bgpc::color_bgpc(&g, &order, &schedule, &pool);
                assert!(r.num_colors >= g.max_net_size());
                r.num_colors
            })
        });
    }
    group.finish();
}

/// Thread sweep of the headline schedule (Figure 2's x-axis).
fn bgpc_thread_sweep(c: &mut Criterion) {
    let inst = Dataset::Bone010.build(SCALE, SEED);
    let g = BipartiteGraph::from_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_bgpc(&g);
    let schedule = Schedule::n1_n2();

    let mut group = c.benchmark_group("bgpc_threads_bone010_N1-N2");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let pool = Pool::new(threads);
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| bgpc::color_bgpc(&g, &order, &schedule, &pool).num_colors)
        });
    }
    group.finish();
}

/// Sequential baseline (Table II's timing columns).
fn bgpc_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgpc_sequential");
    group.sample_size(10);
    for dataset in [Dataset::AfShell10, Dataset::CoPapersDblp] {
        let inst = dataset.build(SCALE, SEED);
        let g = BipartiteGraph::from_matrix(&inst.matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        group.bench_function(BenchmarkId::from_parameter(dataset.name()), |b| {
            b.iter(|| bgpc::seq::color_bgpc_seq(&g, &order).1)
        });
    }
    group.finish();
}

/// Table V companion: D2GC schedules on the nlpkkt analogue.
fn d2gc_schedules(c: &mut Criterion) {
    let inst = Dataset::Nlpkkt120.build(SCALE, SEED);
    let g = Graph::from_symmetric_matrix(&inst.matrix);
    let order = Ordering::Natural.vertex_order_d2(&g);
    let pool = Pool::new(4);

    let mut group = c.benchmark_group("d2gc_schedules_nlpkkt120");
    group.sample_size(10);
    for schedule in Schedule::d2gc_set() {
        group.bench_function(BenchmarkId::from_parameter(schedule.name()), |b| {
            b.iter(|| bgpc::d2gc::color_d2gc(&g, &order, &schedule, &pool).num_colors)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bgpc_schedules,
    bgpc_thread_sweep,
    bgpc_sequential,
    d2gc_schedules
);
criterion_main!(benches);
