//! Harness configuration.

use sparse::Dataset;

/// Shared knobs for every experiment.
#[derive(Clone, Debug)]
pub struct ReproConfig {
    /// Instance scale relative to the paper's full sizes (DESIGN.md §4).
    pub scale: f64,
    /// RNG seed for instance generation.
    pub seed: u64,
    /// Thread counts to sweep (the paper uses 1, 2, 4, 8, 16).
    pub threads: Vec<usize>,
    /// Datasets to include.
    pub datasets: Vec<Dataset>,
    /// Repetitions per measurement (minimum wall time is reported, the
    /// usual protocol for coloring kernels).
    pub reps: usize,
}

impl Default for ReproConfig {
    fn default() -> Self {
        Self {
            scale: 0.01,
            seed: 20170814, // ICPP'17 presentation date
            threads: vec![1, 2, 4, 8, 16],
            datasets: Dataset::ALL.to_vec(),
            reps: 1,
        }
    }
}

impl ReproConfig {
    /// Parses CLI-style flags (`--scale X`, `--seed N`, `--threads a,b,c`,
    /// `--datasets name,name`, `--reps N`), ignoring anything else.
    pub fn from_args(args: &[String]) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut i = 0;
        while i < args.len() {
            let take = |i: usize| -> Result<&String, String> {
                args.get(i + 1)
                    .ok_or_else(|| format!("missing value after {}", args[i]))
            };
            match args[i].as_str() {
                "--scale" => {
                    cfg.scale = take(i)?
                        .parse()
                        .map_err(|e| format!("bad --scale: {e}"))?;
                    i += 2;
                }
                "--seed" => {
                    cfg.seed = take(i)?.parse().map_err(|e| format!("bad --seed: {e}"))?;
                    i += 2;
                }
                "--reps" => {
                    cfg.reps = take(i)?.parse().map_err(|e| format!("bad --reps: {e}"))?;
                    i += 2;
                }
                "--threads" => {
                    cfg.threads = take(i)?
                        .split(',')
                        .map(|s| s.trim().parse().map_err(|e| format!("bad thread: {e}")))
                        .collect::<Result<_, _>>()?;
                    i += 2;
                }
                "--datasets" => {
                    cfg.datasets = take(i)?
                        .split(',')
                        .map(|s| {
                            Dataset::from_name(s.trim())
                                .ok_or_else(|| format!("unknown dataset `{s}`"))
                        })
                        .collect::<Result<_, _>>()?;
                    i += 2;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        if cfg.threads.is_empty() || cfg.datasets.is_empty() {
            return Err("threads and datasets must be non-empty".into());
        }
        Ok(cfg)
    }

    /// The symmetric subset of the configured datasets (D2GC experiments).
    pub fn d2gc_datasets(&self) -> Vec<Dataset> {
        self.datasets
            .iter()
            .copied()
            .filter(|d| d.symmetric())
            .collect()
    }

    /// Largest configured thread count.
    pub fn max_threads(&self) -> usize {
        self.threads.iter().copied().max().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let cfg = ReproConfig::default();
        assert_eq!(cfg.threads, vec![1, 2, 4, 8, 16]);
        assert_eq!(cfg.datasets.len(), 8);
        assert_eq!(cfg.d2gc_datasets().len(), 5);
    }

    #[test]
    fn parse_flags() {
        let cfg = ReproConfig::from_args(&s(&[
            "--scale", "0.05", "--threads", "1,4", "--datasets", "bone010,channel", "--seed",
            "7", "--reps", "3",
        ]))
        .unwrap();
        assert_eq!(cfg.scale, 0.05);
        assert_eq!(cfg.threads, vec![1, 4]);
        assert_eq!(cfg.datasets, vec![Dataset::Bone010, Dataset::Channel]);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.reps, 3);
    }

    #[test]
    fn bad_flags_rejected() {
        assert!(ReproConfig::from_args(&s(&["--nope"])).is_err());
        assert!(ReproConfig::from_args(&s(&["--scale"])).is_err());
        assert!(ReproConfig::from_args(&s(&["--datasets", "zzz"])).is_err());
    }
}
