//! Regeneration of the paper's Figures 1–3 (as data series; the paper's
//! plots are bar/line charts over exactly these numbers).

use bgpc::verify::ColorClassStats;
use bgpc::{Balance, Schedule};
use graph::Ordering;
use sparse::Dataset;

use crate::report::{f2, TextTable};
use crate::sweep::{bgpc_graph, bgpc_order, run_bgpc_once, RunRecord};
use crate::ReproConfig;

/// One per-iteration sample of Figure 1.
#[derive(Clone, Debug)]
pub struct Figure1Point {
    /// Schedule name.
    pub schedule: String,
    /// 1-based round number.
    pub round: usize,
    /// Coloring-phase time (ms).
    pub color_ms: f64,
    /// Conflict-removal time (ms).
    pub conflict_ms: f64,
    /// Queue size entering the round.
    pub queue_in: usize,
}

/// Figure 1 — per-iteration phase times of six schedules on the
/// coPapersDBLP analogue at the maximum thread count.
pub fn figure1(cfg: &ReproConfig) -> (String, Vec<Figure1Point>) {
    let dataset = Dataset::CoPapersDblp;
    let inst = dataset.build(cfg.scale, cfg.seed);
    let g = bgpc_graph(&inst);
    let order = bgpc_order(&g, Ordering::Natural);
    let t = cfg.max_threads();
    let schedules = [
        Schedule::v_v_64d(),
        Schedule::v_n_inf(),
        Schedule::v_n(1),
        Schedule::v_n(2),
        Schedule::n1_n2(),
        Schedule::n2_n2(),
    ];
    let mut table = TextTable::new(&[
        "Algorithm", "Round", "Coloring ms", "Conf.Removal ms", "|W|",
    ]);
    let mut points = Vec::new();
    for schedule in schedules {
        let (_, res) = run_bgpc_once(dataset, &g, &order, "natural", &schedule, t, cfg.reps);
        for m in res.iterations.iter().take(5) {
            let p = Figure1Point {
                schedule: schedule.name(),
                round: m.iter + 1,
                color_ms: m.color_time.as_secs_f64() * 1e3,
                conflict_ms: m.conflict_time.as_secs_f64() * 1e3,
                queue_in: m.queue_in,
            };
            table.row(vec![
                p.schedule.clone(),
                p.round.to_string(),
                f2(p.color_ms),
                f2(p.conflict_ms),
                p.queue_in.to_string(),
            ]);
            points.push(p);
        }
    }
    (table.render(), points)
}

/// Figure 2 — execution time and color count for every schedule, dataset
/// and thread count (the data behind the paper's eight subplots).
pub fn figure2(cfg: &ReproConfig) -> (String, Vec<RunRecord>) {
    let mut table = TextTable::new(&["Matrix", "Algorithm", "t", "time ms", "#colors"]);
    let mut records = Vec::new();
    for &dataset in &cfg.datasets {
        let inst = dataset.build(cfg.scale, cfg.seed);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);
        for schedule in Schedule::all() {
            for &t in &cfg.threads {
                let (rec, _) =
                    run_bgpc_once(dataset, &g, &order, "natural", &schedule, t, cfg.reps);
                table.row(vec![
                    rec.dataset.clone(),
                    rec.schedule.clone(),
                    t.to_string(),
                    f2(rec.time_ms),
                    rec.colors.to_string(),
                ]);
                records.push(rec);
            }
        }
    }
    (table.render(), records)
}

/// One distribution of Figure 3.
#[derive(Clone, Debug)]
pub struct Figure3Series {
    /// Schedule + balance name (`V-N2-B1`, …).
    pub name: String,
    /// Number of color classes.
    pub num_classes: usize,
    /// Class-size standard deviation.
    pub std_dev: f64,
    /// Largest class.
    pub max: usize,
    /// Smallest (non-empty) class.
    pub min: usize,
    /// Class cardinalities sorted in non-increasing order (the plotted
    /// curve).
    pub sorted_cardinalities: Vec<usize>,
}

/// Figure 3 — color-set cardinality distributions of V-N2 and N1-N2 under
/// U/B1/B2 on the coPapersDBLP analogue.
pub fn figure3(cfg: &ReproConfig) -> (String, Vec<Figure3Series>) {
    let dataset = Dataset::CoPapersDblp;
    let inst = dataset.build(cfg.scale, cfg.seed);
    let g = bgpc_graph(&inst);
    let order = bgpc_order(&g, Ordering::Natural);
    let t = cfg.max_threads();
    let mut table = TextTable::new(&["Series", "#classes", "min", "max", "std dev"]);
    let mut series = Vec::new();
    for base in [Schedule::v_n(2), Schedule::n1_n2()] {
        for balance in [Balance::Unbalanced, Balance::B1, Balance::B2] {
            let schedule = base.clone().with_balance(balance);
            let (_, res) = run_bgpc_once(dataset, &g, &order, "natural", &schedule, t, cfg.reps);
            let stats = ColorClassStats::from_colors(&res.colors);
            let name = if balance == Balance::Unbalanced {
                format!("{}-U", schedule.name())
            } else {
                schedule.name()
            };
            table.row(vec![
                name.clone(),
                stats.num_classes.to_string(),
                stats.min.to_string(),
                stats.max.to_string(),
                f2(stats.std_dev),
            ]);
            series.push(Figure3Series {
                name,
                num_classes: stats.num_classes,
                std_dev: stats.std_dev,
                max: stats.max,
                min: stats.min,
                sorted_cardinalities: stats.sorted_cardinalities(),
            });
        }
    }
    (table.render(), series)
}

crate::to_json_struct!(Figure1Point { schedule, round, color_ms, conflict_ms, queue_in });
crate::to_json_struct!(Figure3Series { name, num_classes, std_dev, max, min, sorted_cardinalities });

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ReproConfig {
        ReproConfig {
            scale: 0.002,
            seed: 1,
            threads: vec![1, 2],
            datasets: vec![Dataset::CoPapersDblp],
            reps: 1,
        }
    }

    #[test]
    fn figure1_produces_rounds_for_six_schedules() {
        let (text, points) = figure1(&tiny_cfg());
        let schedules: std::collections::HashSet<&str> =
            points.iter().map(|p| p.schedule.as_str()).collect();
        assert_eq!(schedules.len(), 6);
        assert!(points.iter().all(|p| p.round >= 1 && p.round <= 5));
        assert!(text.contains("N1-N2"));
    }

    #[test]
    fn figure2_covers_grid() {
        let cfg = tiny_cfg();
        let (_, records) = figure2(&cfg);
        assert_eq!(records.len(), 8 * cfg.threads.len());
    }

    #[test]
    fn figure3_balancing_reduces_spread() {
        let (_, series) = figure3(&tiny_cfg());
        assert_eq!(series.len(), 6);
        // Paper's claim: B2 reduces the class-size std dev vs U.
        let u = &series[0];
        let b2 = &series[2];
        assert!(
            b2.std_dev <= u.std_dev * 1.05,
            "B2 std dev {} should not exceed U {}",
            b2.std_dev,
            u.std_dev
        );
        // Distribution covers all vertices.
        let total: usize = u.sorted_cardinalities.iter().sum();
        assert_eq!(total, Dataset::CoPapersDblp.build(0.002, 1).matrix.ncols());
    }
}
