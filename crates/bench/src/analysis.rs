//! Predicted-vs-measured work analysis: does the §III complexity argument
//! hold on the wall clock? For each dataset we compare the *predicted*
//! vertex/net work ratio of the first iteration against the *measured*
//! round-1 coloring-time ratio of `V-V-64D` vs `N1-N2`.

use bgpc::Schedule;
use graph::Ordering;

use crate::report::{f2, TextTable};
use crate::sweep::{bgpc_graph, bgpc_order, run_bgpc_once};
use crate::ReproConfig;

/// One predicted-vs-measured row.
#[derive(Clone, Debug)]
pub struct AnalysisRow {
    /// Dataset name.
    pub dataset: String,
    /// `Σ|vtxs(v)|²` — vertex-based first-iteration work.
    pub vertex_work: u64,
    /// `|V_B| + pins` — net-based phase work.
    pub net_work: u64,
    /// Predicted vertex/net ratio.
    pub predicted_ratio: f64,
    /// Measured round-1 coloring-time ratio (vertex schedule / net
    /// schedule).
    pub measured_ratio: f64,
    /// Fraction of `V-V-64D` runtime spent in round 1 (paper: 78% avg).
    pub first_round_fraction: f64,
    /// Coefficient of variation of vertex-based task sizes (§VIII).
    pub cv_vertex: f64,
    /// Coefficient of variation of net-based task sizes.
    pub cv_net: f64,
    /// SIMT (warp-32) efficiency of vertex tasks.
    pub warp_eff_vertex: f64,
    /// SIMT (warp-32) efficiency of net tasks.
    pub warp_eff_net: f64,
}

/// Runs the analysis over the configured datasets.
pub fn predicted_vs_measured(cfg: &ReproConfig) -> (String, Vec<AnalysisRow>) {
    let t = cfg.max_threads();
    let mut table = TextTable::new(&[
        "Matrix", "vertex work", "net work", "predicted", "measured", "round-1 frac",
        "CV v/n", "warp32 eff v/n",
    ]);
    let mut rows = Vec::new();
    for &dataset in &cfg.datasets {
        let inst = dataset.build(cfg.scale, cfg.seed);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);

        let vertex_work = bgpc::analysis::sum_net_size_squared(&g);
        let net_work = bgpc::analysis::net_phase_work(&g);
        let predicted = bgpc::analysis::work_ratio_first_iteration(&g);

        let (_, vres) =
            run_bgpc_once(dataset, &g, &order, "natural", &Schedule::v_v_64d(), t, cfg.reps);
        let (_, nres) =
            run_bgpc_once(dataset, &g, &order, "natural", &Schedule::n1_n2(), t, cfg.reps);
        let v1 = vres.iterations[0].color_time.as_secs_f64();
        let n1 = nres.iterations[0].color_time.as_secs_f64();
        let measured = if n1 > 0.0 { v1 / n1 } else { f64::NAN };
        let frac = bgpc::analysis::time_fraction_first_k(&vres, 1);
        let tv = bgpc::analysis::task_sizes_vertex(&g);
        let tn = bgpc::analysis::task_sizes_net(&g);
        let cv_vertex = bgpc::analysis::coefficient_of_variation(&tv);
        let cv_net = bgpc::analysis::coefficient_of_variation(&tn);
        let warp_eff_vertex = bgpc::analysis::warp_efficiency(&tv, 32);
        let warp_eff_net = bgpc::analysis::warp_efficiency(&tn, 32);

        table.row(vec![
            dataset.name().to_string(),
            vertex_work.to_string(),
            net_work.to_string(),
            f2(predicted),
            f2(measured),
            f2(frac),
            format!("{cv_vertex:.2}/{cv_net:.2}"),
            format!("{warp_eff_vertex:.2}/{warp_eff_net:.2}"),
        ]);
        rows.push(AnalysisRow {
            dataset: dataset.name().to_string(),
            vertex_work,
            net_work,
            predicted_ratio: predicted,
            measured_ratio: measured,
            first_round_fraction: frac,
            cv_vertex,
            cv_net,
            warp_eff_vertex,
            warp_eff_net,
        });
    }
    (table.render(), rows)
}

crate::to_json_struct!(AnalysisRow { dataset, vertex_work, net_work, predicted_ratio, measured_ratio, first_round_fraction, cv_vertex, cv_net, warp_eff_vertex, warp_eff_net });

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Dataset;

    #[test]
    fn analysis_rows_are_consistent() {
        let cfg = ReproConfig {
            scale: 0.002,
            seed: 1,
            threads: vec![2],
            datasets: vec![Dataset::CoPapersDblp, Dataset::Channel],
            reps: 1,
        };
        let (text, rows) = predicted_vs_measured(&cfg);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!(row.predicted_ratio > 0.0);
            assert!(row.vertex_work >= row.net_work || row.predicted_ratio < 1.0);
            assert!(row.first_round_fraction > 0.0 && row.first_round_fraction <= 1.0);
        }
        // power-law instance must predict a bigger win than the mesh
        let copapers = &rows[0];
        let channel = &rows[1];
        assert!(
            copapers.predicted_ratio > channel.predicted_ratio,
            "heavy-tailed nets should favor net-based phases more: {} vs {}",
            copapers.predicted_ratio,
            channel.predicted_ratio
        );
        assert!(text.contains("coPapersDBLP"));
    }
}
