//! Plain-text table rendering and JSON record output.

use std::io::Write;
use std::path::Path;

use crate::json::{self, ToJson};

/// A simple fixed-width text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..ncols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(cell, w)| format!("{cell:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Writes records as pretty JSON to `dir/name.json` (creates `dir`).
pub fn write_json<T: ToJson>(dir: &Path, name: &str, records: &T) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.json"));
    let mut f = std::fs::File::create(&path)?;
    f.write_all(json::to_string_pretty(records).as_bytes())?;
    f.write_all(b"\n")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("long-name"));
        // all rows same width
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("bgpc-report-test");
        write_json(&dir, "test", &vec![1, 2, 3]).unwrap();
        let content = std::fs::read_to_string(dir.join("test.json")).unwrap();
        // parse it back with a whitespace-stripping scan: the file is
        // pretty-printed but contains no string values here
        let compact: String = content.chars().filter(|c| !c.is_whitespace()).collect();
        assert_eq!(compact, "[1,2,3]");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
