//! Minimal JSON serialization — the hermetic replacement for
//! `serde`/`serde_json` (see README "Hermetic offline build").
//!
//! The harness only ever *writes* JSON records (EXPERIMENTS.md tooling
//! reads them back with ordinary scripting), so one trait with a handful
//! of impls plus the [`crate::to_json_struct!`] field-listing macro
//! covers every record type without derive machinery.

use std::fmt::Write as _;

/// Types that can render themselves as a JSON value.
pub trait ToJson {
    /// Appends this value's JSON representation to `out`.
    fn write_json(&self, out: &mut String);

    /// Convenience: the compact JSON string.
    fn to_json(&self) -> String {
        let mut s = String::new();
        self.write_json(&mut s);
        s
    }
}

/// Pretty-prints any [`ToJson`] value by re-indenting its compact form.
///
/// The compact writer never emits `{`, `}`, `[`, `]`, `,` or `:` inside
/// anything but string literals, and string literals escape the quote, so
/// a small state machine suffices — no parse tree needed.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    let compact = value.to_json();
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let indent = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    let mut chars = compact.chars().peekable();
    while let Some(c) = chars.next() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                // keep `{}` and `[]` on one line
                if chars.peek() == Some(&'}') || chars.peek() == Some(&']') {
                    out.push(chars.next().unwrap());
                } else {
                    depth += 1;
                    indent(&mut out, depth);
                }
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                indent(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                indent(&mut out, depth);
            }
            ':' => out.push_str(": "),
            _ => out.push(c),
        }
    }
    out
}

/// Writes `s` as a JSON string literal with the mandatory escapes.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl ToJson for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! int_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn write_json(&self, out: &mut String) {
                let _ = write!(out, "{self}");
            }
        }
    )*};
}
int_to_json!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn write_json(&self, out: &mut String) {
        // JSON has no NaN/Infinity; `null` is the conventional stand-in.
        if self.is_finite() {
            let _ = write!(out, "{self}");
        } else {
            out.push_str("null");
        }
    }
}

impl ToJson for f32 {
    fn write_json(&self, out: &mut String) {
        (*self as f64).write_json(out);
    }
}

impl ToJson for str {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl ToJson for String {
    fn write_json(&self, out: &mut String) {
        write_escaped(self, out);
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}

impl<T: ToJson> ToJson for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(']');
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        self.0.write_json(out);
        out.push(',');
        self.1.write_json(out);
        out.push(',');
        self.2.write_json(out);
        out.push(']');
    }
}

/// Implements [`ToJson`] for a struct by listing its fields, serialized
/// as a JSON object in declaration order:
///
/// ```ignore
/// to_json_struct!(RunRecord { dataset, schedule, threads, time_ms });
/// ```
#[macro_export]
macro_rules! to_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn write_json(&self, out: &mut String) {
                out.push('{');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    $crate::json::write_escaped(stringify!($field), out);
                    out.push(':');
                    $crate::json::ToJson::write_json(&self.$field, out);
                )+
                let _ = first;
                out.push('}');
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(3usize.to_json(), "3");
        assert_eq!((-7i32).to_json(), "-7");
        assert_eq!(true.to_json(), "true");
        assert_eq!(2.5f64.to_json(), "2.5");
        assert_eq!(f64::NAN.to_json(), "null");
        assert_eq!(f64::INFINITY.to_json(), "null");
        assert_eq!("hi".to_json(), "\"hi\"");
    }

    #[test]
    fn strings_escape() {
        assert_eq!("a\"b\\c\nd".to_json(), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!("\u{1}".to_json(), "\"\\u0001\"");
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1, 2, 3].to_json(), "[1,2,3]");
        assert_eq!(Vec::<u32>::new().to_json(), "[]");
        assert_eq!(Some(4u32).to_json(), "4");
        assert_eq!(None::<u32>.to_json(), "null");
        assert_eq!((1usize, 0.5f64).to_json(), "[1,0.5]");
        assert_eq!(vec![(1usize, 2usize)].to_json(), "[[1,2]]");
    }

    struct Rec {
        name: String,
        n: usize,
        ratio: f64,
        pairs: Vec<(usize, f64)>,
    }
    to_json_struct!(Rec { name, n, ratio, pairs });

    #[test]
    fn struct_macro_renders_object() {
        let r = Rec {
            name: "x\"y".into(),
            n: 9,
            ratio: 1.25,
            pairs: vec![(1, 2.0)],
        };
        assert_eq!(
            r.to_json(),
            "{\"name\":\"x\\\"y\",\"n\":9,\"ratio\":1.25,\"pairs\":[[1,2]]}"
        );
    }

    #[test]
    fn pretty_printer_indents_and_preserves_strings() {
        let r = Rec {
            name: "a{b,c:d}".into(),
            n: 1,
            ratio: 0.5,
            pairs: vec![],
        };
        let pretty = to_string_pretty(&vec![r]);
        assert!(pretty.contains("\"name\": \"a{b,c:d}\""), "{pretty}");
        assert!(pretty.contains("\"pairs\": []"), "{pretty}");
        assert!(pretty.starts_with("[\n"), "{pretty}");
        assert!(pretty.ends_with(']'), "{pretty}");
    }
}
