//! Distributed-framework comparison: the BSP baseline (related-work
//! systems the paper builds on) versus the shared-memory schedules —
//! rounds, message volume, and colors across rank counts and partitions.

use dist::{DistRunner, Partition};
use graph::Ordering;


use crate::report::{f2, TextTable};
use crate::sweep::{bgpc_graph, bgpc_order};
use crate::ReproConfig;

/// One distributed run record.
#[derive(Clone, Debug)]
pub struct DistRow {
    /// Dataset name.
    pub dataset: String,
    /// Partition strategy.
    pub partition: String,
    /// Number of ranks.
    pub ranks: usize,
    /// Supersteps to convergence.
    pub rounds: usize,
    /// Total boundary messages.
    pub messages: usize,
    /// Boundary fraction of the partition.
    pub boundary: f64,
    /// Colors used.
    pub colors: usize,
    /// Colors used by the sequential baseline (same order).
    pub seq_colors: usize,
}

/// Sweeps rank counts and partition strategies over the configured
/// datasets.
pub fn dist_sweep(cfg: &ReproConfig) -> (String, Vec<DistRow>) {
    let mut table = TextTable::new(&[
        "Matrix", "Partition", "ranks", "rounds", "messages", "boundary", "#colors", "seq #colors",
    ]);
    let mut rows = Vec::new();
    for &dataset in &cfg.datasets {
        let inst = dataset.build(cfg.scale, cfg.seed);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);
        let (_, seq_colors) = bgpc::seq::color_bgpc_seq(&g, &order);
        for &ranks in &cfg.threads {
            for (name, partition) in [
                ("block", Partition::block(g.n_vertices(), ranks)),
                ("cyclic", Partition::cyclic(g.n_vertices(), ranks)),
            ] {
                let runner = DistRunner::new(&g, partition);
                let boundary = runner.boundary_fraction();
                let r = runner.run();
                bgpc::verify::verify_bgpc(&g, &r.colors).unwrap_or_else(|e| {
                    panic!("dist {name}/{ranks} on {}: {e}", dataset.name())
                });
                table.row(vec![
                    dataset.name().to_string(),
                    name.to_string(),
                    ranks.to_string(),
                    r.rounds().to_string(),
                    r.total_messages().to_string(),
                    f2(boundary),
                    r.num_colors.to_string(),
                    seq_colors.to_string(),
                ]);
                rows.push(DistRow {
                    dataset: dataset.name().to_string(),
                    partition: name.to_string(),
                    ranks,
                    rounds: r.rounds(),
                    messages: r.total_messages(),
                    boundary,
                    colors: r.num_colors,
                    seq_colors,
                });
            }
        }
    }
    (table.render(), rows)
}

crate::to_json_struct!(DistRow { dataset, partition, ranks, rounds, messages, boundary, colors, seq_colors });

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::Dataset;

    #[test]
    fn dist_sweep_produces_grid() {
        let cfg = ReproConfig {
            scale: 0.002,
            seed: 1,
            threads: vec![1, 4],
            datasets: vec![Dataset::AfShell10],
            reps: 1,
        };
        let (text, rows) = dist_sweep(&cfg);
        assert_eq!(rows.len(), 4); // 2 rank counts × 2 partitions
        assert!(text.contains("cyclic"));
        // single rank: 1 round, 0 messages
        let single: Vec<&DistRow> = rows.iter().filter(|r| r.ranks == 1).collect();
        assert!(single.iter().all(|r| r.rounds == 1 && r.messages == 0));
        // block partition of a banded matrix has a small boundary
        let block4 = rows
            .iter()
            .find(|r| r.ranks == 4 && r.partition == "block")
            .unwrap();
        let cyclic4 = rows
            .iter()
            .find(|r| r.ranks == 4 && r.partition == "cyclic")
            .unwrap();
        assert!(block4.boundary < cyclic4.boundary);
    }
}
