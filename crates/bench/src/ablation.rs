//! Ablation sweeps beyond the paper's own grid — the design-choice
//! experiments DESIGN.md commits to: dynamic chunk size, conflict-queue
//! strategy, net-coloring variant, and the recoloring post-pass.

use bgpc::net::NetColoringVariant;
use bgpc::Schedule;
use graph::{BipartiteGraph, Ordering};
use par::Pool;
use sparse::Dataset;

use crate::report::{f2, TextTable};
use crate::sweep::{bgpc_graph, bgpc_order, geomean, run_bgpc_once};
use crate::ReproConfig;

/// One ablation measurement.
#[derive(Clone, Debug)]
pub struct AblationRow {
    /// Which knob / value, e.g. `chunk=64`.
    pub variant: String,
    /// Geo-mean time across datasets, normalized to the first variant.
    pub time_ratio: f64,
    /// Geo-mean color ratio across datasets, normalized to the first
    /// variant.
    pub colors_ratio: f64,
}

fn sweep<S>(
    cfg: &ReproConfig,
    variants: &[(String, S)],
    run: impl Fn(&S, &BipartiteGraph, &[u32], usize) -> (f64, usize),
) -> (String, Vec<AblationRow>) {
    let t = cfg.max_threads();
    let mut times = vec![Vec::new(); variants.len()];
    let mut colors = vec![Vec::new(); variants.len()];
    for &dataset in &cfg.datasets {
        let inst = dataset.build(cfg.scale, cfg.seed);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);
        let mut base: Option<(f64, usize)> = None;
        for (vi, (_, spec)) in variants.iter().enumerate() {
            let (ms, k) = run(spec, &g, &order, t);
            if vi == 0 {
                base = Some((ms, k));
            }
            let (bms, bk) = base.unwrap();
            times[vi].push(ms / bms.max(1e-9));
            colors[vi].push(k as f64 / (bk as f64).max(1.0));
        }
    }
    let mut table = TextTable::new(&["Variant", "time ratio", "#colors ratio"]);
    let mut rows = Vec::new();
    for (vi, (name, _)) in variants.iter().enumerate() {
        let row = AblationRow {
            variant: name.clone(),
            time_ratio: geomean(&times[vi]),
            colors_ratio: geomean(&colors[vi]),
        };
        table.row(vec![row.variant.clone(), f2(row.time_ratio), f2(row.colors_ratio)]);
        rows.push(row);
    }
    (table.render(), rows)
}

/// Chunk-size sweep on the `V-V-64D` family (1 = OpenMP default dynamic).
pub fn chunk_sweep(cfg: &ReproConfig) -> (String, Vec<AblationRow>) {
    let variants: Vec<(String, usize)> = [1usize, 16, 64, 256]
        .iter()
        .map(|&c| (format!("chunk={c}"), c))
        .collect();
    sweep(cfg, &variants, |&chunk, g, order, t| {
        let mut schedule = Schedule::v_v_64d();
        schedule.chunk = chunk;
        let (rec, _) = run_bgpc_once(
            Dataset::CoPapersDblp, // dataset label unused in ratios
            g,
            order,
            "natural",
            &schedule,
            t,
            cfg.reps,
        );
        (rec.time_ms, rec.colors)
    })
}

/// Eager vs lazy conflict-queue construction (the 64 → 64D step).
pub fn queue_sweep(cfg: &ReproConfig) -> (String, Vec<AblationRow>) {
    let variants = vec![
        ("eager shared queue (V-V-64)".to_string(), false),
        ("lazy private queues (V-V-64D)".to_string(), true),
    ];
    sweep(cfg, &variants, |&lazy, g, order, t| {
        let schedule = if lazy {
            Schedule::v_v_64d()
        } else {
            Schedule::v_v_64()
        };
        let (rec, _) = run_bgpc_once(
            Dataset::CoPapersDblp,
            g,
            order,
            "natural",
            &schedule,
            t,
            cfg.reps,
        );
        (rec.time_ms, rec.colors)
    })
}

/// Net-coloring variant sweep inside `N1-N2` (Table I's axis, end to end).
pub fn net_variant_sweep(cfg: &ReproConfig) -> (String, Vec<AblationRow>) {
    let variants = vec![
        ("Alg. 8 two-pass reverse".to_string(), NetColoringVariant::TwoPassReverse),
        ("Alg. 6 single-pass first-fit".to_string(), NetColoringVariant::SinglePassFirstFit),
        ("Alg. 6 + reverse".to_string(), NetColoringVariant::SinglePassReverse),
    ];
    sweep(cfg, &variants, |&variant, g, order, t| {
        let schedule = Schedule::n1_n2().with_net_variant(variant);
        let (rec, _) = run_bgpc_once(
            Dataset::CoPapersDblp,
            g,
            order,
            "natural",
            &schedule,
            t,
            cfg.reps,
        );
        (rec.time_ms, rec.colors)
    })
}

/// Effect of the iterative-recoloring post-pass on color counts.
#[derive(Clone, Debug)]
pub struct RecolorRow {
    /// Dataset name.
    pub dataset: String,
    /// Colors straight out of `N1-N2`.
    pub colors_before: usize,
    /// Colors after one sequential descending-class pass.
    pub colors_after_seq: usize,
    /// Colors after one parallel speculative pass.
    pub colors_after_par: usize,
    /// Post-pass wall time (ms, parallel pass).
    pub recolor_ms: f64,
}

/// Recoloring post-pass ablation across the configured datasets.
pub fn recolor_sweep(cfg: &ReproConfig) -> (String, Vec<RecolorRow>) {
    let t = cfg.max_threads();
    let pool = Pool::new(t);
    let mut table = TextTable::new(&["Matrix", "N1-N2", "+seq pass", "+par pass", "ms"]);
    let mut rows = Vec::new();
    for &dataset in &cfg.datasets {
        let inst = dataset.build(cfg.scale, cfg.seed);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);
        let r = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
        let before = r.num_colors;

        let mut seq_colors = r.colors.clone();
        let after_seq = bgpc::recolor::reduce_colors_bgpc_seq(&g, &mut seq_colors);
        bgpc::verify::verify_bgpc(&g, &seq_colors).unwrap();

        let mut par_colors = r.colors.clone();
        let t0 = std::time::Instant::now();
        let after_par = bgpc::recolor::reduce_colors_bgpc(&g, &mut par_colors, &pool);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        bgpc::verify::verify_bgpc(&g, &par_colors).unwrap();

        table.row(vec![
            dataset.name().to_string(),
            before.to_string(),
            after_seq.to_string(),
            after_par.to_string(),
            f2(ms),
        ]);
        rows.push(RecolorRow {
            dataset: dataset.name().to_string(),
            colors_before: before,
            colors_after_seq: after_seq,
            colors_after_par: after_par,
            recolor_ms: ms,
        });
    }
    (table.render(), rows)
}

/// Jones–Plassmann vs the speculative framework.
#[derive(Clone, Debug)]
pub struct JpRow {
    /// Dataset name.
    pub dataset: String,
    /// JP rounds to convergence.
    pub jp_rounds: usize,
    /// JP colors.
    pub jp_colors: usize,
    /// JP wall time (ms).
    pub jp_ms: f64,
    /// Speculative N1-N2 rounds.
    pub spec_rounds: usize,
    /// Speculative N1-N2 colors.
    pub spec_colors: usize,
    /// Speculative N1-N2 wall time (ms).
    pub spec_ms: f64,
}

/// Contrast the MIS-based Jones–Plassmann baseline (the paper's related
/// work \[23\]–\[25\]) with the paper's speculative `N1-N2` on identical
/// inputs.
pub fn jp_sweep(cfg: &ReproConfig) -> (String, Vec<JpRow>) {
    let t = cfg.max_threads();
    let pool = Pool::new(t);
    let mut table = TextTable::new(&[
        "Matrix", "JP rounds", "JP #colors", "JP ms", "N1-N2 rounds", "N1-N2 #colors",
        "N1-N2 ms",
    ]);
    let mut rows = Vec::new();
    for &dataset in &cfg.datasets {
        let inst = dataset.build(cfg.scale, cfg.seed);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);

        let t0 = std::time::Instant::now();
        let jp = bgpc::jp::color_bgpc_jp(&g, &pool, cfg.seed);
        let jp_ms = t0.elapsed().as_secs_f64() * 1e3;
        bgpc::verify::verify_bgpc(&g, &jp.colors).unwrap();

        let (rec, res) =
            run_bgpc_once(dataset, &g, &order, "natural", &Schedule::n1_n2(), t, cfg.reps);

        table.row(vec![
            dataset.name().to_string(),
            jp.rounds.to_string(),
            jp.num_colors.to_string(),
            f2(jp_ms),
            res.rounds().to_string(),
            rec.colors.to_string(),
            f2(rec.time_ms),
        ]);
        rows.push(JpRow {
            dataset: dataset.name().to_string(),
            jp_rounds: jp.rounds,
            jp_colors: jp.num_colors,
            jp_ms,
            spec_rounds: res.rounds(),
            spec_colors: rec.colors,
            spec_ms: rec.time_ms,
        });
    }
    (table.render(), rows)
}

crate::to_json_struct!(AblationRow { variant, time_ratio, colors_ratio });
crate::to_json_struct!(RecolorRow { dataset, colors_before, colors_after_seq, colors_after_par, recolor_ms });
crate::to_json_struct!(JpRow { dataset, jp_rounds, jp_colors, jp_ms, spec_rounds, spec_colors, spec_ms });

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ReproConfig {
        ReproConfig {
            scale: 0.002,
            seed: 1,
            threads: vec![2],
            datasets: vec![Dataset::CoPapersDblp],
            reps: 1,
        }
    }

    #[test]
    fn chunk_sweep_normalizes_to_first() {
        let (text, rows) = chunk_sweep(&tiny_cfg());
        assert_eq!(rows.len(), 4);
        assert!((rows[0].time_ratio - 1.0).abs() < 1e-9);
        assert!(text.contains("chunk=64"));
    }

    #[test]
    fn queue_and_net_sweeps_run() {
        let (_, rows) = queue_sweep(&tiny_cfg());
        assert_eq!(rows.len(), 2);
        let (_, rows) = net_variant_sweep(&tiny_cfg());
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn jp_sweep_reports_more_rounds_fewer_conflicts() {
        let (_, rows) = jp_sweep(&tiny_cfg());
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        // JP needs at least max-net-size rounds; speculative needs a
        // handful. On any nontrivial instance JP uses more rounds.
        assert!(row.jp_rounds > row.spec_rounds, "{row:?}");
        assert!(row.jp_colors > 0 && row.spec_colors > 0);
    }

    #[test]
    fn recolor_sweep_never_increases_colors() {
        let (_, rows) = recolor_sweep(&tiny_cfg());
        for row in rows {
            assert!(row.colors_after_seq <= row.colors_before, "{row:?}");
            assert!(row.colors_after_par <= row.colors_before, "{row:?}");
        }
    }
}
