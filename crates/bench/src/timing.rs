//! Minimal timing harness for the `harness = false` benches — the
//! hermetic replacement for `criterion` (see README "Hermetic offline
//! build"). One warm-up plus `samples` timed runs; reports min / median.

use std::time::{Duration, Instant};

/// A named group of measurements, mirroring criterion's group/function
/// labeling so bench output stays grep-compatible across the swap.
pub struct Group {
    name: String,
    samples: usize,
}

impl Group {
    /// A group timing `samples` runs per case (after one warm-up run).
    pub fn new(name: &str, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample");
        println!("group {name}");
        Self {
            name: name.to_string(),
            samples,
        }
    }

    /// Times `f`, keeping its output live via `black_box`.
    pub fn bench<R>(&self, case: &str, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                std::hint::black_box(f());
                t.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        println!(
            "  {}/{case}: min {:>10.3?}  median {:>10.3?}  ({} samples)",
            self.name, min, median, self.samples
        );
    }
}

/// One-off measurement outside any group.
pub fn bench_fn<R>(name: &str, samples: usize, f: impl FnMut() -> R) {
    Group::new(name, samples).bench("run", f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_without_panicking() {
        let g = Group::new("test_group", 3);
        let mut runs = 0u32;
        g.bench("case", || {
            runs += 1;
            runs
        });
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }
}
