//! Single-run and sweep primitives shared by every table/figure.

use std::time::Duration;

use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::{ColoringResult, Schedule};
use graph::{BipartiteGraph, Graph, Ordering};
use par::Pool;
use sparse::{Dataset, Instance};

/// One measured coloring run.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// Dataset name.
    pub dataset: String,
    /// Schedule name (with balance suffix).
    pub schedule: String,
    /// Ordering label.
    pub ordering: String,
    /// Thread count.
    pub threads: usize,
    /// Problem: "bgpc" or "d2gc".
    pub problem: String,
    /// Total coloring wall time in milliseconds (best of `reps`).
    pub time_ms: f64,
    /// Distinct colors used.
    pub colors: usize,
    /// Speculative iterations executed.
    pub rounds: usize,
    /// `|W_next|` after the first iteration.
    pub remaining_after_first: usize,
}

/// Builds the bipartite view of an instance (rows = nets, columns are
/// colored).
pub fn bgpc_graph(inst: &Instance) -> BipartiteGraph {
    BipartiteGraph::from_matrix(&inst.matrix)
}

/// Builds the unipartite view of a symmetric instance.
pub fn d2gc_graph(inst: &Instance) -> Graph {
    Graph::from_symmetric_matrix(&inst.matrix)
}

/// Runs one BGPC configuration `reps` times, verifying validity each time,
/// and returns the best-time record plus the last result.
pub fn run_bgpc_once(
    dataset: Dataset,
    g: &BipartiteGraph,
    order: &[u32],
    ordering_label: &str,
    schedule: &Schedule,
    threads: usize,
    reps: usize,
) -> (RunRecord, ColoringResult) {
    let pool = Pool::new(threads);
    let mut best: Option<ColoringResult> = None;
    for _ in 0..reps.max(1) {
        let r = bgpc::color_bgpc(g, order, schedule, &pool);
        verify_bgpc(g, &r.colors).unwrap_or_else(|e| {
            panic!("invalid {} coloring on {}: {e}", schedule.name(), dataset.name())
        });
        let better = best
            .as_ref()
            .map(|b| r.total_time < b.total_time)
            .unwrap_or(true);
        if better {
            best = Some(r);
        }
    }
    let result = best.unwrap();
    let record = RunRecord {
        dataset: dataset.name().to_string(),
        schedule: schedule.name(),
        ordering: ordering_label.to_string(),
        threads,
        problem: "bgpc".to_string(),
        time_ms: as_ms(result.total_time),
        colors: result.num_colors,
        rounds: result.rounds(),
        remaining_after_first: result.remaining_after_first(),
    };
    (record, result)
}

/// Runs one D2GC configuration, verifying validity.
pub fn run_d2gc_once(
    dataset: Dataset,
    g: &Graph,
    order: &[u32],
    ordering_label: &str,
    schedule: &Schedule,
    threads: usize,
    reps: usize,
) -> (RunRecord, ColoringResult) {
    let pool = Pool::new(threads);
    let mut best: Option<ColoringResult> = None;
    for _ in 0..reps.max(1) {
        let r = bgpc::d2gc::color_d2gc(g, order, schedule, &pool);
        verify_d2gc(g, &r.colors).unwrap_or_else(|e| {
            panic!("invalid {} d2gc on {}: {e}", schedule.name(), dataset.name())
        });
        let better = best
            .as_ref()
            .map(|b| r.total_time < b.total_time)
            .unwrap_or(true);
        if better {
            best = Some(r);
        }
    }
    let result = best.unwrap();
    let record = RunRecord {
        dataset: dataset.name().to_string(),
        schedule: schedule.name(),
        ordering: ordering_label.to_string(),
        threads,
        problem: "d2gc".to_string(),
        time_ms: as_ms(result.total_time),
        colors: result.num_colors,
        rounds: result.rounds(),
        remaining_after_first: result.remaining_after_first(),
    };
    (record, result)
}

/// Sequential BGPC baseline time and color count.
pub fn bgpc_sequential(g: &BipartiteGraph, order: &[u32]) -> (f64, usize) {
    let t = std::time::Instant::now();
    let (_, k) = bgpc::seq::color_bgpc_seq(g, order);
    (as_ms(t.elapsed()), k)
}

/// Sequential D2GC baseline time and color count.
pub fn d2gc_sequential(g: &Graph, order: &[u32]) -> (f64, usize) {
    let t = std::time::Instant::now();
    let (_, k) = bgpc::seq::color_d2gc_seq(g, order);
    (as_ms(t.elapsed()), k)
}

/// Builds an order for the bipartite problem by label.
pub fn bgpc_order(g: &BipartiteGraph, ordering: Ordering) -> Vec<u32> {
    ordering.vertex_order_bgpc(g)
}

fn as_ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Geometric mean of positive values (the paper aggregates per-matrix
/// speedups this way).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

crate::to_json_struct!(RunRecord { dataset, schedule, ordering, threads, problem, time_ms, colors, rounds, remaining_after_first });

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: f64 = 0.002;

    #[test]
    fn bgpc_run_record_is_consistent() {
        let inst = Dataset::CoPapersDblp.build(SCALE, 3);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);
        let (rec, res) = run_bgpc_once(
            inst.dataset,
            &g,
            &order,
            "natural",
            &Schedule::n1_n2(),
            2,
            1,
        );
        assert_eq!(rec.colors, res.num_colors);
        assert_eq!(rec.problem, "bgpc");
        assert!(rec.time_ms >= 0.0);
        assert!(rec.colors >= g.max_net_size());
    }

    #[test]
    fn d2gc_run_record_is_consistent() {
        let inst = Dataset::Nlpkkt120.build(SCALE, 3);
        let g = d2gc_graph(&inst);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let (rec, res) =
            run_d2gc_once(inst.dataset, &g, &order, "natural", &Schedule::v_n(1), 2, 1);
        assert_eq!(rec.colors, res.num_colors);
        assert_eq!(rec.problem, "d2gc");
    }

    #[test]
    fn geomean_matches_hand_computation() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn sequential_baselines_run() {
        let inst = Dataset::AfShell10.build(SCALE, 3);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);
        let (ms, k) = bgpc_sequential(&g, &order);
        assert!(ms >= 0.0);
        assert!(k >= g.max_net_size());
    }
}
