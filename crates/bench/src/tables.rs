//! Regeneration of the paper's Tables I–VI.

use bgpc::net::NetColoringVariant;
use bgpc::verify::ColorClassStats;
use bgpc::{Balance, Schedule};
use graph::Ordering;
use sparse::Dataset;

use crate::report::{f2, TextTable};
use crate::sweep::{
    bgpc_graph, bgpc_order, bgpc_sequential, d2gc_graph, d2gc_sequential, geomean,
    run_bgpc_once, run_d2gc_once, RunRecord,
};
use crate::ReproConfig;

/// Table I — remaining `|W_next|` after the first iteration for the three
/// net-coloring variants, on the bone010 and coPapersDBLP analogues.
pub fn table1(cfg: &ReproConfig) -> (String, Vec<RunRecord>) {
    let t = cfg.max_threads();
    let variants = [
        ("Alg. 6", NetColoringVariant::SinglePassFirstFit),
        ("Alg. 6 + reverse", NetColoringVariant::SinglePassReverse),
        ("Alg. 8", NetColoringVariant::TwoPassReverse),
    ];
    let mut table = TextTable::new(&["Matrix-Graph", "|V_B|", "Alg. 6", "Alg. 6 + reverse", "Alg. 8"]);
    let mut records = Vec::new();
    for dataset in [Dataset::Bone010, Dataset::CoPapersDblp] {
        if !cfg.datasets.contains(&dataset) {
            continue;
        }
        let inst = dataset.build(cfg.scale, cfg.seed);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);
        let mut cells = vec![dataset.name().to_string(), g.n_nets().to_string()];
        for (_, variant) in variants {
            let schedule = Schedule::n1_n2().with_net_variant(variant);
            let (rec, _) = run_bgpc_once(dataset, &g, &order, "natural", &schedule, t, cfg.reps);
            cells.push(rec.remaining_after_first.to_string());
            records.push(rec);
        }
        table.row(cells);
    }
    (table.render(), records)
}

/// One Table II row: generated-instance properties plus sequential BGPC
/// results for both orderings, with the paper's values alongside.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Generated rows/cols/nnz.
    pub rows: usize,
    /// Columns (colored side).
    pub cols: usize,
    /// Nonzeros.
    pub nnz: usize,
    /// Max net size (color lower bound).
    pub max_net: usize,
    /// Net-size standard deviation.
    pub std_dev: f64,
    /// Sequential time (ms), natural order.
    pub seq_ms_natural: f64,
    /// Colors, natural order.
    pub colors_natural: usize,
    /// Sequential time (ms), smallest-last order (ordering time excluded,
    /// as in the paper).
    pub seq_ms_sl: f64,
    /// Colors, smallest-last order.
    pub colors_sl: usize,
    /// Paper's color count (natural) for comparison.
    pub paper_colors_natural: usize,
    /// Paper's color count (smallest-last).
    pub paper_colors_sl: usize,
}

/// Table II — instance properties and sequential BGPC baselines.
pub fn table2(cfg: &ReproConfig) -> (String, Vec<Table2Row>) {
    let mut table = TextTable::new(&[
        "Matrix", "#rows", "#cols", "#nnz", "max net", "std dev", "nat ms", "nat #col",
        "SL ms", "SL #col", "paper nat", "paper SL",
    ]);
    let mut rows = Vec::new();
    for &dataset in &cfg.datasets {
        let inst = dataset.build(cfg.scale, cfg.seed);
        let g = bgpc_graph(&inst);
        let stats = sparse::DegreeStats::rows(&inst.matrix);
        let natural = bgpc_order(&g, Ordering::Natural);
        let (nat_ms, nat_k) = bgpc_sequential(&g, &natural);
        let sl = bgpc_order(&g, Ordering::SmallestLast);
        let (sl_ms, sl_k) = bgpc_sequential(&g, &sl);
        let paper = dataset.paper();
        let row = Table2Row {
            dataset: dataset.name().to_string(),
            rows: inst.matrix.nrows(),
            cols: inst.matrix.ncols(),
            nnz: inst.matrix.nnz(),
            max_net: stats.max,
            std_dev: stats.std_dev,
            seq_ms_natural: nat_ms,
            colors_natural: nat_k,
            seq_ms_sl: sl_ms,
            colors_sl: sl_k,
            paper_colors_natural: paper.colors_natural,
            paper_colors_sl: paper.colors_sl,
        };
        table.row(vec![
            row.dataset.clone(),
            row.rows.to_string(),
            row.cols.to_string(),
            row.nnz.to_string(),
            row.max_net.to_string(),
            f2(row.std_dev),
            f2(row.seq_ms_natural),
            row.colors_natural.to_string(),
            f2(row.seq_ms_sl),
            row.colors_sl.to_string(),
            row.paper_colors_natural.to_string(),
            row.paper_colors_sl.to_string(),
        ]);
        rows.push(row);
    }
    (table.render(), rows)
}

/// One speedup-table row (Tables III/IV/V format).
#[derive(Clone, Debug)]
pub struct SpeedupRow {
    /// Schedule name.
    pub schedule: String,
    /// Geo-mean color count normalized to the reference schedule.
    pub colors_vs_ref: f64,
    /// Geo-mean speedup over the sequential baseline per thread count.
    pub speedup_vs_seq: Vec<(usize, f64)>,
    /// Geo-mean speedup over the parallel reference at max threads.
    pub speedup_vs_ref_maxt: f64,
}

/// Shared engine for Tables III and IV: BGPC speedups under `ordering`,
/// geo-means across the configured datasets. The reference schedule is
/// `V-V` (ColPack).
pub fn bgpc_speedup_table(
    cfg: &ReproConfig,
    ordering: Ordering,
) -> (String, Vec<SpeedupRow>, Vec<RunRecord>) {
    let schedules = Schedule::all();
    speedup_table_impl(cfg, ordering, &schedules, 0, false)
}

/// Table V — D2GC speedups (natural order, symmetric datasets only). The
/// reference schedule is `V-V-64D`, as in the paper.
pub fn d2gc_speedup_table(cfg: &ReproConfig) -> (String, Vec<SpeedupRow>, Vec<RunRecord>) {
    let schedules = Schedule::d2gc_set();
    speedup_table_impl(cfg, Ordering::Natural, &schedules, 0, true)
}

fn speedup_table_impl(
    cfg: &ReproConfig,
    ordering: Ordering,
    schedules: &[Schedule],
    reference_idx: usize,
    d2gc: bool,
) -> (String, Vec<SpeedupRow>, Vec<RunRecord>) {
    let datasets: Vec<Dataset> = if d2gc {
        cfg.d2gc_datasets()
    } else {
        cfg.datasets.clone()
    };
    let maxt = cfg.max_threads();
    let mut records: Vec<RunRecord> = Vec::new();

    // per dataset: sequential baseline, then every schedule × thread.
    // speedups[s][t_index][d]
    let mut speedups = vec![vec![Vec::new(); cfg.threads.len()]; schedules.len()];
    let mut colors_ratio = vec![Vec::new(); schedules.len()];
    let mut vs_ref = vec![Vec::new(); schedules.len()];

    for &dataset in &datasets {
        let inst = dataset.build(cfg.scale, cfg.seed);
        let (seq_ms, times_at_maxt, _colors) = if d2gc {
            let g = d2gc_graph(&inst);
            let order = ordering.vertex_order_d2(&g);
            let (seq_ms, _) = d2gc_sequential(&g, &order);
            let mut ref_ms = 0.0;
            let mut per_sched_colors = Vec::new();
            for (si, schedule) in schedules.iter().enumerate() {
                for (ti, &t) in cfg.threads.iter().enumerate() {
                    let (rec, _) = run_d2gc_once(
                        dataset,
                        &g,
                        &order,
                        ordering.label(),
                        schedule,
                        t,
                        cfg.reps,
                    );
                    speedups[si][ti].push(seq_ms / rec.time_ms.max(1e-9));
                    if t == maxt {
                        if si == reference_idx {
                            ref_ms = rec.time_ms;
                        }
                        per_sched_colors.push((si, rec.colors, rec.time_ms));
                    }
                    records.push(rec);
                }
            }
            (seq_ms, per_sched_colors, ref_ms)
        } else {
            let g = bgpc_graph(&inst);
            let order = bgpc_order(&g, ordering);
            let (seq_ms, _) = bgpc_sequential(&g, &order);
            let mut ref_ms = 0.0;
            let mut per_sched_colors = Vec::new();
            for (si, schedule) in schedules.iter().enumerate() {
                for (ti, &t) in cfg.threads.iter().enumerate() {
                    let (rec, _) = run_bgpc_once(
                        dataset,
                        &g,
                        &order,
                        ordering.label(),
                        schedule,
                        t,
                        cfg.reps,
                    );
                    speedups[si][ti].push(seq_ms / rec.time_ms.max(1e-9));
                    if t == maxt {
                        if si == reference_idx {
                            ref_ms = rec.time_ms;
                        }
                        per_sched_colors.push((si, rec.colors, rec.time_ms));
                    }
                    records.push(rec);
                }
            }
            (seq_ms, per_sched_colors, ref_ms)
        };
        let _ = seq_ms;
        // normalize colors and time against the reference schedule at maxt
        let ref_entry = times_at_maxt
            .iter()
            .find(|(si, _, _)| *si == reference_idx)
            .copied();
        if let Some((_, ref_colors, ref_ms)) = ref_entry {
            for (si, colors, ms) in times_at_maxt {
                colors_ratio[si].push(colors as f64 / (ref_colors as f64).max(1.0));
                vs_ref[si].push(ref_ms / ms.max(1e-9));
            }
        }
    }

    // Render.
    let mut header: Vec<String> = vec!["Algorithm".into(), "#col vs ref".into()];
    for &t in &cfg.threads {
        header.push(format!("t={t}"));
    }
    header.push(format!("vs ref t={maxt}"));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = TextTable::new(&header_refs);

    let mut rows = Vec::new();
    for (si, schedule) in schedules.iter().enumerate() {
        let row = SpeedupRow {
            schedule: schedule.name(),
            colors_vs_ref: geomean(&colors_ratio[si]),
            speedup_vs_seq: cfg
                .threads
                .iter()
                .enumerate()
                .map(|(ti, &t)| (t, geomean(&speedups[si][ti])))
                .collect(),
            speedup_vs_ref_maxt: geomean(&vs_ref[si]),
        };
        let mut cells = vec![row.schedule.clone(), f2(row.colors_vs_ref)];
        for &(_, s) in &row.speedup_vs_seq {
            cells.push(f2(s));
        }
        cells.push(f2(row.speedup_vs_ref_maxt));
        table.row(cells);
        rows.push(row);
    }
    (table.render(), rows, records)
}

/// One Table VI row: balance-heuristic impact, normalized to the
/// unbalanced run of the same schedule.
#[derive(Clone, Debug)]
pub struct Table6Row {
    /// Schedule + balance name, e.g. `V-N2-B1`.
    pub name: String,
    /// Coloring time normalized to the `-U` run.
    pub time_ratio: f64,
    /// Number of color sets normalized to `-U`.
    pub classes_ratio: f64,
    /// Average class cardinality normalized to `-U`.
    pub cardinality_ratio: f64,
    /// Class-size standard deviation normalized to `-U`.
    pub std_dev_ratio: f64,
}

/// Table VI — impact of B1/B2 on V-N2 and N1-N2 at the maximum thread
/// count, geo-means across the configured datasets.
pub fn table6(cfg: &ReproConfig) -> (String, Vec<Table6Row>) {
    let t = cfg.max_threads();
    let bases = [Schedule::v_n(2), Schedule::n1_n2()];
    let balances = [Balance::Unbalanced, Balance::B1, Balance::B2];

    // ratios[base][balance] accumulated across datasets
    let mut time_r = vec![vec![Vec::new(); 3]; 2];
    let mut classes_r = vec![vec![Vec::new(); 3]; 2];
    let mut card_r = vec![vec![Vec::new(); 3]; 2];
    let mut std_r = vec![vec![Vec::new(); 3]; 2];

    for &dataset in &cfg.datasets {
        let inst = dataset.build(cfg.scale, cfg.seed);
        let g = bgpc_graph(&inst);
        let order = bgpc_order(&g, Ordering::Natural);
        for (bi, base) in bases.iter().enumerate() {
            let mut baseline: Option<(f64, usize, f64, f64)> = None;
            for (vi, &balance) in balances.iter().enumerate() {
                let schedule = base.clone().with_balance(balance);
                let (rec, res) =
                    run_bgpc_once(dataset, &g, &order, "natural", &schedule, t, cfg.reps);
                let stats = ColorClassStats::from_colors(&res.colors);
                let tuple = (rec.time_ms, stats.num_classes, stats.mean, stats.std_dev);
                if vi == 0 {
                    baseline = Some(tuple);
                }
                let (bt, bc, bm, bs) = baseline.unwrap();
                time_r[bi][vi].push(tuple.0 / bt.max(1e-9));
                classes_r[bi][vi].push(tuple.1 as f64 / (bc as f64).max(1.0));
                card_r[bi][vi].push(tuple.2 / bm.max(1e-9));
                std_r[bi][vi].push(tuple.3 / bs.max(1e-9));
            }
        }
    }

    let mut table = TextTable::new(&[
        "Algorithm", "Coloring time", "#Color sets", "Avg card.", "Std dev",
    ]);
    let mut rows = Vec::new();
    for (bi, base) in bases.iter().enumerate() {
        for (vi, &balance) in balances.iter().enumerate() {
            let name = base.clone().with_balance(balance).name();
            let name = if balance == Balance::Unbalanced {
                format!("{name}-U")
            } else {
                name
            };
            let row = Table6Row {
                name: name.clone(),
                time_ratio: geomean(&time_r[bi][vi]),
                classes_ratio: geomean(&classes_r[bi][vi]),
                cardinality_ratio: geomean(&card_r[bi][vi]),
                std_dev_ratio: geomean(&std_r[bi][vi]),
            };
            table.row(vec![
                row.name.clone(),
                f2(row.time_ratio),
                f2(row.classes_ratio),
                f2(row.cardinality_ratio),
                f2(row.std_dev_ratio),
            ]);
            rows.push(row);
        }
    }
    (table.render(), rows)
}

crate::to_json_struct!(Table2Row { dataset, rows, cols, nnz, max_net, std_dev, seq_ms_natural, colors_natural, seq_ms_sl, colors_sl, paper_colors_natural, paper_colors_sl });
crate::to_json_struct!(SpeedupRow { schedule, colors_vs_ref, speedup_vs_seq, speedup_vs_ref_maxt });
crate::to_json_struct!(Table6Row { name, time_ratio, classes_ratio, cardinality_ratio, std_dev_ratio });

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ReproConfig {
        ReproConfig {
            scale: 0.002,
            seed: 1,
            threads: vec![1, 2],
            datasets: vec![Dataset::Bone010, Dataset::CoPapersDblp],
            reps: 1,
        }
    }

    #[test]
    fn table1_orders_variants_by_optimism() {
        let (text, records) = table1(&tiny_cfg());
        assert!(text.contains("bone010"));
        assert_eq!(records.len(), 6);
        // Alg. 8 should leave no more remaining vertices than Alg. 6 on
        // these instances (the paper's whole point); allow equality.
        for pair in records.chunks(3) {
            assert!(
                pair[2].remaining_after_first <= pair[0].remaining_after_first,
                "Alg. 8 ({}) worse than Alg. 6 ({}) on {}",
                pair[2].remaining_after_first,
                pair[0].remaining_after_first,
                pair[0].dataset
            );
        }
    }

    #[test]
    fn table2_reports_both_orderings() {
        let cfg = ReproConfig {
            datasets: vec![Dataset::AfShell10],
            ..tiny_cfg()
        };
        let (text, rows) = table2(&cfg);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].colors_natural >= rows[0].max_net);
        assert!(rows[0].colors_sl >= rows[0].max_net);
        assert!(text.contains("af_shell10"));
    }

    #[test]
    fn speedup_table_has_all_schedules() {
        let cfg = ReproConfig {
            datasets: vec![Dataset::CoPapersDblp],
            ..tiny_cfg()
        };
        let (text, rows, records) = bgpc_speedup_table(&cfg, Ordering::Natural);
        assert_eq!(rows.len(), 8);
        assert_eq!(records.len(), 8 * 2); // schedules × threads
        assert!(text.contains("V-V-64D"));
        // Reference row normalizes to itself.
        assert!((rows[0].colors_vs_ref - 1.0).abs() < 1e-9);
        assert!((rows[0].speedup_vs_ref_maxt - 1.0).abs() < 1e-9);
    }

    #[test]
    fn d2gc_table_uses_symmetric_subset() {
        let cfg = ReproConfig {
            datasets: vec![Dataset::Nlpkkt120, Dataset::Uk2002], // uk-2002 excluded
            ..tiny_cfg()
        };
        let (_, rows, records) = d2gc_speedup_table(&cfg);
        assert_eq!(rows.len(), 4);
        assert!(records.iter().all(|r| r.dataset == "nlpkkt120"));
    }

    #[test]
    fn table6_baseline_rows_are_unity() {
        let cfg = ReproConfig {
            datasets: vec![Dataset::CoPapersDblp],
            ..tiny_cfg()
        };
        let (_, rows) = table6(&cfg);
        assert_eq!(rows.len(), 6);
        for row in rows.iter().step_by(3) {
            assert!((row.time_ratio - 1.0).abs() < 1e-9, "{}", row.name);
            assert!((row.std_dev_ratio - 1.0).abs() < 1e-9);
        }
    }
}
