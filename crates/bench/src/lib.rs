//! `bench` — the reproduction harness.
//!
//! Regenerates every table and figure of the paper's evaluation (§VI) on
//! the synthetic dataset analogues. The `repro` binary drives it:
//!
//! ```text
//! repro all                # every table and figure
//! repro table3 --scale 0.02 --threads 1,2,4,8,16
//! repro figure2 --datasets coPapersDBLP,bone010
//! ```
//!
//! Results print in the paper's row format and are also written as JSON
//! records for EXPERIMENTS.md tooling.

pub mod ablation;
pub mod analysis;
pub mod config;
pub mod distrib;
pub mod figures;
pub mod json;
pub mod report;
pub mod sweep;
pub mod tables;
pub mod timing;

pub use config::ReproConfig;
pub use sweep::{run_bgpc_once, run_d2gc_once, RunRecord};
