//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro <target> [flags]
//!
//! targets: all, table1, table2, table3, table4, table5, table6,
//!          figure1, figure2, figure3
//! flags:   --scale F  --seed N  --threads a,b,c  --datasets x,y  --reps N
//! ```
//!
//! Text output goes to stdout; JSON records are written next to the
//! repository's EXPERIMENTS.md under `results/`.

use std::path::PathBuf;

use bench::report::write_json;
use bench::{figures, tables, ReproConfig};
use graph::Ordering;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (target, flags) = match args.split_first() {
        Some((t, rest)) if !t.starts_with("--") => (t.clone(), rest.to_vec()),
        _ => ("all".to_string(), args),
    };
    let cfg = match ReproConfig::from_args(&flags) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: repro [all|table1..table6|figure1..figure3] [--scale F] [--seed N] [--threads a,b,c] [--datasets x,y] [--reps N]");
            std::process::exit(2);
        }
    };

    println!(
        "# BGPC reproduction — scale {} seed {} threads {:?} ({} hardware threads available)",
        cfg.scale,
        cfg.seed,
        cfg.threads,
        par::available_threads()
    );
    if par::available_threads() < cfg.max_threads() {
        println!(
            "# NOTE: host exposes {} hardware thread(s); thread counts beyond that time-slice,",
            par::available_threads()
        );
        println!("#       so wall-clock speedups will underrepresent the paper's 16-core results.");
    }
    println!();

    let out_dir = results_dir();
    let run = |name: &str| target == "all" || target == name;
    let mut ran_any = false;

    if run("table1") {
        ran_any = true;
        section("Table I — |W_next| after the first iteration (net-coloring variants)");
        let (text, records) = tables::table1(&cfg);
        println!("{text}");
        checked_write(&out_dir, "table1", &records);
    }
    if run("table2") {
        ran_any = true;
        section("Table II — instances and sequential BGPC baselines");
        let (text, rows) = tables::table2(&cfg);
        println!("{text}");
        checked_write(&out_dir, "table2", &rows);
    }
    if run("table3") {
        ran_any = true;
        section("Table III — BGPC speedups, natural order (geo-means; ref = V-V)");
        let (text, rows, records) = tables::bgpc_speedup_table(&cfg, Ordering::Natural);
        println!("{text}");
        checked_write(&out_dir, "table3", &rows);
        checked_write(&out_dir, "table3_runs", &records);
    }
    if run("table4") {
        ran_any = true;
        section("Table IV — BGPC speedups, smallest-last order (geo-means; ref = V-V)");
        let (text, rows, records) = tables::bgpc_speedup_table(&cfg, Ordering::SmallestLast);
        println!("{text}");
        checked_write(&out_dir, "table4", &rows);
        checked_write(&out_dir, "table4_runs", &records);
    }
    if run("table5") {
        ran_any = true;
        section("Table V — D2GC speedups, natural order (ref = V-V-64D)");
        let (text, rows, records) = tables::d2gc_speedup_table(&cfg);
        println!("{text}");
        checked_write(&out_dir, "table5", &rows);
        checked_write(&out_dir, "table5_runs", &records);
    }
    if run("table6") {
        ran_any = true;
        section("Table VI — balancing heuristics (normalized to unbalanced)");
        let (text, rows) = tables::table6(&cfg);
        println!("{text}");
        checked_write(&out_dir, "table6", &rows);
    }
    if run("figure1") {
        ran_any = true;
        section("Figure 1 — per-iteration phase times (coPapersDBLP analogue)");
        let (text, points) = figures::figure1(&cfg);
        println!("{text}");
        checked_write(&out_dir, "figure1", &points);
    }
    if run("figure2") {
        ran_any = true;
        section("Figure 2 — time and colors per matrix × algorithm × threads");
        let (text, records) = figures::figure2(&cfg);
        println!("{text}");
        checked_write(&out_dir, "figure2", &records);
    }
    if run("figure3") {
        ran_any = true;
        section("Figure 3 — color-set cardinality distributions (coPapersDBLP analogue)");
        let (text, series) = figures::figure3(&cfg);
        println!("{text}");
        checked_write(&out_dir, "figure3", &series);
    }

    if run("ablations") {
        ran_any = true;
        section("Ablation — dynamic chunk size (V-V-64D family)");
        let (text, rows) = bench::ablation::chunk_sweep(&cfg);
        println!("{text}");
        checked_write(&out_dir, "ablation_chunk", &rows);

        section("Ablation — conflict-queue strategy");
        let (text, rows) = bench::ablation::queue_sweep(&cfg);
        println!("{text}");
        checked_write(&out_dir, "ablation_queue", &rows);

        section("Ablation — net-coloring variant inside N1-N2");
        let (text, rows) = bench::ablation::net_variant_sweep(&cfg);
        println!("{text}");
        checked_write(&out_dir, "ablation_net_variant", &rows);

        section("Ablation — iterative recoloring post-pass");
        let (text, rows) = bench::ablation::recolor_sweep(&cfg);
        println!("{text}");
        checked_write(&out_dir, "ablation_recolor", &rows);

        section("Ablation — Jones-Plassmann (MIS-based) vs speculative N1-N2");
        let (text, rows) = bench::ablation::jp_sweep(&cfg);
        println!("{text}");
        checked_write(&out_dir, "ablation_jp", &rows);
    }

    if run("analysis") {
        ran_any = true;
        section("Analysis — predicted vs measured first-iteration work ratios (§III)");
        let (text, rows) = bench::analysis::predicted_vs_measured(&cfg);
        println!("{text}");
        checked_write(&out_dir, "analysis", &rows);
    }
    if run("dist") {
        ran_any = true;
        section("Extension — BSP distributed-memory baseline (rounds, messages, colors)");
        let (text, rows) = bench::distrib::dist_sweep(&cfg);
        println!("{text}");
        checked_write(&out_dir, "dist", &rows);
    }

    if !ran_any {
        eprintln!("error: unknown target `{target}`");
        std::process::exit(2);
    }
    println!("# JSON records written to {}", out_dir.display());
}

fn section(title: &str) {
    println!("## {title}");
}

fn results_dir() -> PathBuf {
    // workspace root when run via cargo, else cwd
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../../results"))
        .unwrap_or_else(|_| PathBuf::from("results"))
}

fn checked_write<T: bench::json::ToJson>(dir: &std::path::Path, name: &str, records: &T) {
    if let Err(e) = write_json(dir, name, records) {
        eprintln!("warning: could not write {name}.json: {e}");
    }
}
