//! End-to-end coloring benchmark: per-schedule wall times plus a
//! forbidden-set micro comparison, emitted as `BENCH_coloring.json`.
//!
//! Modes (mutually exclusive, `--quick` is the `scripts/bench.sh`
//! default):
//!
//! * `--smoke` — one tiny instance, one repetition; exercises the whole
//!   pipeline in seconds (used by `scripts/verify.sh` to assert the JSON
//!   output parses and every coloring verifies).
//! * `--quick` — the three BGPC instances and one D2GC instance at small
//!   scale, threads {1, 4}, 3 repetitions.
//! * (no flag) — full mode: larger scale, threads {1, 2, 4, 8},
//!   5 repetitions.
//!
//! `--out PATH` overrides the output path. Every measured coloring is
//! verified; any invalid coloring aborts with a nonzero exit.
//!
//! The report always carries `oracle_best` — the fastest swept config per
//! (problem, dataset, threads) cell, which `fit_engine` fits the decision
//! table from. `--autotune` additionally measures the engine-chosen config
//! per cell (online tuner attached) and records its time ratio against the
//! oracle best, plus the geometric mean over all cells.
//!
//! `--delta` adds the incremental-update axis: batches of 1/10/100/1000
//! edge mutations against the power-law analogue, timed as
//! `apply_delta` + dirty-set recolor (seeded from the base coloring)
//! versus a from-scratch recolor of the mutated graph, for both BGPC and
//! D2GC. Records land in the report's `delta` section.

use std::time::Instant;

use bench::json::to_string_pretty;
use bench::to_json_struct;
use bgpc::verify::{verify_bgpc, verify_d2gc};
use bgpc::{
    BitStampSet, CsrDelta, Engine, EngineConfig, ForbiddenSet, KernelImpl, OnlineTuner,
    RunnerOpts, Schedule, StampSet,
};
use graph::{BipartiteGraph, Graph, Ordering};
use par::{Pool, Sched};
use sparse::{Csr, CsrIndex, Dataset, IndexWidth, LocalityOrder};

/// Micro comparison row: dense first-fit cost per call.
struct MicroRecord {
    /// Interval width (colors 0..colors−1 forbidden except the last).
    colors: usize,
    stamp_ns: f64,
    bitstamp_ns: f64,
    /// `stamp_ns / bitstamp_ns` — > 1 means the word-packed set wins.
    speedup: f64,
}
to_json_struct!(MicroRecord {
    colors,
    stamp_ns,
    bitstamp_ns,
    speedup
});

/// Kernel micro row: dense first-fit on the same `BitStampSet`, scalar
/// word loop vs the runtime-dispatched vector sweep.
struct MicroKernelRecord {
    /// Interval width (colors 0..colors−1 forbidden except the last).
    colors: usize,
    /// Resolved vector kernel the `simd` request dispatched to.
    kernel: String,
    scalar_ns: f64,
    simd_ns: f64,
    /// `scalar_ns / simd_ns` — > 1 means the vector sweep wins.
    speedup: f64,
}
to_json_struct!(MicroKernelRecord {
    colors,
    kernel,
    scalar_ns,
    simd_ns,
    speedup
});

/// One end-to-end schedule measurement.
struct ScheduleRecord {
    problem: String,
    dataset: String,
    schedule: String,
    /// Worker-thread count the sweep *requested* for this cell.
    threads: usize,
    /// Worker-thread count the pool actually spawned (can differ when the
    /// pool clamps the request; a warning is printed when it does).
    pool_workers: usize,
    set_impl: String,
    /// Row-pointer width the run used (`u32` or `u64`).
    index_width: String,
    /// Locality relabeling applied before coloring (`none`/`degree`/`bfs`).
    order: String,
    /// Chunk-scheduling policy (`dynamic` or `steal`).
    sched: String,
    /// Forbidden-set kernel request (`scalar`/`simd`/`auto`).
    kernel: String,
    /// Minimum wall time over the repetitions, milliseconds.
    time_ms: f64,
    num_colors: usize,
    rounds: usize,
    verified: bool,
}
to_json_struct!(ScheduleRecord {
    problem,
    dataset,
    schedule,
    threads,
    pool_workers,
    set_impl,
    index_width,
    order,
    sched,
    kernel,
    time_ms,
    num_colors,
    rounds,
    verified
});

/// Per-cell oracle: the fastest config the sweep measured for one
/// (problem, dataset, threads) cell — the bar `--autotune` is judged
/// against. Always emitted, so later fits can reuse any report.
struct OracleRecord {
    problem: String,
    dataset: String,
    threads: usize,
    /// Winning config in the engine table's config syntax.
    config: String,
    time_ms: f64,
}
to_json_struct!(OracleRecord {
    problem,
    dataset,
    threads,
    config,
    time_ms
});

/// One `--autotune` measurement: the engine picks the whole config from
/// instance features, the run is measured like any sweep cell, and the
/// result is compared against the cell's oracle best.
struct AutotuneRecord {
    problem: String,
    dataset: String,
    threads: usize,
    pool_workers: usize,
    /// Fully resolved engine choice, in table config syntax.
    config: String,
    /// Table row the choice came from (`point:<tag>` or `default`).
    matched: String,
    time_ms: f64,
    /// Oracle-best time for the same cell (`null` when the sweep had no
    /// record for it).
    oracle_ms: Option<f64>,
    /// `time_ms / oracle_ms` — ≤ 1.05 is the acceptance bar.
    ratio: Option<f64>,
    /// Online tuner actions taken during the fastest repetition.
    actions: Vec<String>,
    num_colors: usize,
    rounds: usize,
    verified: bool,
}
to_json_struct!(AutotuneRecord {
    problem,
    dataset,
    threads,
    pool_workers,
    config,
    matched,
    time_ms,
    oracle_ms,
    ratio,
    actions,
    num_colors,
    rounds,
    verified
});

/// One `--delta` measurement: a batch of edge mutations against the
/// power-law analogue, answered two ways — incrementally (apply the delta
/// and recolor only the dirty set, seeded from the base coloring) and from
/// scratch on the mutated graph. Both colorings are verified against the
/// mutated graph.
struct DeltaRecord {
    problem: String,
    dataset: String,
    threads: usize,
    /// Edge mutations in the batch (insertions plus deletions; D2GC counts
    /// undirected edges, each applied in both orientations).
    batch: usize,
    /// Dirty vertices the batch produced (the seeded work queue's size).
    dirty: usize,
    /// `apply_delta` + seeded dirty-set recolor, minimum over reps, ms.
    update_ms: f64,
    /// From-scratch recolor of the mutated graph, minimum over reps, ms.
    full_ms: f64,
    /// `full_ms / update_ms` — > 1 means the incremental path wins.
    speedup: f64,
    /// Colors of the incremental coloring (bounded by
    /// `max(full base colors, Δ₂ + 1)`; see `bgpc::incremental`).
    update_colors: usize,
    /// Colors of the from-scratch coloring of the mutated graph.
    full_colors: usize,
    verified: bool,
}
to_json_struct!(DeltaRecord {
    problem,
    dataset,
    threads,
    batch,
    dirty,
    update_ms,
    full_ms,
    speedup,
    update_colors,
    full_colors,
    verified
});

/// Pre-rendered JSON embedded verbatim — used to splice the trace crate's
/// [`trace::RunSummary::to_json`] output into the report without teaching
/// the bench JSON layer about its types.
struct RawJson(String);

impl bench::json::ToJson for RawJson {
    fn write_json(&self, out: &mut String) {
        out.push_str(&self.0);
    }
}

struct BenchReport {
    mode: String,
    scale: f64,
    seed: u64,
    reps: usize,
    /// Git SHA of the measured tree (`BENCH_GIT_SHA`, set by
    /// `scripts/bench.sh`; `unknown` when run by hand).
    git_sha: String,
    /// Host the numbers came from (`BENCH_HOSTNAME` / `HOSTNAME`).
    hostname: String,
    /// Hardware threads available on the host.
    host_threads: usize,
    /// Worker-thread counts the sweep requested (`threads` axis). Compare
    /// with `host_threads` and the per-record `pool_workers` to spot
    /// oversubscribed or clamped cells.
    requested_threads: Vec<usize>,
    /// ISA feature set the simd dispatcher detected (`sse2,avx2`, `sse2`,
    /// or `scalar` off x86-64).
    isa: String,
    /// Whether the measurement pools were pinned core-major (`--pin` and
    /// the affinity syscall succeeded).
    pinned: bool,
    micro: Vec<MicroRecord>,
    /// Scalar vs vector first-fit on the word-packed set.
    micro_kernel: Vec<MicroKernelRecord>,
    schedules: Vec<ScheduleRecord>,
    /// Fastest swept config per (problem, dataset, threads) cell.
    oracle_best: Vec<OracleRecord>,
    /// Engine-chosen runs (`--autotune`; empty otherwise).
    autotune: Vec<AutotuneRecord>,
    /// Geometric mean of the autotune/oracle time ratios (`null` without
    /// `--autotune` or when no cell had an oracle record).
    autotune_geomean: Option<f64>,
    /// Incremental-update measurements (`--delta`; empty otherwise).
    delta: Vec<DeltaRecord>,
    /// Structured per-thread summary of the `--trace` run (`null` when
    /// tracing was not requested).
    trace: Option<RawJson>,
}
to_json_struct!(BenchReport {
    mode,
    scale,
    seed,
    reps,
    git_sha,
    hostname,
    host_threads,
    requested_threads,
    isa,
    pinned,
    micro,
    micro_kernel,
    schedules,
    oracle_best,
    autotune,
    autotune_geomean,
    delta,
    trace
});

const SEED: u64 = 20170814;

fn dense<F: ForbiddenSet>(colors: usize) -> F {
    let mut fb = F::with_capacity(colors);
    fb.advance();
    for c in 0..colors as i32 - 1 {
        fb.insert(c);
    }
    fb
}

/// Times `reps` first-fit calls on `fb`, returning nanoseconds per call
/// (minimum over `samples` timed batches).
fn time_first_fit<F: ForbiddenSet>(fb: &F, reps: usize, samples: usize) -> f64 {
    let mut best = f64::INFINITY;
    let mut sink = 0i64;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..reps {
            sink += fb.first_fit_from(0) as i64;
        }
        best = best.min(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    std::hint::black_box(sink);
    best
}

fn micro_section(samples: usize) -> Vec<MicroRecord> {
    let reps = 2000usize;
    [256usize, 1024, 4096]
        .iter()
        .map(|&colors| {
            let stamp: StampSet = dense(colors);
            let bits: BitStampSet = dense(colors);
            let stamp_ns = time_first_fit(&stamp, reps, samples);
            let bitstamp_ns = time_first_fit(&bits, reps, samples);
            MicroRecord {
                colors,
                stamp_ns,
                bitstamp_ns,
                speedup: stamp_ns / bitstamp_ns,
            }
        })
        .collect()
}

/// Scalar vs vector first-fit on the same dense `BitStampSet`: every
/// word up to the last is saturated, so the sweep scans the whole array
/// before finding color `colors − 1` — the kernel's worst (and most
/// representative) case on dense-net instances.
fn micro_kernel_section(samples: usize) -> Vec<MicroKernelRecord> {
    let reps = 2000usize;
    let resolved = KernelImpl::Simd.resolve();
    [256usize, 1024, 4096]
        .iter()
        .map(|&colors| {
            let mut fb: BitStampSet = dense(colors);
            fb.set_kernel(KernelImpl::Scalar);
            let scalar_ns = time_first_fit(&fb, reps, samples);
            fb.set_kernel(KernelImpl::Simd);
            let simd_ns = time_first_fit(&fb, reps, samples);
            MicroKernelRecord {
                colors,
                kernel: resolved.label().into(),
                scalar_ns,
                simd_ns,
                speedup: scalar_ns / simd_ns,
            }
        })
        .collect()
}

/// Runs one schedule `reps` times with forbidden-set `F`, verifying every
/// run; returns the record with the minimum wall time.
#[allow(clippy::too_many_arguments)]
fn run_bgpc<F: ForbiddenSet, I: CsrIndex>(
    g: &BipartiteGraph<I>,
    order: &[u32],
    dataset: &str,
    schedule: &Schedule,
    pool: &Pool,
    threads: usize,
    set_impl: &str,
    reps: usize,
) -> ScheduleRecord {
    let mut best_ms = f64::INFINITY;
    let mut num_colors = 0;
    let mut rounds = 0;
    for _ in 0..reps {
        let r = bgpc::color_bgpc_with_set::<F, I>(g, order, schedule, pool, RunnerOpts::default());
        if let Err(e) = verify_bgpc(g, &r.colors) {
            eprintln!(
                "FATAL: invalid BGPC coloring ({dataset}, {}, {threads}t, {set_impl}): {e}",
                schedule.name()
            );
            std::process::exit(1);
        }
        let ms = r.total_time.as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            num_colors = r.num_colors;
            rounds = r.rounds();
        }
    }
    ScheduleRecord {
        problem: "BGPC".into(),
        dataset: dataset.into(),
        schedule: schedule.name(),
        threads,
        pool_workers: pool.threads(),
        set_impl: set_impl.into(),
        index_width: I::LABEL.into(),
        order: "none".into(),
        sched: schedule.sched.label().into(),
        kernel: schedule.kernel.label().into(),
        time_ms: best_ms,
        num_colors,
        rounds,
        verified: true,
    }
}

/// One axis-sweep measurement: colors the relabeled pattern `pm` at width
/// `I`, maps the coloring back through `perm`, and verifies it against the
/// *original* graph — the sweep cannot report a fast-but-wrong relabeled
/// run. Uses the runner's per-instance forbidden-set dispatch.
#[allow(clippy::too_many_arguments)]
fn axis_record_bgpc<I: CsrIndex>(
    pm: &Csr<I>,
    g0: &BipartiteGraph,
    perm: &Option<Vec<u32>>,
    dataset: &str,
    schedule: &Schedule,
    pool: &Pool,
    threads: usize,
    relabel: LocalityOrder,
    reps: usize,
) -> ScheduleRecord {
    let g = BipartiteGraph::from_matrix(pm);
    let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    let mut best_ms = f64::INFINITY;
    let mut num_colors = 0;
    let mut rounds = 0;
    for _ in 0..reps {
        let r = bgpc::color_bgpc(&g, &order, schedule, pool);
        let colors = match perm {
            Some(p) => sparse::unpermute(&r.colors, p),
            None => r.colors.clone(),
        };
        if let Err(e) = verify_bgpc(g0, &colors) {
            eprintln!(
                "FATAL: invalid BGPC axis coloring ({dataset}, {}, {threads}t, {}, {}, {}): {e}",
                schedule.name(),
                I::LABEL,
                relabel.label(),
                schedule.sched,
            );
            std::process::exit(1);
        }
        let ms = r.total_time.as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            num_colors = r.num_colors;
            rounds = r.rounds();
        }
    }
    ScheduleRecord {
        problem: "BGPC".into(),
        dataset: dataset.into(),
        schedule: schedule.name(),
        threads,
        pool_workers: pool.threads(),
        set_impl: "auto".into(),
        index_width: I::LABEL.into(),
        order: relabel.label().into(),
        sched: schedule.sched.label().into(),
        kernel: schedule.kernel.label().into(),
        time_ms: best_ms,
        num_colors,
        rounds,
        verified: true,
    }
}

/// D2GC analogue of [`axis_record_bgpc`] over the symmetric relabeling.
#[allow(clippy::too_many_arguments)]
fn axis_record_d2gc<I: CsrIndex>(
    pm: &Csr<I>,
    g0: &Graph,
    perm: &Option<Vec<u32>>,
    dataset: &str,
    schedule: &Schedule,
    pool: &Pool,
    threads: usize,
    relabel: LocalityOrder,
    reps: usize,
) -> ScheduleRecord {
    let g = Graph::from_symmetric_matrix(pm);
    let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    let mut best_ms = f64::INFINITY;
    let mut num_colors = 0;
    let mut rounds = 0;
    for _ in 0..reps {
        let r = bgpc::d2gc::color_d2gc(&g, &order, schedule, pool);
        let colors = match perm {
            Some(p) => sparse::unpermute(&r.colors, p),
            None => r.colors.clone(),
        };
        if let Err(e) = verify_d2gc(g0, &colors) {
            eprintln!(
                "FATAL: invalid D2GC axis coloring ({dataset}, {}, {threads}t, {}, {}, {}): {e}",
                schedule.name(),
                I::LABEL,
                relabel.label(),
                schedule.sched,
            );
            std::process::exit(1);
        }
        let ms = r.total_time.as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            num_colors = r.num_colors;
            rounds = r.rounds();
        }
    }
    ScheduleRecord {
        problem: "D2GC".into(),
        dataset: dataset.into(),
        schedule: schedule.name(),
        threads,
        pool_workers: pool.threads(),
        set_impl: "auto".into(),
        index_width: I::LABEL.into(),
        order: relabel.label().into(),
        sched: schedule.sched.label().into(),
        kernel: schedule.kernel.label().into(),
        time_ms: best_ms,
        num_colors,
        rounds,
        verified: true,
    }
}

fn run_d2gc(
    g: &Graph,
    order: &[u32],
    dataset: &str,
    schedule: &Schedule,
    pool: &Pool,
    threads: usize,
    reps: usize,
) -> ScheduleRecord {
    let mut best_ms = f64::INFINITY;
    let mut num_colors = 0;
    let mut rounds = 0;
    for _ in 0..reps {
        let r = bgpc::d2gc::color_d2gc(g, order, schedule, pool);
        if let Err(e) = verify_d2gc(g, &r.colors) {
            eprintln!(
                "FATAL: invalid D2GC coloring ({dataset}, {}, {threads}t): {e}",
                schedule.name()
            );
            std::process::exit(1);
        }
        let ms = r.total_time.as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            num_colors = r.num_colors;
            rounds = r.rounds();
        }
    }
    ScheduleRecord {
        problem: "D2GC".into(),
        dataset: dataset.into(),
        schedule: schedule.name(),
        threads,
        pool_workers: pool.threads(),
        set_impl: "BitStampSet".into(),
        index_width: "u32".into(),
        order: "none".into(),
        sched: schedule.sched.label().into(),
        kernel: schedule.kernel.label().into(),
        time_ms: best_ms,
        num_colors,
        rounds,
        verified: true,
    }
}

/// Renders a sweep record's configuration in the engine table's config
/// syntax, so `fit_engine` and the autotune comparison speak one format.
fn record_config(r: &ScheduleRecord) -> String {
    let forbidden = match r.set_impl.as_str() {
        "BitStampSet" => "bitstamp",
        "StampSet" => "stamp",
        _ => "auto",
    };
    format!(
        "schedule={} sched={} width={} relabel={} kernel={} forbidden={}",
        r.schedule, r.sched, r.index_width, r.order, r.kernel, forbidden
    )
}

/// Folds the sweep down to the fastest config per (problem, dataset,
/// threads) cell. Ties keep the first record, so the output is a
/// deterministic function of the sweep order.
fn oracle_section(schedules: &[ScheduleRecord]) -> Vec<OracleRecord> {
    let mut best: Vec<OracleRecord> = Vec::new();
    for r in schedules {
        match best
            .iter_mut()
            .find(|o| o.problem == r.problem && o.dataset == r.dataset && o.threads == r.threads)
        {
            Some(o) => {
                if r.time_ms < o.time_ms {
                    o.time_ms = r.time_ms;
                    o.config = record_config(r);
                }
            }
            None => best.push(OracleRecord {
                problem: r.problem.clone(),
                dataset: r.dataset.clone(),
                threads: r.threads,
                config: record_config(r),
                time_ms: r.time_ms,
            }),
        }
    }
    best
}

/// Measures one engine-chosen BGPC cell: `reps` runs of the resolved
/// config (online tuner attached) on the relabeled pattern, every run
/// verified against the original graph. Returns (best ms, colors, rounds,
/// tuner actions of the fastest rep).
fn autotune_bgpc<I: CsrIndex>(
    pm: &Csr<I>,
    g0: &BipartiteGraph,
    perm: &Option<Vec<u32>>,
    cfg: &EngineConfig,
    dataset: &str,
    pool: &Pool,
    reps: usize,
) -> (f64, usize, usize, Vec<String>) {
    let g = BipartiteGraph::from_matrix(pm);
    let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    let mut best_ms = f64::INFINITY;
    let mut num_colors = 0;
    let mut rounds = 0;
    let mut actions = Vec::new();
    for _ in 0..reps {
        let opts = RunnerOpts {
            online: Some(OnlineTuner::default()),
            ..Default::default()
        };
        let r = bgpc::engine::color_bgpc_with_config(&g, &order, cfg, pool, opts);
        let colors = match perm {
            Some(p) => sparse::unpermute(&r.colors, p),
            None => r.colors.clone(),
        };
        if let Err(e) = verify_bgpc(g0, &colors) {
            eprintln!(
                "FATAL: invalid autotuned BGPC coloring ({dataset}, {}): {e}",
                cfg.describe()
            );
            std::process::exit(1);
        }
        let ms = r.total_time.as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            num_colors = r.num_colors;
            rounds = r.rounds();
            actions = r.tuner_actions.iter().map(|a| a.to_string()).collect();
        }
    }
    (best_ms, num_colors, rounds, actions)
}

/// D2GC analogue of [`autotune_bgpc`] over the symmetric relabeling.
fn autotune_d2gc<I: CsrIndex>(
    pm: &Csr<I>,
    g0: &Graph,
    perm: &Option<Vec<u32>>,
    cfg: &EngineConfig,
    dataset: &str,
    pool: &Pool,
    reps: usize,
) -> (f64, usize, usize, Vec<String>) {
    let g = Graph::from_symmetric_matrix(pm);
    let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    let mut best_ms = f64::INFINITY;
    let mut num_colors = 0;
    let mut rounds = 0;
    let mut actions = Vec::new();
    for _ in 0..reps {
        let opts = RunnerOpts {
            online: Some(OnlineTuner::default()),
            ..Default::default()
        };
        let r = bgpc::engine::color_d2gc_with_config(&g, &order, cfg, pool, opts);
        let colors = match perm {
            Some(p) => sparse::unpermute(&r.colors, p),
            None => r.colors.clone(),
        };
        if let Err(e) = verify_d2gc(g0, &colors) {
            eprintln!(
                "FATAL: invalid autotuned D2GC coloring ({dataset}, {}): {e}",
                cfg.describe()
            );
            std::process::exit(1);
        }
        let ms = r.total_time.as_secs_f64() * 1e3;
        if ms < best_ms {
            best_ms = ms;
            num_colors = r.num_colors;
            rounds = r.rounds();
            actions = r.tuner_actions.iter().map(|a| a.to_string()).collect();
        }
    }
    (best_ms, num_colors, rounds, actions)
}

/// The batch sizes the `--delta` axis sweeps, in touched edges.
const DELTA_BATCHES: [usize; 4] = [1, 10, 100, 1000];

/// Draws `want` edges absent from `m` (no duplicates) by rejection
/// sampling; `undirected` restricts draws to `row < col` non-loop pairs
/// (for symmetric patterns, where the delta is later mirrored). Returns
/// fewer than `want` edges when the pattern is too dense to find them.
fn draw_absent(m: &Csr, want: usize, undirected: bool, rng: &mut rng::Pcg32) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = Vec::with_capacity(want);
    let mut attempts = 0usize;
    while out.len() < want && attempts < 20 * want + 100 {
        attempts += 1;
        let r = rng.bounded_u64(m.nrows() as u64) as u32;
        let c = rng.bounded_u64(m.ncols() as u64) as u32;
        let (r, c) = if undirected {
            if r == c {
                continue;
            }
            (r.min(c), r.max(c))
        } else {
            (r, c)
        };
        if m.contains(r as usize, c) || out.contains(&(r, c)) {
            continue;
        }
        out.push((r, c));
    }
    out
}

/// Samples `want` distinct edges present in `m` (partial Fisher–Yates over
/// the edge census); `undirected` keeps only the `row < col` orientation.
fn draw_present(m: &Csr, want: usize, undirected: bool, rng: &mut rng::Pcg32) -> Vec<(u32, u32)> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for i in 0..m.nrows() {
        for &c in m.row(i) {
            if !undirected || (i as u32) < c {
                edges.push((i as u32, c));
            }
        }
    }
    let want = want.min(edges.len());
    for k in 0..want {
        let j = k + rng.bounded_u64((edges.len() - k) as u64) as usize;
        edges.swap(k, j);
    }
    edges.truncate(want);
    edges
}

/// Measures one `--delta` cell: `batch` mutations (half deletions, half
/// insertions) against the base pattern, timed as the incremental path
/// (`apply_delta` + dirty-set recolor seeded from the base coloring) and
/// as a from-scratch recolor of the mutated graph. Minimum over `reps`;
/// both colorings verified against the mutated graph.
#[allow(clippy::too_many_arguments)]
fn delta_record(
    m: &Csr,
    dataset: &str,
    bgpc_problem: bool,
    batch: usize,
    pool: &Pool,
    threads: usize,
    reps: usize,
    seed: u64,
) -> Option<DeltaRecord> {
    let mut rng = rng::Pcg32::seed_from_u64(seed);
    let undirected = !bgpc_problem;
    let deletions = draw_present(m, batch / 2, undirected, &mut rng);
    let insertions = draw_absent(m, batch - deletions.len(), undirected, &mut rng);
    if insertions.len() + deletions.len() < batch {
        eprintln!("  delta {dataset} batch {batch}: pattern too small to draw the batch, skipped");
        return None;
    }
    let delta = CsrDelta::try_new(insertions, deletions).expect("drawn edges form a valid delta");
    let delta = if bgpc_problem {
        delta
    } else {
        delta.symmetrized().expect("non-loop undirected draws symmetrize")
    };
    let applied = bgpc::apply_delta(m, &delta).expect("drawn delta applies to its own base");

    // Base coloring (what a serving layer would have cached) and the
    // mutated graphs, built once outside the timed loops.
    let schedule = if bgpc_problem { Schedule::n1_n2() } else { Schedule::v_v_64d() };
    let (mut update_ms, mut full_ms) = (f64::INFINITY, f64::INFINITY);
    let (update_colors, full_colors, dirty_len);
    if bgpc_problem {
        let g = BipartiteGraph::from_matrix(m);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let base = bgpc::color_bgpc(&g, &order, &schedule, pool);
        let g2 = BipartiteGraph::from_matrix(&applied.matrix);
        let mut colors_inc = 0;
        let mut colors_full = 0;
        let mut dirty_n = 0;
        for _ in 0..reps {
            let t = Instant::now();
            let a = bgpc::apply_delta(m, &delta).expect("delta applies");
            let dirty = a.dirty_bgpc();
            let r = bgpc::recolor_bgpc_incremental(
                &g2,
                &base.colors,
                dirty,
                &order,
                &schedule,
                pool,
                RunnerOpts::default(),
            );
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if let Err(e) = verify_bgpc(&g2, &r.colors) {
                eprintln!("FATAL: invalid incremental BGPC coloring ({dataset}, batch {batch}): {e}");
                std::process::exit(1);
            }
            if ms < update_ms {
                update_ms = ms;
                colors_inc = r.num_colors;
                dirty_n = dirty.len();
            }
            let t = Instant::now();
            let rf = bgpc::color_bgpc(&g2, &order, &schedule, pool);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if let Err(e) = verify_bgpc(&g2, &rf.colors) {
                eprintln!("FATAL: invalid full BGPC recolor ({dataset}, batch {batch}): {e}");
                std::process::exit(1);
            }
            if ms < full_ms {
                full_ms = ms;
                colors_full = rf.num_colors;
            }
        }
        update_colors = colors_inc;
        full_colors = colors_full;
        dirty_len = dirty_n;
    } else {
        let g = Graph::from_symmetric_matrix(m);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let base = bgpc::d2gc::color_d2gc(&g, &order, &schedule, pool);
        let g2 = Graph::from_symmetric_matrix(&applied.matrix);
        let mut colors_inc = 0;
        let mut colors_full = 0;
        let mut dirty_n = 0;
        for _ in 0..reps {
            let t = Instant::now();
            let a = bgpc::apply_delta(m, &delta).expect("delta applies");
            let dirty = a.dirty_d2gc();
            let r = bgpc::recolor_d2gc_incremental(
                &g2,
                &base.colors,
                &dirty,
                &order,
                &schedule,
                pool,
                RunnerOpts::default(),
            );
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if let Err(e) = verify_d2gc(&g2, &r.colors) {
                eprintln!("FATAL: invalid incremental D2GC coloring ({dataset}, batch {batch}): {e}");
                std::process::exit(1);
            }
            if ms < update_ms {
                update_ms = ms;
                colors_inc = r.num_colors;
                dirty_n = dirty.len();
            }
            let t = Instant::now();
            let rf = bgpc::d2gc::color_d2gc(&g2, &order, &schedule, pool);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            if let Err(e) = verify_d2gc(&g2, &rf.colors) {
                eprintln!("FATAL: invalid full D2GC recolor ({dataset}, batch {batch}): {e}");
                std::process::exit(1);
            }
            if ms < full_ms {
                full_ms = ms;
                colors_full = rf.num_colors;
            }
        }
        update_colors = colors_inc;
        full_colors = colors_full;
        dirty_len = dirty_n;
    }
    Some(DeltaRecord {
        problem: if bgpc_problem { "BGPC" } else { "D2GC" }.into(),
        dataset: dataset.into(),
        threads,
        batch: delta.len() / if bgpc_problem { 1 } else { 2 },
        dirty: dirty_len,
        update_ms,
        full_ms,
        speedup: full_ms / update_ms,
        update_colors,
        full_colors,
        verified: true,
    })
}

/// Reads the value of `--flag` style options, exiting with the usage code
/// when the value is missing.
fn flag_value(args: &[String], i: usize, flag: &str) -> String {
    args.get(i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value after {flag}");
            std::process::exit(2);
        })
        .clone()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut mode = "full";
    let mut out_path = String::from("BENCH_coloring.json");
    // Axis restrictions for the width × order × sched sweep; `None` means
    // "sweep every value" so the default report holds all combinations.
    let mut only_width: Option<IndexWidth> = None;
    let mut only_order: Option<LocalityOrder> = None;
    let mut only_sched: Option<Sched> = None;
    let mut only_kernel: Option<KernelImpl> = None;
    let mut pin = false;
    let mut autotune = false;
    let mut delta_axis = false;
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {
                mode = "smoke";
                i += 1;
            }
            "--quick" => {
                mode = "quick";
                i += 1;
            }
            "--out" => {
                out_path = flag_value(&args, i, "--out");
                i += 2;
            }
            "--trace" => {
                trace_path = Some(flag_value(&args, i, "--trace"));
                i += 2;
            }
            "--index-width" => {
                let v = flag_value(&args, i, "--index-width");
                only_width = Some(IndexWidth::from_name(&v).unwrap_or_else(|| {
                    eprintln!("bad --index-width `{v}` (expected u32|u64)");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--order" => {
                let v = flag_value(&args, i, "--order");
                only_order = Some(LocalityOrder::from_name(&v).unwrap_or_else(|| {
                    eprintln!("bad --order `{v}` (expected none|degree|bfs)");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--sched" => {
                let v = flag_value(&args, i, "--sched");
                only_sched = Some(Sched::from_name(&v).unwrap_or_else(|| {
                    eprintln!("bad --sched `{v}` (expected dynamic|steal)");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--kernel" => {
                let v = flag_value(&args, i, "--kernel");
                only_kernel = Some(KernelImpl::from_name(&v).unwrap_or_else(|| {
                    eprintln!("bad --kernel `{v}` (expected scalar|simd|auto)");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--pin" => {
                pin = true;
                i += 1;
            }
            "--autotune" => {
                autotune = true;
                i += 1;
            }
            "--delta" => {
                delta_axis = true;
                i += 1;
            }
            other => {
                eprintln!(
                    "unknown flag `{other}` (expected --smoke, --quick, --out PATH, \
                     --trace PATH, --index-width W, --order O, --sched S, --kernel K, \
                     --pin, --autotune, --delta)"
                );
                std::process::exit(2);
            }
        }
    }

    let widths: Vec<IndexWidth> =
        only_width.map_or_else(|| vec![IndexWidth::U32, IndexWidth::U64], |w| vec![w]);
    let orders: Vec<LocalityOrder> =
        only_order.map_or_else(|| LocalityOrder::all().to_vec(), |o| vec![o]);
    let scheds: Vec<Sched> = only_sched.map_or_else(|| Sched::all().to_vec(), |s| vec![s]);
    // The default kernel sweep pits the scalar spec against the vector
    // path; `auto` is only measured when requested (it resolves to one of
    // the other two, so sweeping it by default would duplicate a row).
    let kernels: Vec<KernelImpl> =
        only_kernel.map_or_else(|| vec![KernelImpl::Scalar, KernelImpl::Simd], |k| vec![k]);
    let mk_pool = |t: usize| {
        let pool = if pin { Pool::new_pinned(t) } else { Pool::new(t) };
        if pool.threads() != t {
            eprintln!(
                "WARN: requested {t} worker threads but the pool runs {} — records stamp both",
                pool.threads()
            );
        }
        pool
    };
    // Report pinning as on only when the affinity syscall actually took.
    let pinned = pin && mk_pool(1).pinned();

    let (scale, reps, threads, bgpc_sets, d2gc_sets, micro_samples): (
        f64,
        usize,
        Vec<usize>,
        Vec<Dataset>,
        Vec<Dataset>,
        usize,
    ) = match mode {
        "smoke" => (
            0.002,
            1,
            vec![1, 2],
            vec![Dataset::CoPapersDblp],
            vec![Dataset::Nlpkkt120],
            3,
        ),
        "quick" => (
            0.004,
            3,
            vec![1, 4],
            vec![
                Dataset::Movielens20M,
                Dataset::CoPapersDblp,
                Dataset::AfShell10,
                Dataset::Bone010,
            ],
            vec![Dataset::Nlpkkt120],
            10,
        ),
        _ => (
            0.01,
            5,
            vec![1, 2, 4, 8],
            vec![
                Dataset::Movielens20M,
                Dataset::CoPapersDblp,
                Dataset::AfShell10,
                Dataset::Bone010,
            ],
            vec![Dataset::Nlpkkt120, Dataset::Channel],
            20,
        ),
    };

    let host_threads = std::thread::available_parallelism().map_or(0, |n| n.get());
    if let Some(&max_t) = threads.iter().max() {
        if host_threads > 0 && max_t > host_threads {
            eprintln!(
                "WARN: sweeping up to {max_t} threads on a {host_threads}-thread host; \
                 oversubscribed cells measure scheduling, not scaling"
            );
        }
    }
    eprintln!(
        "mode {mode}: scale {scale}, reps {reps}, threads {threads:?}, isa {}, pinned {pinned}",
        bgpc::simd::isa_features()
    );
    let micro = micro_section(micro_samples);
    for m in &micro {
        eprintln!(
            "  micro first_fit dense {} colors: StampSet {:.1} ns, BitStampSet {:.1} ns \
             ({:.2}x)",
            m.colors, m.stamp_ns, m.bitstamp_ns, m.speedup
        );
    }
    let micro_kernel = micro_kernel_section(micro_samples);
    for m in &micro_kernel {
        eprintln!(
            "  micro first_fit dense {} colors: scalar {:.1} ns, {} {:.1} ns ({:.2}x)",
            m.colors, m.scalar_ns, m.kernel, m.simd_ns, m.speedup
        );
    }

    let mut schedules = Vec::new();
    for dataset in &bgpc_sets {
        let inst = dataset.build(scale, SEED);
        let g = BipartiteGraph::from_matrix(&inst.matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        for &t in &threads {
            let pool = mk_pool(t);
            for schedule in Schedule::all() {
                schedules.push(run_bgpc::<BitStampSet, _>(
                    &g,
                    &order,
                    dataset.name(),
                    &schedule,
                    &pool,
                    t,
                    "BitStampSet",
                    reps,
                ));
            }
            // Representation ablation on the two headline schedules: the
            // same driver with the per-color StampSet.
            for schedule in [Schedule::v_v(), Schedule::n1_n2()] {
                schedules.push(run_bgpc::<StampSet, _>(
                    &g,
                    &order,
                    dataset.name(),
                    &schedule,
                    &pool,
                    t,
                    "StampSet",
                    reps,
                ));
            }
        }
    }
    // Axis sweep (index width × locality relabeling × chunk scheduler) on
    // the headline schedules. Every run is verified against the original,
    // un-relabeled graph after mapping the coloring back.
    for dataset in &bgpc_sets {
        let inst = dataset.build(scale, SEED);
        let g0 = BipartiteGraph::from_matrix(&inst.matrix);
        for &relabel in &orders {
            let (pm, perm) = relabel.apply_columns(&inst.matrix);
            for &width in &widths {
                for &t in &threads {
                    let pool = mk_pool(t);
                    for base in [Schedule::v_v_64d(), Schedule::n1_n2()] {
                        for &sched in &scheds {
                            for &kernel in &kernels {
                                let schedule =
                                    base.clone().with_sched(sched).with_kernel(kernel);
                                let rec = match width {
                                    IndexWidth::U32 => axis_record_bgpc(
                                        &pm, &g0, &perm, dataset.name(), &schedule, &pool, t,
                                        relabel, reps,
                                    ),
                                    IndexWidth::U64 => axis_record_bgpc(
                                        &pm.to_index::<u64>(),
                                        &g0,
                                        &perm,
                                        dataset.name(),
                                        &schedule,
                                        &pool,
                                        t,
                                        relabel,
                                        reps,
                                    ),
                                };
                                schedules.push(rec);
                            }
                        }
                    }
                }
            }
        }
    }

    for dataset in &d2gc_sets {
        let inst = dataset.build(scale, SEED);
        let g = Graph::from_symmetric_matrix(&inst.matrix);
        let order = Ordering::Natural.vertex_order_d2(&g);
        for &t in &threads {
            let pool = mk_pool(t);
            for schedule in Schedule::d2gc_set() {
                schedules.push(run_d2gc(&g, &order, dataset.name(), &schedule, &pool, t, reps));
            }
        }
        // Same axis sweep for D2GC on its headline schedule, with the
        // symmetric (row+column) relabeling.
        for &relabel in &orders {
            let (pm, perm) = relabel.apply_symmetric(&inst.matrix);
            for &width in &widths {
                for &t in &threads {
                    let pool = mk_pool(t);
                    for &sched in &scheds {
                        for &kernel in &kernels {
                            let schedule =
                                Schedule::v_v_64d().with_sched(sched).with_kernel(kernel);
                            let rec = match width {
                                IndexWidth::U32 => axis_record_d2gc(
                                    &pm, &g, &perm, dataset.name(), &schedule, &pool, t,
                                    relabel, reps,
                                ),
                                IndexWidth::U64 => axis_record_d2gc(
                                    &pm.to_index::<u64>(),
                                    &g,
                                    &perm,
                                    dataset.name(),
                                    &schedule,
                                    &pool,
                                    t,
                                    relabel,
                                    reps,
                                ),
                            };
                            schedules.push(rec);
                        }
                    }
                }
            }
        }
    }

    for s in &schedules {
        eprintln!(
            "  {} {} {} {}t [{}/{}/{}/{}/{}]: {:.3} ms, {} colors, {} rounds",
            s.problem,
            s.dataset,
            s.schedule,
            s.threads,
            s.set_impl,
            s.index_width,
            s.order,
            s.sched,
            s.kernel,
            s.time_ms,
            s.num_colors,
            s.rounds
        );
    }

    let oracle_best = oracle_section(&schedules);
    for o in &oracle_best {
        eprintln!(
            "  oracle {} {} {}t: {:.3} ms [{}]",
            o.problem, o.dataset, o.threads, o.time_ms, o.config
        );
    }

    // `--autotune` reruns every (dataset, threads) cell with the engine
    // choosing the whole config from instance features, online tuner
    // attached, and scores each run against the cell's oracle best.
    let mut autotune_records: Vec<AutotuneRecord> = Vec::new();
    if autotune {
        let engine = Engine::with_default_table();
        let mut cells: Vec<(Dataset, &str, bool)> = Vec::new();
        for d in &bgpc_sets {
            cells.push((*d, "BGPC", true));
        }
        for d in &d2gc_sets {
            cells.push((*d, "D2GC", false));
        }
        for (dataset, problem, is_bgpc) in cells {
            let inst = dataset.build(scale, SEED);
            let (cfg, matched, pm, perm, g0b, g0d);
            if is_bgpc {
                let g = BipartiteGraph::from_matrix(&inst.matrix);
                let choice = engine.select_bgpc(&g);
                let (p, pr) = choice.config.relabel.apply_columns(&inst.matrix);
                cfg = choice.config;
                matched = choice.matched;
                pm = p;
                perm = pr;
                g0b = Some(g);
                g0d = None;
            } else {
                let g = Graph::from_symmetric_matrix(&inst.matrix);
                let choice = engine.select_d2gc(&g);
                let (p, pr) = choice.config.relabel.apply_symmetric(&inst.matrix);
                cfg = choice.config;
                matched = choice.matched;
                pm = p;
                perm = pr;
                g0b = None;
                g0d = Some(g);
            }
            for &t in &threads {
                let pool = mk_pool(t);
                let (time_ms, num_colors, rounds, actions) = match (&g0b, &g0d, cfg.index_width)
                {
                    (Some(g0), _, IndexWidth::U32) => {
                        autotune_bgpc(&pm, g0, &perm, &cfg, dataset.name(), &pool, reps)
                    }
                    (Some(g0), _, IndexWidth::U64) => autotune_bgpc(
                        &pm.to_index::<u64>(),
                        g0,
                        &perm,
                        &cfg,
                        dataset.name(),
                        &pool,
                        reps,
                    ),
                    (_, Some(g0), IndexWidth::U32) => {
                        autotune_d2gc(&pm, g0, &perm, &cfg, dataset.name(), &pool, reps)
                    }
                    (_, Some(g0), IndexWidth::U64) => autotune_d2gc(
                        &pm.to_index::<u64>(),
                        g0,
                        &perm,
                        &cfg,
                        dataset.name(),
                        &pool,
                        reps,
                    ),
                    _ => unreachable!("one of the problem graphs is always built"),
                };
                let oracle_ms = oracle_best
                    .iter()
                    .find(|o| {
                        o.problem == problem && o.dataset == dataset.name() && o.threads == t
                    })
                    .map(|o| o.time_ms);
                let ratio = oracle_ms.map(|o| time_ms / o);
                eprintln!(
                    "  autotune {} {} {}t: {:.3} ms (oracle {}, ratio {}) [{}] via {}",
                    problem,
                    dataset.name(),
                    t,
                    time_ms,
                    oracle_ms.map_or("n/a".into(), |o| format!("{o:.3} ms")),
                    ratio.map_or("n/a".into(), |r| format!("{r:.3}")),
                    cfg.describe(),
                    matched
                );
                for a in &actions {
                    eprintln!("    online {a}");
                }
                autotune_records.push(AutotuneRecord {
                    problem: problem.into(),
                    dataset: dataset.name().into(),
                    threads: t,
                    pool_workers: pool.threads(),
                    config: cfg.describe(),
                    matched: matched.clone(),
                    time_ms,
                    oracle_ms,
                    ratio,
                    actions,
                    num_colors,
                    rounds,
                    verified: true,
                });
            }
        }
    }
    let ratios: Vec<f64> = autotune_records.iter().filter_map(|r| r.ratio).collect();
    let autotune_geomean = if ratios.is_empty() {
        None
    } else {
        Some((ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp())
    };
    if let Some(gm) = autotune_geomean {
        eprintln!(
            "  autotune geomean ratio vs oracle best: {gm:.4} over {} cells",
            ratios.len()
        );
    }

    // `--delta` measures the incremental-update path against full recolor
    // on the power-law analogue (coPapersDBLP — heavy-tailed and
    // structurally symmetric, so it serves both problems) at each swept
    // batch size. Small batches must win; the crossover batch size is
    // what EXPERIMENTS.md reports.
    let mut delta_records: Vec<DeltaRecord> = Vec::new();
    if delta_axis {
        let dataset = Dataset::CoPapersDblp;
        let inst = dataset.build(scale, SEED);
        for &t in &threads {
            let pool = mk_pool(t);
            for (pi, &is_bgpc) in [true, false].iter().enumerate() {
                for (bi, &batch) in DELTA_BATCHES.iter().enumerate() {
                    let seed = SEED ^ ((pi as u64) << 32) ^ (bi as u64 + 1);
                    if let Some(rec) = delta_record(
                        &inst.matrix,
                        dataset.name(),
                        is_bgpc,
                        batch,
                        &pool,
                        t,
                        reps,
                        seed,
                    ) {
                        eprintln!(
                            "  delta {} {} {}t batch {} (dirty {}): update {:.3} ms, \
                             full {:.3} ms ({:.2}x), colors {} vs {}",
                            rec.problem,
                            rec.dataset,
                            rec.threads,
                            rec.batch,
                            rec.dirty,
                            rec.update_ms,
                            rec.full_ms,
                            rec.speedup,
                            rec.update_colors,
                            rec.full_colors
                        );
                        delta_records.push(rec);
                    }
                }
            }
        }
    }

    // `--trace` runs one instrumented coloring on the first BGPC instance
    // at the highest thread count and exports it two ways: a chrome-trace
    // file for chrome://tracing / Perfetto, and a structured per-thread
    // summary embedded in the report as the `trace` section.
    let trace_section = trace_path.as_ref().map(|path| {
        let t = threads.iter().copied().max().unwrap_or(1);
        let dataset = bgpc_sets[0];
        let inst = dataset.build(scale, SEED);
        let g = BipartiteGraph::from_matrix(&inst.matrix);
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let mut pool = mk_pool(t);
        pool.set_tracer(std::sync::Arc::new(trace::Recorder::new(pool.threads())));
        let r = bgpc::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
        if let Err(e) = verify_bgpc(&g, &r.colors) {
            eprintln!("FATAL: invalid traced coloring ({}): {e}", dataset.name());
            std::process::exit(1);
        }
        let rec = pool.tracer().expect("recorder installed above");
        let json = trace::chrome_trace_json(rec, "bench_coloring");
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("FATAL: cannot write trace {path}: {e}");
            std::process::exit(1);
        }
        eprintln!(
            "  traced {} N1-N2 at {t} threads -> {path} ({} bytes)",
            dataset.name(),
            json.len()
        );
        eprint!("{}", trace::imbalance_table(&rec.snapshot_counters()));
        RawJson(trace::RunSummary::from_recorder(rec).to_json())
    });

    let report = BenchReport {
        mode: mode.into(),
        scale,
        seed: SEED,
        reps,
        git_sha: std::env::var("BENCH_GIT_SHA").unwrap_or_else(|_| "unknown".into()),
        hostname: std::env::var("BENCH_HOSTNAME")
            .or_else(|_| std::env::var("HOSTNAME"))
            .unwrap_or_else(|_| "unknown".into()),
        host_threads,
        requested_threads: threads.clone(),
        isa: bgpc::simd::isa_features().into(),
        pinned,
        micro,
        micro_kernel,
        schedules,
        oracle_best,
        autotune: autotune_records,
        autotune_geomean,
        delta: delta_records,
        trace: trace_section,
    };
    let json = to_string_pretty(&report);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out_path} ({} bytes)", json.len());
}
