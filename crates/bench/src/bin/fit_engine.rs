//! Fits the engine's decision table from a `BENCH_coloring.json` sweep.
//!
//! For every (problem, dataset) instance in the sweep the fitter picks the
//! single config minimizing the summed log-ratio to the per-thread oracle
//! best — i.e. the best *thread-count-independent* choice, matching the
//! engine's contract that selection never looks at the pool size. Each
//! winner becomes a `point` row keyed by the instance's features
//! (recomputed from the synthetic registry at the sweep's scale/seed);
//! the config with the best summed score across *all* instances of a
//! problem becomes its `default` row.
//!
//! ```text
//! fit_engine [--sweep BENCH_coloring.json]
//!            [--out crates/core/src/engine/default_table.txt]
//! ```
//!
//! The output is the text format `bgpc::engine::table` parses; the fitter
//! re-parses its own output before writing, so a bad fit can never land an
//! unloadable table. `scripts/fit_engine.sh` wraps this binary.

use std::collections::BTreeMap;

use bgpc::engine::table::{render_default, ConfigSpec, EngineTable, TablePoint};
use bgpc::{ForbiddenKind, InstanceFeatures, KernelImpl, ProblemKind, Schedule};
use graph::Graph;
use par::Sched;
use sparse::{Dataset, IndexWidth, LocalityOrder};
use trace::reader::Json;

/// One sweep record, decoded from the report's `schedules` array.
struct SweepRow {
    problem: ProblemKind,
    dataset: String,
    threads: usize,
    spec: ConfigSpec,
    time_ms: f64,
}

fn field_str<'a>(rec: &'a Json, key: &str, i: usize) -> Result<&'a str, String> {
    rec.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("schedules[{i}]: missing string `{key}`"))
}

fn field_num(rec: &Json, key: &str, i: usize) -> Result<f64, String> {
    rec.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("schedules[{i}]: missing number `{key}`"))
}

/// Decodes one `schedules` record into a row; errors name the offending
/// field so a schema drift in the report fails loudly.
fn decode_row(rec: &Json, i: usize) -> Result<SweepRow, String> {
    let problem = ProblemKind::from_name(field_str(rec, "problem", i)?)
        .ok_or_else(|| format!("schedules[{i}]: unknown problem"))?;
    let schedule = field_str(rec, "schedule", i)?;
    let sched = field_str(rec, "sched", i)?;
    let width = field_str(rec, "index_width", i)?;
    let order = field_str(rec, "order", i)?;
    let kernel = field_str(rec, "kernel", i)?;
    let set_impl = field_str(rec, "set_impl", i)?;
    let spec = ConfigSpec {
        schedule: Schedule::from_name(schedule)
            .ok_or_else(|| format!("schedules[{i}]: unknown schedule `{schedule}`"))?,
        sched: Sched::from_name(sched)
            .ok_or_else(|| format!("schedules[{i}]: unknown sched `{sched}`"))?,
        width: Some(
            IndexWidth::from_name(width)
                .ok_or_else(|| format!("schedules[{i}]: unknown index_width `{width}`"))?,
        ),
        relabel: LocalityOrder::from_name(order)
            .ok_or_else(|| format!("schedules[{i}]: unknown order `{order}`"))?,
        kernel: KernelImpl::from_name(kernel)
            .ok_or_else(|| format!("schedules[{i}]: unknown kernel `{kernel}`"))?,
        // The forced-representation ablation rows name the set; axis rows
        // say `auto` (runner dispatch), which the table keeps symbolic.
        forbidden: if set_impl.eq_ignore_ascii_case("auto") {
            None
        } else {
            Some(
                ForbiddenKind::from_name(set_impl)
                    .ok_or_else(|| format!("schedules[{i}]: unknown set_impl `{set_impl}`"))?,
            )
        },
    };
    Ok(SweepRow {
        problem,
        dataset: field_str(rec, "dataset", i)?.to_string(),
        threads: field_num(rec, "threads", i)? as usize,
        spec,
        time_ms: field_num(rec, "time_ms", i)?,
    })
}

/// Per-config timings for one instance: config key → (min time per thread
/// count), in first-appearance order so tie-breaks are deterministic.
struct CandidateSet {
    keys: Vec<String>,
    specs: Vec<ConfigSpec>,
    times: Vec<BTreeMap<usize, f64>>,
}

impl CandidateSet {
    fn new() -> CandidateSet {
        CandidateSet {
            keys: Vec::new(),
            specs: Vec::new(),
            times: Vec::new(),
        }
    }

    fn add(&mut self, spec: &ConfigSpec, threads: usize, time_ms: f64) {
        let key = spec.render();
        let idx = match self.keys.iter().position(|k| *k == key) {
            Some(i) => i,
            None => {
                self.keys.push(key);
                self.specs.push(spec.clone());
                self.times.push(BTreeMap::new());
                self.keys.len() - 1
            }
        };
        let slot = self.times[idx].entry(threads).or_insert(f64::INFINITY);
        *slot = slot.min(time_ms);
    }

    /// The fastest time per thread count across every config.
    fn oracle(&self) -> BTreeMap<usize, f64> {
        let mut oracle: BTreeMap<usize, f64> = BTreeMap::new();
        for per in &self.times {
            for (&t, &ms) in per {
                let slot = oracle.entry(t).or_insert(f64::INFINITY);
                *slot = slot.min(ms);
            }
        }
        oracle
    }

    /// Summed log-ratio of config `idx` to the oracle, or `None` when the
    /// config was not measured at every thread count (an unfair score).
    fn score(&self, idx: usize, oracle: &BTreeMap<usize, f64>) -> Option<f64> {
        let mut total = 0.0;
        for (&t, &best) in oracle {
            let ms = *self.times[idx].get(&t)?;
            total += (ms / best).ln();
        }
        Some(total)
    }

    /// Index of the best-scoring fully-measured config (earliest wins
    /// ties); `None` for an empty set.
    fn best(&self) -> Option<usize> {
        let oracle = self.oracle();
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..self.specs.len() {
            if let Some(s) = self.score(idx, &oracle) {
                if best.is_none_or(|(_, bs)| s < bs) {
                    best = Some((idx, s));
                }
            }
        }
        best.map(|(idx, _)| idx)
    }
}

/// Features of a swept instance, rebuilt from the synthetic registry at
/// the sweep's scale and seed.
fn instance_features(
    problem: ProblemKind,
    dataset: &str,
    scale: f64,
    seed: u64,
) -> Option<InstanceFeatures> {
    let d = Dataset::from_name(dataset)?;
    let inst = d.build(scale, seed);
    Some(match problem {
        ProblemKind::Bgpc => InstanceFeatures::from_matrix_bgpc(&inst.matrix),
        ProblemKind::D2gc => {
            InstanceFeatures::from_graph_d2gc(&Graph::from_symmetric_matrix(&inst.matrix))
        }
    })
}

fn flag_value(args: &[String], i: usize, flag: &str) -> String {
    args.get(i + 1)
        .unwrap_or_else(|| {
            eprintln!("missing value after {flag}");
            std::process::exit(2);
        })
        .clone()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut sweep_path = String::from("BENCH_coloring.json");
    let mut out_path = String::from("crates/core/src/engine/default_table.txt");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sweep" => {
                sweep_path = flag_value(&args, i, "--sweep");
                i += 2;
            }
            "--out" => {
                out_path = flag_value(&args, i, "--out");
                i += 2;
            }
            other => {
                eprintln!("unknown flag `{other}` (expected --sweep PATH, --out PATH)");
                std::process::exit(2);
            }
        }
    }

    let text = std::fs::read_to_string(&sweep_path).unwrap_or_else(|e| {
        eprintln!("FATAL: cannot read sweep {sweep_path}: {e}");
        std::process::exit(1);
    });
    let doc = trace::reader::parse(&text).unwrap_or_else(|e| {
        eprintln!("FATAL: {sweep_path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    let scale = doc.get("scale").and_then(Json::as_f64).unwrap_or_else(|| {
        eprintln!("FATAL: sweep misses `scale`");
        std::process::exit(1);
    });
    let seed = doc.get("seed").and_then(Json::as_f64).unwrap_or_else(|| {
        eprintln!("FATAL: sweep misses `seed`");
        std::process::exit(1);
    }) as u64;
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let git_sha = doc
        .get("git_sha")
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let records = doc
        .get("schedules")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| {
            eprintln!("FATAL: sweep misses the `schedules` array");
            std::process::exit(1);
        });

    // Group rows per (problem, dataset) in first-appearance order.
    let mut instances: Vec<((ProblemKind, String), CandidateSet)> = Vec::new();
    let mut n_rows = 0usize;
    for (i, rec) in records.iter().enumerate() {
        let row = decode_row(rec, i).unwrap_or_else(|e| {
            eprintln!("FATAL: {e}");
            std::process::exit(1);
        });
        let key = (row.problem, row.dataset.clone());
        let set = match instances.iter_mut().find(|(k, _)| *k == key) {
            Some((_, set)) => set,
            None => {
                instances.push((key, CandidateSet::new()));
                &mut instances.last_mut().expect("just pushed").1
            }
        };
        set.add(&row.spec, row.threads, row.time_ms);
        n_rows += 1;
    }
    if instances.is_empty() {
        eprintln!("FATAL: sweep holds no schedule records to fit from");
        std::process::exit(1);
    }

    // Per-instance winners become table points.
    let mut points: Vec<TablePoint> = Vec::new();
    // Problem-wide scores for the default rows: config key → (spec,
    // summed score, instances covered), kept in first-appearance order.
    let mut global: Vec<(ProblemKind, String, ConfigSpec, f64, usize)> = Vec::new();
    for ((problem, dataset), set) in &instances {
        let best = set.best().unwrap_or_else(|| {
            eprintln!("FATAL: no config measured at every thread count for {dataset}");
            std::process::exit(1);
        });
        eprintln!(
            "fit {} {dataset}: {} ({} configs, {} threads)",
            problem.label(),
            set.keys[best],
            set.keys.len(),
            set.oracle().len(),
        );
        match instance_features(*problem, dataset, scale, seed) {
            Some(features) => points.push(TablePoint {
                problem: *problem,
                tag: dataset.clone(),
                features,
                spec: set.specs[best].clone(),
            }),
            None => eprintln!(
                "WARN: dataset `{dataset}` is not in the synthetic registry; \
                 skipping its point"
            ),
        }
        let oracle = set.oracle();
        for idx in 0..set.specs.len() {
            let Some(s) = set.score(idx, &oracle) else {
                continue;
            };
            match global
                .iter_mut()
                .find(|(p, k, ..)| p == problem && *k == set.keys[idx])
            {
                Some((.., total, covered)) => {
                    *total += s;
                    *covered += 1;
                }
                None => global.push((*problem, set.keys[idx].clone(), set.specs[idx].clone(), s, 1)),
            }
        }
    }

    // Default row per problem: the best summed score among configs
    // measured on every instance of that problem; the first instance's
    // winner as fallback when the sweeps don't overlap.
    let default_for = |problem: ProblemKind| -> ConfigSpec {
        let n_inst = instances.iter().filter(|((p, _), _)| *p == problem).count();
        let mut best: Option<(&ConfigSpec, f64)> = None;
        for (p, _, spec, total, covered) in &global {
            if *p == problem && *covered == n_inst && best.is_none_or(|(_, bs)| *total < bs) {
                best = Some((spec, *total));
            }
        }
        if let Some((spec, _)) = best {
            return spec.clone();
        }
        instances
            .iter()
            .find(|((p, _), _)| *p == problem)
            .and_then(|(_, set)| set.best().map(|i| set.specs[i].clone()))
            .unwrap_or_else(|| ConfigSpec {
                schedule: match problem {
                    ProblemKind::Bgpc => Schedule::n1_n2(),
                    ProblemKind::D2gc => Schedule::v_v_64d(),
                },
                sched: Sched::Dynamic,
                width: None,
                relabel: LocalityOrder::None,
                kernel: KernelImpl::Auto,
                forbidden: None,
            })
    };
    let default_bgpc = default_for(ProblemKind::Bgpc);
    let default_d2gc = default_for(ProblemKind::D2gc);

    let mut out = String::new();
    out.push_str(&format!(
        "# Fitted engine decision table — regenerate with scripts/fit_engine.sh.\n\
         # Source sweep: {sweep_path} (mode {mode}, scale {scale}, seed {seed}, \
         sha {git_sha}; {n_rows} records).\n\
         # Per point: the config minimizing the summed log-ratio to the\n\
         # per-thread oracle best, so one choice serves every pool size.\n"
    ));
    out.push_str(&render_default(ProblemKind::Bgpc, &default_bgpc));
    out.push('\n');
    out.push_str(&render_default(ProblemKind::D2gc, &default_d2gc));
    out.push('\n');
    for p in &points {
        out.push_str(&p.render());
        out.push('\n');
    }

    // Refuse to write a table the engine cannot load back.
    if let Err(e) = EngineTable::parse(&out) {
        eprintln!("FATAL: fitted table fails to re-parse: {e}\n---\n{out}");
        std::process::exit(1);
    }
    if let Err(e) = std::fs::write(&out_path, &out) {
        eprintln!("FATAL: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "wrote {out_path} ({} points, defaults: bgpc [{}], d2gc [{}])",
        points.len(),
        default_bgpc.render(),
        default_d2gc.render()
    );
}
