//! Minimal property-based testing for the offline workspace.
//!
//! Replaces `proptest` with the smallest design that still gives the two
//! things that matter: **seeded, reproducible random cases** and
//! **shrinking**. The approach is the choice-stream model (as in
//! Hypothesis/minithesis): a property draws values through a [`Gen`], every
//! draw is recorded as a `u64` choice, and when a case fails the *recorded
//! stream* is shrunk — shorter streams and smaller choice values are
//! replayed until the failure is minimal. Generators therefore shrink for
//! free; no per-type shrinker is written.
//!
//! ```
//! minicheck::check("sum_commutes", 64, |g| {
//!     let a = g.usize_in(0..1000);
//!     let b = g.usize_in(0..1000);
//!     minicheck::prop_assert_eq!(a + b, b + a);
//!     Ok(())
//! });
//! ```
//!
//! A failing property panics with the minimized choice stream and the seed
//! of the failing case; setting `MINICHECK_SEED=<n>` reruns every property
//! from that base seed.

use rng::{split_mix64, Pcg32};

/// Outcome of one property execution: `Err` carries the failure message.
pub type PropResult = Result<(), String>;

/// The value source handed to properties. Every draw is recorded so the
/// runner can replay and shrink failing cases.
pub struct Gen {
    /// Forced prefix of choices (used during shrinking); beyond it, fresh
    /// values come from `rng`.
    prefix: Vec<u64>,
    cursor: usize,
    rng: Pcg32,
    record: Vec<u64>,
}

impl Gen {
    fn new(seed: u64, prefix: Vec<u64>) -> Self {
        Self {
            prefix,
            cursor: 0,
            rng: Pcg32::seed_from_u64(seed),
            record: Vec::new(),
        }
    }

    /// The primitive: one choice in `0..bound` (`bound == 0` yields 0).
    pub fn choice(&mut self, bound: u64) -> u64 {
        let v = if bound == 0 {
            0
        } else if self.cursor < self.prefix.len() {
            // Replayed choices are clamped into range so stream edits made
            // by the shrinker can never produce out-of-domain values.
            self.prefix[self.cursor] % bound
        } else {
            self.rng.gen_range(0..bound)
        };
        self.cursor += 1;
        self.record.push(v);
        v
    }

    /// Uniform `usize` in a half-open range.
    pub fn usize_in(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.choice((range.end - range.start) as u64) as usize
    }

    /// Uniform `u64` in a half-open range.
    pub fn u64_in(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty range");
        range.start + self.choice(range.end - range.start)
    }

    /// Uniform `u32` in a half-open range.
    pub fn u32_in(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.u64_in(range.start as u64..range.end as u64) as u32
    }

    /// Bernoulli draw. Probability is quantized to 1/2⁳² so it fits the
    /// integer choice model (plenty for test-case generation).
    pub fn bool_with(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (1u64 << 32) as f64) as u64;
        self.choice(1u64 << 32) < threshold
    }

    /// A vector with length drawn from `len` and elements from `f`.
    pub fn vec_of<T>(
        &mut self,
        len: std::ops::Range<usize>,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let n = self.usize_in(len);
        (0..n).map(|_| f(self)).collect()
    }
}

/// Runs `cases` seeded executions of `prop`; on failure, shrinks the
/// recorded choice stream and panics with the minimal reproduction.
///
/// The base seed is derived from the property name (stable across runs) or
/// taken from the `MINICHECK_SEED` environment variable when set.
pub fn check(name: &str, cases: u32, prop: impl Fn(&mut Gen) -> PropResult) {
    let base = match std::env::var("MINICHECK_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("MINICHECK_SEED must be a u64, got `{s}`")),
        Err(_) => hash_name(name),
    };
    for case in 0..cases {
        let seed = split_mix64(base.wrapping_add(case as u64));
        let mut g = Gen::new(seed, Vec::new());
        if let Err(msg) = prop(&mut g) {
            let stream = std::mem::take(&mut g.record);
            let (min_stream, min_msg) = shrink(seed, stream, msg, &prop);
            panic!(
                "property `{name}` failed (case {case}, seed {seed}):\n  {min_msg}\n  \
                 minimized choices: {min_stream:?}\n  \
                 rerun with MINICHECK_SEED={base}"
            );
        }
    }
}

/// Replays `prop` with a forced prefix; returns the failure message if the
/// candidate still fails.
fn replay(
    seed: u64,
    prefix: &[u64],
    prop: &impl Fn(&mut Gen) -> PropResult,
) -> Option<(Vec<u64>, String)> {
    let mut g = Gen::new(seed, prefix.to_vec());
    match prop(&mut g) {
        Err(msg) => Some((g.record, msg)),
        Ok(()) => None,
    }
}

/// Greedy choice-stream shrinker: deletes chunks, zeroes values, and
/// divides/decrements values, accepting any edit that keeps the property
/// failing, until a replay budget is exhausted or a fixpoint is reached.
fn shrink(
    seed: u64,
    mut stream: Vec<u64>,
    mut msg: String,
    prop: &impl Fn(&mut Gen) -> PropResult,
) -> (Vec<u64>, String) {
    let mut budget = 1000usize;
    let try_accept = |stream: &mut Vec<u64>,
                          msg: &mut String,
                          candidate: Vec<u64>,
                          budget: &mut usize|
     -> bool {
        if *budget == 0 {
            return false;
        }
        *budget -= 1;
        if let Some((rec, m)) = replay(seed, &candidate, prop) {
            if rec.len() < stream.len() || (rec.len() == stream.len() && rec < *stream) {
                *stream = rec;
                *msg = m;
                return true;
            }
        }
        false
    };

    let mut progress = true;
    while progress && budget > 0 {
        progress = false;
        // Pass 1: delete chunks, large to small.
        let mut size = stream.len().max(1);
        while size >= 1 && budget > 0 {
            let mut start = 0;
            while start < stream.len() && budget > 0 {
                let mut candidate = stream.clone();
                candidate.drain(start..(start + size).min(candidate.len()));
                if try_accept(&mut stream, &mut msg, candidate, &mut budget) {
                    progress = true;
                } else {
                    start += size;
                }
            }
            size /= 2;
        }
        // Pass 2: shrink individual values (zero, then halve, then -1);
        // an accepted edit retries the same position until it bottoms out.
        let mut i = 0;
        while i < stream.len() && budget > 0 {
            let original = stream[i];
            let mut changed = false;
            for replacement in [0, original / 2, original.saturating_sub(1)] {
                if replacement >= original {
                    continue;
                }
                let mut candidate = stream.clone();
                candidate[i] = replacement;
                if try_accept(&mut stream, &mut msg, candidate, &mut budget) {
                    progress = true;
                    changed = true;
                    break;
                }
            }
            if !changed {
                i += 1;
            }
        }
    }
    (stream, msg)
}

/// FNV-1a over the property name — a stable per-property base seed.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Asserts a condition inside a property, returning `Err` instead of
/// panicking so the shrinker can replay the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({}:{})",
                format!($($fmt)+),
                file!(),
                line!()
            ));
        }
    };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) ({}:{})",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            ));
        }
    }};
}

/// Skips a case whose inputs do not satisfy a precondition (counts as a
/// pass — mirrors `prop_assume!`).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0;
        let counter = std::cell::Cell::new(0u32);
        check("always_true", 32, |g| {
            let _ = g.usize_in(0..10);
            counter.set(counter.get() + 1);
            Ok(())
        });
        count += counter.get();
        assert_eq!(count, 32);
    }

    #[test]
    fn failing_property_panics_with_minimized_stream() {
        let caught = std::panic::catch_unwind(|| {
            check("fails_above_10", 100, |g| {
                let x = g.usize_in(0..1000);
                crate::prop_assert!(x <= 10, "x = {x} exceeds 10");
                Ok(())
            });
        });
        let msg = *caught
            .expect_err("property must fail")
            .downcast::<String>()
            .expect("panic payload is the report string");
        assert!(msg.contains("fails_above_10"), "report: {msg}");
        // The shrinker must reduce the single offending choice to the
        // boundary value 11.
        assert!(msg.contains("minimized choices: [11]"), "report: {msg}");
    }

    #[test]
    fn shrinker_drops_irrelevant_choices() {
        let caught = std::panic::catch_unwind(|| {
            check("vec_contains_big", 200, |g| {
                let v = g.vec_of(0..20, |g| g.usize_in(0..100));
                crate::prop_assert!(v.iter().all(|&x| x < 90));
                Ok(())
            });
        });
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        // Minimal failing vector: length 1 with the boundary element 90 —
        // a 2-choice stream [1, 90].
        assert!(msg.contains("minimized choices: [1, 90]"), "report: {msg}");
    }

    #[test]
    fn replay_is_deterministic_per_seed() {
        let collect = |seed: u64| -> Vec<u64> {
            let mut g = Gen::new(seed, Vec::new());
            (0..16).map(|_| g.choice(1000)).collect()
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn prefix_forces_choices_and_clamps() {
        let mut g = Gen::new(7, vec![5, 999]);
        assert_eq!(g.choice(10), 5);
        assert_eq!(g.choice(10), 9); // 999 % 10
        let free = g.choice(10); // beyond prefix: random but in range
        assert!(free < 10);
    }

    #[test]
    fn assume_skips_cases() {
        check("assume_filters", 64, |g| {
            let x = g.usize_in(0..10);
            crate::prop_assume!(x % 2 == 0);
            crate::prop_assert!(x % 2 == 0);
            Ok(())
        });
    }

    #[test]
    fn bool_with_extremes() {
        check("bool_p", 16, |g| {
            crate::prop_assert!(!g.bool_with(0.0));
            crate::prop_assert!(g.bool_with(1.0));
            Ok(())
        });
    }
}
