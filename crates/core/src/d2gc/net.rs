//! Net-based D2GC phases (Algorithms 9 and 10).
//!
//! Each vertex `v` acts as the net over its closed neighborhood
//! `{v} ∪ nbor(v)`: the kernels first process `v`'s own color (the
//! distance-1 requirement that BGPC lacks), then scan the adjacency list.

use graph::Graph;
use par::{Pool, Sched, ThreadScratch};
use sparse::CsrIndex;

use crate::ctx::ThreadCtx;
use crate::forbidden::ForbiddenSet;
use crate::{Balance, Color, Colors, UNCOLORED};

const NET_CHUNK: usize = 16;

/// Algorithm 9 — net-based D2GC coloring.
///
/// The reverse first-fit cursor starts at `|nbor(v)|` (not
/// `|nbor(v)| − 1`): the thread may color the middle vertex too, needing
/// up to `|nbor(v)| + 1` colors including color 0.
pub fn color_workqueue_net<F: ForbiddenSet, I: CsrIndex>(
    g: &Graph<I>,
    colors: &Colors,
    pool: &Pool,
    sched: Sched,
    balance: Balance,
    scratch: &ThreadScratch<ThreadCtx<F, I>>,
) {
    let rec = pool.tracer();
    pool.for_sched(sched, g.n_vertices(), NET_CHUNK, |tid, range| {
        par::faults::fire("d2gc.color", tid);
        scratch.with(tid, |ctx| {
            let mut colored = 0u64;
            let mut probes = 0u64;
            for v in range {
                ctx.fb.advance();
                ctx.wlocal.clear();
                let cv = colors.get(v);
                if cv != UNCOLORED {
                    ctx.fb.insert(cv);
                    if trace::COMPILED {
                        probes += 1;
                    }
                } else {
                    ctx.wlocal.push(v as u32);
                }
                for &u in g.nbor(v) {
                    let cu = colors.get(u as usize);
                    if cu != UNCOLORED && !ctx.fb.contains(cu) {
                        ctx.fb.insert(cu);
                        if trace::COMPILED {
                            probes += 1;
                        }
                    } else {
                        ctx.wlocal.push(u);
                    }
                }
                if ctx.wlocal.is_empty() {
                    continue;
                }
                if trace::COMPILED {
                    colored += ctx.wlocal.len() as u64;
                }
                // Take the local queue so the second pass iterates a slice
                // (no per-element index bound check) while `ctx.fb` stays
                // mutably borrowable.
                let wlocal = std::mem::take(&mut ctx.wlocal);
                match balance {
                    Balance::Unbalanced => {
                        let mut col: Color = g.degree(v) as Color;
                        for &u in &wlocal {
                            col = ctx.fb.reverse_first_fit_from(col);
                            debug_assert!(col >= 0, "D2GC reverse fit underflow");
                            colors.set(u as usize, col);
                            col -= 1;
                        }
                    }
                    Balance::B1 | Balance::B2 => {
                        for &u in &wlocal {
                            let col = balance.pick(v as u32, &ctx.fb, &mut ctx.balancer);
                            colors.set(u as usize, col);
                            ctx.fb.insert(col);
                        }
                    }
                }
                ctx.wlocal = wlocal;
            }
            if trace::COMPILED {
                if let Some(r) = rec {
                    let mut local = trace::CounterSheet::new();
                    local.add(trace::Counter::VerticesColored, colored);
                    local.add(trace::Counter::ForbiddenProbes, probes);
                    r.merge(tid, &local);
                }
            }
        });
    });
}

/// Algorithm 10 — net-based D2GC conflict removal.
///
/// The middle vertex's color is seeded into `F` first, so a neighbor
/// duplicating it is uncolored while `v` itself always survives its own
/// scan (it may still lose in a neighbor's scan).
pub fn remove_conflicts_net<F: ForbiddenSet, I: CsrIndex>(
    g: &Graph<I>,
    colors: &Colors,
    pool: &Pool,
    sched: Sched,
    scratch: &ThreadScratch<ThreadCtx<F, I>>,
) {
    let rec = pool.tracer();
    pool.for_sched(sched, g.n_vertices(), NET_CHUNK, |tid, range| {
        par::faults::fire("d2gc.conflict", tid);
        scratch.with(tid, |ctx| {
            let mut conflicts = 0u64;
            let mut probes = 0u64;
            for v in range {
                ctx.fb.advance();
                let cv = colors.get(v);
                if cv != UNCOLORED {
                    ctx.fb.insert(cv);
                    if trace::COMPILED {
                        probes += 1;
                    }
                }
                for &u in g.nbor(v) {
                    let cu = colors.get(u as usize);
                    if cu != UNCOLORED {
                        if ctx.fb.contains(cu) {
                            colors.clear(u as usize);
                            if trace::COMPILED {
                                conflicts += 1;
                            }
                        } else {
                            ctx.fb.insert(cu);
                            if trace::COMPILED {
                                probes += 1;
                            }
                        }
                    }
                }
            }
            if trace::COMPILED {
                if let Some(r) = rec {
                    let mut local = trace::CounterSheet::new();
                    local.add(trace::Counter::ConflictsDetected, conflicts);
                    local.add(trace::Counter::ForbiddenProbes, probes);
                    r.merge(tid, &local);
                }
            }
        });
    });
}

/// Rebuilds the explicit work queue after net-based conflict removal
/// (uncolored vertices in `order`'s processing order).
pub fn collect_uncolored<F: ForbiddenSet, I: CsrIndex>(
    order: &[u32],
    colors: &Colors,
    pool: &Pool,
    scratch: &mut ThreadScratch<ThreadCtx<F, I>>,
) -> Vec<u32> {
    let scratch_ref: &ThreadScratch<ThreadCtx<F, I>> = scratch;
    pool.for_static(order.len(), |tid, range| {
        par::faults::fire("d2gc.conflict", tid);
        scratch_ref.with(tid, |ctx| {
            debug_assert!(ctx.local_queue.is_empty());
            for &u in &order[range] {
                if colors.get(u as usize) == UNCOLORED {
                    ctx.local_queue.push(u);
                }
            }
        });
    });
    crate::workqueue::merge_local_queues(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_d2gc;
    use sparse::Csr;

    fn scratch(t: usize) -> ThreadScratch<ThreadCtx> {
        ThreadScratch::new(t, |_| ThreadCtx::new(32))
    }

    fn run_until_valid(g: &Graph, pool: &Pool) -> Vec<i32> {
        let colors = Colors::new(g.n_vertices());
        let mut sc = scratch(pool.threads());
        let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let mut rounds = 0;
        loop {
            color_workqueue_net(g, &colors, pool, Sched::Dynamic, Balance::Unbalanced, &sc);
            remove_conflicts_net(g, &colors, pool, Sched::Dynamic, &sc);
            let w = collect_uncolored(&order, &colors, pool, &mut sc);
            if w.is_empty() {
                break;
            }
            rounds += 1;
            assert!(rounds < 100, "no convergence");
        }
        colors.snapshot()
    }

    #[test]
    fn star_graph_single_thread() {
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            5,
            &[vec![1, 2, 3, 4], vec![0], vec![0], vec![0], vec![0]],
        ));
        let colors = run_until_valid(&g, &Pool::new(1));
        verify_d2gc(&g, &colors).unwrap();
        assert_eq!(crate::metrics::count_distinct_colors(&colors), 5);
    }

    #[test]
    fn mesh_parallel() {
        let m = sparse::gen::grid2d(8, 8, 1);
        let g = Graph::from_symmetric_matrix(&m);
        let colors = run_until_valid(&g, &Pool::new(4));
        verify_d2gc(&g, &colors).unwrap();
    }

    #[test]
    fn reverse_cursor_starts_at_degree() {
        // isolated clique {0,1,2} via triangle: nbor sizes 2, start col 2,
        // three vertices colored 2,1,0 by one net pass.
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(
            3,
            &[vec![1, 2], vec![0, 2], vec![0, 1]],
        ));
        let colors = Colors::new(3);
        let pool = Pool::new(1);
        let sc = scratch(1);
        color_workqueue_net(&g, &colors, &pool, Sched::Dynamic, Balance::Unbalanced, &sc);
        let mut got = colors.snapshot();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn conflict_removal_seeds_middle_color() {
        // 0 - 1 edge, both colored 4: scanning v=0 seeds c[0]=4 then
        // uncolors u=1.
        let g = Graph::from_symmetric_matrix(&Csr::from_rows(2, &[vec![1], vec![0]]));
        let colors = Colors::new(2);
        colors.set(0, 4);
        colors.set(1, 4);
        let pool = Pool::new(1);
        let sc = scratch(1);
        remove_conflicts_net(&g, &colors, &pool, Sched::Dynamic, &sc);
        let snap = colors.snapshot();
        // exactly one survivor
        assert_eq!(snap.iter().filter(|&&c| c == 4).count(), 1);
        assert_eq!(snap.iter().filter(|&&c| c == UNCOLORED).count(), 1);
    }

    #[test]
    fn balanced_net_d2gc_converges_via_vertex_phase() {
        // Same pattern as the paper's N1-N2 + balance usage: one balanced
        // net round, then vertex rounds to convergence (balanced net
        // coloring is not meant to be looped on its own).
        let m = sparse::gen::erdos_renyi(40, 90, 13);
        let g = Graph::from_symmetric_matrix(&m);
        for balance in [Balance::B1, Balance::B2] {
            let pool = Pool::new(2);
            let colors = Colors::new(g.n_vertices());
            let mut sc = scratch(2);
            let order: Vec<u32> = (0..g.n_vertices() as u32).collect();
            color_workqueue_net(&g, &colors, &pool, Sched::Stealing, balance, &sc);
            remove_conflicts_net(&g, &colors, &pool, Sched::Stealing, &sc);
            let mut w = collect_uncolored(&order, &colors, &pool, &mut sc);
            let mut rounds = 0;
            while !w.is_empty() {
                crate::d2gc::vertex::color_workqueue_vertex(
                    &g, &w, &colors, &pool, 4, Sched::Stealing, balance, &sc,
                );
                w = crate::d2gc::vertex::remove_conflicts_vertex(
                    &g, &w, &colors, &pool, 4, Sched::Stealing, None, &mut sc,
                );
                rounds += 1;
                assert!(rounds < 100);
            }
            verify_d2gc(&g, &colors.snapshot()).unwrap();
        }
    }
}
