//! Vertex-based D2GC phases.
//!
//! The paper describes these as the BGPC algorithms "with a single
//! difference: distance-1 neighbors must also be considered in the
//! neighborhood" — each queued vertex scans `nbor(w)` and `nbor(nbor(w))`.

use graph::Graph;
use par::{Pool, Sched, ThreadScratch};
use sparse::CsrIndex;

use crate::ctx::ThreadCtx;
use crate::forbidden::ForbiddenSet;
use crate::simd;
use crate::tuning::PREFETCH_AHEAD;
use crate::workqueue::{merge_local_queues, SharedQueue};
use crate::{Balance, Colors, UNCOLORED};

/// Optimistic coloring of the work queue, vertex-based: forbid the colors
/// of everything within distance 2 of `w`, then pick with `balance`.
#[allow(clippy::too_many_arguments)] // mirrors the paper kernel's parameter list
pub fn color_workqueue_vertex<F: ForbiddenSet, I: CsrIndex>(
    g: &Graph<I>,
    w: &[u32],
    colors: &Colors,
    pool: &Pool,
    chunk: usize,
    sched: Sched,
    balance: Balance,
    scratch: &ThreadScratch<ThreadCtx<F, I>>,
) {
    let rec = pool.tracer();
    pool.for_sched(sched, w.len(), chunk, |tid, range| {
        par::faults::fire("d2gc.color", tid);
        scratch.with(tid, |ctx| {
            let items = &w[range];
            let mut probes = 0u64;
            let mut prefetches = 0u64;
            let mut vstats = simd::VecStats::default();
            let vector = ctx.kernel.has_gather();
            for (k, &wv) in items.iter().enumerate() {
                if let Some(&next) = items.get(k + PREFETCH_AHEAD) {
                    g.prefetch_nbor(next as usize);
                    if trace::COMPILED {
                        prefetches += 1;
                    }
                }
                let wu = wv as usize;
                ctx.fb.advance();
                for &u in g.nbor(wu) {
                    let cu = colors.get(u as usize);
                    if cu != UNCOLORED {
                        ctx.fb.insert(cu);
                        if trace::COMPILED {
                            probes += 1;
                        }
                    }
                    // The distance-2 rows dominate the traversal; long rows
                    // take the vectorized gather, short ones stay scalar.
                    let pins = g.nbor(u as usize);
                    if vector && pins.len() >= simd::GATHER_LANES {
                        simd::gather_mark(colors, pins, wv, &mut ctx.fb, &mut vstats);
                    } else {
                        for &x in pins {
                            if x != wv {
                                let cx = colors.get(x as usize);
                                if cx != UNCOLORED {
                                    ctx.fb.insert(cx);
                                    if trace::COMPILED {
                                        probes += 1;
                                    }
                                }
                            }
                        }
                    }
                }
                let col = balance.pick(wv, &ctx.fb, &mut ctx.balancer);
                colors.set(wu, col);
            }
            if trace::COMPILED {
                if let Some(r) = rec {
                    let mut local = trace::CounterSheet::new();
                    local.add(trace::Counter::VerticesColored, items.len() as u64);
                    local.add(trace::Counter::ForbiddenProbes, probes + vstats.probes);
                    local.add(trace::Counter::PrefetchIssues, prefetches + vstats.prefetches);
                    local.add(trace::Counter::SimdPathHits, vstats.blocks);
                    r.merge(tid, &local);
                }
            }
        });
    });
}

/// Vertex-based conflict detection: `w` loses (is re-queued) if any vertex
/// within distance 2 carries the same color and has a smaller id.
#[allow(clippy::too_many_arguments)] // mirrors the paper kernel's parameter list
pub fn remove_conflicts_vertex<F: ForbiddenSet, I: CsrIndex>(
    g: &Graph<I>,
    w: &[u32],
    colors: &Colors,
    pool: &Pool,
    chunk: usize,
    sched: Sched,
    eager: Option<&SharedQueue>,
    scratch: &mut ThreadScratch<ThreadCtx<F, I>>,
) -> Vec<u32> {
    let scratch_ref: &ThreadScratch<ThreadCtx<F, I>> = scratch;
    let rec = pool.tracer();
    pool.for_sched(sched, w.len(), chunk, |tid, range| {
        par::faults::fire("d2gc.conflict", tid);
        scratch_ref.with(tid, |ctx| {
            let items = &w[range];
            let mut conflicts = 0u64;
            let mut prefetches = 0u64;
            let mut vstats = simd::VecStats::default();
            let vector = ctx.kernel.has_gather();
            for (k, &wv) in items.iter().enumerate() {
                if let Some(&next) = items.get(k + PREFETCH_AHEAD) {
                    g.prefetch_nbor(next as usize);
                    if trace::COMPILED {
                        prefetches += 1;
                    }
                }
                let wu = wv as usize;
                let cw = colors.get(wu);
                debug_assert_ne!(cw, UNCOLORED);
                let mut conflicted = false;
                'detect: for &u in g.nbor(wu) {
                    if u < wv && colors.get(u as usize) == cw {
                        conflicted = true;
                        break 'detect;
                    }
                    let pins = g.nbor(u as usize);
                    let hit = if vector && pins.len() >= simd::GATHER_LANES {
                        simd::conflict_in_pins(colors, pins, wv, cw, &mut vstats)
                    } else {
                        pins.iter().any(|&x| x < wv && colors.get(x as usize) == cw)
                    };
                    if hit {
                        conflicted = true;
                        break 'detect;
                    }
                }
                if conflicted {
                    match eager {
                        Some(q) => q.push_staged(&mut ctx.stage, wv),
                        None => ctx.local_queue.push(wv),
                    }
                    if trace::COMPILED {
                        conflicts += 1;
                    }
                }
            }
            if trace::COMPILED {
                if let Some(r) = rec {
                    let mut local = trace::CounterSheet::new();
                    local.add(trace::Counter::ConflictsDetected, conflicts);
                    local.add(trace::Counter::PrefetchIssues, prefetches + vstats.prefetches);
                    local.add(trace::Counter::SimdPathHits, vstats.blocks);
                    r.merge(tid, &local);
                }
            }
        });
    });
    match eager {
        Some(q) => {
            // Flush each thread's residual stage (outside the region — the
            // join ordered all staged writes before this point).
            for ctx in scratch.iter_mut() {
                q.flush(&mut ctx.stage);
            }
            q.drain_to_vec()
        }
        None => merge_local_queues(scratch),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_d2gc;
    use sparse::Csr;

    fn cycle6() -> Graph {
        Graph::from_symmetric_matrix(&Csr::from_rows(
            6,
            &[
                vec![1, 5],
                vec![0, 2],
                vec![1, 3],
                vec![2, 4],
                vec![3, 5],
                vec![0, 4],
            ],
        ))
    }

    fn run_until_valid(g: &Graph, pool: &Pool, sched: Sched) -> Vec<i32> {
        let colors = Colors::new(g.n_vertices());
        let mut sc: ThreadScratch<ThreadCtx> =
            ThreadScratch::new(pool.threads(), |_| ThreadCtx::new(16));
        let mut w: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let mut rounds = 0;
        while !w.is_empty() {
            color_workqueue_vertex(g, &w, &colors, pool, 2, sched, Balance::Unbalanced, &sc);
            w = remove_conflicts_vertex(g, &w, &colors, pool, 2, sched, None, &mut sc);
            rounds += 1;
            assert!(rounds < 100);
        }
        colors.snapshot()
    }

    #[test]
    fn cycle_single_thread() {
        let g = cycle6();
        let colors = run_until_valid(&g, &Pool::new(1), Sched::Dynamic);
        verify_d2gc(&g, &colors).unwrap();
        // C6 at distance 2 needs exactly 3 colors.
        let k = crate::metrics::count_distinct_colors(&colors);
        assert_eq!(k, 3);
    }

    #[test]
    fn cycle_parallel() {
        let g = cycle6();
        for sched in Sched::all() {
            let colors = run_until_valid(&g, &Pool::new(4), sched);
            verify_d2gc(&g, &colors).unwrap();
        }
    }

    #[test]
    fn random_graph_parallel_eager_queue() {
        let m = sparse::gen::erdos_renyi(60, 150, 3);
        let g = Graph::from_symmetric_matrix(&m);
        let pool = Pool::new(3);
        let colors = Colors::new(g.n_vertices());
        let shared = SharedQueue::new(g.n_vertices());
        let mut sc: ThreadScratch<ThreadCtx> =
            ThreadScratch::new(3, |_| ThreadCtx::new(64));
        let mut w: Vec<u32> = (0..g.n_vertices() as u32).collect();
        let mut rounds = 0;
        while !w.is_empty() {
            color_workqueue_vertex(
                &g, &w, &colors, &pool, 4, Sched::Stealing, Balance::Unbalanced, &sc,
            );
            w = remove_conflicts_vertex(
                &g, &w, &colors, &pool, 4, Sched::Stealing, Some(&shared), &mut sc,
            );
            rounds += 1;
            assert!(rounds < 100);
        }
        verify_d2gc(&g, &colors.snapshot()).unwrap();
    }
}
