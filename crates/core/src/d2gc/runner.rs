//! Speculative driver for D2GC, mirroring [`crate::runner`].

use std::time::{Duration, Instant};

use graph::Graph;
use par::{Pool, ThreadScratch};
use sparse::CsrIndex;

use crate::ctx::ThreadCtx;
use crate::d2gc::{net, vertex};
use crate::error::{validate_order, ColoringError};
use crate::forbidden::ForbiddenSet;
use crate::metrics::{
    count_distinct_colors, ColoringResult, DegradeReason, FailedPhase, IterationMetrics,
};
use crate::runner::{per_thread_slices, RunnerOpts};
use crate::schedule::PhaseKind;
use crate::workqueue::SharedQueue;
use crate::{Colors, Schedule, UNCOLORED};

/// Runs the full speculative D2GC loop with the given [`Schedule`].
///
/// The schedule's net/vertex switching, chunking, queue strategy and
/// balancing knobs apply exactly as in BGPC; the `net_variant` field is
/// ignored (D2GC has a single net-based coloring algorithm, Algorithm 9).
///
/// Faults degrade instead of aborting, exactly as in
/// [`crate::color_bgpc`]: see [`ColoringResult::degraded`].
pub fn color_d2gc<I: CsrIndex>(
    g: &Graph<I>,
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
) -> ColoringResult {
    color_d2gc_with_opts(g, order, schedule, pool, RunnerOpts::default())
}

/// [`color_d2gc`] with an order validated against the vertex set.
pub fn try_color_d2gc<I: CsrIndex>(
    g: &Graph<I>,
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
) -> Result<ColoringResult, ColoringError> {
    validate_order(order, g.n_vertices())?;
    Ok(color_d2gc(g, order, schedule, pool))
}

/// [`color_d2gc`] with explicit [`RunnerOpts`]. Picks the forbidden-set
/// representation per instance exactly like
/// [`crate::color_bgpc_with_opts`], with the same
/// [`crate::tuning::DENSE_FORBIDDEN_CUTOFF`] threshold applied to the
/// maximum degree (D2GC's neighborhood bound) rather than the maximum
/// net size; use [`color_d2gc_with_set`] to force one.
pub fn color_d2gc_with_opts<I: CsrIndex>(
    g: &Graph<I>,
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    if g.max_degree() > crate::tuning::DENSE_FORBIDDEN_CUTOFF {
        color_d2gc_with_set::<crate::StampSet, I>(g, order, schedule, pool, opts)
    } else {
        color_d2gc_with_set::<crate::BitStampSet, I>(g, order, schedule, pool, opts)
    }
}

/// [`color_d2gc`] generic over the forbidden-set representation `F`
/// (benchmark harness entry point, mirroring
/// [`crate::color_bgpc_with_set`]).
pub fn color_d2gc_with_set<F: ForbiddenSet, I: CsrIndex>(
    g: &Graph<I>,
    order: &[u32],
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    let colors = Colors::new(g.n_vertices());
    let w0 = order.to_vec();
    run_speculative_d2gc::<F, I>(
        g,
        order,
        colors,
        w0,
        g.max_degree() + 64,
        schedule,
        pool,
        opts,
    )
}

/// The D2GC speculative loop over an explicit starting state, mirroring
/// [`crate::runner::run_speculative_bgpc`]: `colors` may be pre-seeded
/// and `w0` restricted to a dirty subset ([`crate::incremental`]), while
/// `order` must always cover every vertex (repair + net-phase rebuild).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_speculative_d2gc<F: ForbiddenSet, I: CsrIndex>(
    g: &Graph<I>,
    order: &[u32],
    colors: Colors,
    w0: Vec<u32>,
    capacity: usize,
    schedule: &Schedule,
    pool: &Pool,
    opts: RunnerOpts,
) -> ColoringResult {
    let n = g.n_vertices();
    debug_assert_eq!(order.len(), n);
    let mut scratch: ThreadScratch<ThreadCtx<F, I>> =
        ThreadScratch::new(pool.threads(), |_| ThreadCtx::new(capacity));
    // Per-run state reset, mirroring [`crate::runner`] (see ThreadCtx docs).
    for ctx in scratch.iter_mut() {
        ctx.reset_for_run();
        ctx.set_kernel(schedule.kernel);
    }
    let eager_queue = (!schedule.lazy_queue).then(|| SharedQueue::new(n));

    // The online tuner refines a working copy between iterations;
    // `schedule` itself stays the caller's requested configuration.
    let mut live = schedule.clone();
    let mut tuner_actions = Vec::new();

    let mut w: Vec<u32> = w0;
    let mut iterations = Vec::new();
    let mut degraded: Option<DegradeReason> = None;
    let rec = pool.tracer();
    let start = Instant::now();

    let mut iter = 0usize;
    while !w.is_empty() {
        if opts.expired() {
            // Deadline/cancellation: repair best-so-far, mirroring
            // [`crate::runner`]'s graceful-degradation path.
            degraded = Some(DegradeReason::DeadlineExceeded { iter });
            let queue_in = w.len();
            traced_repair(g, order, &colors, rec, iter);
            w.clear();
            iterations.push(IterationMetrics {
                iter,
                queue_in,
                color_kind: PhaseKind::Vertex,
                conflict_kind: PhaseKind::Vertex,
                color_time: start.elapsed(),
                conflict_time: Duration::ZERO,
                queue_out: 0,
                per_thread: Vec::new(),
            });
            break;
        }
        if iter >= opts.max_iterations {
            degraded = Some(DegradeReason::IterationCap {
                cap: opts.max_iterations,
            });
            let queue_in = w.len();
            traced_repair(g, order, &colors, rec, iter);
            w.clear();
            iterations.push(IterationMetrics {
                iter,
                queue_in,
                color_kind: PhaseKind::Vertex,
                conflict_kind: PhaseKind::Vertex,
                color_time: start.elapsed(),
                conflict_time: Duration::ZERO,
                queue_out: 0,
                per_thread: Vec::new(),
            });
            break;
        }

        let queue_in = w.len();
        let color_kind = live.color_kind(iter);
        let conflict_kind = live.conflict_kind(iter);

        // Phase-bracketing snapshots, exactly as in [`crate::runner`]:
        // deltas of the monotonic sheets become `ThreadIterStats`.
        let snap_start = rec.map(|r| r.snapshot_counters());
        let color_start_ns = rec.map(|r| r.now_ns());
        let t_color = Instant::now();
        let color_outcome = par::contain(|| match color_kind {
            PhaseKind::Vertex => vertex::color_workqueue_vertex(
                g,
                &w,
                &colors,
                pool,
                live.chunk,
                live.sched,
                live.balance,
                &scratch,
            ),
            PhaseKind::Net => net::color_workqueue_net(
                g,
                &colors,
                pool,
                live.sched,
                live.balance,
                &scratch,
            ),
        });
        let color_time = t_color.elapsed();
        if let (Some(r), Some(ts)) = (rec, color_start_ns) {
            r.record_span(
                0,
                trace::SpanKind::Color,
                iter as u32,
                ts,
                r.now_ns().saturating_sub(ts),
            );
        }
        let snap_color = rec.map(|r| r.snapshot_counters());

        if let Err(fault) = color_outcome {
            degraded = Some(DegradeReason::WorkerPanic {
                phase: FailedPhase::Color,
                iter,
                message: fault.first_message(),
            });
            traced_repair(g, order, &colors, rec, iter);
            w.clear();
            iterations.push(IterationMetrics {
                iter,
                queue_in,
                color_kind,
                conflict_kind,
                color_time,
                conflict_time: Duration::ZERO,
                queue_out: 0,
                per_thread: Vec::new(),
            });
            break;
        }

        let conflict_start_ns = rec.map(|r| r.now_ns());
        let t_conflict = Instant::now();
        let conflict_outcome = par::contain(|| match conflict_kind {
            PhaseKind::Vertex => vertex::remove_conflicts_vertex(
                g,
                &w,
                &colors,
                pool,
                live.chunk,
                live.sched,
                eager_queue.as_ref(),
                &mut scratch,
            ),
            PhaseKind::Net => {
                net::remove_conflicts_net(g, &colors, pool, live.sched, &scratch);
                net::collect_uncolored(order, &colors, pool, &mut scratch)
            }
        });
        let conflict_time = t_conflict.elapsed();
        if let (Some(r), Some(ts)) = (rec, conflict_start_ns) {
            r.record_span(
                0,
                trace::SpanKind::Conflict,
                iter as u32,
                ts,
                r.now_ns().saturating_sub(ts),
            );
        }

        let wnext = match conflict_outcome {
            Ok(wnext) => wnext,
            Err(fault) => {
                degraded = Some(DegradeReason::WorkerPanic {
                    phase: FailedPhase::Conflict,
                    iter,
                    message: fault.first_message(),
                });
                traced_repair(g, order, &colors, rec, iter);
                w.clear();
                iterations.push(IterationMetrics {
                    iter,
                    queue_in,
                    color_kind,
                    conflict_kind,
                    color_time,
                    conflict_time,
                    queue_out: 0,
                    per_thread: Vec::new(),
                });
                break;
            }
        };

        // Dropped eager-queue entries are losers that will never be
        // recolored — flag the overflow and repair, as in [`crate::runner`].
        if let Some(q) = eager_queue.as_ref() {
            if q.has_overflowed() {
                degraded = Some(DegradeReason::QueueOverflow {
                    iter,
                    dropped: q.dropped(),
                });
                traced_repair(g, order, &colors, rec, iter);
                iterations.push(IterationMetrics {
                    iter,
                    queue_in,
                    color_kind,
                    conflict_kind,
                    color_time,
                    conflict_time,
                    queue_out: 0,
                    per_thread: Vec::new(),
                });
                break;
            }
        }

        let per_thread = per_thread_slices(&snap_start, &snap_color, rec);
        if trace::COMPILED && conflict_kind == PhaseKind::Vertex && !per_thread.is_empty() {
            // Same trace/queue invariant as the BGPC driver: the
            // vertex-based conflict phase pushes each loser exactly once.
            let counted: u64 = per_thread
                .iter()
                .map(|t| t.conflict.get(trace::Counter::ConflictsDetected))
                .sum();
            debug_assert_eq!(
                counted,
                wnext.len() as u64,
                "per-thread conflict counts disagree with queue size"
            );
        }

        iterations.push(IterationMetrics {
            iter,
            queue_in,
            color_kind,
            conflict_kind,
            color_time,
            conflict_time,
            queue_out: wnext.len(),
            per_thread,
        });
        if let Some(tuner) = &opts.online {
            let m = iterations.last().expect("metrics just pushed");
            tuner_actions.extend(tuner.refine(&mut live, m, pool.threads()));
        }
        w = wnext;
        iter += 1;
    }

    let colors = colors.snapshot();
    let num_colors = count_distinct_colors(&colors);
    ColoringResult {
        colors,
        num_colors,
        iterations,
        total_time: start.elapsed(),
        degraded,
        tuner_actions,
    }
}

/// [`repair_sequential`] wrapped in a [`trace::SpanKind::Repair`] span,
/// mirroring the BGPC driver's `traced_repair`.
fn traced_repair<I: CsrIndex>(
    g: &Graph<I>,
    order: &[u32],
    colors: &Colors,
    rec: Option<&trace::Recorder>,
    iter: usize,
) {
    let ts = rec.map(|r| r.now_ns());
    repair_sequential(g, order, colors);
    if let (Some(r), Some(ts)) = (rec, ts) {
        r.record_span(
            0,
            trace::SpanKind::Repair,
            iter as u32,
            ts,
            r.now_ns().saturating_sub(ts),
        );
    }
}

/// Repairs an arbitrary partial D2GC coloring into a valid complete one.
///
/// Validity of a distance-2 coloring is equivalent to every *closed
/// neighborhood* `{v} ∪ N(v)` being rainbow: adjacent pairs appear in each
/// other's closed neighborhoods, and distance-2 pairs appear in their
/// common neighbor's. The repair scans each closed neighborhood, keeps the
/// first holder of every color and uncolors later duplicates, then
/// first-fit colors the uncolored set in `order`.
fn repair_sequential<I: CsrIndex>(g: &Graph<I>, order: &[u32], colors: &Colors) {
    let n = g.n_vertices();
    let mut max_c: crate::Color = -1;
    for u in 0..n {
        max_c = max_c.max(colors.get(u));
    }
    let width = (max_c + 1) as usize + 1;
    let mut stamp = vec![usize::MAX; width];
    let mut holder = vec![0u32; width];
    for v in 0..n {
        let members = std::iter::once(v as u32).chain(g.nbor(v).iter().copied());
        for u in members {
            let c = colors.get(u as usize);
            if c == UNCOLORED {
                continue;
            }
            let ci = c as usize;
            if stamp[ci] == v && holder[ci] != u {
                colors.set(u as usize, UNCOLORED);
            } else {
                stamp[ci] = v;
                holder[ci] = u;
            }
        }
    }
    let uncolored: Vec<u32> = order
        .iter()
        .copied()
        .filter(|&u| colors.get(u as usize) == UNCOLORED)
        .collect();
    sequential_fallback(g, &uncolored, colors);
}

fn sequential_fallback<I: CsrIndex>(g: &Graph<I>, w: &[u32], colors: &Colors) {
    let mut fb = crate::BitStampSet::with_capacity(g.max_degree() + 64);
    for &wv in w {
        let wu = wv as usize;
        fb.advance();
        for &u in g.nbor(wu) {
            let cu = colors.get(u as usize);
            if cu != crate::UNCOLORED {
                fb.insert(cu);
            }
            for &x in g.nbor(u as usize) {
                if x != wv {
                    let cx = colors.get(x as usize);
                    if cx != crate::UNCOLORED {
                        fb.insert(cx);
                    }
                }
            }
        }
        colors.set(wu, fb.first_fit_from(0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_d2gc;
    use crate::Balance;
    use graph::Ordering;

    fn mesh() -> Graph {
        Graph::from_symmetric_matrix(&sparse::gen::grid2d(12, 12, 1))
    }

    #[test]
    fn d2gc_schedule_set_valid_single_thread() {
        let g = mesh();
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(1);
        for schedule in Schedule::d2gc_set() {
            let r = color_d2gc(&g, &order, &schedule, &pool);
            verify_d2gc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{}: {e}", schedule.name()));
            assert!(r.num_colors > g.max_degree());
        }
    }

    #[test]
    fn d2gc_schedule_set_valid_parallel() {
        let g = mesh();
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(4);
        for schedule in Schedule::d2gc_set() {
            let r = color_d2gc(&g, &order, &schedule, &pool);
            verify_d2gc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{}: {e}", schedule.name()));
        }
    }

    #[test]
    fn single_thread_matches_sequential() {
        let g = mesh();
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(1);
        let r = color_d2gc(&g, &order, &Schedule::v_v(), &pool);
        let (seq_colors, seq_k) = crate::seq::color_d2gc_seq(&g, &order);
        assert_eq!(r.colors, seq_colors);
        assert_eq!(r.num_colors, seq_k);
    }

    #[test]
    fn balanced_d2gc_valid() {
        let g = mesh();
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(3);
        for balance in [Balance::B1, Balance::B2] {
            let schedule = Schedule::n1_n2().with_balance(balance);
            let r = color_d2gc(&g, &order, &schedule, &pool);
            verify_d2gc(&g, &r.colors).unwrap();
        }
    }

    #[test]
    fn powerlaw_graph_all_schedules() {
        let m = sparse::gen::chung_lu(300, 2400, 2.3, 60, true, 5);
        let g = Graph::from_symmetric_matrix(&m);
        let order = Ordering::Natural.vertex_order_d2(&g);
        let pool = Pool::new(4);
        for schedule in Schedule::d2gc_set() {
            let r = color_d2gc(&g, &order, &schedule, &pool);
            verify_d2gc(&g, &r.colors)
                .unwrap_or_else(|e| panic!("{}: {e}", schedule.name()));
        }
    }
}
