//! Distance-2 graph coloring (paper §IV).
//!
//! D2GC reuses the BGPC machinery with one twist: the input is a unipartite
//! graph, so each vertex plays both roles — it is a colored vertex *and*
//! the "net" formed by its closed neighborhood. The net-based kernels
//! therefore start by processing the middle vertex's own color before its
//! adjacency list (Algorithms 9 and 10), and the reverse first-fit cursor
//! starts at `|nbor(v)|` instead of `|vtxs(v)| − 1` since the thread colors
//! up to `|nbor(v)| + 1` vertices per net.

pub mod net;
pub mod runner;
pub mod vertex;

pub use runner::{color_d2gc, color_d2gc_with_opts, color_d2gc_with_set, try_color_d2gc};
