//! Jones–Plassmann coloring — the MIS-based baseline family the
//! speculative approach displaced (paper §VII, refs \[23\]–\[25\]).
//!
//! Every vertex draws a random priority; in each round, the uncolored
//! vertices that dominate their *uncolored* (distance-2) neighborhood
//! color themselves with the smallest color unused by their colored
//! neighbors. Unlike the speculative framework there are **never any
//! conflicts to repair** — the priced-in cost is more synchronization
//! rounds (O(log n / log log n) expected for bounded degree) and a barrier
//! per round. Implemented for BGPC and D2GC so benches can contrast the
//! two philosophies on identical inputs.

use graph::{BipartiteGraph, Graph};
use par::{Pool, ThreadScratch};

use crate::ctx::ThreadCtx;
use crate::metrics::count_distinct_colors;
use crate::{Color, Colors, UNCOLORED};

/// Deterministic per-vertex priority: splitmix64 of (vertex, seed), with
/// the vertex id as tiebreak (encoded by comparing `(hash, id)` pairs).
#[inline]
fn priority(v: u32, seed: u64) -> u64 {
    let mut z = (v as u64).wrapping_add(seed).wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[inline]
fn beats(w: u32, u: u32, seed: u64) -> bool {
    let (pw, pu) = (priority(w, seed), priority(u, seed));
    pw > pu || (pw == pu && w > u)
}

/// Result of a Jones–Plassmann run.
#[derive(Clone, Debug)]
pub struct JpResult {
    /// Final colors (valid, complete).
    pub colors: Vec<Color>,
    /// Distinct colors used.
    pub num_colors: usize,
    /// Synchronous rounds executed.
    pub rounds: usize,
}

/// Jones–Plassmann BGPC: distance-2 domination through the nets.
pub fn color_bgpc_jp(g: &BipartiteGraph, pool: &Pool, seed: u64) -> JpResult {
    let n = g.n_vertices();
    let colors = Colors::new(n);
    let scratch: ThreadScratch<ThreadCtx> =
        ThreadScratch::new(pool.threads(), |_| ThreadCtx::new(g.max_net_size() + 16));
    let mut active: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0usize;
    while !active.is_empty() {
        rounds += 1;
        assert!(rounds <= n + 1, "JP failed to converge");
        // Phase 1: find this round's winners (dominators among uncolored).
        let winners: Vec<u32> = {
            let flags: Vec<std::sync::atomic::AtomicBool> = (0..active.len())
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect();
            pool.for_dynamic(active.len(), 32, |_tid, range| {
                for i in range {
                    let w = active[i];
                    let wu = w as usize;
                    let dominated = g.nets(wu).iter().any(|&v| {
                        g.vtxs(v as usize).iter().any(|&u| {
                            u != w
                                && colors.get(u as usize) == UNCOLORED
                                && beats(u, w, seed)
                        })
                    });
                    if !dominated {
                        flags[i].store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
            active
                .iter()
                .zip(&flags)
                .filter(|(_, f)| f.load(std::sync::atomic::Ordering::Relaxed))
                .map(|(&w, _)| w)
                .collect()
        };
        debug_assert!(!winners.is_empty(), "no winner among active vertices");
        // Phase 2: winners color themselves (mutually independent at
        // distance 2 by construction, so first-fit races cannot happen —
        // two winners sharing a net would have to dominate each other).
        pool.for_dynamic(winners.len(), 32, |tid, range| {
            scratch.with(tid, |ctx| {
                for &w in &winners[range] {
                    let wu = w as usize;
                    ctx.fb.advance();
                    for &v in g.nets(wu) {
                        for &u in g.vtxs(v as usize) {
                            if u != w {
                                let cu = colors.get(u as usize);
                                if cu != UNCOLORED {
                                    ctx.fb.insert(cu);
                                }
                            }
                        }
                    }
                    colors.set(wu, ctx.fb.first_fit_from(0));
                }
            });
        });
        active.retain(|&w| colors.get(w as usize) == UNCOLORED);
    }
    let colors = colors.snapshot();
    let num_colors = count_distinct_colors(&colors);
    JpResult {
        colors,
        num_colors,
        rounds,
    }
}

/// Jones–Plassmann D2GC: domination over the distance-2 neighborhood.
pub fn color_d2gc_jp(g: &Graph, pool: &Pool, seed: u64) -> JpResult {
    let n = g.n_vertices();
    let colors = Colors::new(n);
    let scratch: ThreadScratch<ThreadCtx> =
        ThreadScratch::new(pool.threads(), |_| ThreadCtx::new(g.max_degree() + 16));
    let mut active: Vec<u32> = (0..n as u32).collect();
    let mut rounds = 0usize;
    while !active.is_empty() {
        rounds += 1;
        assert!(rounds <= n + 1, "JP failed to converge");
        let winners: Vec<u32> = {
            let flags: Vec<std::sync::atomic::AtomicBool> = (0..active.len())
                .map(|_| std::sync::atomic::AtomicBool::new(false))
                .collect();
            pool.for_dynamic(active.len(), 32, |_tid, range| {
                for i in range {
                    let w = active[i];
                    let wu = w as usize;
                    let mut dominated = false;
                    'scan: for &u in g.nbor(wu) {
                        if colors.get(u as usize) == UNCOLORED && beats(u, w, seed) {
                            dominated = true;
                            break 'scan;
                        }
                        for &x in g.nbor(u as usize) {
                            if x != w
                                && colors.get(x as usize) == UNCOLORED
                                && beats(x, w, seed)
                            {
                                dominated = true;
                                break 'scan;
                            }
                        }
                    }
                    if !dominated {
                        flags[i].store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
            });
            active
                .iter()
                .zip(&flags)
                .filter(|(_, f)| f.load(std::sync::atomic::Ordering::Relaxed))
                .map(|(&w, _)| w)
                .collect()
        };
        debug_assert!(!winners.is_empty());
        pool.for_dynamic(winners.len(), 32, |tid, range| {
            scratch.with(tid, |ctx| {
                for &w in &winners[range] {
                    let wu = w as usize;
                    ctx.fb.advance();
                    for &u in g.nbor(wu) {
                        let cu = colors.get(u as usize);
                        if cu != UNCOLORED {
                            ctx.fb.insert(cu);
                        }
                        for &x in g.nbor(u as usize) {
                            if x != w {
                                let cx = colors.get(x as usize);
                                if cx != UNCOLORED {
                                    ctx.fb.insert(cx);
                                }
                            }
                        }
                    }
                    colors.set(wu, ctx.fb.first_fit_from(0));
                }
            });
        });
        active.retain(|&w| colors.get(w as usize) == UNCOLORED);
    }
    let colors = colors.snapshot();
    let num_colors = count_distinct_colors(&colors);
    JpResult {
        colors,
        num_colors,
        rounds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_bgpc, verify_d2gc};

    #[test]
    fn bgpc_jp_valid_single_and_multi_thread() {
        let m = sparse::gen::bipartite_uniform(50, 70, 800, 4);
        let g = BipartiteGraph::from_matrix(&m);
        for threads in [1, 4] {
            let pool = Pool::new(threads);
            let r = color_bgpc_jp(&g, &pool, 7);
            verify_bgpc(&g, &r.colors).unwrap();
            assert!(r.num_colors >= g.max_net_size());
        }
    }

    #[test]
    fn bgpc_jp_is_deterministic_per_seed_regardless_of_threads() {
        // JP's winner sets depend only on priorities and the coloring
        // state of *previous* rounds, so the result is thread-invariant.
        let m = sparse::gen::bipartite_uniform(40, 60, 500, 9);
        let g = BipartiteGraph::from_matrix(&m);
        let a = color_bgpc_jp(&g, &Pool::new(1), 5);
        let b = color_bgpc_jp(&g, &Pool::new(4), 5);
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.rounds, b.rounds);
        let c = color_bgpc_jp(&g, &Pool::new(2), 6);
        // different seed, typically different coloring
        let _ = c;
    }

    #[test]
    fn d2gc_jp_valid() {
        let m = sparse::gen::grid2d(9, 9, 1);
        let g = Graph::from_symmetric_matrix(&m);
        let pool = Pool::new(3);
        let r = color_d2gc_jp(&g, &pool, 11);
        verify_d2gc(&g, &r.colors).unwrap();
        assert!(r.num_colors > g.max_degree());
    }

    #[test]
    fn jp_on_clique_takes_one_vertex_per_round() {
        // single net = d2 clique: exactly one winner per round.
        let m = sparse::Csr::from_rows(5, &[vec![0, 1, 2, 3, 4]]);
        let g = BipartiteGraph::from_matrix(&m);
        let pool = Pool::new(2);
        let r = color_bgpc_jp(&g, &pool, 3);
        verify_bgpc(&g, &r.colors).unwrap();
        assert_eq!(r.rounds, 5);
        assert_eq!(r.num_colors, 5);
    }

    #[test]
    fn jp_round_count_bracketed_by_net_structure() {
        // At distance 2, two vertices of one net can never win in the
        // same round, so rounds ≥ max net size; and JP converges well
        // within a small multiple of it on sparse inputs.
        let m = sparse::gen::bipartite_uniform(300, 400, 2400, 1);
        let g = BipartiteGraph::from_matrix(&m);
        let pool = Pool::new(4);
        let r = color_bgpc_jp(&g, &pool, 1);
        verify_bgpc(&g, &r.colors).unwrap();
        let bound = g.max_net_size();
        assert!(r.rounds >= bound, "rounds {} < max net {}", r.rounds, bound);
        assert!(
            r.rounds <= 20 * bound + 20,
            "JP took implausibly many rounds: {} (max net {})",
            r.rounds,
            bound
        );
    }

    #[test]
    fn jp_empty_graph() {
        let g = BipartiteGraph::from_matrix(&sparse::Csr::empty(0, 0));
        let r = color_bgpc_jp(&g, &Pool::new(2), 0);
        assert!(r.colors.is_empty());
        assert_eq!(r.rounds, 0);
    }
}
