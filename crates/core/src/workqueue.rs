//! Conflict work-queue construction: eager shared vs. lazy thread-private.
//!
//! ColPack's conflict removal pushes each conflicting vertex into a shared
//! next-iteration queue immediately (one atomic per conflict — the `V-V`
//! and `V-V-64` baselines). The paper's `64D` refinement builds
//! thread-private queues and concatenates them after the join, removing the
//! shared atomic from the hot loop. Both are provided so the ablation can
//! measure the difference.
//!
//! The eager queue additionally supports *staged* pushes
//! ([`SharedQueue::push_staged`]): conflicts collect in a thread-private
//! buffer and flush [`STAGE_CAPACITY`] entries with a single `fetch_add`,
//! cutting tail-counter contention 64× while keeping the eager queue's
//! semantics (entries visible in the shared buffer after the join).

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use crate::ctx::ThreadCtx;
use crate::forbidden::ForbiddenSet;

/// Entries a thread stages locally before one bulk `fetch_add` flush.
pub const STAGE_CAPACITY: usize = 64;

/// An eager shared queue: bounded, lock-free pushes via a single
/// `fetch_add` tail counter.
///
/// # Overflow semantics
///
/// Callers size the queue with the number of vertices, which bounds the
/// number of conflicts per iteration, so the tail counter can never
/// legitimately pass the buffer. Should it happen anyway (a sizing bug, a
/// kernel pushing a vertex twice), the queue must not tear down the whole
/// parallel region from inside the hot loop: out-of-range entries are
/// *dropped* and *counted* in the [`dropped`](Self::dropped) counter, and
/// [`len`](Self::len) clamps the (possibly overshot) tail to the capacity
/// so drain paths never index past the buffer. A dropped entry is a lost
/// work item — the vertex keeps its stale, possibly conflicting color —
/// so the runners treat a non-zero drop count after the drain as an
/// explicit degraded-run signal
/// ([`crate::DegradeReason::QueueOverflow`]) and repair sequentially.
pub struct SharedQueue {
    buf: Box<[AtomicU32]>,
    len: AtomicUsize,
    /// Entries rejected because the tail had passed the buffer. Sticky
    /// across [`clear`](Self::clear): the signal survives the drain that
    /// discovers it.
    dropped: AtomicUsize,
}

impl SharedQueue {
    /// Creates a queue able to hold `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, || AtomicU32::new(0));
        Self {
            buf: v.into_boxed_slice(),
            len: AtomicUsize::new(0),
            dropped: AtomicUsize::new(0),
        }
    }

    /// Appends `w` (one `fetch_add` per entry — the unstaged baseline).
    ///
    /// A push that lands at or past the capacity is dropped and counted
    /// (see the overflow semantics above) instead of panicking mid-region.
    #[inline]
    pub fn push(&self, w: u32) {
        let slot = self.len.fetch_add(1, Ordering::AcqRel);
        if slot >= self.buf.len() {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.buf[slot].store(w, Ordering::Relaxed);
    }

    /// Stages `w` into a thread-private buffer, flushing
    /// [`STAGE_CAPACITY`] entries with a single `fetch_add` when full.
    /// Call [`flush`](Self::flush) after the parallel region to push the
    /// remainder.
    #[inline]
    pub fn push_staged(&self, stage: &mut Vec<u32>, w: u32) {
        stage.push(w);
        if stage.len() >= STAGE_CAPACITY {
            self.flush(stage);
        }
    }

    /// Flushes a staging buffer into the shared tail: one `fetch_add` for
    /// the whole batch.
    ///
    /// When the batch does not fit, the in-range prefix is written and the
    /// remainder is dropped and counted (see the overflow semantics above);
    /// the stage is cleared either way.
    pub fn flush(&self, stage: &mut Vec<u32>) {
        if stage.is_empty() {
            return;
        }
        let base = self.len.fetch_add(stage.len(), Ordering::AcqRel);
        let fits = if base >= self.buf.len() {
            0
        } else {
            stage.len().min(self.buf.len() - base)
        };
        for (slot, &w) in self.buf[base..base + fits].iter().zip(stage.iter()) {
            slot.store(w, Ordering::Relaxed);
        }
        if fits < stage.len() {
            self.dropped
                .fetch_add(stage.len() - fits, Ordering::Relaxed);
        }
        stage.clear();
    }

    /// Number of entries readable from the queue, clamped to the capacity.
    ///
    /// The tail is advanced with `AcqRel` read-modify-writes and read here
    /// with `Acquire`, so a value observed mid-region is never ahead of
    /// the pushes it reports — which is what lets debug assertions compare
    /// this length against the trace counter totals the conflict kernels
    /// accumulate (the runner checks
    /// `Σ_t conflicts_detected(t) == |W_next|` for vertex-based phases)
    /// without racing under `par::Sched::Stealing`. The previous `Relaxed`
    /// load was only safe after a join barrier.
    ///
    /// An overshot tail (a caught overflow) is clamped rather than
    /// reported raw, so drain paths never index past the buffer; the
    /// overshoot itself is visible via [`dropped`](Self::dropped), which
    /// the runners check after every eager drain.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire).min(self.buf.len())
    }

    /// Number of entries dropped because the queue was full — the explicit
    /// degraded-run signal of the overflow semantics. Zero on every
    /// healthy run. Sticky: [`clear`](Self::clear) does not reset it.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Whether any entry has ever been dropped on this queue.
    pub fn has_overflowed(&self) -> bool {
        self.dropped() > 0
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets the queue to empty (call between iterations, outside
    /// parallel regions). The [`dropped`](Self::dropped) counter is
    /// deliberately *not* reset: it is the sticky evidence a drain needs
    /// to flag the run as degraded after the fact.
    pub fn clear(&self) {
        self.len.store(0, Ordering::Relaxed);
    }

    /// Copies the contents into a vector (call after the producing region
    /// has joined).
    pub fn drain_to_vec(&self) -> Vec<u32> {
        let n = self.len();
        let out = (0..n)
            .map(|i| self.buf[i].load(Ordering::Relaxed))
            .collect();
        self.clear();
        out
    }
}

/// Concatenates the thread-private `local_queue`s of a scratch set (the
/// `64D` lazy strategy) into one vector, clearing them for reuse.
/// Deterministic order: by thread id.
pub fn merge_local_queues<F: ForbiddenSet, I: sparse::CsrIndex>(
    locals: &mut par::ThreadScratch<ThreadCtx<F, I>>,
) -> Vec<u32> {
    let total: usize = {
        let mut t = 0;
        for ctx in locals.iter_mut() {
            t += ctx.local_queue.len();
        }
        t
    };
    let mut merged = Vec::with_capacity(total);
    for ctx in locals.iter_mut() {
        merged.extend_from_slice(&ctx.local_queue);
        ctx.local_queue.clear();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain() {
        let q = SharedQueue::new(4);
        q.push(7);
        q.push(9);
        assert_eq!(q.len(), 2);
        let v = q.drain_to_vec();
        assert_eq!(v.len(), 2);
        assert!(v.contains(&7) && v.contains(&9));
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let q = SharedQueue::new(4000);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..1000 {
                        q.push(t * 1000 + i);
                    }
                });
            }
        });
        let mut v = q.drain_to_vec();
        v.sort_unstable();
        assert_eq!(v.len(), 4000);
        assert_eq!(v, (0..4000).collect::<Vec<u32>>());
    }

    #[test]
    fn concurrent_staged_pushes_all_land() {
        // 4 threads × 1000 entries through 64-entry staging buffers, with
        // a residual flush per thread — nothing lost, nothing duplicated.
        let q = SharedQueue::new(4000);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = &q;
                s.spawn(move || {
                    let mut stage = Vec::new();
                    for i in 0..1000 {
                        q.push_staged(&mut stage, t * 1000 + i);
                    }
                    q.flush(&mut stage);
                    assert!(stage.is_empty());
                });
            }
        });
        let mut v = q.drain_to_vec();
        v.sort_unstable();
        assert_eq!(v, (0..4000).collect::<Vec<u32>>());
    }

    #[test]
    fn staged_pushes_batch_the_tail_counter() {
        let q = SharedQueue::new(256);
        let mut stage = Vec::new();
        for i in 0..(STAGE_CAPACITY as u32 - 1) {
            q.push_staged(&mut stage, i);
        }
        // Nothing flushed yet: the shared tail has not moved.
        assert_eq!(q.len(), 0);
        assert_eq!(stage.len(), STAGE_CAPACITY - 1);
        // The 64th entry triggers exactly one bulk flush.
        q.push_staged(&mut stage, 63);
        assert_eq!(q.len(), STAGE_CAPACITY);
        assert!(stage.is_empty());
    }

    #[test]
    fn exactly_full_queue_is_fine() {
        // Regression: a queue filled to exactly its capacity must read
        // back completely — len() must not mask or reject the boundary.
        let q = SharedQueue::new(STAGE_CAPACITY * 2);
        let mut stage = Vec::new();
        for i in 0..(STAGE_CAPACITY as u32 * 2) {
            q.push_staged(&mut stage, i);
        }
        assert!(stage.is_empty());
        assert_eq!(q.len(), STAGE_CAPACITY * 2);
        let v = q.drain_to_vec();
        assert_eq!(v, (0..STAGE_CAPACITY as u32 * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_panicking() {
        // Regression for the old panic-on-overflow semantics: a full queue
        // must reject the extra entry, count it, and keep every in-range
        // entry readable.
        let q = SharedQueue::new(1);
        q.push(7);
        q.push(8);
        assert_eq!(q.dropped(), 1, "second push must be counted as dropped");
        assert!(q.has_overflowed());
        assert_eq!(q.len(), 1, "len clamps to capacity");
        assert_eq!(q.drain_to_vec(), vec![7]);
    }

    #[test]
    fn staged_overflow_writes_prefix_and_counts_rest() {
        let q = SharedQueue::new(3);
        let mut stage = vec![1, 2, 3, 4];
        q.flush(&mut stage);
        assert!(stage.is_empty(), "stage is cleared even on overflow");
        assert_eq!(q.dropped(), 1);
        assert_eq!(q.len(), 3);
        assert_eq!(q.drain_to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn flush_past_capacity_drops_whole_batch() {
        // Tail already at capacity: the entire batch lands out of range.
        let q = SharedQueue::new(2);
        q.push(0);
        q.push(1);
        let mut stage = vec![5, 6, 7];
        q.flush(&mut stage);
        assert_eq!(q.dropped(), 3);
        assert_eq!(q.drain_to_vec(), vec![0, 1]);
    }

    #[test]
    fn dropped_counter_survives_clear() {
        // The drain that discovers an overflow clears the queue; the
        // degraded-run signal must survive it.
        let q = SharedQueue::new(1);
        q.push(1);
        q.push(2);
        let _ = q.drain_to_vec();
        assert!(q.is_empty());
        assert_eq!(q.dropped(), 1, "clear must not reset the drop count");
    }

    #[test]
    fn concurrent_overflow_loses_nothing_in_range() {
        // 4 threads push 4x the capacity: exactly `capacity` entries must
        // land, the rest must be counted, and no push may panic or write
        // out of bounds.
        let cap = 128;
        let q = SharedQueue::new(cap);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..cap as u32 {
                        q.push(t * cap as u32 + i);
                    }
                });
            }
        });
        assert_eq!(q.len(), cap);
        assert_eq!(q.dropped(), 3 * cap);
        let v = q.drain_to_vec();
        assert_eq!(v.len(), cap);
        let unique: std::collections::HashSet<u32> = v.into_iter().collect();
        assert_eq!(unique.len(), cap, "no slot may be written twice");
    }

    #[test]
    fn merge_locals_preserves_thread_order() {
        use crate::ctx::ThreadCtx;
        let mut locals: par::ThreadScratch<ThreadCtx> =
            par::ThreadScratch::new(3, |_| ThreadCtx::new(4));
        locals.with(0, |ctx| ctx.local_queue.extend([1, 2]));
        locals.with(2, |ctx| ctx.local_queue.push(5));
        let merged = merge_local_queues(&mut locals);
        assert_eq!(merged, vec![1, 2, 5]);
        // cleared for reuse
        assert!(merge_local_queues(&mut locals).is_empty());
    }
}
