//! Conflict work-queue construction: eager shared vs. lazy thread-private.
//!
//! ColPack's conflict removal pushes each conflicting vertex into a shared
//! next-iteration queue immediately (one atomic per conflict — the `V-V`
//! and `V-V-64` baselines). The paper's `64D` refinement builds
//! thread-private queues and concatenates them after the join, removing the
//! shared atomic from the hot loop. Both are provided so the ablation can
//! measure the difference.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// An eager shared queue: bounded, lock-free pushes via a single
/// `fetch_add` tail counter.
pub struct SharedQueue {
    buf: Box<[AtomicU32]>,
    len: AtomicUsize,
}

impl SharedQueue {
    /// Creates a queue able to hold `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        let mut v = Vec::with_capacity(capacity);
        v.resize_with(capacity, || AtomicU32::new(0));
        Self {
            buf: v.into_boxed_slice(),
            len: AtomicUsize::new(0),
        }
    }

    /// Appends `w`.
    ///
    /// # Panics
    /// Panics if the queue is full — callers size it with the number of
    /// vertices, which bounds the number of conflicts per iteration.
    #[inline]
    pub fn push(&self, w: u32) {
        let slot = self.len.fetch_add(1, Ordering::Relaxed);
        assert!(slot < self.buf.len(), "shared work queue overflow");
        self.buf[slot].store(w, Ordering::Relaxed);
    }

    /// Number of entries pushed so far.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed).min(self.buf.len())
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets the queue to empty (call between iterations, outside
    /// parallel regions).
    pub fn clear(&self) {
        self.len.store(0, Ordering::Relaxed);
    }

    /// Copies the contents into a vector (call after the producing region
    /// has joined).
    pub fn drain_to_vec(&self) -> Vec<u32> {
        let n = self.len();
        let out = (0..n)
            .map(|i| self.buf[i].load(Ordering::Relaxed))
            .collect();
        self.clear();
        out
    }
}

/// Concatenates the thread-private `local_queue`s of a scratch set (the
/// `64D` lazy strategy) into one vector, clearing them for reuse.
/// Deterministic order: by thread id.
pub fn merge_local_queues(locals: &mut par::ThreadScratch<crate::ctx::ThreadCtx>) -> Vec<u32> {
    let total: usize = {
        let mut t = 0;
        for ctx in locals.iter_mut() {
            t += ctx.local_queue.len();
        }
        t
    };
    let mut merged = Vec::with_capacity(total);
    for ctx in locals.iter_mut() {
        merged.extend_from_slice(&ctx.local_queue);
        ctx.local_queue.clear();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_drain() {
        let q = SharedQueue::new(4);
        q.push(7);
        q.push(9);
        assert_eq!(q.len(), 2);
        let v = q.drain_to_vec();
        assert_eq!(v.len(), 2);
        assert!(v.contains(&7) && v.contains(&9));
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_pushes_all_land() {
        let q = SharedQueue::new(4000);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let q = &q;
                s.spawn(move || {
                    for i in 0..1000 {
                        q.push(t * 1000 + i);
                    }
                });
            }
        });
        let mut v = q.drain_to_vec();
        v.sort_unstable();
        assert_eq!(v.len(), 4000);
        assert_eq!(v, (0..4000).collect::<Vec<u32>>());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let q = SharedQueue::new(1);
        q.push(0);
        q.push(1);
    }

    #[test]
    fn merge_locals_preserves_thread_order() {
        use crate::ctx::ThreadCtx;
        let mut locals = par::ThreadScratch::new(3, |_| ThreadCtx::new(4));
        locals.with(0, |ctx| ctx.local_queue.extend([1, 2]));
        locals.with(2, |ctx| ctx.local_queue.push(5));
        let merged = merge_local_queues(&mut locals);
        assert_eq!(merged, vec![1, 2, 5]);
        // cleared for reuse
        assert!(merge_local_queues(&mut locals).is_empty());
    }
}
