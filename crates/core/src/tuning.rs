//! Tunable kernel constants, collected next to the SIMD dispatch so the
//! autotuner (ROADMAP item 5) has one place to sweep.
//!
//! Everything here is a *hint* knob: changing a value may shift
//! performance but never changes any coloring result — the property that
//! lets an autotuner explore them freely.

/// How many queue positions ahead the gather loops hint the cache about
/// the next vertex's adjacency row. The queue entries are random vertex
/// ids, so without the hint every `nets(w)` access is a cold indirect
/// load; four items covers the gather latency without thrashing L1.
///
/// The vectorized gather path additionally prefetches the *color words*
/// one [`crate::simd`] block ahead and the forbidden-set words of each
/// gathered block (see `BitStampSet::prefetch_word`) — adjacency, marks
/// source, and mark destination are all hinted.
pub const PREFETCH_AHEAD: usize = 4;
