//! Tunable kernel constants, collected next to the SIMD dispatch so the
//! autotuning engine ([`crate::engine`]) has one place to sweep.
//!
//! Everything here is a *hint* knob: changing a value may shift
//! performance but never changes any coloring result — the property that
//! lets an autotuner explore them freely.

/// How many queue positions ahead the gather loops hint the cache about
/// the next vertex's adjacency row. The queue entries are random vertex
/// ids, so without the hint every `nets(w)` access is a cold indirect
/// load; four items covers the gather latency without thrashing L1.
///
/// The vectorized gather path additionally prefetches the *color words*
/// one [`crate::simd`] block ahead and the forbidden-set words of each
/// gathered block (see `BitStampSet::prefetch_word`) — adjacency, marks
/// source, and mark destination are all hinted.
pub const PREFETCH_AHEAD: usize = 4;

/// Neighborhood size (max net size for BGPC, max degree for D2GC) above
/// which the runners prefer the per-color [`crate::StampSet`] over the
/// word-packed [`crate::BitStampSet`]. The greedy bound caps every chosen
/// color by the distance-2 degree, so a vertex's first-fit scan can never
/// probe more colors than its kernels inserted — on giant-net instances
/// the per-edge insert traffic dwarfs any scan savings, and the stamp
/// array's single-store insert wins end to end (see `BENCH_coloring.json`,
/// which records both representations per schedule).
///
/// One definition, three consumers: the BGPC runner dispatch, the D2GC
/// runner dispatch, and [`crate::engine::ForbiddenKind::auto_for`].
pub const DENSE_FORBIDDEN_CUTOFF: usize = 128;

/// Largest nonzero count a `u32` row pointer can address — re-exported
/// from [`sparse::csr`] (the definition must live downstream of `sparse`
/// since `IndexWidth::auto_for` uses it) so the engine's width guard and
/// the legacy heuristic provably share one cutoff.
pub use sparse::csr::U32_MAX_NNZ;

#[cfg(test)]
mod tests {
    use super::*;
    use sparse::IndexWidth;

    #[test]
    fn forbidden_cutoff_matches_runner_dispatch_boundary() {
        // The degenerate-instance suite exercises real colorings at
        // 128/129; here we pin the constant itself so a drive-by edit
        // cannot silently move the dispatch boundary.
        assert_eq!(DENSE_FORBIDDEN_CUTOFF, 128);
        assert!(crate::engine::ForbiddenKind::auto_for(DENSE_FORBIDDEN_CUTOFF)
            == crate::engine::ForbiddenKind::BitStamp);
        assert!(crate::engine::ForbiddenKind::auto_for(DENSE_FORBIDDEN_CUTOFF + 1)
            == crate::engine::ForbiddenKind::Stamp);
    }

    #[test]
    fn width_cutoff_boundary_u32_max() {
        assert_eq!(U32_MAX_NNZ, u32::MAX as usize);
        assert_eq!(IndexWidth::auto_for(U32_MAX_NNZ - 1), IndexWidth::U32);
        assert_eq!(IndexWidth::auto_for(U32_MAX_NNZ), IndexWidth::U32);
        assert_eq!(IndexWidth::auto_for(U32_MAX_NNZ + 1), IndexWidth::U64);
    }
}
