//! Post-pass color reduction by iterative recoloring.
//!
//! The paper's related work (§VII, Sarıyüce et al.) improves a finished
//! coloring by re-running greedy passes in color-aware orders. We provide
//! the classic descending-class pass for both BGPC and D2GC: visit
//! vertices from the largest color id downward and first-fit each against
//! its current neighborhood. A vertex can only move to a *smaller* color,
//! so the pass never increases the distinct-color count, and repeated
//! passes converge.
//!
//! The sequential pass is deterministic and guaranteed valid. A parallel
//! speculative variant processes one color class at a time (class members
//! are mutually independent, but may race for the same target color) and
//! repairs the few conflicting movers with an id-ordered fixup, then
//! re-verifies in debug builds.

use graph::{BipartiteGraph, Graph};
use par::{Pool, ThreadScratch};

use crate::ctx::ThreadCtx;
use crate::metrics::count_distinct_colors;
use crate::{BitStampSet, Color, Colors, UNCOLORED};

/// One sequential descending-class recoloring pass for BGPC. Returns the
/// new distinct-color count. Never increases any vertex's color.
pub fn reduce_colors_bgpc_seq(g: &BipartiteGraph, colors: &mut [Color]) -> usize {
    debug_assert_eq!(colors.len(), g.n_vertices());
    let mut order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(colors[u as usize]));
    let mut fb = BitStampSet::with_capacity(g.max_net_size() + 16);
    for &w in &order {
        let wu = w as usize;
        fb.advance();
        for &v in g.nets(wu) {
            for &u in g.vtxs(v as usize) {
                if u != w {
                    let cu = colors[u as usize];
                    if cu != UNCOLORED {
                        fb.insert(cu);
                    }
                }
            }
        }
        let col = fb.first_fit_from(0);
        debug_assert!(col <= colors[wu], "first-fit can only move down");
        colors[wu] = col;
    }
    count_distinct_colors(colors)
}

/// Sequential descending-class recoloring for D2GC.
pub fn reduce_colors_d2gc_seq(g: &Graph, colors: &mut [Color]) -> usize {
    debug_assert_eq!(colors.len(), g.n_vertices());
    let mut order: Vec<u32> = (0..g.n_vertices() as u32).collect();
    order.sort_by_key(|&u| std::cmp::Reverse(colors[u as usize]));
    let mut fb = BitStampSet::with_capacity(g.max_degree() + 16);
    for &w in &order {
        let wu = w as usize;
        fb.advance();
        for &u in g.nbor(wu) {
            let cu = colors[u as usize];
            if cu != UNCOLORED {
                fb.insert(cu);
            }
            for &x in g.nbor(u as usize) {
                if x != w {
                    let cx = colors[x as usize];
                    if cx != UNCOLORED {
                        fb.insert(cx);
                    }
                }
            }
        }
        let col = fb.first_fit_from(0);
        debug_assert!(col <= colors[wu]);
        colors[wu] = col;
    }
    count_distinct_colors(colors)
}

/// Parallel speculative recoloring pass for BGPC: classes are processed
/// from the largest color id downward; class members recolor in parallel
/// (optimistically), and movers that collided are fixed up id-ordered.
///
/// Validity is restored before returning; the distinct-color count never
/// increases because a fixed-up loser can always fall back to its
/// original color (no other vertex can have taken it: movers only move
/// strictly down, and classes are processed top-down, so color `k` is
/// only vacated — never entered — while class `k` is in flight).
pub fn reduce_colors_bgpc(
    g: &BipartiteGraph,
    colors_in: &mut Vec<Color>,
    pool: &Pool,
) -> usize {
    let n = g.n_vertices();
    debug_assert_eq!(colors_in.len(), n);
    let max_color = colors_in.iter().copied().max().unwrap_or(-1);
    if max_color <= 0 {
        return count_distinct_colors(colors_in);
    }
    // classes[c] = members of color c
    let mut classes: Vec<Vec<u32>> = vec![Vec::new(); max_color as usize + 1];
    for (u, &c) in colors_in.iter().enumerate() {
        debug_assert!(c >= 0);
        classes[c as usize].push(u as u32);
    }
    let colors = Colors::new(n);
    for (u, &c) in colors_in.iter().enumerate() {
        colors.set(u, c);
    }
    let scratch: ThreadScratch<ThreadCtx> = ThreadScratch::new(pool.threads(), |_| {
        ThreadCtx::new(g.max_net_size() + 16)
    });

    for c in (1..=max_color as usize).rev() {
        let class = &classes[c];
        if class.is_empty() {
            continue;
        }
        let original = c as Color;
        // Optimistic parallel move-down.
        pool.for_dynamic(class.len(), 16, |tid, range| {
            scratch.with(tid, |ctx| {
                for &w in &class[range] {
                    let wu = w as usize;
                    ctx.fb.advance();
                    for &v in g.nets(wu) {
                        for &u in g.vtxs(v as usize) {
                            if u != w {
                                let cu = colors.get(u as usize);
                                if cu != UNCOLORED {
                                    ctx.fb.insert(cu);
                                }
                            }
                        }
                    }
                    let col = ctx.fb.first_fit_from(0);
                    if col < original {
                        colors.set(wu, col);
                    }
                }
            });
        });
        // Id-ordered fixup: any mover that now conflicts reverts to its
        // original class color (guaranteed free — see doc comment).
        pool.for_dynamic(class.len(), 16, |_tid, range| {
            for &w in &class[range] {
                let wu = w as usize;
                let cw = colors.get(wu);
                if cw == original {
                    continue;
                }
                let conflicted = g.nets(wu).iter().any(|&v| {
                    g.vtxs(v as usize)
                        .iter()
                        .any(|&u| u < w && colors.get(u as usize) == cw)
                });
                if conflicted {
                    colors.set(wu, original);
                }
            }
        });
        // Second sweep: the id-ordered rule is not transitive within one
        // parallel pass (a reverted winner can strand a larger-id loser),
        // so repeat until stable — bounded by the class size.
        loop {
            let mut changed = false;
            for &w in class {
                let wu = w as usize;
                let cw = colors.get(wu);
                if cw == original {
                    continue;
                }
                let conflicted = g.nets(wu).iter().any(|&v| {
                    g.vtxs(v as usize)
                        .iter()
                        .any(|&u| u != w && colors.get(u as usize) == cw)
                });
                if conflicted {
                    colors.set(wu, original);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }

    *colors_in = colors.snapshot();
    count_distinct_colors(colors_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_bgpc, verify_d2gc};
    use crate::Schedule;
    use graph::Ordering;

    fn instance() -> BipartiteGraph {
        BipartiteGraph::from_matrix(&sparse::gen::bipartite_uniform(60, 90, 1200, 9))
    }

    #[test]
    fn seq_pass_never_increases_colors_and_stays_valid() {
        let g = instance();
        let order = Ordering::Random(3).vertex_order_bgpc(&g);
        let (mut colors, k0) = crate::seq::color_bgpc_seq(&g, &order);
        let k1 = reduce_colors_bgpc_seq(&g, &mut colors);
        verify_bgpc(&g, &colors).unwrap();
        assert!(k1 <= k0, "{k1} > {k0}");
    }

    #[test]
    fn seq_pass_improves_a_deliberately_bad_coloring() {
        // Disjoint nets colored with disjoint color ranges — wasteful.
        let m = sparse::Csr::from_rows(6, &[vec![0, 1], vec![2, 3], vec![4, 5]]);
        let g = BipartiteGraph::from_matrix(&m);
        let mut colors = vec![0, 1, 2, 3, 4, 5];
        verify_bgpc(&g, &colors).unwrap();
        let k = reduce_colors_bgpc_seq(&g, &mut colors);
        verify_bgpc(&g, &colors).unwrap();
        assert_eq!(k, 2, "three disjoint pairs need exactly 2 colors");
    }

    #[test]
    fn seq_pass_is_idempotent_at_fixpoint() {
        let g = instance();
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let (mut colors, _) = crate::seq::color_bgpc_seq(&g, &order);
        let k1 = reduce_colors_bgpc_seq(&g, &mut colors);
        let snapshot = colors.clone();
        let k2 = reduce_colors_bgpc_seq(&g, &mut colors);
        assert_eq!(k1, k2);
        // colors may still permute within equal count; run once more to
        // reach the fixpoint and require stability.
        let k3 = reduce_colors_bgpc_seq(&g, &mut colors);
        assert_eq!(k2, k3);
        let _ = snapshot;
    }

    #[test]
    fn parallel_pass_valid_and_not_worse() {
        let g = instance();
        let order = Ordering::Random(8).vertex_order_bgpc(&g);
        let pool = Pool::new(4);
        let r = crate::color_bgpc(&g, &order, &Schedule::n1_n2(), &pool);
        let k0 = r.num_colors;
        let mut colors = r.colors;
        let k1 = reduce_colors_bgpc(&g, &mut colors, &pool);
        verify_bgpc(&g, &colors).unwrap();
        assert!(k1 <= k0, "parallel recolor increased colors: {k1} > {k0}");
    }

    #[test]
    fn parallel_matches_sequential_on_one_thread_graphwise() {
        let g = instance();
        let order = Ordering::Natural.vertex_order_bgpc(&g);
        let (colors0, _) = crate::seq::color_bgpc_seq(&g, &order);
        let pool = Pool::new(1);
        let mut a = colors0.clone();
        let ka = reduce_colors_bgpc(&g, &mut a, &pool);
        let mut b = colors0;
        let kb = reduce_colors_bgpc_seq(&g, &mut b);
        verify_bgpc(&g, &a).unwrap();
        verify_bgpc(&g, &b).unwrap();
        // Different visit orders (class-major vs color-sorted), so exact
        // equality is not required — only equal quality guarantees.
        assert!(ka <= kb + 1);
    }

    #[test]
    fn d2gc_seq_pass_valid_and_not_worse() {
        let m = sparse::gen::erdos_renyi(60, 160, 12);
        let g = Graph::from_symmetric_matrix(&m);
        let order = Ordering::Random(2).vertex_order_d2(&g);
        let (mut colors, k0) = crate::seq::color_d2gc_seq(&g, &order);
        let k1 = reduce_colors_d2gc_seq(&g, &mut colors);
        verify_d2gc(&g, &colors).unwrap();
        assert!(k1 <= k0);
    }
}
